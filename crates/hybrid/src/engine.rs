//! The command/event engine — the only public mutation path.
//!
//! [`Engine`] wraps a [`Hybrid`] installation and routes every
//! mutation through [`Engine::apply`]: the [`Op`] is executed, pushed
//! onto the in-memory ops journal, and its outcome is delivered to the
//! subscribed [`EventSink`]s. Because the journal is replayable, a
//! restart is a checkpoint chain (base image + O(Δ) delta
//! checkpoints) plus a replay of the segmented journal tail
//! ([`Engine::checkpoint`] / [`Engine::restore_from`] /
//! [`Engine::recover_at`]), and snapshot⊕replay provably reproduces
//! the live state ([`Engine::state_fingerprint`]).
//!
//! Convenience wrappers (`engine.reserve(..)`, `engine.publish(..)`,
//! …) build the [`Op`] and destructure the [`Event`], so call sites
//! read like the old direct API while everything still flows through
//! the journal.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;

use cad_tools::ToolKind;
use cad_vfs::{Blob, CostMeter, NodeKind, Vfs, VfsPath};
use fmcad::Fmcad;
use jcf::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId, FlowId,
    Jcf, ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};

use crate::consistency::ConsistencyFinding;
use crate::encapsulation::{ToolOutput, ToolSession};
use crate::error::{HybridError, HybridResult};
use crate::events::{CounterSink, Event, EventSink, JournalEntry, MergeConflict, TraceSink};
use crate::framework::{Hybrid, MirrorLocation, StagingMode, StandardFlow, BOOTSTRAP_SCRIPT};
use crate::future::FutureFeatures;
use crate::import::ImportReport;
use crate::ops::Op;
use crate::release::ExportManifest;

/// Magic first line of a persisted file-system image.
const FS_MAGIC: &str = "vfs-image v1";
/// Magic first line of the persisted hybrid coupling state.
const META_MAGIC: &str = "hybrid-meta v1";

/// File names inside a checkpoint directory.
const OMS_IMG: &str = "oms.img";
const FS_IMG: &str = "fs.img";
const HYBRID_META: &str = "hybrid.meta";
const JOURNAL_LOG: &str = "journal.log";

/// Magic first line of the checkpoint-chain manifest ([`CK_MANIFEST`]).
const CK_MAGIC: &str = "hybrid-ck v1";
/// Magic first line of a combined delta-checkpoint file (`delta-<k>.ck`).
const DELTA_MAGIC: &str = "hybrid-delta v1";
/// The chain manifest: renaming its staged replacement into place is
/// the commit point of every delta checkpoint.
const CK_MANIFEST: &str = "ck.manifest";
/// Journal entries per closed segment. Once the open segment reaches
/// this many entries a sync seals it (immutable from then on) and
/// starts the next one, so no sync ever rewrites more than
/// `SEG_CAP - 1` already-persisted entries.
const SEG_CAP: u64 = 64;

/// File name of journal segment `id`.
fn seg_file(id: u64) -> String {
    format!("seg-{id}.log")
}

/// File name of delta checkpoint `id`.
fn delta_file(id: u64) -> String {
    format!("delta-{id}.ck")
}

/// The command/event engine over a [`Hybrid`] installation.
///
/// Dereferences to [`Hybrid`] for all read access; mutations go
/// through [`Engine::apply`] (or the typed wrappers built on it).
///
/// With default features that is the *only* mutation path: the raw
/// `jcf_mut()` / `fmcad_mut()` handles that bypass the journal exist
/// only behind the `raw-handles` feature, so this does not compile:
///
/// ```compile_fail
/// let mut en = hybrid::Engine::builder().build();
/// en.jcf_mut(); // requires the `raw-handles` feature
/// ```
pub struct Engine {
    hy: Hybrid,
    /// Ops applied since the last checkpoint, in order — including
    /// failed ones, whose partial effects replay must reproduce.
    journal: Vec<Op>,
    /// Total ops applied over the engine's lifetime.
    seq: u64,
    trace: TraceSink,
    counters: CounterSink,
    extra: Vec<Box<dyn EventSink + Send>>,
    /// The last snapshot published at the current `seq`, if any.
    /// Capture is already O(1), but callers republish after every
    /// write batch; when nothing changed in between they all share
    /// one `Arc<Snapshot>` instead of four map clones each.
    snap_cache: std::sync::Mutex<Option<std::sync::Arc<crate::Snapshot>>>,
    /// The engine's memory of its persisted checkpoint chain, present
    /// once [`Engine::checkpoint`] has written a base image. Holds the
    /// chain-head state the next delta diffs against; `None` means the
    /// next checkpoint writes a full base and [`Engine::sync_journal`]
    /// falls back to the legacy whole-file journal.
    durable: Option<DurableState>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("hy", &self.hy)
            .field("journal", &self.journal.len())
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl Deref for Engine {
    type Target = Hybrid;

    fn deref(&self) -> &Hybrid {
        &self.hy
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine over a fresh hybrid installation (see
    /// [`Hybrid`] for what the bootstrap registers). The bootstrap is
    /// part of construction, not of the journal.
    pub fn new() -> Engine {
        Engine::assemble(Hybrid::new(), TraceSink::default(), Vec::new())
    }

    /// Starts an [`EngineBuilder`](crate::EngineBuilder), the preferred
    /// way to configure staging mode, future features, fault plans and
    /// event sinks before the first operation runs.
    pub fn builder() -> crate::EngineBuilder {
        crate::EngineBuilder::new()
    }

    /// Assembles an engine around an already-configured [`Hybrid`]
    /// installation. The journal starts empty: whatever configuration
    /// the builder applied is construction, not history.
    pub(crate) fn assemble(
        hy: Hybrid,
        trace: TraceSink,
        extra: Vec<Box<dyn EventSink + Send>>,
    ) -> Engine {
        Engine {
            hy,
            journal: Vec::new(),
            seq: 0,
            trace,
            counters: CounterSink::default(),
            extra,
            snap_cache: std::sync::Mutex::new(None),
            durable: None,
        }
    }

    /// Mutable access to the master framework, bypassing the journal.
    /// Only available with the `raw-handles` feature (tests and
    /// experiments that must poke the frameworks directly).
    #[cfg(feature = "raw-handles")]
    pub fn jcf_mut(&mut self) -> &mut Jcf {
        // Raw handles mutate state without bumping `seq`, so the
        // seq-keyed snapshot cache cannot tell; drop it.
        self.invalidate_snap_cache();
        self.hy.jcf_mut()
    }

    /// Mutable access to the slave framework, bypassing the journal.
    /// Only available with the `raw-handles` feature.
    #[cfg(feature = "raw-handles")]
    pub fn fmcad_mut(&mut self) -> &mut Fmcad {
        self.invalidate_snap_cache();
        self.hy.fmcad_mut()
    }

    /// Total operations applied so far (successes and failures).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The ops applied since the last checkpoint.
    pub fn journal_ops(&self) -> &[Op] {
        &self.journal
    }

    /// Freezes the current state into a thread-shareable
    /// [`Snapshot`](crate::Snapshot): reads against it are zero-copy
    /// and cost the engine nothing.
    ///
    /// Capture itself is O(1) (the database and coupling maps are
    /// persistent structures), and repeat calls at an unchanged
    /// [`Engine::seq`] return the *same* `Arc<Snapshot>` — callers
    /// that republish defensively share one allocation.
    pub fn snapshot(&self) -> std::sync::Arc<crate::Snapshot> {
        let mut cache = self
            .snap_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(snap) = cache.as_ref() {
            if snap.seq() == self.seq {
                return std::sync::Arc::clone(snap);
            }
        }
        let snap = std::sync::Arc::new(crate::Snapshot::capture(&self.hy, self.seq));
        *cache = Some(std::sync::Arc::clone(&snap));
        snap
    }

    /// Drops the cached snapshot; used by the mutation paths that do
    /// not advance `seq` (raw handles, checkpointing).
    fn invalidate_snap_cache(&self) {
        *self
            .snap_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// The built-in tracing ring buffer (the shell's `journal` view).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The built-in operation/failure counters.
    pub fn counters(&self) -> &CounterSink {
        &self.counters
    }

    /// Applies one operation: executes it against the coupled
    /// frameworks, journals it (success or failure — failed ops can
    /// have partial effects, e.g. a started activity execution, that a
    /// replay must reproduce), and notifies the sinks.
    ///
    /// # Errors
    ///
    /// Returns whatever the underlying operation returns.
    pub fn apply(&mut self, op: Op) -> HybridResult<Event> {
        let result = self.exec(&op);
        self.record(op, result.as_ref());
        result
    }

    fn record(&mut self, op: Op, outcome: Result<&Event, &HybridError>) {
        self.seq += 1;
        let seq = self.seq;
        match outcome {
            Ok(event) => {
                self.trace.on_event(seq, &op, event);
                self.counters.on_event(seq, &op, event);
                for sink in &mut self.extra {
                    sink.on_event(seq, &op, event);
                }
            }
            Err(error) => {
                self.trace.on_error(seq, &op, error);
                self.counters.on_error(seq, &op, error);
                for sink in &mut self.extra {
                    sink.on_error(seq, &op, error);
                }
            }
        }
        self.journal.push(op);
    }

    fn exec(&mut self, op: &Op) -> HybridResult<Event> {
        let hy = &mut self.hy;
        match op {
            Op::AddUser { name, manager } => Ok(Event::UserAdded(hy.jcf.add_user(name, *manager)?)),
            Op::AddTeam { actor, name } => Ok(Event::TeamAdded(hy.jcf.add_team(*actor, name)?)),
            Op::AddTeamMember { actor, team, user } => {
                hy.jcf.add_team_member(*actor, *team, *user)?;
                Ok(Event::TeamMemberAdded(*team, *user))
            }
            Op::RegisterViewtype { name, application } => Ok(Event::ViewtypeRegistered(
                hy.register_viewtype(name, *application)?,
            )),
            Op::RegisterTool { name, kind } => {
                Ok(Event::ToolRegistered(hy.register_tool(name, *kind)?))
            }
            Op::DefineStandardFlow { name } => {
                Ok(Event::StandardFlowDefined(hy.standard_flow(name)?))
            }
            Op::DefineQualityGatedFlow { name } => {
                Ok(Event::QualityGatedFlowDefined(hy.quality_gated_flow(name)?))
            }
            Op::DefineFlow { actor, name } => {
                Ok(Event::FlowDefined(hy.jcf.define_flow(*actor, name)?))
            }
            Op::AddActivity {
                actor,
                flow,
                name,
                tool,
                needs,
                creates,
                predecessors,
            } => Ok(Event::ActivityAdded(hy.jcf.add_activity(
                *actor,
                *flow,
                name,
                *tool,
                needs,
                creates,
                predecessors,
            )?)),
            Op::FreezeFlow { actor, flow } => {
                hy.jcf.freeze_flow(*actor, *flow)?;
                Ok(Event::FlowFrozen(*flow))
            }
            Op::CreateProject { name } => Ok(Event::ProjectCreated(hy.create_project(name)?)),
            Op::CreateCell { project, name } => {
                Ok(Event::CellCreated(hy.create_cell(*project, name)?))
            }
            Op::CreateCellVersion { cell, flow, team } => {
                let (cv, variant) = hy.create_cell_version(*cell, *flow, *team)?;
                Ok(Event::CellVersionCreated(cv, variant))
            }
            Op::DeriveVariant {
                user,
                cv,
                name,
                base,
            } => Ok(Event::VariantDerived(
                hy.jcf.derive_variant(*user, *cv, name, *base)?,
            )),
            Op::DeclareCompOf { user, cv, child } => {
                hy.jcf.declare_comp_of(*user, *cv, *child)?;
                Ok(Event::CompOfDeclared(*cv, *child))
            }
            Op::ShareCell { actor, cell } => {
                hy.share_cell(*actor, *cell)?;
                Ok(Event::CellShared(*cell))
            }
            Op::PromoteVariant { user, winner } => {
                let (cv, variant) = hy.jcf.promote_variant(*user, *winner)?;
                Ok(Event::VariantPromoted(cv, variant))
            }
            Op::Reserve { user, cv } => {
                hy.jcf.reserve(*user, *cv)?;
                Ok(Event::Reserved(*cv))
            }
            Op::Publish { user, cv } => {
                hy.jcf.publish(*user, *cv)?;
                Ok(Event::Published(*cv))
            }
            Op::CreateDesignObject {
                user,
                variant,
                name,
                viewtype,
            } => Ok(Event::DesignObjectCreated(
                hy.jcf
                    .create_design_object(*user, *variant, name, *viewtype)?,
            )),
            Op::AddDesignObjectVersion {
                user,
                design_object,
                data,
            } => Ok(Event::DovAdded(hy.jcf.add_design_object_version(
                *user,
                *design_object,
                data.clone(),
            )?)),
            Op::MarkEquivalent { a, b } => {
                hy.jcf.mark_equivalent(*a, *b)?;
                Ok(Event::MarkedEquivalent(*a, *b))
            }
            Op::MergeForward {
                user,
                cv,
                base_seq: _,
                expected,
                writes,
            } => {
                // Reject inconsistent workspaces before touching any
                // state: every staged write must target a design
                // object that lives under the merged cell version.
                for (design_object, _) in writes {
                    let variant = hy
                        .jcf
                        .variant_of_design_object(*design_object)
                        .map_err(|e| HybridError::Merge(format!("staged write: {e}")))?;
                    let owner = hy
                        .jcf
                        .cell_version_of(variant)
                        .map_err(|e| HybridError::Merge(format!("staged write: {e}")))?;
                    if owner != *cv {
                        return Err(HybridError::Merge(format!(
                            "staged write to {design_object} which belongs to {owner}, not {cv}"
                        )));
                    }
                }
                // Conflict detection is a pure read: a reservation held
                // by someone else first, then every design object that
                // advanced past its branch-point version count, in the
                // workspace's staging order.
                let mut conflicts = Vec::new();
                if let Some(holder) = hy.jcf.reserver(*cv) {
                    if holder != *user {
                        conflicts.push(MergeConflict::ReservedByOther { holder });
                    }
                }
                for (design_object, expected_count) in expected {
                    let found = hy.jcf.versions_of_design_object(*design_object).len() as u32;
                    if found != *expected_count {
                        conflicts.push(MergeConflict::DesignObjectAdvanced {
                            design_object: *design_object,
                            expected: *expected_count,
                            found,
                        });
                    }
                }
                if !conflicts.is_empty() {
                    return Ok(Event::MergeConflict { cv: *cv, conflicts });
                }
                // Clean merge: one atomic reserve → write → publish.
                let already_holder = hy.jcf.reserver(*cv) == Some(*user);
                if !already_holder {
                    hy.jcf.reserve(*user, *cv)?;
                }
                let mut dovs = Vec::with_capacity(writes.len());
                for (design_object, data) in writes {
                    dovs.push(hy.jcf.add_design_object_version(
                        *user,
                        *design_object,
                        data.clone(),
                    )?);
                }
                hy.jcf.publish(*user, *cv)?;
                Ok(Event::MergeApplied { cv: *cv, dovs })
            }
            Op::RunActivity {
                user,
                variant,
                activity,
                override_pending,
                outputs,
                session_error,
            } => {
                let outs: Vec<ToolOutput> = outputs
                    .iter()
                    .map(|(viewtype, data)| ToolOutput {
                        viewtype: viewtype.clone(),
                        data: data.clone(),
                    })
                    .collect();
                let error = session_error.clone();
                let dovs = hy.run_activity(
                    *user,
                    *variant,
                    *activity,
                    *override_pending,
                    move |_session| match error {
                        Some(text) => Err(HybridError::Journal(text)),
                        None => Ok(outs),
                    },
                )?;
                Ok(Event::ActivityRun { dovs })
            }
            Op::Browse { user, dov } => Ok(Event::Browsed {
                data: hy.browse(*user, *dov)?,
            }),
            Op::ReadDesignData { user, dov } => Ok(Event::DesignDataRead {
                data: hy.jcf.read_design_data(*user, *dov)?,
            }),
            Op::CreateConfiguration { user, cv, name } => Ok(Event::ConfigurationCreated(
                hy.jcf.create_configuration(*user, *cv, name)?,
            )),
            Op::CreateConfigVersion {
                user,
                config,
                contents,
            } => Ok(Event::ConfigVersionCreated(
                hy.jcf.create_config_version(*user, *config, contents)?,
            )),
            Op::ExportConfig {
                user,
                config_version,
                dest,
            } => {
                let path = VfsPath::parse(dest)?;
                Ok(Event::ConfigExported(hy.export_config(
                    *user,
                    *config_version,
                    &path,
                )?))
            }
            Op::RunLvs { user, variant } => Ok(Event::LvsRun(hy.run_lvs(*user, *variant)?)),
            Op::SetFutureFeatures { features } => {
                hy.set_future_features(*features);
                Ok(Event::FutureFeaturesSet)
            }
            Op::SetStagingMode { mode } => {
                hy.set_staging_mode(*mode);
                Ok(Event::StagingModeSet)
            }
            Op::ImportLibrary {
                actor,
                library,
                flow,
                team,
            } => {
                let (project, report) = hy.import_library(*actor, library, *flow, *team)?;
                Ok(Event::LibraryImported(project, report))
            }
            Op::FmcadCreateLibrary { name } => {
                hy.fmcad.create_library(name)?;
                Ok(Event::FmcadLibraryCreated)
            }
            Op::FmcadCreateCell { library, cell } => {
                hy.fmcad.create_cell(library, cell)?;
                Ok(Event::FmcadCellCreated)
            }
            Op::FmcadCreateCellview {
                library,
                cell,
                view,
                viewtype,
            } => {
                hy.fmcad.create_cellview(library, cell, view, viewtype)?;
                Ok(Event::FmcadCellviewCreated)
            }
            Op::FmcadCheckout {
                user,
                library,
                cell,
                view,
            } => Ok(Event::FmcadCheckedOut {
                data: hy.fmcad.checkout(user, library, cell, view)?,
            }),
            Op::FmcadCheckin {
                user,
                library,
                cell,
                view,
                data,
            } => Ok(Event::FmcadCheckedIn {
                version: hy.fmcad.checkin(user, library, cell, view, data.clone())?,
            }),
            Op::FmcadPurgeVersion {
                user,
                library,
                cell,
                view,
                version,
            } => {
                hy.fmcad
                    .purge_version(user, library, cell, view, *version)?;
                Ok(Event::FmcadVersionPurged)
            }
            Op::FmcadDirectWrite {
                library,
                cell,
                view,
                version,
                data,
            } => {
                hy.fmcad
                    .direct_file_write(library, cell, view, *version, data.clone())?;
                Ok(Event::FmcadFileWritten)
            }
        }
    }
}

/// Typed wrappers: each builds the [`Op`], applies it, and
/// destructures the matching [`Event`]. Call sites keep the shape of
/// the old direct API while every mutation still flows through the
/// journal.
impl Engine {
    fn unreachable_event(event: Event) -> ! {
        unreachable!("apply returned a mismatched event {:?}", event.kind_name())
    }

    /// Registers a user on the JCF desktop.
    ///
    /// # Errors
    ///
    /// Returns JCF name-clash errors.
    pub fn add_user(&mut self, name: &str, manager: bool) -> HybridResult<UserId> {
        match self.apply(Op::AddUser {
            name: name.to_owned(),
            manager,
        })? {
            Event::UserAdded(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Creates a team (manager-only).
    ///
    /// # Errors
    ///
    /// Returns JCF permission and name-clash errors.
    pub fn add_team(&mut self, actor: UserId, name: &str) -> HybridResult<TeamId> {
        match self.apply(Op::AddTeam {
            actor,
            name: name.to_owned(),
        })? {
            Event::TeamAdded(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Adds a user to a team (manager-only).
    ///
    /// # Errors
    ///
    /// Returns JCF permission errors.
    pub fn add_team_member(
        &mut self,
        actor: UserId,
        team: TeamId,
        user: UserId,
    ) -> HybridResult<()> {
        self.apply(Op::AddTeamMember { actor, team, user })?;
        Ok(())
    }

    /// Registers a viewtype on both sides of the coupling.
    ///
    /// # Errors
    ///
    /// Returns JCF name-clash errors.
    pub fn register_viewtype(
        &mut self,
        name: &str,
        application: ToolKind,
    ) -> HybridResult<ViewTypeId> {
        match self.apply(Op::RegisterViewtype {
            name: name.to_owned(),
            application,
        })? {
            Event::ViewtypeRegistered(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Registers an encapsulated tool resource.
    ///
    /// # Errors
    ///
    /// Returns JCF name-clash errors.
    pub fn register_tool(&mut self, name: &str, kind: ToolKind) -> HybridResult<ToolId> {
        match self.apply(Op::RegisterTool {
            name: name.to_owned(),
            kind,
        })? {
            Event::ToolRegistered(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Defines and freezes the paper's three-tool standard flow.
    ///
    /// # Errors
    ///
    /// Returns JCF errors (e.g. a taken flow name).
    pub fn standard_flow(&mut self, name: &str) -> HybridResult<StandardFlow> {
        match self.apply(Op::DefineStandardFlow {
            name: name.to_owned(),
        })? {
            Event::StandardFlowDefined(flow) => Ok(flow),
            other => Self::unreachable_event(other),
        }
    }

    /// Defines and freezes the quality-gated variant of the standard
    /// flow (§3.5).
    ///
    /// # Errors
    ///
    /// Returns JCF errors (e.g. a taken flow name).
    pub fn quality_gated_flow(&mut self, name: &str) -> HybridResult<StandardFlow> {
        match self.apply(Op::DefineQualityGatedFlow {
            name: name.to_owned(),
        })? {
            Event::QualityGatedFlowDefined(flow) => Ok(flow),
            other => Self::unreachable_event(other),
        }
    }

    /// Defines an empty custom flow (manager-only).
    ///
    /// # Errors
    ///
    /// Returns JCF permission and name-clash errors.
    pub fn define_flow(&mut self, actor: UserId, name: &str) -> HybridResult<FlowId> {
        match self.apply(Op::DefineFlow {
            actor,
            name: name.to_owned(),
        })? {
            Event::FlowDefined(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Adds an activity to an unfrozen flow (manager-only).
    ///
    /// # Errors
    ///
    /// Returns JCF permission and frozen-flow errors.
    #[allow(clippy::too_many_arguments)]
    pub fn add_activity(
        &mut self,
        actor: UserId,
        flow: FlowId,
        name: &str,
        tool: ToolId,
        needs: &[ViewTypeId],
        creates: &[ViewTypeId],
        predecessors: &[ActivityId],
    ) -> HybridResult<ActivityId> {
        match self.apply(Op::AddActivity {
            actor,
            flow,
            name: name.to_owned(),
            tool,
            needs: needs.to_vec(),
            creates: creates.to_vec(),
            predecessors: predecessors.to_vec(),
        })? {
            Event::ActivityAdded(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Freezes a flow so cell versions can use it (manager-only).
    ///
    /// # Errors
    ///
    /// Returns JCF permission errors.
    pub fn freeze_flow(&mut self, actor: UserId, flow: FlowId) -> HybridResult<()> {
        self.apply(Op::FreezeFlow { actor, flow })?;
        Ok(())
    }

    /// Creates a project and its coupled FMCAD library (Table 1).
    ///
    /// # Errors
    ///
    /// Returns name-clash errors from either framework.
    pub fn create_project(&mut self, name: &str) -> HybridResult<ProjectId> {
        match self.apply(Op::CreateProject {
            name: name.to_owned(),
        })? {
            Event::ProjectCreated(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Creates a JCF cell.
    ///
    /// # Errors
    ///
    /// Returns JCF name-clash errors.
    pub fn create_cell(&mut self, project: ProjectId, name: &str) -> HybridResult<CellId> {
        match self.apply(Op::CreateCell {
            project,
            name: name.to_owned(),
        })? {
            Event::CellCreated(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Creates a cell version (with base variant) and the mapped FMCAD
    /// cell.
    ///
    /// # Errors
    ///
    /// Returns errors from either framework.
    pub fn create_cell_version(
        &mut self,
        cell: CellId,
        flow: FlowId,
        team: TeamId,
    ) -> HybridResult<(CellVersionId, VariantId)> {
        match self.apply(Op::CreateCellVersion { cell, flow, team })? {
            Event::CellVersionCreated(cv, variant) => Ok((cv, variant)),
            other => Self::unreachable_event(other),
        }
    }

    /// Derives a named variant inside a reserved cell version.
    ///
    /// # Errors
    ///
    /// Returns reservation and name-clash errors.
    pub fn derive_variant(
        &mut self,
        user: UserId,
        cv: CellVersionId,
        name: &str,
        base: Option<VariantId>,
    ) -> HybridResult<VariantId> {
        match self.apply(Op::DeriveVariant {
            user,
            cv,
            name: name.to_owned(),
            base,
        })? {
            Event::VariantDerived(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Declares a hierarchy child of a cell version.
    ///
    /// # Errors
    ///
    /// Returns reservation and cross-project errors.
    pub fn declare_comp_of(
        &mut self,
        user: UserId,
        cv: CellVersionId,
        child: CellId,
    ) -> HybridResult<()> {
        self.apply(Op::DeclareCompOf { user, cv, child })?;
        Ok(())
    }

    /// Shares a cell across projects (future-work feature).
    ///
    /// # Errors
    ///
    /// Returns an error when the feature is off, or JCF permission
    /// errors.
    pub fn share_cell(&mut self, actor: UserId, cell: CellId) -> HybridResult<()> {
        self.apply(Op::ShareCell { actor, cell })?;
        Ok(())
    }

    /// Promotes a winning variant into a new cell version.
    ///
    /// # Errors
    ///
    /// Returns reservation errors.
    pub fn promote_variant(
        &mut self,
        user: UserId,
        winner: VariantId,
    ) -> HybridResult<(CellVersionId, VariantId)> {
        match self.apply(Op::PromoteVariant { user, winner })? {
            Event::VariantPromoted(cv, variant) => Ok((cv, variant)),
            other => Self::unreachable_event(other),
        }
    }

    /// Reserves a cell version into a designer's workspace.
    ///
    /// # Errors
    ///
    /// Returns JCF reservation errors.
    pub fn reserve(&mut self, user: UserId, cv: CellVersionId) -> HybridResult<()> {
        self.apply(Op::Reserve { user, cv })?;
        Ok(())
    }

    /// Publishes a reserved cell version back to the team.
    ///
    /// # Errors
    ///
    /// Returns JCF reservation errors.
    pub fn publish(&mut self, user: UserId, cv: CellVersionId) -> HybridResult<()> {
        self.apply(Op::Publish { user, cv })?;
        Ok(())
    }

    /// Creates a design object under a variant via the desktop.
    ///
    /// # Errors
    ///
    /// Returns reservation and name-clash errors.
    pub fn create_design_object(
        &mut self,
        user: UserId,
        variant: VariantId,
        name: &str,
        viewtype: ViewTypeId,
    ) -> HybridResult<DesignObjectId> {
        match self.apply(Op::CreateDesignObject {
            user,
            variant,
            name: name.to_owned(),
            viewtype,
        })? {
            Event::DesignObjectCreated(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Adds a design object version (raw desktop write, no tool run).
    ///
    /// # Errors
    ///
    /// Returns reservation errors.
    pub fn add_design_object_version(
        &mut self,
        user: UserId,
        design_object: DesignObjectId,
        data: impl Into<Blob>,
    ) -> HybridResult<DovId> {
        match self.apply(Op::AddDesignObjectVersion {
            user,
            design_object,
            data: data.into(),
        })? {
            Event::DovAdded(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Records that two design object versions are equivalent.
    ///
    /// # Errors
    ///
    /// Returns JCF database errors.
    pub fn mark_equivalent(&mut self, a: DovId, b: DovId) -> HybridResult<()> {
        self.apply(Op::MarkEquivalent { a, b })?;
        Ok(())
    }

    /// Runs one encapsulated tool session as a JCF activity (§2.4).
    ///
    /// The live tool session runs exactly once; its outputs (or its
    /// rendered error) are captured into the journaled
    /// [`Op::RunActivity`], so a replay re-feeds the recorded outputs
    /// through the full pipeline without re-running the tool.
    ///
    /// # Errors
    ///
    /// Returns flow violations, reservation errors, consistency
    /// rejections and transfer errors.
    pub fn run_activity(
        &mut self,
        user: UserId,
        variant: VariantId,
        activity: ActivityId,
        override_pending: bool,
        session: impl FnOnce(&ToolSession) -> HybridResult<Vec<ToolOutput>>,
    ) -> HybridResult<Vec<DovId>> {
        let mut captured: Option<Result<Vec<ToolOutput>, String>> = None;
        let result =
            self.hy
                .run_activity(user, variant, activity, override_pending, |tool_session| {
                    let produced = session(tool_session);
                    captured = Some(match &produced {
                        Ok(outputs) => Ok(outputs.clone()),
                        Err(error) => Err(error.to_string()),
                    });
                    produced
                });
        let (outputs, session_error) = match captured {
            Some(Ok(outputs)) => (
                outputs.into_iter().map(|o| (o.viewtype, o.data)).collect(),
                None,
            ),
            Some(Err(error)) => (Vec::new(), Some(error)),
            // The pipeline failed before the tool session ran; replay
            // fails at the same spot before consulting the outputs.
            None => (Vec::new(), None),
        };
        let op = Op::RunActivity {
            user,
            variant,
            activity,
            override_pending,
            outputs,
            session_error,
        };
        let event = result.clone().map(|dovs| Event::ActivityRun { dovs });
        self.record(op, event.as_ref());
        result
    }

    /// Browses (read-only opens) a design object version; pays the
    /// §3.6 copy path.
    ///
    /// # Errors
    ///
    /// Returns visibility and transfer errors.
    pub fn browse(&mut self, user: UserId, dov: DovId) -> HybridResult<Blob> {
        match self.apply(Op::Browse { user, dov })? {
            Event::Browsed { data } => Ok(data),
            other => Self::unreachable_event(other),
        }
    }

    /// Reads design data via the desktop (bumps the desktop counter).
    ///
    /// # Errors
    ///
    /// Returns visibility errors.
    pub fn read_design_data(&mut self, user: UserId, dov: DovId) -> HybridResult<Blob> {
        match self.apply(Op::ReadDesignData { user, dov })? {
            Event::DesignDataRead { data } => Ok(data),
            other => Self::unreachable_event(other),
        }
    }

    /// Creates a configuration under a cell version.
    ///
    /// # Errors
    ///
    /// Returns reservation and name-clash errors.
    pub fn create_configuration(
        &mut self,
        user: UserId,
        cv: CellVersionId,
        name: &str,
    ) -> HybridResult<ConfigId> {
        match self.apply(Op::CreateConfiguration {
            user,
            cv,
            name: name.to_owned(),
        })? {
            Event::ConfigurationCreated(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Freezes a selection of design object versions as a
    /// configuration version.
    ///
    /// # Errors
    ///
    /// Returns conflict and reservation errors.
    pub fn create_config_version(
        &mut self,
        user: UserId,
        config: ConfigId,
        selection: &[DovId],
    ) -> HybridResult<ConfigVersionId> {
        match self.apply(Op::CreateConfigVersion {
            user,
            config,
            contents: selection.to_vec(),
        })? {
            Event::ConfigVersionCreated(id) => Ok(id),
            other => Self::unreachable_event(other),
        }
    }

    /// Exports a configuration version into a directory of the shared
    /// file system (the tapeout package).
    ///
    /// # Errors
    ///
    /// Returns visibility and file system errors.
    pub fn export_config(
        &mut self,
        user: UserId,
        config_version: ConfigVersionId,
        dest: &VfsPath,
    ) -> HybridResult<ExportManifest> {
        match self.apply(Op::ExportConfig {
            user,
            config_version,
            dest: dest.to_string(),
        })? {
            Event::ConfigExported(manifest) => Ok(manifest),
            other => Self::unreachable_event(other),
        }
    }

    /// Runs layout-versus-schematic on a variant's latest views.
    ///
    /// # Errors
    ///
    /// Returns missing-view and parse errors.
    pub fn run_lvs(
        &mut self,
        user: UserId,
        variant: VariantId,
    ) -> HybridResult<cad_tools::LvsReport> {
        match self.apply(Op::RunLvs { user, variant })? {
            Event::LvsRun(report) => Ok(report),
            other => Self::unreachable_event(other),
        }
    }

    /// Imports an uncoupled FMCAD library into the master (Table 1).
    ///
    /// # Errors
    ///
    /// Returns errors from either framework.
    pub fn import_library(
        &mut self,
        actor: UserId,
        library: &str,
        flow: FlowId,
        team: TeamId,
    ) -> HybridResult<(ProjectId, ImportReport)> {
        match self.apply(Op::ImportLibrary {
            actor,
            library: library.to_owned(),
            flow,
            team,
        })? {
            Event::LibraryImported(project, report) => Ok((project, report)),
            other => Self::unreachable_event(other),
        }
    }

    /// Verifies the consistency of a project's mirrored data. A
    /// diagnostic, not an [`Op`]: it journals nothing, so don't rely
    /// on it between a checkpoint and a fingerprint comparison (it
    /// charges the shared file system meter, and under the procedural
    /// interface it may batch-declare discovered hierarchy edges).
    ///
    /// # Errors
    ///
    /// Returns mapping and file system errors.
    pub fn verify_project(&mut self, project: ProjectId) -> HybridResult<Vec<ConsistencyFinding>> {
        self.hy.verify_project(project)
    }

    /// Creates a standalone FMCAD library (out-of-band legacy data).
    ///
    /// # Errors
    ///
    /// Returns FMCAD name-clash errors.
    pub fn fmcad_create_library(&mut self, name: &str) -> HybridResult<()> {
        self.apply(Op::FmcadCreateLibrary {
            name: name.to_owned(),
        })?;
        Ok(())
    }

    /// Creates a cell in an FMCAD library directly.
    ///
    /// # Errors
    ///
    /// Returns FMCAD errors.
    pub fn fmcad_create_cell(&mut self, library: &str, cell: &str) -> HybridResult<()> {
        self.apply(Op::FmcadCreateCell {
            library: library.to_owned(),
            cell: cell.to_owned(),
        })?;
        Ok(())
    }

    /// Creates a cellview in an FMCAD library directly.
    ///
    /// # Errors
    ///
    /// Returns FMCAD errors.
    pub fn fmcad_create_cellview(
        &mut self,
        library: &str,
        cell: &str,
        view: &str,
        viewtype: &str,
    ) -> HybridResult<()> {
        self.apply(Op::FmcadCreateCellview {
            library: library.to_owned(),
            cell: cell.to_owned(),
            view: view.to_owned(),
            viewtype: viewtype.to_owned(),
        })?;
        Ok(())
    }

    /// Checks a cellview out of an FMCAD library directly.
    ///
    /// # Errors
    ///
    /// Returns FMCAD checkout errors.
    pub fn fmcad_checkout(
        &mut self,
        user: &str,
        library: &str,
        cell: &str,
        view: &str,
    ) -> HybridResult<Blob> {
        match self.apply(Op::FmcadCheckout {
            user: user.to_owned(),
            library: library.to_owned(),
            cell: cell.to_owned(),
            view: view.to_owned(),
        })? {
            Event::FmcadCheckedOut { data } => Ok(data),
            other => Self::unreachable_event(other),
        }
    }

    /// Checks data into an FMCAD cellview directly.
    ///
    /// # Errors
    ///
    /// Returns FMCAD checkout errors.
    pub fn fmcad_checkin(
        &mut self,
        user: &str,
        library: &str,
        cell: &str,
        view: &str,
        data: impl Into<Blob>,
    ) -> HybridResult<u32> {
        match self.apply(Op::FmcadCheckin {
            user: user.to_owned(),
            library: library.to_owned(),
            cell: cell.to_owned(),
            view: view.to_owned(),
            data: data.into(),
        })? {
            Event::FmcadCheckedIn { version } => Ok(version),
            other => Self::unreachable_event(other),
        }
    }

    /// Purges one cellview version from an FMCAD library.
    ///
    /// # Errors
    ///
    /// Returns FMCAD conflict errors.
    pub fn fmcad_purge_version(
        &mut self,
        user: &str,
        library: &str,
        cell: &str,
        view: &str,
        version: u32,
    ) -> HybridResult<()> {
        self.apply(Op::FmcadPurgeVersion {
            user: user.to_owned(),
            library: library.to_owned(),
            cell: cell.to_owned(),
            view: view.to_owned(),
            version,
        })?;
        Ok(())
    }

    /// Overwrites a versioned library file behind the framework's back
    /// (the experiments' out-of-band corruption probe).
    ///
    /// # Errors
    ///
    /// Returns file system errors.
    pub fn fmcad_direct_write(
        &mut self,
        library: &str,
        cell: &str,
        view: &str,
        version: u32,
        data: impl Into<Blob>,
    ) -> HybridResult<()> {
        self.apply(Op::FmcadDirectWrite {
            library: library.to_owned(),
            cell: cell.to_owned(),
            view: view.to_owned(),
            version,
            data: data.into(),
        })?;
        Ok(())
    }
}

// --- persistence: checkpoint ⊕ replay ---------------------------------------

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

fn unhex_str(s: &str) -> HybridResult<String> {
    String::from_utf8(unhex(s).ok_or_else(|| HybridError::Journal("bad hex".to_owned()))?)
        .map_err(|_| HybridError::Journal("hex is not utf-8".to_owned()))
}

fn bad(line: &str) -> HybridError {
    HybridError::Journal(format!("bad meta line {line:?}"))
}

fn parse_num<T: std::str::FromStr>(raw: &str, line: &str) -> HybridResult<T> {
    raw.parse().map_err(|_| bad(line))
}

fn kind_str(kind: ToolKind) -> &'static str {
    match kind {
        ToolKind::SchematicEntry => "schematic-entry",
        ToolKind::LayoutEditor => "layout-editor",
        ToolKind::Simulator => "simulator",
        ToolKind::Framework => "framework",
    }
}

fn parse_kind(raw: &str, line: &str) -> HybridResult<ToolKind> {
    match raw {
        "schematic-entry" => Ok(ToolKind::SchematicEntry),
        "layout-editor" => Ok(ToolKind::LayoutEditor),
        "simulator" => Ok(ToolKind::Simulator),
        "framework" => Ok(ToolKind::Framework),
        _ => Err(bad(line)),
    }
}

/// Serialises a whole virtual file system from an already-completed
/// [`fs_scan`]: every directory and file (bytes hex-armoured), then the
/// clock and the cost meter — captured *after* the reads, so a restored
/// instance resumes with exactly the charges the checkpoint walk left
/// behind. Reads nothing itself, so the scan's meter charges are the
/// walk's only cost no matter how many consumers share it.
fn fs_image_from_scan(fs: &Vfs, scan: &[ScanEntry]) -> String {
    let mut image = format!("{FS_MAGIC}\n");
    for entry in scan {
        match entry {
            ScanEntry::Dir(path) => {
                image.push_str(&format!("dir {}\n", hex(path.as_bytes())));
            }
            ScanEntry::File(path, blob) => {
                image.push_str(&format!(
                    "file {} {}\n",
                    hex(path.as_bytes()),
                    hex(blob.as_slice())
                ));
            }
        }
    }
    let meter = fs.meter();
    image.push_str(&format!("clock {}\n", fs.now()));
    image.push_str(&format!(
        "meter {} {} {} {} {}\n",
        meter.ticks, meter.bytes_read, meter.bytes_written, meter.content_ops, meter.metadata_ops
    ));
    image
}

/// Rebuilds a virtual file system from [`fs_image_from_scan`] output.
/// The
/// recorded meter and clock are returned separately so the caller can
/// install them *after* re-opening FMCAD over the tree (which charges
/// its own parse reads).
fn restore_fs(image: &str) -> HybridResult<(Vfs, CostMeter, u64)> {
    let mut lines = image.lines();
    if lines.next() != Some(FS_MAGIC) {
        return Err(HybridError::Journal(
            "bad file system image header".to_owned(),
        ));
    }
    let mut fs = Vfs::new();
    let mut meter = CostMeter::new();
    let mut clock = 0;
    for line in lines {
        let (tag, rest) = line.split_once(' ').ok_or_else(|| bad(line))?;
        match tag {
            "dir" => {
                let path = VfsPath::parse(&unhex_str(rest)?)?;
                fs.mkdir_all(&path)?;
            }
            "file" => {
                let (raw_path, raw_data) = rest.split_once(' ').ok_or_else(|| bad(line))?;
                let path = VfsPath::parse(&unhex_str(raw_path)?)?;
                let data = unhex(raw_data).ok_or_else(|| bad(line))?;
                if let Some(parent) = path.parent() {
                    fs.mkdir_all(&parent)?;
                }
                fs.write(&path, data)?;
            }
            "clock" => clock = parse_num(rest, line)?,
            "meter" => {
                let fields: Vec<&str> = rest.split(' ').collect();
                if fields.len() != 5 {
                    return Err(bad(line));
                }
                meter = CostMeter {
                    ticks: parse_num(fields[0], line)?,
                    bytes_read: parse_num(fields[1], line)?,
                    bytes_written: parse_num(fields[2], line)?,
                    content_ops: parse_num(fields[3], line)?,
                    metadata_ops: parse_num(fields[4], line)?,
                };
            }
            _ => return Err(bad(line)),
        }
    }
    Ok((fs, meter, clock))
}

/// One node of a deterministic pre-order file-system walk.
enum ScanEntry {
    Dir(String),
    File(String, Blob),
}

/// Walks the whole tree once, in the exact order (and with the exact
/// meter charges) the classic full-image walk used: `read_dir` per
/// directory, `metadata` per child, `read` per file, sorted names.
/// Every consumer of the walk (full image, delta diff, chain-head
/// summary) derives from this one pass so checkpointing never charges
/// a second walk.
fn fs_scan(fs: &Vfs) -> HybridResult<Vec<ScanEntry>> {
    fn collect(fs: &Vfs, path: &VfsPath, out: &mut Vec<ScanEntry>) -> HybridResult<()> {
        for name in fs.read_dir(path)? {
            let child = path.join(&name)?;
            match fs.metadata(&child)?.kind {
                NodeKind::Directory => {
                    out.push(ScanEntry::Dir(child.to_string()));
                    collect(fs, &child, out)?;
                }
                NodeKind::File => {
                    let data = fs.read(&child)?;
                    out.push(ScanEntry::File(child.to_string(), data));
                }
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    collect(fs, &VfsPath::root(), &mut out)?;
    Ok(out)
}

/// Reduces a scan to the summary a delta checkpoint diffs against:
/// the directory set and each file's content hash.
fn scan_summary(scan: &[ScanEntry]) -> (std::collections::BTreeSet<String>, BTreeMap<String, u64>) {
    let mut dirs = std::collections::BTreeSet::new();
    let mut files = BTreeMap::new();
    for entry in scan {
        match entry {
            ScanEntry::Dir(path) => {
                dirs.insert(path.clone());
            }
            ScanEntry::File(path, blob) => {
                files.insert(path.clone(), blob.content_hash());
            }
        }
    }
    (dirs, files)
}

/// Appends the file-system section of a delta checkpoint: the records
/// that turn the chain-head tree (`prev_dirs` / `prev_files` hashes)
/// into the scanned live tree, then the live clock and meter. The
/// caller must read the meter *after* the scan so a recovered engine
/// resumes with exactly the charges the checkpoint walk left behind.
fn fs_delta_section(
    scan: &[ScanEntry],
    prev_dirs: &std::collections::BTreeSet<String>,
    prev_files: &BTreeMap<String, u64>,
    clock: u64,
    meter: &CostMeter,
    out: &mut String,
) {
    let (cur_dirs, _) = scan_summary(scan);
    let mut cur_file_set = std::collections::BTreeSet::new();
    for entry in scan {
        if let ScanEntry::File(path, _) = entry {
            cur_file_set.insert(path.clone());
        }
    }
    for path in prev_files.keys().filter(|p| !cur_file_set.contains(*p)) {
        out.push_str(&format!("f|del {}\n", hex(path.as_bytes())));
    }
    // Deepest-first so a child directory's record never follows the
    // removal of its parent.
    for path in prev_dirs
        .difference(&cur_dirs)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        out.push_str(&format!("f|dir- {}\n", hex(path.as_bytes())));
    }
    for path in cur_dirs.difference(prev_dirs) {
        out.push_str(&format!("f|dir+ {}\n", hex(path.as_bytes())));
    }
    for entry in scan {
        if let ScanEntry::File(path, blob) = entry {
            if prev_files.get(path) != Some(&blob.content_hash()) {
                out.push_str(&format!(
                    "f|file {} {}\n",
                    hex(path.as_bytes()),
                    hex(blob.as_slice())
                ));
            }
        }
    }
    out.push_str(&format!("f|clock {clock}\n"));
    out.push_str(&format!(
        "f|meter {} {} {} {} {}\n",
        meter.ticks, meter.bytes_read, meter.bytes_written, meter.content_ops, meter.metadata_ops
    ));
}

/// Applies the `f|` records of a delta checkpoint to the chain-head
/// tree, returning the recorded clock and meter (installed into FMCAD
/// only after the re-open, like a full restore does).
fn apply_fs_delta(fs: &mut Vfs, records: &[String]) -> HybridResult<(u64, CostMeter)> {
    let mut clock = None;
    let mut meter = None;
    for line in records {
        let (tag, rest) = line.split_once(' ').ok_or_else(|| bad(line))?;
        match tag {
            "del" => {
                let path = VfsPath::parse(&unhex_str(rest)?)?;
                if fs.exists(&path) {
                    fs.remove_file(&path)?;
                }
            }
            "dir-" => {
                let path = VfsPath::parse(&unhex_str(rest)?)?;
                if fs.exists(&path) {
                    fs.remove_all(&path)?;
                }
            }
            "dir+" => {
                fs.mkdir_all(&VfsPath::parse(&unhex_str(rest)?)?)?;
            }
            "file" => {
                let (raw_path, raw_data) = rest.split_once(' ').ok_or_else(|| bad(line))?;
                let path = VfsPath::parse(&unhex_str(raw_path)?)?;
                let data = unhex(raw_data).ok_or_else(|| bad(line))?;
                if let Some(parent) = path.parent() {
                    fs.mkdir_all(&parent)?;
                }
                fs.write(&path, data)?;
            }
            "clock" => clock = Some(parse_num(rest, line)?),
            "meter" => {
                let fields: Vec<&str> = rest.split(' ').collect();
                if fields.len() != 5 {
                    return Err(bad(line));
                }
                meter = Some(CostMeter {
                    ticks: parse_num(fields[0], line)?,
                    bytes_read: parse_num(fields[1], line)?,
                    bytes_written: parse_num(fields[2], line)?,
                    content_ops: parse_num(fields[3], line)?,
                    metadata_ops: parse_num(fields[4], line)?,
                });
            }
            _ => return Err(bad(line)),
        }
    }
    match (clock, meter) {
        (Some(c), Some(m)) => Ok((c, m)),
        _ => Err(HybridError::DeltaChain(
            "delta checkpoint is missing its clock/meter record".to_owned(),
        )),
    }
}

/// One delta checkpoint in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DeltaRec {
    id: u64,
    /// Engine sequence number the delta's state corresponds to.
    seq: u64,
    /// Sequence number of the chain state the delta extends.
    parent: u64,
    /// FNV-1a 64 of the `delta-<id>.ck` file bytes.
    fp: u64,
}

/// One sealed (immutable) journal segment in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SegRec {
    id: u64,
    /// Sequence number of the segment's first entry.
    start: u64,
    /// Sequence number of the segment's last entry.
    end: u64,
    /// FNV-1a 64 of the `seg-<id>.log` file bytes.
    fp: u64,
    /// Sealed segments whose whole range is covered by a later delta
    /// checkpoint are *retired*: recovery to the chain head never
    /// reads them, [`Engine::compact`] deletes them (giving up
    /// point-in-time targets inside their windows).
    retired: bool,
}

/// Parsed form of `ck.manifest` — the authoritative description of the
/// checkpoint chain: one base image, the delta checkpoints stacked on
/// it, the sealed journal segments, and the identity of the open
/// (still-growing) segment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    base_seq: u64,
    /// Chained FNV-1a 64 over the three base image files
    /// (`oms.img`, then `fs.img`, then `hybrid.meta`).
    base_fp: u64,
    deltas: Vec<DeltaRec>,
    segs: Vec<SegRec>,
    /// `(id, start)` of the open segment slot. The file may not exist
    /// yet (no sync since the last checkpoint); a file whose header
    /// disagrees with this slot is a stale leftover and is ignored.
    open: (u64, u64),
}

impl Manifest {
    /// Sequence number of the chain head — the state the next delta
    /// checkpoint extends.
    fn head_seq(&self) -> u64 {
        self.deltas.last().map_or(self.base_seq, |d| d.seq)
    }

    fn render(&self) -> String {
        let mut out = format!("{CK_MAGIC}\n");
        out.push_str(&format!(
            "base|seq={}|fp={:016x}\n",
            self.base_seq, self.base_fp
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "delta|id={}|seq={}|parent={}|fp={:016x}\n",
                d.id, d.seq, d.parent, d.fp
            ));
        }
        for s in &self.segs {
            out.push_str(&format!(
                "seg|id={}|start={}|end={}|fp={:016x}|state={}\n",
                s.id,
                s.start,
                s.end,
                s.fp,
                if s.retired { "retired" } else { "live" }
            ));
        }
        out.push_str(&format!("open|id={}|start={}\n", self.open.0, self.open.1));
        out
    }

    fn parse(text: &str) -> HybridResult<Manifest> {
        fn field(raw: &str, key: &str, line: &str) -> HybridResult<String> {
            raw.strip_prefix(key)
                .and_then(|r| r.strip_prefix('='))
                .map(str::to_owned)
                .ok_or_else(|| {
                    HybridError::DeltaChain(format!("manifest: expected `{key}=` in {line:?}"))
                })
        }
        fn num(raw: &str, key: &str, line: &str) -> HybridResult<u64> {
            let val = field(raw, key, line)?;
            val.parse()
                .map_err(|_| HybridError::DeltaChain(format!("manifest: bad number in {line:?}")))
        }
        fn hexnum(raw: &str, key: &str, line: &str) -> HybridResult<u64> {
            let val = field(raw, key, line)?;
            u64::from_str_radix(&val, 16).map_err(|_| {
                HybridError::DeltaChain(format!("manifest: bad fingerprint in {line:?}"))
            })
        }

        let mut lines = text.lines();
        if lines.next() != Some(CK_MAGIC) {
            return Err(HybridError::DeltaChain("manifest: bad header".to_owned()));
        }
        let mut base = None;
        let mut deltas = Vec::new();
        let mut segs = Vec::new();
        let mut open = None;
        for line in lines {
            let parts: Vec<&str> = line.split('|').collect();
            match parts.as_slice() {
                ["base", seq, fp] => {
                    base = Some((num(seq, "seq", line)?, hexnum(fp, "fp", line)?));
                }
                ["delta", id, seq, parent, fp] => deltas.push(DeltaRec {
                    id: num(id, "id", line)?,
                    seq: num(seq, "seq", line)?,
                    parent: num(parent, "parent", line)?,
                    fp: hexnum(fp, "fp", line)?,
                }),
                ["seg", id, start, end, fp, state] => segs.push(SegRec {
                    id: num(id, "id", line)?,
                    start: num(start, "start", line)?,
                    end: num(end, "end", line)?,
                    fp: hexnum(fp, "fp", line)?,
                    retired: match field(state, "state", line)?.as_str() {
                        "retired" => true,
                        "live" => false,
                        other => {
                            return Err(HybridError::DeltaChain(format!(
                                "manifest: unknown segment state {other:?}"
                            )))
                        }
                    },
                }),
                ["open", id, start] => {
                    open = Some((num(id, "id", line)?, num(start, "start", line)?));
                }
                _ => {
                    return Err(HybridError::DeltaChain(format!(
                        "manifest: unrecognised line {line:?}"
                    )))
                }
            }
        }
        let (base_seq, base_fp) = base
            .ok_or_else(|| HybridError::DeltaChain("manifest: missing base record".to_owned()))?;
        let open = open.ok_or_else(|| {
            HybridError::DeltaChain("manifest: missing open-segment record".to_owned())
        })?;
        Ok(Manifest {
            base_seq,
            base_fp,
            deltas,
            segs,
            open,
        })
    }
}

/// Parsed journal segment file: the self-describing header entry plus
/// the op lines, and the torn tail if the final write was interrupted.
struct Segment {
    id: u64,
    start: u64,
    entries: Vec<String>,
    torn: Option<oms::persist::TornTail>,
}

/// First entry of every segment file: `@seg|id=<n>|start=<s>`. The
/// leading `@` cannot begin an op line, and the self-description lets
/// recovery detect stale segment files left behind by an abandoned
/// fork or rebase.
fn seg_header(id: u64, start: u64) -> String {
    format!("@seg|id={id}|start={start}")
}

fn parse_segment(fs: &Vfs, path: &VfsPath) -> HybridResult<Segment> {
    let (mut entries, torn) = oms::persist::load_journal_lenient(fs, path)
        .map_err(|e| HybridError::DeltaChain(format!("segment {path}: {e}")))?;
    if entries.is_empty() {
        return Err(HybridError::DeltaChain(format!(
            "segment {path}: missing header entry"
        )));
    }
    let header = entries.remove(0);
    let parts: Vec<&str> = header.split('|').collect();
    let (id, start) = match parts.as_slice() {
        ["@seg", id, start] => {
            let id = id
                .strip_prefix("id=")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    HybridError::DeltaChain(format!("segment {path}: bad header {header:?}"))
                })?;
            let start = start
                .strip_prefix("start=")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    HybridError::DeltaChain(format!("segment {path}: bad header {header:?}"))
                })?;
            (id, start)
        }
        _ => {
            return Err(HybridError::DeltaChain(format!(
                "segment {path}: bad header {header:?}"
            )))
        }
    };
    Ok(Segment {
        id,
        start,
        entries,
        torn,
    })
}

/// The engine's in-memory mirror of its persisted chain. `prev_*`
/// capture the state at the chain head — the baseline the next delta
/// checkpoint diffs against, kept as O(1) persistent snapshots and a
/// hash summary rather than a second copy of the data.
struct DurableState {
    /// Checkpoint directory the chain lives in; checkpointing to a
    /// different directory starts a fresh chain with a full base.
    dir: VfsPath,
    /// OMS database snapshot at the chain head.
    prev_db: oms::Database,
    /// Directory set of the shared file system at the chain head.
    prev_dirs: std::collections::BTreeSet<String>,
    /// File content hashes of the shared file system at the chain head.
    prev_files: BTreeMap<String, u64>,
    /// Mirror of the on-disk `ck.manifest`.
    manifest: Manifest,
    /// Highest sequence number persisted into a *sealed* segment;
    /// journal entries past this point live only in the open segment
    /// (or nowhere, if not yet synced).
    closed_upto: u64,
    /// Next delta checkpoint id (monotonic, never reused).
    next_delta: u64,
}

/// A parsed, reusable base checkpoint. Recovering many times from one
/// slowly-changing chain (the paper's restart scenario) parses the
/// base images once and replays only deltas and segments per restart —
/// the O(Δ) warm path [`Engine::recover_with_base`] exposes.
pub struct BaseImage {
    db: oms::Database,
    fs: Vfs,
    meter: CostMeter,
    clock: u64,
    meta_text: String,
    seq: u64,
    fp: u64,
}

impl BaseImage {
    /// Engine sequence number the base image captured.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Everything `hybrid.meta` records besides the two framework images.
struct MetaState {
    admin: UserId,
    desktop_ops: u64,
    clock: i64,
    fmcad_ui_ops: u64,
    staging_mode: StagingMode,
    features: FutureFeatures,
    seq: u64,
    mirror_cache_hits: u64,
    project_lib: BTreeMap<ProjectId, String>,
    cv_cell: BTreeMap<CellVersionId, String>,
    viewtype_names: BTreeMap<ViewTypeId, String>,
    viewtype_apps: BTreeMap<String, ToolKind>,
    tool_kinds: BTreeMap<ToolId, ToolKind>,
    dov_mirror: BTreeMap<DovId, MirrorLocation>,
    mirror_cache: BTreeMap<(String, String, String), (u64, u32)>,
    trace_capacity: usize,
    trace: Vec<JournalEntry>,
    counter_ops: BTreeMap<String, u64>,
    counter_failures: BTreeMap<String, u64>,
}

impl Engine {
    fn meta_text(&self) -> String {
        let hy = &self.hy;
        let mut text = format!("{META_MAGIC}\n");
        text.push_str(&format!("admin {}\n", hy.admin.raw()));
        text.push_str(&format!("desktop-ops {}\n", hy.jcf.desktop_ops()));
        text.push_str(&format!("clock {}\n", hy.jcf.clock()));
        text.push_str(&format!("fmcad-ui-ops {}\n", hy.fmcad_ui_ops));
        text.push_str(&format!(
            "staging {}\n",
            match hy.staging_mode {
                StagingMode::ZeroCopy => "zero",
                StagingMode::DeepCopy => "deep",
            }
        ));
        text.push_str(&format!(
            "features {} {} {}\n",
            hy.features.procedural_interface,
            hy.features.non_isomorphic_hierarchies,
            hy.features.cross_project_sharing
        ));
        text.push_str(&format!("seq {}\n", self.seq));
        text.push_str(&format!("mirror-hits {}\n", hy.mirror_cache_hits));
        for (project, lib) in &hy.project_lib {
            text.push_str(&format!(
                "project-lib {} {}\n",
                project.raw(),
                hex(lib.as_bytes())
            ));
        }
        for (cv, cell) in &hy.cv_cell {
            text.push_str(&format!("cv-cell {} {}\n", cv.raw(), hex(cell.as_bytes())));
        }
        for (id, name) in &hy.viewtype_names {
            text.push_str(&format!("viewtype {} {}\n", id.raw(), hex(name.as_bytes())));
        }
        for (name, kind) in &hy.viewtype_apps {
            text.push_str(&format!(
                "viewtype-app {} {}\n",
                hex(name.as_bytes()),
                kind_str(*kind)
            ));
        }
        for (id, kind) in &hy.tool_kinds {
            text.push_str(&format!("tool {} {}\n", id.raw(), kind_str(*kind)));
        }
        for (dov, loc) in &hy.dov_mirror {
            text.push_str(&format!(
                "dov-mirror {} {} {} {} {}\n",
                dov.raw(),
                hex(loc.library.as_bytes()),
                hex(loc.cell.as_bytes()),
                hex(loc.view.as_bytes()),
                loc.version
            ));
        }
        for ((lib, cell, view), (hash, version)) in &hy.mirror_cache {
            text.push_str(&format!(
                "mirror-cache {} {} {} {} {}\n",
                hex(lib.as_bytes()),
                hex(cell.as_bytes()),
                hex(view.as_bytes()),
                hash,
                version
            ));
        }
        text.push_str(&format!("trace-cap {}\n", self.trace.capacity()));
        for entry in self.trace.entries() {
            text.push_str(&format!(
                "trace {} {} {} {} {}\n",
                entry.seq,
                entry.ok,
                hex(entry.kind.as_bytes()),
                hex(entry.summary.as_bytes()),
                hex(entry.outcome.as_bytes())
            ));
        }
        for (kind, count) in self.counters.ops() {
            text.push_str(&format!("counter-op {} {count}\n", hex(kind.as_bytes())));
        }
        for (kind, count) in self.counters.failures() {
            text.push_str(&format!("counter-err {} {count}\n", hex(kind.as_bytes())));
        }
        text
    }
}

fn parse_meta(text: &str) -> HybridResult<MetaState> {
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(HybridError::Journal("bad hybrid meta header".to_owned()));
    }
    let mut meta = MetaState {
        admin: UserId::from_raw(0),
        desktop_ops: 0,
        clock: 0,
        fmcad_ui_ops: 0,
        staging_mode: StagingMode::default(),
        features: FutureFeatures::default(),
        seq: 0,
        mirror_cache_hits: 0,
        project_lib: BTreeMap::new(),
        cv_cell: BTreeMap::new(),
        viewtype_names: BTreeMap::new(),
        viewtype_apps: BTreeMap::new(),
        tool_kinds: BTreeMap::new(),
        dov_mirror: BTreeMap::new(),
        mirror_cache: BTreeMap::new(),
        trace_capacity: crate::events::TRACE_CAPACITY,
        trace: Vec::new(),
        counter_ops: BTreeMap::new(),
        counter_failures: BTreeMap::new(),
    };
    for line in lines {
        let (tag, rest) = line.split_once(' ').ok_or_else(|| bad(line))?;
        let fields: Vec<&str> = rest.split(' ').collect();
        match (tag, fields.as_slice()) {
            ("admin", [raw]) => meta.admin = UserId::from_raw(parse_num(raw, line)?),
            ("desktop-ops", [raw]) => meta.desktop_ops = parse_num(raw, line)?,
            ("clock", [raw]) => meta.clock = parse_num(raw, line)?,
            ("fmcad-ui-ops", [raw]) => meta.fmcad_ui_ops = parse_num(raw, line)?,
            ("staging", ["zero"]) => meta.staging_mode = StagingMode::ZeroCopy,
            ("staging", ["deep"]) => meta.staging_mode = StagingMode::DeepCopy,
            ("features", [a, b, c]) => {
                meta.features = FutureFeatures {
                    procedural_interface: parse_num(a, line)?,
                    non_isomorphic_hierarchies: parse_num(b, line)?,
                    cross_project_sharing: parse_num(c, line)?,
                }
            }
            ("seq", [raw]) => meta.seq = parse_num(raw, line)?,
            ("mirror-hits", [raw]) => meta.mirror_cache_hits = parse_num(raw, line)?,
            ("project-lib", [raw, name]) => {
                meta.project_lib
                    .insert(ProjectId::from_raw(parse_num(raw, line)?), unhex_str(name)?);
            }
            ("cv-cell", [raw, name]) => {
                meta.cv_cell.insert(
                    CellVersionId::from_raw(parse_num(raw, line)?),
                    unhex_str(name)?,
                );
            }
            ("viewtype", [raw, name]) => {
                meta.viewtype_names.insert(
                    ViewTypeId::from_raw(parse_num(raw, line)?),
                    unhex_str(name)?,
                );
            }
            ("viewtype-app", [name, kind]) => {
                meta.viewtype_apps
                    .insert(unhex_str(name)?, parse_kind(kind, line)?);
            }
            ("tool", [raw, kind]) => {
                meta.tool_kinds.insert(
                    ToolId::from_raw(parse_num(raw, line)?),
                    parse_kind(kind, line)?,
                );
            }
            ("dov-mirror", [raw, lib, cell, view, version]) => {
                meta.dov_mirror.insert(
                    DovId::from_raw(parse_num(raw, line)?),
                    MirrorLocation {
                        library: unhex_str(lib)?,
                        cell: unhex_str(cell)?,
                        view: unhex_str(view)?,
                        version: parse_num(version, line)?,
                    },
                );
            }
            ("mirror-cache", [lib, cell, view, hash, version]) => {
                meta.mirror_cache.insert(
                    (unhex_str(lib)?, unhex_str(cell)?, unhex_str(view)?),
                    (parse_num(hash, line)?, parse_num(version, line)?),
                );
            }
            ("trace-cap", [raw]) => meta.trace_capacity = parse_num(raw, line)?,
            ("trace", [seq, ok, kind, summary, outcome]) => meta.trace.push(JournalEntry {
                seq: parse_num(seq, line)?,
                ok: parse_num(ok, line)?,
                kind: unhex_str(kind)?,
                summary: unhex_str(summary)?,
                outcome: unhex_str(outcome)?,
            }),
            ("counter-op", [kind, count]) => {
                meta.counter_ops
                    .insert(unhex_str(kind)?, parse_num(count, line)?);
            }
            ("counter-err", [kind, count]) => {
                meta.counter_failures
                    .insert(unhex_str(kind)?, parse_num(count, line)?);
            }
            _ => return Err(bad(line)),
        }
    }
    Ok(meta)
}

/// What [`Engine::recover_from`] did to bring a crashed journal back:
/// how many complete entries replayed, and the torn suffix (if any)
/// that was dropped instead of replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete journal entries replayed after the checkpoint.
    pub replayed: usize,
    /// The unterminated trailing bytes dropped from the journal, if
    /// the tail was torn.
    pub dropped_fragment: Option<String>,
    /// File (inside the checkpoint directory) whose tail was torn, if
    /// any: a journal segment like `seg-3.log`, or `journal.log` for
    /// the legacy whole-file layout.
    pub torn_segment: Option<String>,
    /// Byte offset within [`RecoveryReport::torn_segment`] at which the
    /// dropped fragment begins.
    pub torn_offset: Option<usize>,
    /// Why lenient recovery stopped short of the chain's newest
    /// record, if it did: a missing or fingerprint-mismatched delta or
    /// segment. The engine is at the last boundary the intact prefix
    /// of the chain reaches.
    pub chain_break: Option<String>,
    /// Commit sequence numbers of cross-shard prepares that were
    /// rolled back because the matching commit record was missing from
    /// a participant journal. Always empty for single-engine recovery;
    /// filled by [`ShardedService::recover`](crate::ShardedService::recover).
    pub rolled_back_prepares: Vec<u64>,
}

impl Engine {
    /// Checkpoints the engine into `dir` of the `backup` file system,
    /// doing **O(Δ) work**: the first call (per directory) writes a
    /// full base image; every later call writes a *delta checkpoint* —
    /// only what changed since the chain head — plus a rewritten
    /// `ck.manifest`. The in-memory journal is cleared afterwards;
    /// ops applied next land in the segment tail that
    /// [`Engine::sync_journal`] persists.
    ///
    /// Every checkpoint is a *group commit*: all files are first
    /// staged in full at sibling `*.tmp` paths (the only writes that
    /// can fail), then renamed into place back-to-back — metadata-only
    /// moves that cannot tear. A crash anywhere during staging leaves
    /// every destination file exactly as the previous commit wrote it,
    /// and the in-memory journal is cleared only after the commit, so
    /// a failed checkpoint loses nothing.
    ///
    /// Reading the live file system charges its meter; the checkpoint
    /// records the meter *after* the walk, so a restored engine
    /// resumes with exactly the live instance's charges.
    ///
    /// # Errors
    ///
    /// Returns image encoding and backup file system errors.
    pub fn checkpoint(&mut self, backup: &mut Vfs, dir: &VfsPath) -> HybridResult<()> {
        match &self.durable {
            Some(d) if d.dir == *dir => self.checkpoint_delta(backup, dir),
            _ => self.checkpoint_full(backup, dir),
        }
    }

    /// Writes a full base checkpoint (images of everything) and starts
    /// a fresh chain: any previous deltas and segments in `dir` are
    /// dropped from the new manifest and become garbage for
    /// [`Engine::compact`]. Point-in-time targets older than this base
    /// are no longer reachable.
    fn checkpoint_full(&mut self, backup: &mut Vfs, dir: &VfsPath) -> HybridResult<()> {
        self.invalidate_snap_cache();
        backup.mkdir_all(dir)?;
        let oms_text = oms::persist::dump(self.hy.jcf.database());
        let scan = fs_scan(self.hy.fmcad.fs_ref())?;
        let fs_text = fs_image_from_scan(self.hy.fmcad.fs_ref(), &scan);
        let meta_text = self.meta_text();
        let base_fp = oms::persist::fnv64_seeded(
            oms::persist::fnv64_seeded(
                oms::persist::fnv64(oms_text.as_bytes()),
                fs_text.as_bytes(),
            ),
            meta_text.as_bytes(),
        );
        // Id continuity across a rebase: never reuse a file name the
        // old chain may still occupy on disk.
        let (next_delta, open_id) = match self.durable.as_ref().filter(|d| d.dir == *dir) {
            Some(d) => (d.next_delta, d.manifest.open.0 + 1),
            None => (1, 1),
        };
        let manifest = Manifest {
            base_seq: self.seq,
            base_fp,
            deltas: Vec::new(),
            segs: Vec::new(),
            open: (open_id, self.seq + 1),
        };
        let files = [
            (OMS_IMG.to_owned(), oms_text),
            (FS_IMG.to_owned(), fs_text),
            (HYBRID_META.to_owned(), meta_text),
            (CK_MANIFEST.to_owned(), manifest.render()),
        ];
        Self::group_commit(backup, dir, &files)?;
        let (prev_dirs, prev_files) = scan_summary(&scan);
        self.journal.clear();
        self.durable = Some(DurableState {
            dir: dir.clone(),
            prev_db: self.hy.jcf.database().snapshot(),
            prev_dirs,
            prev_files,
            manifest,
            closed_upto: self.seq,
            next_delta,
        });
        Ok(())
    }

    /// Writes a delta checkpoint against the chain head: the pending
    /// journal tail is sealed into a final (retired) segment, the OMS
    /// and file-system diffs plus the full coupling meta go into one
    /// `delta-<k>.ck` file, and the rewritten manifest commits it all.
    /// Work and bytes are proportional to the delta, not the database.
    fn checkpoint_delta(&mut self, backup: &mut Vfs, dir: &VfsPath) -> HybridResult<()> {
        self.invalidate_snap_cache();
        let d = self
            .durable
            .as_ref()
            .expect("delta checkpoint needs a chain");
        let head = d.manifest.head_seq();
        debug_assert_eq!(self.seq - head, self.journal.len() as u64);
        // Nothing happened since the chain head: every engine mutation
        // is an op, so an unchanged sequence number means an unchanged
        // state. Writing a delta here would only smear the current
        // walk's meter charges over a boundary another consumer (a
        // sharded epoch, a point-in-time target) may have recorded
        // before this call. Δ = 0 ⟹ zero writes.
        if self.seq == head {
            return Ok(());
        }

        // Seal whatever the journal holds past the last sealed
        // segment, so every entry up to this checkpoint stays
        // reachable for point-in-time recovery.
        let mut files = Vec::with_capacity(3);
        let mut segs = d.manifest.segs.clone();
        let mut open_id = d.manifest.open.0;
        if self.seq > d.closed_upto {
            let skip = (d.closed_upto - head) as usize;
            let mut entries = vec![seg_header(open_id, d.closed_upto + 1)];
            entries.extend(self.journal[skip..].iter().map(Op::to_line));
            let text = oms::persist::render_journal(&entries)
                .map_err(|e| HybridError::Journal(format!("journal: {e}")))?;
            segs.push(SegRec {
                id: open_id,
                start: d.closed_upto + 1,
                end: self.seq,
                fp: oms::persist::fnv64(text.as_bytes()),
                retired: true,
            });
            files.push((seg_file(open_id), text));
            open_id += 1;
        }
        for seg in &mut segs {
            seg.retired |= seg.end <= self.seq;
        }

        // The delta file: OMS records, file-system records, then the
        // full coupling meta (small and flat — not worth diffing).
        let oms_delta =
            oms::persist::dump_delta(&d.prev_db, self.hy.jcf.database(), &format!("seq-{head}"))
                .map_err(|e| HybridError::Journal(format!("delta: {e}")))?;
        let scan = fs_scan(self.hy.fmcad.fs_ref())?;
        let fs = self.hy.fmcad.fs_ref();
        let mut delta_text = format!("{DELTA_MAGIC}\nseq {}\nparent {head}\n", self.seq);
        for line in oms_delta.lines() {
            delta_text.push_str(&format!("o|{line}\n"));
        }
        fs_delta_section(
            &scan,
            &d.prev_dirs,
            &d.prev_files,
            fs.now(),
            &fs.meter(),
            &mut delta_text,
        );
        for line in self.meta_text().lines() {
            delta_text.push_str(&format!("m|{line}\n"));
        }

        let delta_id = d.next_delta;
        let mut manifest = Manifest {
            base_seq: d.manifest.base_seq,
            base_fp: d.manifest.base_fp,
            deltas: d.manifest.deltas.clone(),
            segs,
            open: (open_id, self.seq + 1),
        };
        manifest.deltas.push(DeltaRec {
            id: delta_id,
            seq: self.seq,
            parent: head,
            fp: oms::persist::fnv64(delta_text.as_bytes()),
        });
        files.push((delta_file(delta_id), delta_text));
        files.push((CK_MANIFEST.to_owned(), manifest.render()));
        Self::group_commit(backup, dir, &files)?;

        let (prev_dirs, prev_files) = scan_summary(&scan);
        self.journal.clear();
        self.durable = Some(DurableState {
            dir: dir.clone(),
            prev_db: self.hy.jcf.database().snapshot(),
            prev_dirs,
            prev_files,
            manifest,
            closed_upto: self.seq,
            next_delta: delta_id + 1,
        });
        Ok(())
    }

    /// Stages every `(name, text)` at a sibling `*.tmp` path (the only
    /// writes that can fail), then renames all of them into place —
    /// the atomic group commit every persistence operation uses.
    fn group_commit(
        backup: &mut Vfs,
        dir: &VfsPath,
        files: &[(String, String)],
    ) -> HybridResult<()> {
        let mut commits = Vec::with_capacity(files.len());
        for (name, text) in files {
            let dest = dir.join(name)?;
            let tmp =
                oms::persist::staging_path(&dest).expect("checkpoint files are never the root");
            backup.write(&tmp, text.as_bytes().to_vec())?;
            commits.push((tmp, dest));
        }
        for (tmp, dest) in commits {
            backup.rename(&tmp, &dest)?;
        }
        Ok(())
    }

    /// Persists the ops journal tail (everything applied since the
    /// last [`Engine::checkpoint`]) next to the checkpoint.
    ///
    /// With a chain in place ([`Engine::checkpoint`] has run for this
    /// directory) the tail is **segmented**: entries beyond the
    /// segment cap seal into immutable, individually-fingerprinted
    /// `seg-<n>.log` files that are never rewritten again; only the
    /// open (newest) segment is rewritten per sync, so sync cost is
    /// bounded by the segment cap instead of growing with the tail.
    /// The whole sync — sealed segments, open segment, manifest — is
    /// one atomic group commit. Without a chain the legacy whole-file
    /// `journal.log` is written instead.
    ///
    /// # Errors
    ///
    /// Returns backup file system errors — typed [`HybridError::Vfs`]
    /// faults for injected or out-of-space writes, journal errors for
    /// framing problems.
    pub fn sync_journal(&mut self, backup: &mut Vfs, dir: &VfsPath) -> HybridResult<()> {
        let Some(d) = self.durable.as_ref().filter(|d| d.dir == *dir) else {
            let entries: Vec<String> = self.journal.iter().map(Op::to_line).collect();
            oms::persist::save_journal(backup, &dir.join(JOURNAL_LOG)?, &entries).map_err(|e| {
                match e {
                    oms::OmsError::Vfs(fs) => HybridError::Vfs(fs),
                    other => HybridError::Journal(format!("journal: {other}")),
                }
            })?;
            return Ok(());
        };
        let head = d.manifest.head_seq();
        debug_assert_eq!(self.seq - head, self.journal.len() as u64);
        let render = |id: u64, start: u64, ops: &[Op]| -> HybridResult<String> {
            let mut entries = vec![seg_header(id, start)];
            entries.extend(ops.iter().map(Op::to_line));
            oms::persist::render_journal(&entries)
                .map_err(|e| HybridError::Journal(format!("journal: {e}")))
        };

        let mut files = Vec::new();
        let mut segs = d.manifest.segs.clone();
        let mut closed_upto = d.closed_upto;
        let mut open_id = d.manifest.open.0;
        // Seal full segments; each is written once here and never
        // touched again.
        while self.seq - closed_upto >= SEG_CAP {
            let start = closed_upto + 1;
            let skip = (closed_upto - head) as usize;
            let ops = &self.journal[skip..skip + SEG_CAP as usize];
            let text = render(open_id, start, ops)?;
            segs.push(SegRec {
                id: open_id,
                start,
                end: closed_upto + SEG_CAP,
                fp: oms::persist::fnv64(text.as_bytes()),
                retired: false,
            });
            files.push((seg_file(open_id), text));
            open_id += 1;
            closed_upto += SEG_CAP;
        }
        // The open segment: the (short) remainder, rewritten wholesale.
        let skip = (closed_upto - head) as usize;
        files.push((
            seg_file(open_id),
            render(open_id, closed_upto + 1, &self.journal[skip..])?,
        ));
        let manifest = Manifest {
            base_seq: d.manifest.base_seq,
            base_fp: d.manifest.base_fp,
            deltas: d.manifest.deltas.clone(),
            segs,
            open: (open_id, closed_upto + 1),
        };
        files.push((CK_MANIFEST.to_owned(), manifest.render()));
        Self::group_commit(backup, dir, &files)?;
        let d = self.durable.as_mut().expect("chain checked above");
        d.manifest = manifest;
        d.closed_upto = closed_upto;
        Ok(())
    }

    /// Restarts an engine from a checkpoint directory: rebuilds the
    /// shared file system, re-opens FMCAD over it (re-running the §2.4
    /// bootstrap and re-coupling every mapped library — customisation
    /// state is session-local), restores the OMS database with its
    /// exact desktop counters, and then **replays** the persisted ops
    /// journal tail. Replayed ops that originally failed fail again,
    /// reproducing their partial effects, so the result is equivalent
    /// to the live instance — [`Engine::state_fingerprint`] proves it.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::Journal`] for corrupt images,
    /// [`HybridError::TornJournal`] when the journal tail is truncated
    /// mid-entry (see [`Engine::recover_from`]), plus framework errors
    /// from the rebuild.
    pub fn restore_from(backup: &mut Vfs, dir: &VfsPath) -> HybridResult<Engine> {
        if backup.exists(&dir.join(CK_MANIFEST)?) {
            let base = Self::load_base(backup, dir)?;
            Ok(Self::restore_chain(backup, dir, &base, None, false)?.0)
        } else {
            Ok(Self::restore_inner(backup, dir, false)?.0)
        }
    }

    /// Restarts like [`Engine::restore_from`], but *recovers* from a
    /// journal whose final line was torn by a crashed write: the torn
    /// suffix — necessarily the remains of a single entry, because
    /// [`Engine::sync_journal`] terminates every line — is dropped and
    /// only the complete prefix is replayed. The report says how many
    /// entries replayed and what (if anything) was dropped.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::restore_from`], except a torn tail is handled
    /// instead of reported.
    pub fn recover_from(backup: &mut Vfs, dir: &VfsPath) -> HybridResult<(Engine, RecoveryReport)> {
        if backup.exists(&dir.join(CK_MANIFEST)?) {
            let base = Self::load_base(backup, dir)?;
            return Self::restore_chain(backup, dir, &base, None, true);
        }
        let (engine, replayed, torn) = Self::restore_inner(backup, dir, true)?;
        let (dropped_fragment, torn_segment, torn_offset) = match torn {
            Some(tail) => (
                Some(tail.fragment),
                Some(JOURNAL_LOG.to_owned()),
                Some(tail.offset),
            ),
            None => (None, None, None),
        };
        Ok((
            engine,
            RecoveryReport {
                replayed,
                dropped_fragment,
                torn_segment,
                torn_offset,
                chain_break: None,
                rolled_back_prepares: Vec::new(),
            },
        ))
    }

    /// **Point-in-time recovery**: restores the engine to *exactly*
    /// sequence number `seq` — any state the chain persisted, not just
    /// the newest. The chain is walked only as far as needed: the base
    /// image, then every delta checkpoint at or below `seq`, then
    /// journal segments (including retired ones still on disk) up to
    /// the target. Every file read along the way is verified against
    /// its manifest fingerprint.
    ///
    /// A recovered-then-resumed engine *forks* the timeline: its next
    /// sync or checkpoint rewrites the manifest and the records beyond
    /// `seq` become unreferenced garbage for [`Engine::compact`].
    ///
    /// # Errors
    ///
    /// [`HybridError::SeqUnreachable`] when `seq` precedes the base or
    /// exceeds what the chain persisted (after [`Engine::compact`],
    /// targets inside retired windows are gone too);
    /// [`HybridError::DeltaChain`] when a file needed to reach `seq`
    /// is missing or fails fingerprint verification.
    pub fn recover_at(
        backup: &mut Vfs,
        dir: &VfsPath,
        seq: u64,
    ) -> HybridResult<(Engine, RecoveryReport)> {
        if !backup.exists(&dir.join(CK_MANIFEST)?) {
            return Err(HybridError::DeltaChain(format!(
                "{dir} has no chain manifest; point-in-time recovery needs the segmented layout"
            )));
        }
        let base = Self::load_base(backup, dir)?;
        Self::restore_chain(backup, dir, &base, Some(seq), false)
    }

    /// Parses the base checkpoint of the chain in `dir` once, verified
    /// against the manifest's base fingerprint, for reuse across many
    /// [`Engine::recover_with_base`] calls. This is what makes a warm
    /// restart O(Δ): the (large, slowly-changing) base is paid for
    /// once, and each restart replays only deltas and segments.
    ///
    /// # Errors
    ///
    /// [`HybridError::DeltaChain`] for a missing or corrupt manifest
    /// or base image.
    pub fn load_base(backup: &Vfs, dir: &VfsPath) -> HybridResult<BaseImage> {
        let manifest = Self::load_manifest(backup, dir)?;
        let oms_text = oms::persist::load_text(backup, &dir.join(OMS_IMG)?)
            .map_err(|e| HybridError::DeltaChain(format!("{OMS_IMG}: {e}")))?;
        let fs_text = oms::persist::load_text(backup, &dir.join(FS_IMG)?)
            .map_err(|e| HybridError::DeltaChain(format!("{FS_IMG}: {e}")))?;
        let meta_text = oms::persist::load_text(backup, &dir.join(HYBRID_META)?)
            .map_err(|e| HybridError::DeltaChain(format!("{HYBRID_META}: {e}")))?;
        let fp = oms::persist::fnv64_seeded(
            oms::persist::fnv64_seeded(
                oms::persist::fnv64(oms_text.as_bytes()),
                fs_text.as_bytes(),
            ),
            meta_text.as_bytes(),
        );
        if fp != manifest.base_fp {
            return Err(HybridError::DeltaChain(format!(
                "base image fingerprint mismatch (manifest {:016x}, files {fp:016x})",
                manifest.base_fp
            )));
        }
        let db = oms::persist::parse(jcf::schema::jcf_schema(), &oms_text)
            .map_err(|e| HybridError::Jcf(jcf::JcfError::Database(e)))?;
        let (fs, meter, clock) = restore_fs(&fs_text)?;
        Ok(BaseImage {
            db,
            fs,
            meter,
            clock,
            meta_text,
            seq: manifest.base_seq,
            fp,
        })
    }

    /// Recovers to the newest reachable state like
    /// [`Engine::recover_from`], but reuses an already-parsed
    /// [`BaseImage`] — the warm-restart fast path: O(1) snapshots of
    /// the cached base plus replay of the deltas and segments written
    /// since it, never re-reading the full images.
    ///
    /// # Errors
    ///
    /// As [`Engine::recover_from`]; additionally
    /// [`HybridError::DeltaChain`] when the chain was rebased since
    /// `base` was loaded (reload it and retry).
    pub fn recover_with_base(
        backup: &Vfs,
        dir: &VfsPath,
        base: &BaseImage,
    ) -> HybridResult<(Engine, RecoveryReport)> {
        Self::restore_chain(backup, dir, base, None, true)
    }

    /// Reads and parses `ck.manifest`.
    fn load_manifest(backup: &Vfs, dir: &VfsPath) -> HybridResult<Manifest> {
        let text = oms::persist::load_text(backup, &dir.join(CK_MANIFEST)?)
            .map_err(|e| HybridError::DeltaChain(format!("{CK_MANIFEST}: {e}")))?;
        Manifest::parse(&text)
    }

    /// Deletes every file in the chain directory the manifest no
    /// longer needs for a newest-state restore: retired segments
    /// (their entries are covered by delta checkpoints), stale
    /// segments and deltas from abandoned forks or rebases, leftover
    /// `*.tmp` staging debris, and a legacy `journal.log`. The journal
    /// tail is synced first — recovery may have moved the open slot to
    /// a fresh segment id whose file is not on disk yet, and the
    /// rewritten manifest must only ever reference files that exist.
    /// The manifest is then rewritten without the retired records
    /// (atomically) and the files are unlinked — a crash in between
    /// leaves only unreferenced garbage that the next compact removes.
    ///
    /// Returns the number of files removed. After compaction,
    /// point-in-time targets inside retired windows are no longer
    /// reachable; delta-checkpoint boundaries remain.
    ///
    /// # Errors
    ///
    /// Returns backup file system errors.
    pub fn compact(&mut self, backup: &mut Vfs, dir: &VfsPath) -> HybridResult<usize> {
        if self.durable.as_ref().filter(|d| d.dir == *dir).is_none() {
            return Ok(0);
        }
        self.sync_journal(backup, dir)?;
        let d = self.durable.as_ref().expect("chain checked above");
        let mut manifest = d.manifest.clone();
        manifest.segs.retain(|s| !s.retired);
        if manifest != d.manifest {
            Self::group_commit(backup, dir, &[(CK_MANIFEST.to_owned(), manifest.render())])?;
        }
        let mut keep: std::collections::BTreeSet<String> = [
            OMS_IMG.to_owned(),
            FS_IMG.to_owned(),
            HYBRID_META.to_owned(),
            CK_MANIFEST.to_owned(),
            seg_file(manifest.open.0),
        ]
        .into();
        keep.extend(manifest.segs.iter().map(|s| seg_file(s.id)));
        keep.extend(manifest.deltas.iter().map(|del| delta_file(del.id)));
        let mut removed = 0;
        for name in backup.read_dir(dir)? {
            let path = dir.join(&name)?;
            if keep.contains(&name) || backup.metadata(&path)?.kind == NodeKind::Directory {
                continue;
            }
            backup.remove_file(&path)?;
            removed += 1;
        }
        let d = self.durable.as_mut().expect("chain checked above");
        d.manifest = manifest;
        Ok(removed)
    }

    /// Walks the chain: base (from `base`, already parsed) → delta
    /// checkpoints → journal segments, stopping at `target` (or the
    /// newest reachable record when `None`). `lenient` recovery stops
    /// at the last valid boundary when the chain is damaged and notes
    /// why; strict mode reports the damage as a typed error. The
    /// returned engine is ready to continue the chain — its next
    /// checkpoint is a delta, and a fork (recovery short of the
    /// newest record) is committed by whichever sync or checkpoint
    /// next rewrites the manifest.
    fn restore_chain(
        backup: &Vfs,
        dir: &VfsPath,
        base: &BaseImage,
        target: Option<u64>,
        lenient: bool,
    ) -> HybridResult<(Engine, RecoveryReport)> {
        let manifest = Self::load_manifest(backup, dir)?;
        if manifest.base_seq != base.seq || manifest.base_fp != base.fp {
            return Err(HybridError::DeltaChain(
                "chain was rebased since the base image was loaded".to_owned(),
            ));
        }
        if let Some(t) = target {
            if t < base.seq {
                return Err(HybridError::SeqUnreachable {
                    requested: t,
                    reachable: base.seq,
                });
            }
        }

        // Phase 1: fold delta checkpoints over O(1) copies of the base.
        let mut db = base.db.snapshot();
        let mut fs = base.fs.clone();
        let mut meter = base.meter;
        let mut clock = base.clock;
        let mut meta_text = base.meta_text.clone();
        let mut at = base.seq;
        let mut chain_break = None;
        let mut applied_deltas = 0;
        for rec in &manifest.deltas {
            if target.is_some_and(|t| rec.seq > t) {
                break;
            }
            match Self::read_delta(backup, dir, rec, at) {
                Ok((oms_lines, fs_lines, meta)) => {
                    oms::persist::apply_delta(&mut db, &oms_lines)
                        .map_err(|e| HybridError::DeltaChain(format!("delta {}: {e}", rec.id)))?;
                    let (c, m) = apply_fs_delta(&mut fs, &fs_lines)?;
                    clock = c;
                    meter = m;
                    meta_text = meta;
                    at = rec.seq;
                    applied_deltas += 1;
                }
                Err(e) if lenient => {
                    chain_break = Some(e.to_string());
                    break;
                }
                Err(e) => return Err(e),
            }
        }

        // Phase 2: capture the chain head (what the engine's next
        // delta checkpoint will diff against) before replay moves on.
        let prev_db = db.snapshot();
        let head_scan = fs_scan(&fs)?;
        let (prev_dirs, prev_files) = scan_summary(&head_scan);
        let head = at;
        let meta = parse_meta(&meta_text)?;
        if meta.seq != at {
            return Err(HybridError::DeltaChain(format!(
                "checkpoint at seq {at} recorded meta seq {}",
                meta.seq
            )));
        }
        let mut engine = Self::assemble_from_parts(db, fs, meter, clock, meta)?;

        // Phase 3: replay journal segments past the chain head. Sealed
        // segments verify against their manifest fingerprints; the
        // open segment may have a torn tail.
        let mut report = RecoveryReport {
            replayed: 0,
            dropped_fragment: None,
            torn_segment: None,
            torn_offset: None,
            chain_break,
            rolled_back_prepares: Vec::new(),
        };
        let mut done = report.chain_break.is_some();
        let mut replayed_segs = Vec::new();
        for rec in &manifest.segs {
            if done || rec.end <= engine.seq {
                continue;
            }
            if target.is_some_and(|t| rec.start > t) {
                break;
            }
            match Self::read_sealed_segment(backup, dir, rec, engine.seq) {
                Ok(entries) => {
                    let fully = Self::replay_entries(&mut engine, &entries, target, &mut report)?;
                    if fully {
                        replayed_segs.push(rec.clone());
                    } else {
                        done = true;
                    }
                }
                Err(e) if lenient => {
                    report.chain_break = Some(e.to_string());
                    done = true;
                }
                Err(e) => return Err(e),
            }
        }
        let (open_id, open_start) = manifest.open;
        let open_path = dir.join(&seg_file(open_id))?;
        if !done && open_start == engine.seq + 1 && backup.exists(&open_path) {
            let seg = parse_segment(backup, &open_path)?;
            // A file that disagrees with the manifest's open slot is a
            // stale leftover from before a rebase; nothing is
            // committed there yet.
            if seg.id == open_id && seg.start == open_start {
                if let Some(tail) = &seg.torn {
                    if !lenient && target.is_none() {
                        return Err(HybridError::TornJournal {
                            complete: seg.entries.len(),
                            fragment: tail.fragment.clone(),
                        });
                    }
                    report.dropped_fragment = Some(tail.fragment.clone());
                    report.torn_segment = Some(seg_file(open_id));
                    report.torn_offset = Some(tail.offset);
                }
                Self::replay_entries(&mut engine, &seg.entries, target, &mut report)?;
            }
        }
        if let Some(t) = target {
            if engine.seq != t {
                return Err(HybridError::SeqUnreachable {
                    requested: t,
                    reachable: engine.seq,
                });
            }
        }

        // Rebuild the durable chain state so the engine continues with
        // O(Δ) checkpoints. The open slot always gets a fresh id: if
        // recovery forked the timeline, the abandoned records stay
        // untouched (and recoverable) until the next commit rewrites
        // the manifest.
        let closed_upto = replayed_segs.last().map_or(head, |s| s.end);
        let max_id = manifest
            .segs
            .iter()
            .map(|s| s.id)
            .chain([open_id])
            .max()
            .unwrap_or(0);
        let next_delta = manifest.deltas.iter().map(|d| d.id).max().unwrap_or(0) + 1;
        engine.durable = Some(DurableState {
            dir: dir.clone(),
            prev_db,
            prev_dirs,
            prev_files,
            manifest: Manifest {
                base_seq: manifest.base_seq,
                base_fp: manifest.base_fp,
                deltas: manifest.deltas[..applied_deltas].to_vec(),
                segs: {
                    let mut segs: Vec<SegRec> = manifest
                        .segs
                        .iter()
                        .filter(|s| s.end <= head || replayed_segs.iter().any(|r| r.id == s.id))
                        .cloned()
                        .collect();
                    segs.sort_by_key(|s| s.id);
                    segs
                },
                open: (max_id + 1, closed_upto + 1),
            },
            closed_upto,
            next_delta,
        });
        Ok((engine, report))
    }

    /// Reads and verifies one delta checkpoint file, splitting it into
    /// its OMS section, file-system records, and meta text.
    fn read_delta(
        backup: &Vfs,
        dir: &VfsPath,
        rec: &DeltaRec,
        at: u64,
    ) -> HybridResult<(String, Vec<String>, String)> {
        let name = delta_file(rec.id);
        let text = oms::persist::load_text(backup, &dir.join(&name)?)
            .map_err(|e| HybridError::DeltaChain(format!("{name}: {e}")))?;
        if oms::persist::fnv64(text.as_bytes()) != rec.fp {
            return Err(HybridError::DeltaChain(format!(
                "{name}: fingerprint mismatch"
            )));
        }
        if rec.parent != at {
            return Err(HybridError::DeltaChain(format!(
                "{name}: extends seq {} but the chain is at {at}",
                rec.parent
            )));
        }
        let mut lines = text.lines();
        if lines.next() != Some(DELTA_MAGIC) {
            return Err(HybridError::DeltaChain(format!("{name}: bad header")));
        }
        let mut oms_section = String::new();
        let mut fs_records = Vec::new();
        let mut meta_text = String::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("o|") {
                oms_section.push_str(rest);
                oms_section.push('\n');
            } else if let Some(rest) = line.strip_prefix("f|") {
                fs_records.push(rest.to_owned());
            } else if let Some(rest) = line.strip_prefix("m|") {
                meta_text.push_str(rest);
                meta_text.push('\n');
            } else if let Some(rest) = line.strip_prefix("seq ") {
                if parse_num::<u64>(rest, line)? != rec.seq {
                    return Err(HybridError::DeltaChain(format!(
                        "{name}: seq disagrees with the manifest"
                    )));
                }
            } else if let Some(rest) = line.strip_prefix("parent ") {
                if parse_num::<u64>(rest, line)? != rec.parent {
                    return Err(HybridError::DeltaChain(format!(
                        "{name}: parent disagrees with the manifest"
                    )));
                }
            } else {
                return Err(HybridError::DeltaChain(format!(
                    "{name}: unrecognised line {line:?}"
                )));
            }
        }
        Ok((oms_section, fs_records, meta_text))
    }

    /// Reads and verifies one sealed segment, checking fingerprint,
    /// header, continuity with the chain position, and entry count.
    fn read_sealed_segment(
        backup: &Vfs,
        dir: &VfsPath,
        rec: &SegRec,
        at: u64,
    ) -> HybridResult<Vec<String>> {
        let name = seg_file(rec.id);
        if rec.start != at + 1 {
            return Err(HybridError::DeltaChain(format!(
                "{name}: starts at seq {} but the chain is at {at}",
                rec.start
            )));
        }
        let text = oms::persist::load_text(backup, &dir.join(&name)?)
            .map_err(|e| HybridError::DeltaChain(format!("{name}: {e}")))?;
        if oms::persist::fnv64(text.as_bytes()) != rec.fp {
            return Err(HybridError::DeltaChain(format!(
                "{name}: fingerprint mismatch"
            )));
        }
        let seg = parse_segment(backup, &dir.join(&name)?)?;
        if seg.id != rec.id || seg.start != rec.start || seg.torn.is_some() {
            return Err(HybridError::DeltaChain(format!(
                "{name}: header disagrees with the manifest"
            )));
        }
        if seg.entries.len() as u64 != rec.end - rec.start + 1 {
            return Err(HybridError::DeltaChain(format!(
                "{name}: {} entrie(s), manifest says {}",
                seg.entries.len(),
                rec.end - rec.start + 1
            )));
        }
        Ok(seg.entries)
    }

    /// Replays journal entries through the normal apply path (failed
    /// ops re-fail, reproducing their partial effects), stopping at
    /// the target. Returns whether every entry was replayed.
    fn replay_entries(
        engine: &mut Engine,
        entries: &[String],
        target: Option<u64>,
        report: &mut RecoveryReport,
    ) -> HybridResult<bool> {
        for line in entries {
            if target.is_some_and(|t| engine.seq >= t) {
                return Ok(false);
            }
            let op = Op::parse_line(line)?;
            let _ = engine.apply(op);
            report.replayed += 1;
        }
        Ok(true)
    }

    /// Shared body of [`Engine::restore_from`] / [`Engine::recover_from`]:
    /// rebuilds the engine from the checkpoint and replays the journal,
    /// either rejecting or dropping a torn tail.
    fn restore_inner(
        backup: &mut Vfs,
        dir: &VfsPath,
        drop_torn_tail: bool,
    ) -> HybridResult<(Engine, usize, Option<oms::persist::TornTail>)> {
        let meta_bytes = backup.read(&dir.join(HYBRID_META)?)?;
        let meta = parse_meta(&String::from_utf8_lossy(&meta_bytes))?;
        let image_bytes = backup.read(&dir.join(FS_IMG)?)?;
        let (fs, meter, fs_clock) = restore_fs(&String::from_utf8_lossy(&image_bytes))?;
        let db = oms::persist::load(jcf::schema::jcf_schema(), backup, &dir.join(OMS_IMG)?)
            .map_err(|e| HybridError::Jcf(jcf::JcfError::Database(e)))?;
        let mut engine = Self::assemble_from_parts(db, fs, meter, fs_clock, meta)?;

        // Replay the journal tail. Each op is re-applied through the
        // normal path, so the journal, the sequence counter and the
        // sinks advance exactly as they did live — including ops that
        // failed, whose partial effects (started executions, clock
        // bumps, staged reads) are part of the state being restored.
        let (lines, torn) = oms::persist::load_journal_lenient(backup, &dir.join(JOURNAL_LOG)?)
            .map_err(|e| HybridError::Journal(format!("journal: {e}")))?;
        if let Some(tail) = &torn {
            if !drop_torn_tail {
                return Err(HybridError::TornJournal {
                    complete: lines.len(),
                    fragment: tail.fragment.clone(),
                });
            }
        }
        let replayed = lines.len();
        for line in lines {
            let op = Op::parse_line(&line)?;
            let _ = engine.apply(op);
        }
        Ok((engine, replayed, torn))
    }

    /// Rebuilds an engine from its restored parts — the shared middle
    /// of every restore path, legacy or chained: re-open FMCAD over
    /// the tree (re-running the §2.4 bootstrap and re-coupling every
    /// mapped library — customisation state is session-local), resume
    /// the OMS desktop counters, re-intern the coupling maps, and
    /// restore the trace ring and counters. The journal starts empty;
    /// the caller replays whatever tail applies.
    fn assemble_from_parts(
        db: oms::Database,
        fs: Vfs,
        meter: CostMeter,
        fs_clock: u64,
        meta: MetaState,
    ) -> HybridResult<Engine> {
        // Slave: re-open over the restored tree, re-register the
        // post-bootstrap viewtypes, re-install the customisation layer
        // and re-couple every mapped library (creation order).
        let mut fmcad = Fmcad::open_existing(fs)?;
        for (name, kind) in &meta.viewtype_apps {
            fmcad.register_viewtype(name, *kind);
        }
        fmcad.run_script(BOOTSTRAP_SCRIPT)?;
        for lib in meta.project_lib.values() {
            fmcad.fire_trigger("library-coupled", &[fml::Value::Str(lib.clone())])?;
        }
        // Install the recorded meter and clock only now: the re-open
        // parsed `.meta` files, and those reads must not count twice.
        fmcad.fs().restore_clock(fs_clock);
        fmcad.fs_ref().restore_meter(meter);

        // Master: the OMS database plus the exact desktop counters
        // (the lossy timestamp-based recovery is not enough for
        // replay).
        let mut jcf = Jcf::from_database(db);
        jcf.resume_counters(meta.desktop_ops, meta.clock);

        // The meta file stores plain owned strings; the live coupling
        // maps are persistent tries over interned `Arc` values, so the
        // restore re-interns each entry once here.
        let viewtypes_by_name = meta
            .viewtype_names
            .iter()
            .map(|(id, name)| (name.clone(), *id))
            .collect();
        let hy = Hybrid {
            jcf,
            fmcad,
            admin: meta.admin,
            project_lib: meta
                .project_lib
                .into_iter()
                .map(|(k, v)| (k, std::sync::Arc::from(v)))
                .collect(),
            cv_cell: meta
                .cv_cell
                .into_iter()
                .map(|(k, v)| (k, std::sync::Arc::from(v)))
                .collect(),
            viewtype_names: meta
                .viewtype_names
                .into_iter()
                .map(|(k, v)| (k, std::sync::Arc::from(v)))
                .collect(),
            viewtypes_by_name,
            viewtype_apps: meta.viewtype_apps,
            tool_kinds: meta.tool_kinds,
            dov_mirror: meta
                .dov_mirror
                .into_iter()
                .map(|(k, v)| (k, std::sync::Arc::new(v)))
                .collect(),
            fmcad_ui_ops: meta.fmcad_ui_ops,
            features: meta.features,
            staging_mode: meta.staging_mode,
            mirror_cache: meta.mirror_cache,
            mirror_cache_hits: meta.mirror_cache_hits,
            // Pure memoization; rebuilt on demand, never persisted.
            children_cache: BTreeMap::new(),
        };
        let mut trace = TraceSink::new(meta.trace_capacity);
        trace.restore(meta.trace);
        let mut counters = CounterSink::default();
        counters.restore(meta.counter_ops, meta.counter_failures);
        Ok(Engine {
            hy,
            journal: Vec::new(),
            seq: meta.seq,
            trace,
            counters,
            extra: Vec::new(),
            snap_cache: std::sync::Mutex::new(None),
            durable: None,
        })
    }

    /// A deterministic fingerprint of everything the engine models:
    /// the OMS database, desktop counters, the shared file system
    /// (tree, contents, clock, cost meter), the coupling tables, and
    /// the observable engine state (sequence number, trace ring,
    /// counters). Two engines with equal fingerprints are in
    /// equivalent states.
    ///
    /// The meter is captured *first*; the fingerprint walk itself then
    /// charges the meter, so compute at most one fingerprint per
    /// instance when comparing.
    ///
    /// # Errors
    ///
    /// Returns file system errors from the walk.
    pub fn state_fingerprint(&self) -> HybridResult<String> {
        let fs = self.hy.fmcad.fs_ref();
        let meter = fs.meter();
        let mut s = String::new();
        s.push_str(&format!(
            "meter {} {} {} {} {}\n",
            meter.ticks,
            meter.bytes_read,
            meter.bytes_written,
            meter.content_ops,
            meter.metadata_ops
        ));
        s.push_str(&format!("fs-clock {}\n", fs.now()));
        s.push_str(&self.meta_text());
        s.push_str("oms\n");
        s.push_str(&oms::persist::dump(self.hy.jcf.database()));
        for path in fs.walk_files(&VfsPath::root())? {
            let data = fs.read(&path)?;
            s.push_str(&format!("hash {path} {}\n", data.content_hash()));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> (Engine, UserId, StandardFlow, TeamId) {
        let mut en = Engine::new();
        let admin = en.admin();
        let alice = en.add_user("alice", false).unwrap();
        let team = en.add_team(admin, "asic").unwrap();
        en.add_team_member(admin, team, alice).unwrap();
        let flow = en.standard_flow("std").unwrap();
        (en, alice, flow, team)
    }

    #[test]
    fn wrappers_journal_every_op() {
        let (mut en, alice, flow, team) = seeded();
        let project = en.create_project("alu").unwrap();
        let cell = en.create_cell(project, "adder").unwrap();
        let (cv, variant) = en.create_cell_version(cell, flow.flow, team).unwrap();
        en.reserve(alice, cv).unwrap();
        let dovs = en
            .run_activity(alice, variant, flow.enter_schematic, false, |_s| {
                Ok(vec![ToolOutput {
                    viewtype: "schematic".into(),
                    data: b"netlist adder\nport a input\n".to_vec().into(),
                }])
            })
            .unwrap();
        assert_eq!(dovs.len(), 1);
        assert_eq!(en.seq(), 9);
        assert_eq!(en.journal_ops().len(), 9);
        assert_eq!(en.counters().ops()["run-activity"], 1);
        assert!(en.trace().entries().all(|e| e.ok));
        // Failed ops are journaled too.
        assert!(en.create_project("alu").is_err());
        assert_eq!(en.seq(), 10);
        assert_eq!(en.counters().failures()["jcf"], 1);
        assert!(!en.trace().entries().last().unwrap().ok);
    }

    #[test]
    fn checkpoint_replay_reproduces_live_state() {
        let (mut en, alice, flow, team) = seeded();
        let project = en.create_project("alu").unwrap();
        let cell = en.create_cell(project, "adder").unwrap();
        let (cv, variant) = en.create_cell_version(cell, flow.flow, team).unwrap();
        en.reserve(alice, cv).unwrap();

        let mut backup = Vfs::new();
        let dir = VfsPath::parse("/backup/ck1").unwrap();
        en.checkpoint(&mut backup, &dir).unwrap();

        // Post-checkpoint tail: a real activity plus a failing op.
        en.run_activity(alice, variant, flow.enter_schematic, false, |_s| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: b"netlist adder\nport a input\n".to_vec().into(),
            }])
        })
        .unwrap();
        assert!(en.create_cell(project, "adder").is_err());
        en.publish(alice, cv).unwrap();
        en.sync_journal(&mut backup, &dir).unwrap();

        let restored = Engine::restore_from(&mut backup, &dir).unwrap();
        assert_eq!(restored.seq(), en.seq());
        assert_eq!(
            restored.state_fingerprint().unwrap(),
            en.state_fingerprint().unwrap()
        );
    }

    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let mut backup = Vfs::new();
        let dir = VfsPath::parse("/backup/bad").unwrap();
        let (mut en, ..) = seeded();
        en.checkpoint(&mut backup, &dir).unwrap();
        backup
            .write(&dir.join(HYBRID_META).unwrap(), b"not a meta".to_vec())
            .unwrap();
        // The base fingerprint recorded in the manifest no longer
        // matches the tampered image.
        assert!(matches!(
            Engine::restore_from(&mut backup, &dir),
            Err(HybridError::DeltaChain(_))
        ));
    }
}
