//! Error type for the hybrid JCF-FMCAD framework.

use std::error::Error;
use std::fmt;

use cad_tools::ToolError;
use cad_vfs::VfsError;
use fmcad::FmcadError;
use jcf::JcfError;

/// Error returned by hybrid framework operations.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a
/// wildcard arm so future coupling failures can be added without a
/// breaking release. Use [`HybridError::kind`] for stable programmatic
/// dispatch — the kind strings are frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HybridError {
    /// The master framework (JCF) rejected the operation.
    Jcf(JcfError),
    /// The slave framework (FMCAD) rejected the operation.
    Fmcad(FmcadError),
    /// A staging transfer through the file system failed.
    Vfs(VfsError),
    /// An encapsulated tool failed.
    Tool(ToolError),
    /// A mapped counterpart is missing (coupling tables corrupt).
    MappingMissing(String),
    /// Design data references a child cell that was not declared via
    /// the JCF desktop beforehand (§3.3).
    UndeclaredChild {
        /// The referencing cell version (by FMCAD cell name).
        parent: String,
        /// The undeclared child cell.
        child: String,
    },
    /// The schematic and layout hierarchies differ; JCF 3.0 does not
    /// support non-isomorphic hierarchies, so the hybrid framework must
    /// reject the design (§3.3).
    NonIsomorphicHierarchy {
        /// Human-readable differences between the two hierarchies.
        differences: Vec<String>,
    },
    /// The activity produced a viewtype it did not declare as created.
    UndeclaredOutput {
        /// The activity name.
        activity: String,
        /// The undeclared viewtype.
        viewtype: String,
    },
    /// The ops journal is corrupt, or a replayed operation reproduced
    /// a recorded failure whose original error type was not preserved.
    Journal(String),
    /// The persisted ops journal ends in a line truncated mid-entry —
    /// a write was torn before its trailing newline was flushed.
    /// [`Engine::recover_from`](crate::Engine::recover_from) restarts
    /// from such a journal by dropping only the torn suffix.
    TornJournal {
        /// Complete entries preceding the torn tail.
        complete: usize,
        /// The unterminated trailing bytes.
        fragment: String,
    },
    /// The shard router could not place the op on a single partition
    /// engine: an id did not resolve, referenced entities live on
    /// different partitions where one is required, or a cross-shard
    /// commit failed validation.
    ShardRouting(String),
    /// The checkpoint chain (base image + delta checkpoints + journal
    /// segments described by `ck.manifest`) is broken: a listed file is
    /// missing, a fingerprint does not match, or a delta does not
    /// extend the state it claims to. Strict restores report this;
    /// lenient recovery falls back to the last boundary the intact
    /// prefix of the chain can reach.
    DeltaChain(String),
    /// Point-in-time recovery was asked for a sequence number the
    /// persisted chain cannot reach exactly (before the base
    /// checkpoint, or past the last persisted entry).
    SeqUnreachable {
        /// The sequence number that was requested.
        requested: u64,
        /// The closest boundary the chain could have restored instead.
        reachable: u64,
    },
    /// A branch workspace merge was rejected before any mutation: a
    /// staged write targets a design object outside the merged cell
    /// version, or the workspace is otherwise inconsistent with the
    /// head it is merging into. (Concurrent-edit conflicts are *not*
    /// errors — they come back as a
    /// [`MergeConflict`](crate::Event::MergeConflict) event.)
    Merge(String),
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridError::Jcf(e) => write!(f, "jcf: {e}"),
            HybridError::Fmcad(e) => write!(f, "fmcad: {e}"),
            HybridError::Vfs(e) => write!(f, "staging: {e}"),
            HybridError::Tool(e) => write!(f, "tool: {e}"),
            HybridError::MappingMissing(what) => write!(f, "mapping missing for {what}"),
            HybridError::UndeclaredChild { parent, child } => write!(
                f,
                "cell {parent:?} uses child {child:?} that was not declared via the JCF desktop"
            ),
            HybridError::NonIsomorphicHierarchy { differences } => write!(
                f,
                "non-isomorphic hierarchies are not supported by JCF 3.0 ({} difference(s))",
                differences.len()
            ),
            HybridError::UndeclaredOutput { activity, viewtype } => write!(
                f,
                "activity {activity:?} produced undeclared viewtype {viewtype:?}"
            ),
            HybridError::Journal(what) => write!(f, "journal: {what}"),
            HybridError::TornJournal { complete, fragment } => write!(
                f,
                "journal tail truncated mid-entry after {complete} complete entrie(s) \
                 ({} torn byte(s))",
                fragment.len()
            ),
            HybridError::ShardRouting(what) => write!(f, "shard routing: {what}"),
            HybridError::DeltaChain(what) => write!(f, "checkpoint chain: {what}"),
            HybridError::SeqUnreachable {
                requested,
                reachable,
            } => write!(
                f,
                "sequence {requested} is not reachable from the persisted chain \
                 (closest boundary: {reachable})"
            ),
            HybridError::Merge(what) => write!(f, "merge: {what}"),
        }
    }
}

impl HybridError {
    /// The stable kind string of this error — the key under which
    /// [`CounterSink`](crate::CounterSink) counts failures, and the
    /// value persisted in checkpoint metadata. These strings never
    /// change for an existing variant.
    pub fn kind(&self) -> &'static str {
        match self {
            HybridError::Jcf(_) => "jcf",
            HybridError::Fmcad(_) => "fmcad",
            HybridError::Vfs(_) => "vfs",
            HybridError::Tool(_) => "tool",
            HybridError::MappingMissing(_) => "mapping-missing",
            HybridError::UndeclaredChild { .. } => "undeclared-child",
            HybridError::NonIsomorphicHierarchy { .. } => "non-isomorphic-hierarchy",
            HybridError::UndeclaredOutput { .. } => "undeclared-output",
            HybridError::Journal(_) => "journal",
            HybridError::TornJournal { .. } => "torn-journal",
            HybridError::ShardRouting(_) => "shard-routing",
            HybridError::DeltaChain(_) => "delta-chain",
            HybridError::SeqUnreachable { .. } => "seq-unreachable",
            HybridError::Merge(_) => "merge",
        }
    }
}

impl Error for HybridError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HybridError::Jcf(e) => Some(e),
            HybridError::Fmcad(e) => Some(e),
            HybridError::Vfs(e) => Some(e),
            HybridError::Tool(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<JcfError> for HybridError {
    fn from(e: JcfError) -> Self {
        HybridError::Jcf(e)
    }
}

#[doc(hidden)]
impl From<FmcadError> for HybridError {
    fn from(e: FmcadError) -> Self {
        HybridError::Fmcad(e)
    }
}

#[doc(hidden)]
impl From<VfsError> for HybridError {
    fn from(e: VfsError) -> Self {
        HybridError::Vfs(e)
    }
}

#[doc(hidden)]
impl From<ToolError> for HybridError {
    fn from(e: ToolError) -> Self {
        HybridError::Tool(e)
    }
}

#[doc(hidden)]
impl From<design_data::DesignDataError> for HybridError {
    fn from(e: design_data::DesignDataError) -> Self {
        HybridError::Tool(ToolError::DesignData(e))
    }
}

/// Convenience alias for hybrid results.
pub type HybridResult<T> = Result<T, HybridError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HybridError>();
    }

    #[test]
    fn sources_chain_through_both_frameworks() {
        let e: HybridError = JcfError::NotFound("x".into()).into();
        assert!(Error::source(&e).is_some());
        let e: HybridError = FmcadError::NotCheckedOut.into();
        assert!(Error::source(&e).is_some());
    }
}
