//! Typed events and observers of the hybrid engine.
//!
//! Each successfully applied [`Op`](crate::Op) produces one [`Event`]
//! carrying the handles (and, for read-like ops, the data) the
//! operation yielded. [`EventSink`] subscribers observe the stream;
//! two built-in sinks back the desktop's `journal` command
//! ([`TraceSink`]) and the benchmark report's operation counters
//! ([`CounterSink`]).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use cad_vfs::Blob;
use jcf::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId, FlowId,
    ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};

use crate::error::HybridError;
use crate::framework::StandardFlow;
use crate::import::ImportReport;
use crate::ops::Op;
use crate::release::ExportManifest;
use cad_tools::LvsReport;

/// The typed outcome of one successfully applied [`Op`](crate::Op).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A user was registered.
    UserAdded(UserId),
    /// A team was created.
    TeamAdded(TeamId),
    /// A user joined a team.
    TeamMemberAdded(TeamId, UserId),
    /// A viewtype was registered on both frameworks.
    ViewtypeRegistered(ViewTypeId),
    /// A tool was registered.
    ToolRegistered(ToolId),
    /// The standard three-tool flow was defined and frozen.
    StandardFlowDefined(StandardFlow),
    /// The quality-gated flow was defined and frozen.
    QualityGatedFlowDefined(StandardFlow),
    /// An empty custom flow was defined.
    FlowDefined(FlowId),
    /// An activity was added to a flow.
    ActivityAdded(ActivityId),
    /// A flow was frozen.
    FlowFrozen(FlowId),
    /// A project (and its coupled library) was created.
    ProjectCreated(ProjectId),
    /// A cell was created.
    CellCreated(CellId),
    /// A cell version (with base variant) was created.
    CellVersionCreated(CellVersionId, VariantId),
    /// A variant was derived.
    VariantDerived(VariantId),
    /// A hierarchy child was declared.
    CompOfDeclared(CellVersionId, CellId),
    /// A cell was shared across projects.
    CellShared(CellId),
    /// A variant was promoted into a new cell version.
    VariantPromoted(CellVersionId, VariantId),
    /// A cell version was reserved into a workspace.
    Reserved(CellVersionId),
    /// A cell version was published.
    Published(CellVersionId),
    /// A design object was created.
    DesignObjectCreated(DesignObjectId),
    /// A design object version was added.
    DovAdded(DovId),
    /// Two design object versions were marked equivalent.
    MarkedEquivalent(DovId, DovId),
    /// A branch workspace merged forward cleanly; carries the versions
    /// it published.
    MergeApplied {
        /// The cell version merged into.
        cv: CellVersionId,
        /// The design object versions the merge created.
        dovs: Vec<DovId>,
    },
    /// A branch workspace could not merge forward; nothing changed.
    ///
    /// This is a *successful* op outcome — the conflict set is the
    /// answer, journaled and replayed like any other event — so a
    /// conflicted merge never poisons the journal with partial state.
    MergeConflict {
        /// The cell version the merge targeted.
        cv: CellVersionId,
        /// Every conflict found, in deterministic order: a reservation
        /// conflict first, then design-object conflicts in the
        /// workspace's staging order.
        conflicts: Vec<MergeConflict>,
    },
    /// An encapsulated activity ran; carries the versions it created.
    ActivityRun {
        /// The design object versions the run produced.
        dovs: Vec<DovId>,
    },
    /// A design object version was browsed.
    Browsed {
        /// The data read.
        data: Blob,
    },
    /// Design data was read via the desktop.
    DesignDataRead {
        /// The data read.
        data: Blob,
    },
    /// A configuration was created.
    ConfigurationCreated(ConfigId),
    /// A configuration version was frozen.
    ConfigVersionCreated(ConfigVersionId),
    /// A configuration version was exported to the file system.
    ConfigExported(ExportManifest),
    /// Layout-versus-schematic ran on a variant.
    LvsRun(LvsReport),
    /// The future-work feature switches changed.
    FutureFeaturesSet,
    /// The staging mode changed.
    StagingModeSet,
    /// An uncoupled FMCAD library was imported.
    LibraryImported(ProjectId, ImportReport),
    /// A standalone FMCAD library was created.
    FmcadLibraryCreated,
    /// An FMCAD cell was created directly.
    FmcadCellCreated,
    /// An FMCAD cellview was created directly.
    FmcadCellviewCreated,
    /// An FMCAD cellview was checked out directly.
    FmcadCheckedOut {
        /// The checked-out data.
        data: Blob,
    },
    /// Data was checked into an FMCAD cellview directly.
    FmcadCheckedIn {
        /// The new version number.
        version: u32,
    },
    /// An FMCAD cellview version was purged.
    FmcadVersionPurged,
    /// A versioned library file was overwritten out-of-band.
    FmcadFileWritten,
}

/// One reason a [`Workspace`](crate::Workspace) merge could not go
/// forward, carried by [`Event::MergeConflict`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeConflict {
    /// The target cell version is reserved by another designer.
    ReservedByOther {
        /// The designer currently holding the reservation.
        holder: UserId,
    },
    /// A design object gained versions since the workspace's branch
    /// point, so the staged write would silently overwrite them.
    DesignObjectAdvanced {
        /// The design object that moved.
        design_object: DesignObjectId,
        /// The version count recorded at the branch point.
        expected: u32,
        /// The version count found at merge time.
        found: u32,
    },
}

impl Event {
    /// The stable kind name of this event.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::UserAdded(_) => "user-added",
            Event::TeamAdded(_) => "team-added",
            Event::TeamMemberAdded(..) => "team-member-added",
            Event::ViewtypeRegistered(_) => "viewtype-registered",
            Event::ToolRegistered(_) => "tool-registered",
            Event::StandardFlowDefined(_) => "standard-flow-defined",
            Event::QualityGatedFlowDefined(_) => "quality-gated-flow-defined",
            Event::FlowDefined(_) => "flow-defined",
            Event::ActivityAdded(_) => "activity-added",
            Event::FlowFrozen(_) => "flow-frozen",
            Event::ProjectCreated(_) => "project-created",
            Event::CellCreated(_) => "cell-created",
            Event::CellVersionCreated(..) => "cell-version-created",
            Event::VariantDerived(_) => "variant-derived",
            Event::CompOfDeclared(..) => "comp-of-declared",
            Event::CellShared(_) => "cell-shared",
            Event::VariantPromoted(..) => "variant-promoted",
            Event::Reserved(_) => "reserved",
            Event::Published(_) => "published",
            Event::DesignObjectCreated(_) => "design-object-created",
            Event::DovAdded(_) => "dov-added",
            Event::MarkedEquivalent(..) => "marked-equivalent",
            Event::MergeApplied { .. } => "merge-applied",
            Event::MergeConflict { .. } => "merge-conflict",
            Event::ActivityRun { .. } => "activity-run",
            Event::Browsed { .. } => "browsed",
            Event::DesignDataRead { .. } => "design-data-read",
            Event::ConfigurationCreated(_) => "configuration-created",
            Event::ConfigVersionCreated(_) => "config-version-created",
            Event::ConfigExported(_) => "config-exported",
            Event::LvsRun(_) => "lvs-run",
            Event::FutureFeaturesSet => "future-features-set",
            Event::StagingModeSet => "staging-mode-set",
            Event::LibraryImported(..) => "library-imported",
            Event::FmcadLibraryCreated => "fmcad-library-created",
            Event::FmcadCellCreated => "fmcad-cell-created",
            Event::FmcadCellviewCreated => "fmcad-cellview-created",
            Event::FmcadCheckedOut { .. } => "fmcad-checked-out",
            Event::FmcadCheckedIn { .. } => "fmcad-checked-in",
            Event::FmcadVersionPurged => "fmcad-version-purged",
            Event::FmcadFileWritten => "fmcad-file-written",
        }
    }
}

// --- wire codec -------------------------------------------------------------
//
// The network front-end ships each committed event back to the client
// in the same one-line `kind|field=value` form as the ops journal, so
// a wire response is exactly one hex-armoured line inside one frame.

use crate::codec::{assemble, enc_blob, enc_ids, enc_str, Fields};
use cad_tools::LvsViolation;

fn enc_manifest(m: &ExportManifest) -> Vec<(&'static str, String)> {
    let files = m
        .files
        .iter()
        .map(|(name, bytes)| format!("{}:{bytes}", enc_str(name)))
        .collect::<Vec<_>>()
        .join(";");
    vec![("files", files), ("total", m.total_bytes.to_string())]
}

fn parse_manifest(f: &Fields<'_>) -> Result<ExportManifest, String> {
    let raw = f.get("files")?;
    let mut files = Vec::new();
    if !raw.is_empty() {
        for pair in raw.split(';') {
            let (name, bytes) = pair
                .split_once(':')
                .ok_or_else(|| "bad manifest entry".to_owned())?;
            let name = String::from_utf8(
                crate::codec::unhex(name).ok_or_else(|| "bad manifest name hex".to_owned())?,
            )
            .map_err(|_| "manifest name is not utf-8".to_owned())?;
            let bytes: u64 = bytes
                .parse()
                .map_err(|_| "bad manifest byte count".to_owned())?;
            files.push((name, bytes));
        }
    }
    Ok(ExportManifest {
        files,
        total_bytes: f.u64("total")?,
    })
}

fn enc_lvs(report: &LvsReport) -> Vec<(&'static str, String)> {
    let violations = report
        .violations
        .iter()
        .map(|v| match v {
            LvsViolation::MissingNet { net } => format!("missing:{}", enc_str(net)),
            LvsViolation::PhantomNet { net } => format!("phantom:{}", enc_str(net)),
            LvsViolation::InstanceMismatch {
                cell,
                schematic,
                layout,
            } => format!("instance:{}:{schematic}:{layout}", enc_str(cell)),
        })
        .collect::<Vec<_>>()
        .join(";");
    vec![
        ("matched", report.matched_nets.to_string()),
        ("violations", violations),
    ]
}

fn parse_lvs(f: &Fields<'_>) -> Result<LvsReport, String> {
    let dec_str = |raw: &str| -> Result<String, String> {
        String::from_utf8(crate::codec::unhex(raw).ok_or_else(|| "bad lvs hex".to_owned())?)
            .map_err(|_| "lvs name is not utf-8".to_owned())
    };
    let raw = f.get("violations")?;
    let mut violations = Vec::new();
    if !raw.is_empty() {
        for entry in raw.split(';') {
            let (tag, rest) = entry
                .split_once(':')
                .ok_or_else(|| "bad lvs violation".to_owned())?;
            violations.push(match tag {
                "missing" => LvsViolation::MissingNet {
                    net: dec_str(rest)?,
                },
                "phantom" => LvsViolation::PhantomNet {
                    net: dec_str(rest)?,
                },
                "instance" => {
                    let mut parts = rest.splitn(3, ':');
                    let cell = dec_str(parts.next().ok_or_else(|| "bad lvs cell".to_owned())?)?;
                    let schematic = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| "bad lvs instance count".to_owned())?;
                    let layout = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| "bad lvs placement count".to_owned())?;
                    LvsViolation::InstanceMismatch {
                        cell,
                        schematic,
                        layout,
                    }
                }
                other => return Err(format!("unknown lvs violation tag {other:?}")),
            });
        }
    }
    Ok(LvsReport {
        violations,
        matched_nets: f.usize("matched")?,
    })
}

fn enc_conflicts(conflicts: &[MergeConflict]) -> String {
    conflicts
        .iter()
        .map(|c| match c {
            MergeConflict::ReservedByOther { holder } => format!("r:{}", holder.raw()),
            MergeConflict::DesignObjectAdvanced {
                design_object,
                expected,
                found,
            } => format!("a:{}:{expected}:{found}", design_object.raw()),
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_conflicts(f: &Fields<'_>) -> Result<Vec<MergeConflict>, String> {
    let raw = f.get("conflicts")?;
    let mut conflicts = Vec::new();
    if !raw.is_empty() {
        for entry in raw.split(';') {
            let (tag, rest) = entry
                .split_once(':')
                .ok_or_else(|| "bad merge conflict".to_owned())?;
            conflicts.push(match tag {
                "r" => MergeConflict::ReservedByOther {
                    holder: UserId::from_raw(
                        rest.parse().map_err(|_| "bad conflict holder".to_owned())?,
                    ),
                },
                "a" => {
                    let mut parts = rest.splitn(3, ':');
                    let design_object = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .map(DesignObjectId::from_raw)
                        .ok_or_else(|| "bad conflict design object".to_owned())?;
                    let expected = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| "bad conflict expected count".to_owned())?;
                    let found = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| "bad conflict found count".to_owned())?;
                    MergeConflict::DesignObjectAdvanced {
                        design_object,
                        expected,
                        found,
                    }
                }
                other => return Err(format!("unknown merge conflict tag {other:?}")),
            });
        }
    }
    Ok(conflicts)
}

fn enc_standard_flow(flow: &StandardFlow) -> Vec<(&'static str, String)> {
    vec![
        ("flow", flow.flow.raw().to_string()),
        ("enter_schematic", flow.enter_schematic.raw().to_string()),
        ("enter_layout", flow.enter_layout.raw().to_string()),
        ("simulate", flow.simulate.raw().to_string()),
    ]
}

fn parse_standard_flow(f: &Fields<'_>) -> Result<StandardFlow, String> {
    Ok(StandardFlow {
        flow: f.id("flow", FlowId::from_raw)?,
        enter_schematic: f.id("enter_schematic", ActivityId::from_raw)?,
        enter_layout: f.id("enter_layout", ActivityId::from_raw)?,
        simulate: f.id("simulate", ActivityId::from_raw)?,
    })
}

impl Event {
    /// Serialises the event into its one-line wire form
    /// (`kind|field=value|...` with hex-armoured strings and payloads),
    /// the response-side counterpart of [`Op::to_line`](crate::Op::to_line).
    pub fn to_line(&self) -> String {
        let mut f: Vec<(&str, String)> = Vec::new();
        match self {
            Event::UserAdded(id) => f.push(("id", id.raw().to_string())),
            Event::TeamAdded(id) => f.push(("id", id.raw().to_string())),
            Event::TeamMemberAdded(team, user) => {
                f.push(("team", team.raw().to_string()));
                f.push(("user", user.raw().to_string()));
            }
            Event::ViewtypeRegistered(id) => f.push(("id", id.raw().to_string())),
            Event::ToolRegistered(id) => f.push(("id", id.raw().to_string())),
            Event::StandardFlowDefined(flow) | Event::QualityGatedFlowDefined(flow) => {
                f.extend(enc_standard_flow(flow));
            }
            Event::FlowDefined(id) => f.push(("id", id.raw().to_string())),
            Event::ActivityAdded(id) => f.push(("id", id.raw().to_string())),
            Event::FlowFrozen(id) => f.push(("id", id.raw().to_string())),
            Event::ProjectCreated(id) => f.push(("id", id.raw().to_string())),
            Event::CellCreated(id) => f.push(("id", id.raw().to_string())),
            Event::CellVersionCreated(cv, variant) | Event::VariantPromoted(cv, variant) => {
                f.push(("cv", cv.raw().to_string()));
                f.push(("variant", variant.raw().to_string()));
            }
            Event::VariantDerived(id) => f.push(("id", id.raw().to_string())),
            Event::CompOfDeclared(cv, child) => {
                f.push(("cv", cv.raw().to_string()));
                f.push(("child", child.raw().to_string()));
            }
            Event::CellShared(id) => f.push(("id", id.raw().to_string())),
            Event::Reserved(id) => f.push(("id", id.raw().to_string())),
            Event::Published(id) => f.push(("id", id.raw().to_string())),
            Event::DesignObjectCreated(id) => f.push(("id", id.raw().to_string())),
            Event::DovAdded(id) => f.push(("id", id.raw().to_string())),
            Event::MarkedEquivalent(a, b) => {
                f.push(("a", a.raw().to_string()));
                f.push(("b", b.raw().to_string()));
            }
            Event::ActivityRun { dovs } => f.push(("dovs", enc_ids(dovs, DovId::raw))),
            Event::MergeApplied { cv, dovs } => {
                f.push(("cv", cv.raw().to_string()));
                f.push(("dovs", enc_ids(dovs, DovId::raw)));
            }
            Event::MergeConflict { cv, conflicts } => {
                f.push(("cv", cv.raw().to_string()));
                f.push(("conflicts", enc_conflicts(conflicts)));
            }
            Event::Browsed { data } | Event::DesignDataRead { data } => {
                f.push(("data", enc_blob(data)));
            }
            Event::ConfigurationCreated(id) => f.push(("id", id.raw().to_string())),
            Event::ConfigVersionCreated(id) => f.push(("id", id.raw().to_string())),
            Event::ConfigExported(manifest) => f.extend(enc_manifest(manifest)),
            Event::LvsRun(report) => f.extend(enc_lvs(report)),
            Event::FutureFeaturesSet
            | Event::StagingModeSet
            | Event::FmcadLibraryCreated
            | Event::FmcadCellCreated
            | Event::FmcadCellviewCreated
            | Event::FmcadVersionPurged
            | Event::FmcadFileWritten => {}
            Event::LibraryImported(project, report) => {
                f.push(("project", project.raw().to_string()));
                f.push(("cells", report.cells.to_string()));
                f.push(("design_objects", report.design_objects.to_string()));
                f.push(("versions", report.versions.to_string()));
                f.push(("bytes_copied", report.bytes_copied.to_string()));
            }
            Event::FmcadCheckedOut { data } => f.push(("data", enc_blob(data))),
            Event::FmcadCheckedIn { version } => f.push(("version", version.to_string())),
        }
        assemble(self.kind_name(), &f)
    }

    /// Parses an event back from its [`Event::to_line`] form.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::Journal`] for malformed lines.
    pub fn parse_line(line: &str) -> Result<Event, HybridError> {
        Self::parse_inner(line).map_err(HybridError::Journal)
    }

    fn parse_inner(line: &str) -> Result<Event, String> {
        let f = Fields::parse(line)?;
        let event = match f.kind {
            "user-added" => Event::UserAdded(f.id("id", UserId::from_raw)?),
            "team-added" => Event::TeamAdded(f.id("id", TeamId::from_raw)?),
            "team-member-added" => Event::TeamMemberAdded(
                f.id("team", TeamId::from_raw)?,
                f.id("user", UserId::from_raw)?,
            ),
            "viewtype-registered" => Event::ViewtypeRegistered(f.id("id", ViewTypeId::from_raw)?),
            "tool-registered" => Event::ToolRegistered(f.id("id", ToolId::from_raw)?),
            "standard-flow-defined" => Event::StandardFlowDefined(parse_standard_flow(&f)?),
            "quality-gated-flow-defined" => {
                Event::QualityGatedFlowDefined(parse_standard_flow(&f)?)
            }
            "flow-defined" => Event::FlowDefined(f.id("id", FlowId::from_raw)?),
            "activity-added" => Event::ActivityAdded(f.id("id", ActivityId::from_raw)?),
            "flow-frozen" => Event::FlowFrozen(f.id("id", FlowId::from_raw)?),
            "project-created" => Event::ProjectCreated(f.id("id", ProjectId::from_raw)?),
            "cell-created" => Event::CellCreated(f.id("id", CellId::from_raw)?),
            "cell-version-created" => Event::CellVersionCreated(
                f.id("cv", CellVersionId::from_raw)?,
                f.id("variant", VariantId::from_raw)?,
            ),
            "variant-derived" => Event::VariantDerived(f.id("id", VariantId::from_raw)?),
            "comp-of-declared" => Event::CompOfDeclared(
                f.id("cv", CellVersionId::from_raw)?,
                f.id("child", CellId::from_raw)?,
            ),
            "cell-shared" => Event::CellShared(f.id("id", CellId::from_raw)?),
            "variant-promoted" => Event::VariantPromoted(
                f.id("cv", CellVersionId::from_raw)?,
                f.id("variant", VariantId::from_raw)?,
            ),
            "reserved" => Event::Reserved(f.id("id", CellVersionId::from_raw)?),
            "published" => Event::Published(f.id("id", CellVersionId::from_raw)?),
            "design-object-created" => {
                Event::DesignObjectCreated(f.id("id", DesignObjectId::from_raw)?)
            }
            "dov-added" => Event::DovAdded(f.id("id", DovId::from_raw)?),
            "marked-equivalent" => {
                Event::MarkedEquivalent(f.id("a", DovId::from_raw)?, f.id("b", DovId::from_raw)?)
            }
            "activity-run" => Event::ActivityRun {
                dovs: f.ids("dovs", DovId::from_raw)?,
            },
            "merge-applied" => Event::MergeApplied {
                cv: f.id("cv", CellVersionId::from_raw)?,
                dovs: f.ids("dovs", DovId::from_raw)?,
            },
            "merge-conflict" => Event::MergeConflict {
                cv: f.id("cv", CellVersionId::from_raw)?,
                conflicts: parse_conflicts(&f)?,
            },
            "browsed" => Event::Browsed {
                data: f.blob("data")?,
            },
            "design-data-read" => Event::DesignDataRead {
                data: f.blob("data")?,
            },
            "configuration-created" => Event::ConfigurationCreated(f.id("id", ConfigId::from_raw)?),
            "config-version-created" => {
                Event::ConfigVersionCreated(f.id("id", ConfigVersionId::from_raw)?)
            }
            "config-exported" => Event::ConfigExported(parse_manifest(&f)?),
            "lvs-run" => Event::LvsRun(parse_lvs(&f)?),
            "future-features-set" => Event::FutureFeaturesSet,
            "staging-mode-set" => Event::StagingModeSet,
            "library-imported" => Event::LibraryImported(
                f.id("project", ProjectId::from_raw)?,
                ImportReport {
                    cells: f.usize("cells")?,
                    design_objects: f.usize("design_objects")?,
                    versions: f.usize("versions")?,
                    bytes_copied: f.u64("bytes_copied")?,
                },
            ),
            "fmcad-library-created" => Event::FmcadLibraryCreated,
            "fmcad-cell-created" => Event::FmcadCellCreated,
            "fmcad-cellview-created" => Event::FmcadCellviewCreated,
            "fmcad-checked-out" => Event::FmcadCheckedOut {
                data: f.blob("data")?,
            },
            "fmcad-checked-in" => Event::FmcadCheckedIn {
                version: f.u32("version")?,
            },
            "fmcad-version-purged" => Event::FmcadVersionPurged,
            "fmcad-file-written" => Event::FmcadFileWritten,
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(event)
    }
}

/// Observer of the engine's op/event stream.
///
/// Sinks are notified after the operation has been executed and
/// journaled, in subscription order, built-in sinks first.
pub trait EventSink {
    /// Called after `op` (sequence number `seq`) succeeded with `event`.
    fn on_event(&mut self, seq: u64, op: &Op, event: &Event);

    /// Called after `op` failed with `error`. Failed ops are journaled
    /// too (they may have partial effects that replay must reproduce),
    /// so sinks see them as well. The default implementation ignores
    /// failures.
    fn on_error(&mut self, _seq: u64, _op: &Op, _error: &HybridError) {}
}

/// One entry of the [`TraceSink`] ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The engine sequence number of the operation.
    pub seq: u64,
    /// The operation's kind name.
    pub kind: String,
    /// The operation's short summary.
    pub summary: String,
    /// The outcome: an event kind name or a rendered error.
    pub outcome: String,
    /// Whether the operation succeeded.
    pub ok: bool,
}

/// Default capacity of the tracing ring buffer.
pub const TRACE_CAPACITY: usize = 256;

/// Built-in sink keeping the last N operations in a ring buffer; the
/// desktop shell's `journal` command reads it.
#[derive(Debug)]
pub struct TraceSink {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
}

impl TraceSink {
    /// Creates a sink holding up to `capacity` entries.
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push(&mut self, entry: JournalEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    pub(crate) fn restore(&mut self, entries: Vec<JournalEntry>) {
        self.entries = entries.into();
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
        }
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::new(TRACE_CAPACITY)
    }
}

impl EventSink for TraceSink {
    fn on_event(&mut self, seq: u64, op: &Op, event: &Event) {
        self.push(JournalEntry {
            seq,
            kind: op.kind_name().to_owned(),
            summary: op.summary(),
            outcome: event.kind_name().to_owned(),
            ok: true,
        });
    }

    fn on_error(&mut self, seq: u64, op: &Op, error: &HybridError) {
        self.push(JournalEntry {
            seq,
            kind: op.kind_name().to_owned(),
            summary: op.summary(),
            outcome: format!("error[{}]: {error}", error.kind()),
            ok: false,
        });
    }
}

/// Built-in sink counting operations by kind and failures by error
/// kind; surfaced through the benchmark report's JSON output.
#[derive(Debug, Default)]
pub struct CounterSink {
    ops: BTreeMap<String, u64>,
    failures: BTreeMap<String, u64>,
}

impl CounterSink {
    /// Successful operations by op kind name.
    pub fn ops(&self) -> &BTreeMap<String, u64> {
        &self.ops
    }

    /// Failed operations by error kind name.
    pub fn failures(&self) -> &BTreeMap<String, u64> {
        &self.failures
    }

    /// Total operations observed (successes plus failures).
    pub fn total(&self) -> u64 {
        self.ops.values().sum::<u64>() + self.failures.values().sum::<u64>()
    }

    pub(crate) fn restore(&mut self, ops: BTreeMap<String, u64>, failures: BTreeMap<String, u64>) {
        self.ops = ops;
        self.failures = failures;
    }
}

impl EventSink for CounterSink {
    fn on_event(&mut self, _seq: u64, op: &Op, _event: &Event) {
        *self.ops.entry(op.kind_name().to_owned()).or_insert(0) += 1;
    }

    fn on_error(&mut self, _seq: u64, _op: &Op, error: &HybridError) {
        *self.failures.entry(error.kind().to_owned()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ring_drops_oldest() {
        let mut sink = TraceSink::new(2);
        for i in 0..3u64 {
            sink.on_event(
                i,
                &Op::CreateProject {
                    name: format!("p{i}"),
                },
                &Event::ProjectCreated(ProjectId::from_raw(i)),
            );
        }
        let seqs: Vec<u64> = sink.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert!(sink.entries().all(|e| e.ok));
    }

    #[test]
    fn event_lines_round_trip_including_structured_payloads() {
        let samples = vec![
            Event::UserAdded(UserId::from_raw(7)),
            Event::StandardFlowDefined(StandardFlow {
                flow: FlowId::from_raw(1),
                enter_schematic: ActivityId::from_raw(2),
                enter_layout: ActivityId::from_raw(3),
                simulate: ActivityId::from_raw(4),
            }),
            Event::ActivityRun {
                dovs: vec![DovId::from_raw(0), DovId::from_raw(u64::MAX)],
            },
            Event::ActivityRun { dovs: vec![] },
            Event::MergeApplied {
                cv: CellVersionId::from_raw(13),
                dovs: vec![DovId::from_raw(17), DovId::from_raw(18)],
            },
            Event::MergeConflict {
                cv: CellVersionId::from_raw(13),
                conflicts: vec![
                    MergeConflict::ReservedByOther {
                        holder: UserId::from_raw(4),
                    },
                    MergeConflict::DesignObjectAdvanced {
                        design_object: DesignObjectId::from_raw(16),
                        expected: 2,
                        found: 5,
                    },
                ],
            },
            Event::MergeConflict {
                cv: CellVersionId::from_raw(13),
                conflicts: vec![],
            },
            Event::Browsed {
                data: (0u8..=255).collect::<Vec<_>>().into(),
            },
            Event::ConfigExported(ExportManifest {
                files: vec![("a|=;:\n".into(), 12), (String::new(), 0)],
                total_bytes: 12,
            }),
            Event::ConfigExported(ExportManifest {
                files: vec![],
                total_bytes: 0,
            }),
            Event::LvsRun(LvsReport {
                violations: vec![
                    LvsViolation::MissingNet { net: "n|1".into() },
                    LvsViolation::PhantomNet { net: String::new() },
                    LvsViolation::InstanceMismatch {
                        cell: "sub:cell".into(),
                        schematic: 3,
                        layout: 1,
                    },
                ],
                matched_nets: 9,
            }),
            Event::LibraryImported(
                ProjectId::from_raw(5),
                ImportReport {
                    cells: 1,
                    design_objects: 2,
                    versions: 3,
                    bytes_copied: 4,
                },
            ),
            Event::FmcadCheckedIn { version: u32::MAX },
            Event::FutureFeaturesSet,
        ];
        for event in samples {
            let line = event.to_line();
            assert!(!line.contains('\n'), "single line: {line:?}");
            assert_eq!(
                Event::parse_line(&line).unwrap(),
                event,
                "round trip {line}"
            );
        }
        assert!(Event::parse_line("no-such-event|id=1").is_err());
        assert!(Event::parse_line("user-added|id=zz").is_err());
        assert!(Event::parse_line("lvs-run|matched=1|violations=warp:00").is_err());
        assert!(Event::parse_line("merge-conflict|cv=1|conflicts=z:0").is_err());
    }

    #[test]
    fn counters_split_success_and_failure() {
        let mut sink = CounterSink::default();
        let op = Op::CreateProject { name: "p".into() };
        sink.on_event(1, &op, &Event::ProjectCreated(ProjectId::from_raw(1)));
        sink.on_event(2, &op, &Event::ProjectCreated(ProjectId::from_raw(2)));
        sink.on_error(3, &op, &HybridError::MappingMissing("x".into()));
        assert_eq!(sink.ops()["create-project"], 2);
        assert_eq!(sink.failures()["mapping-missing"], 1);
        assert_eq!(sink.total(), 3);
    }
}
