//! Typed events and observers of the hybrid engine.
//!
//! Each successfully applied [`Op`](crate::Op) produces one [`Event`]
//! carrying the handles (and, for read-like ops, the data) the
//! operation yielded. [`EventSink`] subscribers observe the stream;
//! two built-in sinks back the desktop's `journal` command
//! ([`TraceSink`]) and the benchmark report's operation counters
//! ([`CounterSink`]).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use cad_vfs::Blob;
use jcf::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId, FlowId,
    ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};

use crate::error::HybridError;
use crate::framework::StandardFlow;
use crate::import::ImportReport;
use crate::ops::Op;
use crate::release::ExportManifest;
use cad_tools::LvsReport;

/// The typed outcome of one successfully applied [`Op`](crate::Op).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A user was registered.
    UserAdded(UserId),
    /// A team was created.
    TeamAdded(TeamId),
    /// A user joined a team.
    TeamMemberAdded(TeamId, UserId),
    /// A viewtype was registered on both frameworks.
    ViewtypeRegistered(ViewTypeId),
    /// A tool was registered.
    ToolRegistered(ToolId),
    /// The standard three-tool flow was defined and frozen.
    StandardFlowDefined(StandardFlow),
    /// The quality-gated flow was defined and frozen.
    QualityGatedFlowDefined(StandardFlow),
    /// An empty custom flow was defined.
    FlowDefined(FlowId),
    /// An activity was added to a flow.
    ActivityAdded(ActivityId),
    /// A flow was frozen.
    FlowFrozen(FlowId),
    /// A project (and its coupled library) was created.
    ProjectCreated(ProjectId),
    /// A cell was created.
    CellCreated(CellId),
    /// A cell version (with base variant) was created.
    CellVersionCreated(CellVersionId, VariantId),
    /// A variant was derived.
    VariantDerived(VariantId),
    /// A hierarchy child was declared.
    CompOfDeclared(CellVersionId, CellId),
    /// A cell was shared across projects.
    CellShared(CellId),
    /// A variant was promoted into a new cell version.
    VariantPromoted(CellVersionId, VariantId),
    /// A cell version was reserved into a workspace.
    Reserved(CellVersionId),
    /// A cell version was published.
    Published(CellVersionId),
    /// A design object was created.
    DesignObjectCreated(DesignObjectId),
    /// A design object version was added.
    DovAdded(DovId),
    /// Two design object versions were marked equivalent.
    MarkedEquivalent(DovId, DovId),
    /// An encapsulated activity ran; carries the versions it created.
    ActivityRun {
        /// The design object versions the run produced.
        dovs: Vec<DovId>,
    },
    /// A design object version was browsed.
    Browsed {
        /// The data read.
        data: Blob,
    },
    /// Design data was read via the desktop.
    DesignDataRead {
        /// The data read.
        data: Blob,
    },
    /// A configuration was created.
    ConfigurationCreated(ConfigId),
    /// A configuration version was frozen.
    ConfigVersionCreated(ConfigVersionId),
    /// A configuration version was exported to the file system.
    ConfigExported(ExportManifest),
    /// Layout-versus-schematic ran on a variant.
    LvsRun(LvsReport),
    /// The future-work feature switches changed.
    FutureFeaturesSet,
    /// The staging mode changed.
    StagingModeSet,
    /// An uncoupled FMCAD library was imported.
    LibraryImported(ProjectId, ImportReport),
    /// A standalone FMCAD library was created.
    FmcadLibraryCreated,
    /// An FMCAD cell was created directly.
    FmcadCellCreated,
    /// An FMCAD cellview was created directly.
    FmcadCellviewCreated,
    /// An FMCAD cellview was checked out directly.
    FmcadCheckedOut {
        /// The checked-out data.
        data: Blob,
    },
    /// Data was checked into an FMCAD cellview directly.
    FmcadCheckedIn {
        /// The new version number.
        version: u32,
    },
    /// An FMCAD cellview version was purged.
    FmcadVersionPurged,
    /// A versioned library file was overwritten out-of-band.
    FmcadFileWritten,
}

impl Event {
    /// The stable kind name of this event.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::UserAdded(_) => "user-added",
            Event::TeamAdded(_) => "team-added",
            Event::TeamMemberAdded(..) => "team-member-added",
            Event::ViewtypeRegistered(_) => "viewtype-registered",
            Event::ToolRegistered(_) => "tool-registered",
            Event::StandardFlowDefined(_) => "standard-flow-defined",
            Event::QualityGatedFlowDefined(_) => "quality-gated-flow-defined",
            Event::FlowDefined(_) => "flow-defined",
            Event::ActivityAdded(_) => "activity-added",
            Event::FlowFrozen(_) => "flow-frozen",
            Event::ProjectCreated(_) => "project-created",
            Event::CellCreated(_) => "cell-created",
            Event::CellVersionCreated(..) => "cell-version-created",
            Event::VariantDerived(_) => "variant-derived",
            Event::CompOfDeclared(..) => "comp-of-declared",
            Event::CellShared(_) => "cell-shared",
            Event::VariantPromoted(..) => "variant-promoted",
            Event::Reserved(_) => "reserved",
            Event::Published(_) => "published",
            Event::DesignObjectCreated(_) => "design-object-created",
            Event::DovAdded(_) => "dov-added",
            Event::MarkedEquivalent(..) => "marked-equivalent",
            Event::ActivityRun { .. } => "activity-run",
            Event::Browsed { .. } => "browsed",
            Event::DesignDataRead { .. } => "design-data-read",
            Event::ConfigurationCreated(_) => "configuration-created",
            Event::ConfigVersionCreated(_) => "config-version-created",
            Event::ConfigExported(_) => "config-exported",
            Event::LvsRun(_) => "lvs-run",
            Event::FutureFeaturesSet => "future-features-set",
            Event::StagingModeSet => "staging-mode-set",
            Event::LibraryImported(..) => "library-imported",
            Event::FmcadLibraryCreated => "fmcad-library-created",
            Event::FmcadCellCreated => "fmcad-cell-created",
            Event::FmcadCellviewCreated => "fmcad-cellview-created",
            Event::FmcadCheckedOut { .. } => "fmcad-checked-out",
            Event::FmcadCheckedIn { .. } => "fmcad-checked-in",
            Event::FmcadVersionPurged => "fmcad-version-purged",
            Event::FmcadFileWritten => "fmcad-file-written",
        }
    }
}

/// Observer of the engine's op/event stream.
///
/// Sinks are notified after the operation has been executed and
/// journaled, in subscription order, built-in sinks first.
pub trait EventSink {
    /// Called after `op` (sequence number `seq`) succeeded with `event`.
    fn on_event(&mut self, seq: u64, op: &Op, event: &Event);

    /// Called after `op` failed with `error`. Failed ops are journaled
    /// too (they may have partial effects that replay must reproduce),
    /// so sinks see them as well. The default implementation ignores
    /// failures.
    fn on_error(&mut self, _seq: u64, _op: &Op, _error: &HybridError) {}
}

/// One entry of the [`TraceSink`] ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The engine sequence number of the operation.
    pub seq: u64,
    /// The operation's kind name.
    pub kind: String,
    /// The operation's short summary.
    pub summary: String,
    /// The outcome: an event kind name or a rendered error.
    pub outcome: String,
    /// Whether the operation succeeded.
    pub ok: bool,
}

/// Default capacity of the tracing ring buffer.
pub const TRACE_CAPACITY: usize = 256;

/// Built-in sink keeping the last N operations in a ring buffer; the
/// desktop shell's `journal` command reads it.
#[derive(Debug)]
pub struct TraceSink {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
}

impl TraceSink {
    /// Creates a sink holding up to `capacity` entries.
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push(&mut self, entry: JournalEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    pub(crate) fn restore(&mut self, entries: Vec<JournalEntry>) {
        self.entries = entries.into();
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
        }
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::new(TRACE_CAPACITY)
    }
}

impl EventSink for TraceSink {
    fn on_event(&mut self, seq: u64, op: &Op, event: &Event) {
        self.push(JournalEntry {
            seq,
            kind: op.kind_name().to_owned(),
            summary: op.summary(),
            outcome: event.kind_name().to_owned(),
            ok: true,
        });
    }

    fn on_error(&mut self, seq: u64, op: &Op, error: &HybridError) {
        self.push(JournalEntry {
            seq,
            kind: op.kind_name().to_owned(),
            summary: op.summary(),
            outcome: format!("error[{}]: {error}", error.kind()),
            ok: false,
        });
    }
}

/// Built-in sink counting operations by kind and failures by error
/// kind; surfaced through the benchmark report's JSON output.
#[derive(Debug, Default)]
pub struct CounterSink {
    ops: BTreeMap<String, u64>,
    failures: BTreeMap<String, u64>,
}

impl CounterSink {
    /// Successful operations by op kind name.
    pub fn ops(&self) -> &BTreeMap<String, u64> {
        &self.ops
    }

    /// Failed operations by error kind name.
    pub fn failures(&self) -> &BTreeMap<String, u64> {
        &self.failures
    }

    /// Total operations observed (successes plus failures).
    pub fn total(&self) -> u64 {
        self.ops.values().sum::<u64>() + self.failures.values().sum::<u64>()
    }

    pub(crate) fn restore(&mut self, ops: BTreeMap<String, u64>, failures: BTreeMap<String, u64>) {
        self.ops = ops;
        self.failures = failures;
    }
}

impl EventSink for CounterSink {
    fn on_event(&mut self, _seq: u64, op: &Op, _event: &Event) {
        *self.ops.entry(op.kind_name().to_owned()).or_insert(0) += 1;
    }

    fn on_error(&mut self, _seq: u64, _op: &Op, error: &HybridError) {
        *self.failures.entry(error.kind().to_owned()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ring_drops_oldest() {
        let mut sink = TraceSink::new(2);
        for i in 0..3u64 {
            sink.on_event(
                i,
                &Op::CreateProject {
                    name: format!("p{i}"),
                },
                &Event::ProjectCreated(ProjectId::from_raw(i)),
            );
        }
        let seqs: Vec<u64> = sink.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert!(sink.entries().all(|e| e.ok));
    }

    #[test]
    fn counters_split_success_and_failure() {
        let mut sink = CounterSink::default();
        let op = Op::CreateProject { name: "p".into() };
        sink.on_event(1, &op, &Event::ProjectCreated(ProjectId::from_raw(1)));
        sink.on_event(2, &op, &Event::ProjectCreated(ProjectId::from_raw(2)));
        sink.on_error(3, &op, &HybridError::MappingMissing("x".into()));
        assert_eq!(sink.ops()["create-project"], 2);
        assert_eq!(sink.failures()["mapping-missing"], 1);
        assert_eq!(sink.total(), 3);
    }
}
