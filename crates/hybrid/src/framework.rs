//! The hybrid framework object: coupling state and project structure.

use std::collections::BTreeMap;
use std::sync::Arc;

use cad_tools::ToolKind;
use fmcad::Fmcad;
use jcf::{
    CellId, CellVersionId, DovId, FlowId, Jcf, ProjectId, TeamId, ToolId, UserId, VariantId,
    ViewTypeId,
};
use oms::PMap;

use crate::error::{HybridError, HybridResult};

/// The user name the coupling layer acts under on the FMCAD side.
pub const COUPLER: &str = "jcf-coupler";

/// The §2.4 bootstrap script installed into FMCAD's customisation
/// layer: an extension-language wrapper that locks the
/// direct-manipulation menus of every coupled library. A restart
/// re-runs it (customisation state is session-local, like the original
/// system's).
pub(crate) const BOOTSTRAP_SCRIPT: &str = r#"
                (define (couple-library lib)
                  (host-call "lock-menu" (string-append lib ":Check In"))
                  (host-call "lock-menu" (string-append lib ":Check Out"))
                  (host-call "lock-menu" (string-append lib ":Delete Cell"))
                  (host-call "log" (string-append "coupled " lib)))
                (host-call "register-trigger" "library-coupled" "couple-library")
                "#;

/// How the encapsulation pipeline moves design data between the OMS
/// database, the staging area and the mirrored FMCAD library.
///
/// The *modelled* cost (the [`cad_vfs::CostMeter`] ticks of experiment
/// E9) is identical in both modes — every staging leg still charges its
/// per-byte I/O. What differs is the *host* cost: how many physical
/// byte copies the coupling layer performs per activity run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagingMode {
    /// Design data travels as shared [`cad_vfs::Blob`] handles; each
    /// staging leg is a reference-count bump and mirroring skips the
    /// FMCAD check-in entirely when the content hash of the mirrored
    /// view already matches (the content-addressed mirror cache).
    #[default]
    ZeroCopy,
    /// Every staging and mirroring leg deep-copies the bytes and the
    /// mirror cache is bypassed — the behaviour of the original
    /// Vec-based pipeline, kept as the honest baseline for experiment
    /// E10's wall-clock comparison.
    DeepCopy,
}

impl StagingMode {
    /// One hop of design data through the staging pipeline. Zero-copy
    /// staging just moves the shared handle; deep-copy staging performs
    /// the physical byte copy the original pipeline paid on every leg.
    pub(crate) fn leg(self, data: cad_vfs::Blob) -> cad_vfs::Blob {
        match self {
            StagingMode::ZeroCopy => data,
            StagingMode::DeepCopy => data.deep_clone(),
        }
    }
}

/// Where a design object version is mirrored in the FMCAD world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorLocation {
    /// The FMCAD library (mapped from the JCF project).
    pub library: String,
    /// The FMCAD cell (mapped from the JCF cell version).
    pub cell: String,
    /// The FMCAD view (mapped from the JCF viewtype).
    pub view: String,
    /// The cellview version number.
    pub version: u32,
}

/// The hybrid JCF-FMCAD framework — the paper's contribution.
///
/// JCF is the **master**: all design management (projects, versions,
/// variants, workspaces, flows, configurations) runs through the JCF
/// desktop. FMCAD is the **slave**: its libraries mirror the JCF
/// project data according to Table 1, its tools do the actual editing,
/// and extension-language wrappers keep its menus locked so designers
/// cannot bypass the master (§2.3–2.4).
///
/// `Hybrid` itself exposes only read access; every mutation goes
/// through [`Engine::apply`](crate::Engine::apply) (or its typed
/// wrappers), which dereferences to `Hybrid` for the getters.
///
/// # Examples
///
/// ```
/// use hybrid::Engine;
///
/// # fn main() -> Result<(), hybrid::HybridError> {
/// let mut engine = Engine::new();
/// let admin = engine.admin();
/// let alice = engine.add_user("alice", false)?;
/// let team = engine.add_team(admin, "asic")?;
/// engine.add_team_member(admin, team, alice)?;
/// let flow = engine.standard_flow("asic-flow")?;
/// let project = engine.create_project("alu16")?;
/// let cell = engine.create_cell(project, "adder")?;
/// let (cv, _variant) = engine.create_cell_version(cell, flow.flow, team)?;
/// // The mapped FMCAD cell exists in the mapped library:
/// assert_eq!(engine.fmcad_cell_of(cv)?, "adder_v1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Hybrid {
    pub(crate) jcf: Jcf,
    pub(crate) fmcad: Fmcad,
    pub(crate) admin: UserId,
    /// Coupling maps (Table 1) live on the same persistent trie as the
    /// object store, with interned `Arc<str>` values: capturing a
    /// [`Snapshot`](crate::Snapshot) clones four Arcs instead of
    /// copying every mapping.
    pub(crate) project_lib: PMap<ProjectId, Arc<str>>,
    pub(crate) cv_cell: PMap<CellVersionId, Arc<str>>,
    pub(crate) viewtype_names: PMap<ViewTypeId, Arc<str>>,
    pub(crate) viewtypes_by_name: BTreeMap<String, ViewTypeId>,
    /// Viewtypes registered *after* bootstrap, with the FMCAD
    /// application each is bound to; a restart re-registers them (the
    /// standard four come back with the framework itself).
    pub(crate) viewtype_apps: BTreeMap<String, ToolKind>,
    pub(crate) tool_kinds: BTreeMap<ToolId, ToolKind>,
    pub(crate) dov_mirror: PMap<DovId, Arc<MirrorLocation>>,
    pub(crate) fmcad_ui_ops: u64,
    pub(crate) features: crate::future::FutureFeatures,
    pub(crate) staging_mode: StagingMode,
    /// Content-addressed mirror state: (library, cell, view) → (content
    /// hash, cellview version) of the bytes last mirrored there.
    pub(crate) mirror_cache: BTreeMap<(String, String, String), (u64, u32)>,
    pub(crate) mirror_cache_hits: u64,
    /// Content-addressed hierarchy extraction: (viewtype, content hash)
    /// → child cells referenced by those bytes. Lets the write-time
    /// consistency guard skip re-parsing design data it has already
    /// seen (zero-copy staging only).
    pub(crate) children_cache: BTreeMap<(String, u64), Vec<String>>,
}

/// The three-tool standard flow of the paper's encapsulation scenario
/// (§2.4): schematic entry, layout entry, digital simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandardFlow {
    /// The frozen flow.
    pub flow: FlowId,
    /// Schematic entry (creates `schematic`).
    pub enter_schematic: jcf::ActivityId,
    /// Layout entry (needs `schematic`, creates `layout`).
    pub enter_layout: jcf::ActivityId,
    /// Digital simulation (needs `schematic`, creates `waveform`).
    pub simulate: jcf::ActivityId,
}

impl Hybrid {
    /// Creates a hybrid installation: a fresh JCF, a fresh FMCAD on a
    /// shared virtual file system, the standard viewtypes and tools
    /// registered on both sides, and the §2.4 consistency wrappers
    /// installed in FMCAD's customisation layer.
    ///
    /// # Panics
    ///
    /// Never panics; the fixed bootstrap is infallible by construction
    /// and the `expect`s guard against schema edits.
    pub(crate) fn new() -> Self {
        Self::with_exec_mode(fml::ExecMode::default())
    }

    /// Like [`Hybrid::new`], but selects the extension-language
    /// execution mode *before* the §2.4 bootstrap runs — definitions
    /// do not migrate between the VM and tree-walker global stores,
    /// so the mode has to be in force when the wrappers are defined.
    pub(crate) fn with_exec_mode(mode: fml::ExecMode) -> Self {
        let mut jcf = Jcf::new();
        let admin = jcf
            .add_user("framework-admin", true)
            .expect("fresh installation");
        let mut fmcad = Fmcad::new();
        let mut viewtype_names = PMap::new();
        let mut viewtypes_by_name = BTreeMap::new();
        for name in ["schematic", "layout", "symbol", "waveform"] {
            let id = jcf.add_viewtype(name).expect("fresh installation");
            viewtype_names.insert(id, Arc::from(name));
            viewtypes_by_name.insert(name.to_owned(), id);
        }
        let mut tool_kinds = BTreeMap::new();
        for (name, kind) in [
            ("schematic-entry", ToolKind::SchematicEntry),
            ("layout-editor", ToolKind::LayoutEditor),
            ("simulator", ToolKind::Simulator),
        ] {
            let id = jcf.add_tool(name).expect("fresh installation");
            tool_kinds.insert(id, kind);
        }
        // §2.4: extension-language wrappers lock the FMCAD menus whose
        // free use would corrupt the master's bookkeeping.
        fmcad.customization_mut().set_exec_mode(mode);
        fmcad
            .run_script(BOOTSTRAP_SCRIPT)
            .expect("bootstrap script is well-formed");
        Hybrid {
            jcf,
            fmcad,
            admin,
            project_lib: PMap::new(),
            cv_cell: PMap::new(),
            viewtype_names,
            viewtypes_by_name,
            viewtype_apps: BTreeMap::new(),
            tool_kinds,
            dov_mirror: PMap::new(),
            fmcad_ui_ops: 0,
            features: crate::future::FutureFeatures::default(),
            staging_mode: StagingMode::default(),
            mirror_cache: BTreeMap::new(),
            mirror_cache_hits: 0,
            children_cache: BTreeMap::new(),
        }
    }

    /// The active [`StagingMode`].
    pub fn staging_mode(&self) -> StagingMode {
        self.staging_mode
    }

    /// Switches how design data is moved through the staging area.
    /// Switching to [`StagingMode::DeepCopy`] also clears the mirror
    /// cache so later zero-copy runs start from honest state.
    pub(crate) fn set_staging_mode(&mut self, mode: StagingMode) {
        if mode == StagingMode::DeepCopy {
            self.mirror_cache.clear();
            self.children_cache.clear();
        }
        self.staging_mode = mode;
    }

    /// How many FMCAD check-ins the content-addressed mirror cache has
    /// skipped because the mirrored view already held identical bytes.
    pub fn mirror_cache_hits(&self) -> u64 {
        self.mirror_cache_hits
    }

    /// The built-in framework administrator (a project manager).
    pub fn admin(&self) -> UserId {
        self.admin
    }

    /// Read access to the master framework.
    pub fn jcf(&self) -> &Jcf {
        &self.jcf
    }

    /// Mutable access to the master framework's desktop, bypassing the
    /// engine's ops journal. Only available with the `raw-handles`
    /// feature; prefer [`Engine::apply`](crate::Engine::apply).
    #[cfg(feature = "raw-handles")]
    pub fn jcf_mut(&mut self) -> &mut Jcf {
        &mut self.jcf
    }

    /// Mutable access to the master framework's desktop (crate-internal
    /// without the `raw-handles` feature).
    #[cfg(not(feature = "raw-handles"))]
    #[allow(dead_code)]
    pub(crate) fn jcf_mut(&mut self) -> &mut Jcf {
        &mut self.jcf
    }

    /// Read access to the slave framework.
    pub fn fmcad(&self) -> &Fmcad {
        &self.fmcad
    }

    /// Mutable access to the slave framework, bypassing the engine's
    /// ops journal. Only available with the `raw-handles` feature;
    /// out-of-band FMCAD activity is journalable via the `fmcad-*` ops.
    #[cfg(feature = "raw-handles")]
    pub fn fmcad_mut(&mut self) -> &mut Fmcad {
        &mut self.fmcad
    }

    /// Mutable access to the slave framework (crate-internal without
    /// the `raw-handles` feature).
    #[cfg(not(feature = "raw-handles"))]
    #[allow(dead_code)]
    pub(crate) fn fmcad_mut(&mut self) -> &mut Fmcad {
        &mut self.fmcad
    }

    /// Number of FMCAD-side user interface interactions so far; added
    /// to [`Jcf::desktop_ops`] this quantifies §3.4's two-UI overhead.
    pub fn fmcad_ui_ops(&self) -> u64 {
        self.fmcad_ui_ops
    }

    pub(crate) fn bump_fmcad_ui(&mut self) {
        self.fmcad_ui_ops += 1;
    }

    /// Resolves a registered viewtype by name.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for unknown names.
    pub fn viewtype(&self, name: &str) -> HybridResult<ViewTypeId> {
        self.viewtypes_by_name
            .get(name)
            .copied()
            .ok_or_else(|| HybridError::MappingMissing(format!("viewtype {name}")))
    }

    /// The name of a registered viewtype.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for foreign ids.
    pub fn viewtype_name(&self, id: ViewTypeId) -> HybridResult<&str> {
        self.viewtype_names
            .get(&id)
            .map(|s| &**s)
            .ok_or_else(|| HybridError::MappingMissing(format!("viewtype {id}")))
    }

    /// Registers a new viewtype on **both** sides of the coupling: as a
    /// JCF resource and in FMCAD's viewtype registry (bound to the
    /// application that opens it). Custom flows — like the \[Seep94b\]
    /// FPGA flow — add their viewtypes here.
    ///
    /// # Errors
    ///
    /// Returns JCF name-clash errors.
    pub(crate) fn register_viewtype(
        &mut self,
        name: &str,
        application: ToolKind,
    ) -> HybridResult<ViewTypeId> {
        let id = self.jcf.add_viewtype(name)?;
        self.viewtype_names.insert(id, Arc::from(name));
        self.viewtypes_by_name.insert(name.to_owned(), id);
        self.viewtype_apps.insert(name.to_owned(), application);
        self.fmcad.register_viewtype(name, application);
        Ok(id)
    }

    /// Registers a new encapsulated tool: a JCF tool resource bound to
    /// one of the real tool applications.
    ///
    /// # Errors
    ///
    /// Returns JCF name-clash errors.
    pub(crate) fn register_tool(
        &mut self,
        name: &str,
        kind: ToolKind,
    ) -> HybridResult<jcf::ToolId> {
        let id = self.jcf.add_tool(name)?;
        self.tool_kinds.insert(id, kind);
        Ok(id)
    }

    /// Defines and freezes the paper's three-tool standard flow.
    ///
    /// # Errors
    ///
    /// Returns JCF errors (e.g. a taken flow name).
    pub(crate) fn standard_flow(&mut self, name: &str) -> HybridResult<StandardFlow> {
        let admin = self.admin;
        let schematic = self.viewtype("schematic")?;
        let layout = self.viewtype("layout")?;
        let waveform = self.viewtype("waveform")?;
        let (sch_tool, lay_tool, sim_tool) = {
            let mut by_kind = BTreeMap::new();
            for (&id, &kind) in &self.tool_kinds {
                by_kind.insert(kind, id);
            }
            (
                by_kind[&ToolKind::SchematicEntry],
                by_kind[&ToolKind::LayoutEditor],
                by_kind[&ToolKind::Simulator],
            )
        };
        let flow = self.jcf.define_flow(admin, name)?;
        let enter_schematic = self.jcf.add_activity(
            admin,
            flow,
            "enter-schematic",
            sch_tool,
            &[],
            &[schematic],
            &[],
        )?;
        let enter_layout = self.jcf.add_activity(
            admin,
            flow,
            "enter-layout",
            lay_tool,
            &[schematic],
            &[layout],
            &[enter_schematic],
        )?;
        let simulate = self.jcf.add_activity(
            admin,
            flow,
            "simulate",
            sim_tool,
            &[schematic],
            &[waveform],
            &[enter_schematic],
        )?;
        self.jcf.freeze_flow(admin, flow)?;
        Ok(StandardFlow {
            flow,
            enter_schematic,
            enter_layout,
            simulate,
        })
    }

    /// Defines and freezes a *quality-gated* variant of the standard
    /// flow: layout entry additionally waits for a successful
    /// simulation. §3.5: *"forced design flows can be used to ensure
    /// quality aspects by forcing the successful execution of the
    /// required tools"*.
    ///
    /// # Errors
    ///
    /// Returns JCF errors (e.g. a taken flow name).
    pub(crate) fn quality_gated_flow(&mut self, name: &str) -> HybridResult<StandardFlow> {
        let admin = self.admin;
        let schematic = self.viewtype("schematic")?;
        let layout = self.viewtype("layout")?;
        let waveform = self.viewtype("waveform")?;
        let (sch_tool, lay_tool, sim_tool) = {
            let mut by_kind = BTreeMap::new();
            for (&id, &kind) in &self.tool_kinds {
                by_kind.insert(kind, id);
            }
            (
                by_kind[&ToolKind::SchematicEntry],
                by_kind[&ToolKind::LayoutEditor],
                by_kind[&ToolKind::Simulator],
            )
        };
        let flow = self.jcf.define_flow(admin, name)?;
        let enter_schematic = self.jcf.add_activity(
            admin,
            flow,
            "enter-schematic",
            sch_tool,
            &[],
            &[schematic],
            &[],
        )?;
        let simulate = self.jcf.add_activity(
            admin,
            flow,
            "simulate",
            sim_tool,
            &[schematic],
            &[waveform],
            &[enter_schematic],
        )?;
        let enter_layout = self.jcf.add_activity(
            admin,
            flow,
            "enter-layout",
            lay_tool,
            &[schematic],
            &[layout],
            &[enter_schematic, simulate],
        )?;
        self.jcf.freeze_flow(admin, flow)?;
        Ok(StandardFlow {
            flow,
            enter_schematic,
            enter_layout,
            simulate,
        })
    }

    // --- mapped project structure (Table 1 in action) ---------------------

    /// Creates a JCF project and its mapped FMCAD library
    /// (Table 1: Project → Library), then couples the library (locking
    /// its direct-manipulation menus).
    ///
    /// # Errors
    ///
    /// Returns name-clash errors from either framework.
    pub(crate) fn create_project(&mut self, name: &str) -> HybridResult<ProjectId> {
        let project = self.jcf.create_project(name)?;
        self.fmcad.create_library(name)?;
        self.fmcad
            .fire_trigger("library-coupled", &[fml::Value::Str(name.to_owned())])?;
        self.project_lib.insert(project, Arc::from(name));
        Ok(project)
    }

    /// Creates a JCF cell. No FMCAD counterpart exists yet: Table 1
    /// maps the *cell version* onto the FMCAD cell.
    ///
    /// # Errors
    ///
    /// Returns JCF name-clash errors.
    pub(crate) fn create_cell(&mut self, project: ProjectId, name: &str) -> HybridResult<CellId> {
        Ok(self.jcf.create_cell(project, name)?)
    }

    /// Creates a JCF cell version (with its base variant) and the
    /// mapped FMCAD cell named `<cell>_v<n>`.
    ///
    /// # Errors
    ///
    /// Returns errors from either framework.
    pub(crate) fn create_cell_version(
        &mut self,
        cell: CellId,
        flow: FlowId,
        team: TeamId,
    ) -> HybridResult<(CellVersionId, VariantId)> {
        let (cv, variant) = self.jcf.create_cell_version(cell, flow, team)?;
        let project = self.jcf.project_of(cell)?;
        let lib = self.library_of(project)?.to_owned();
        let number = self.jcf.versions_of(cell).len();
        let cell_name = self.jcf.display_name(cell.object_id());
        let fmcad_cell = format!("{cell_name}_v{number}");
        self.fmcad.create_cell(&lib, &fmcad_cell)?;
        self.cv_cell.insert(cv, Arc::from(fmcad_cell));
        Ok((cv, variant))
    }

    /// The FMCAD library mapped from a project.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for uncoupled projects.
    pub fn library_of(&self, project: ProjectId) -> HybridResult<&str> {
        self.project_lib
            .get(&project)
            .map(|s| &**s)
            .ok_or_else(|| HybridError::MappingMissing(format!("library of {project}")))
    }

    /// The FMCAD cell mapped from a cell version.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for uncoupled versions.
    pub fn fmcad_cell_of(&self, cv: CellVersionId) -> HybridResult<&str> {
        self.cv_cell
            .get(&cv)
            .map(|s| &**s)
            .ok_or_else(|| HybridError::MappingMissing(format!("fmcad cell of {cv}")))
    }

    /// Where a design object version is mirrored in FMCAD, if it is.
    pub fn mirror_of(&self, dov: DovId) -> Option<&MirrorLocation> {
        self.dov_mirror.get(&dov).map(|m| &**m)
    }

    /// The library of the project owning a variant, with the mapped
    /// FMCAD cell of its cell version.
    ///
    /// # Errors
    ///
    /// Returns mapping errors for uncoupled structures.
    pub fn location_of_variant(&self, variant: VariantId) -> HybridResult<(String, String)> {
        let cv = self.jcf.cell_version_of(variant)?;
        let cell = self.jcf.cell_of(cv)?;
        let project = self.jcf.project_of(cell)?;
        let lib = self.library_of(project)?.to_owned();
        let fmcad_cell = self.fmcad_cell_of(cv)?.to_owned();
        Ok((lib, fmcad_cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_registers_viewtypes_and_tools() {
        let hy = Hybrid::new();
        assert!(hy.viewtype("schematic").is_ok());
        assert!(hy.viewtype("layout").is_ok());
        assert!(hy.viewtype("hologram").is_err());
        assert_eq!(hy.tool_kinds.len(), 3);
    }

    #[test]
    fn create_project_couples_a_library() {
        let mut hy = Hybrid::new();
        let project = hy.create_project("alu16").unwrap();
        assert_eq!(hy.library_of(project).unwrap(), "alu16");
        assert!(hy.fmcad().libraries().contains(&"alu16"));
        // The coupling locked the direct-manipulation menus:
        assert!(hy.fmcad_mut().menu_invoke("alu16:Check In").is_err());
        assert!(hy.fmcad_mut().menu_invoke("other:Check In").is_ok());
    }

    #[test]
    fn cell_versions_map_to_fmcad_cells() {
        let mut hy = Hybrid::new();
        let admin = hy.admin();
        let team = hy.jcf_mut().add_team(admin, "t").unwrap();
        let flow = hy.standard_flow("f").unwrap();
        let project = hy.create_project("p").unwrap();
        let cell = hy.create_cell(project, "adder").unwrap();
        let (v1, _) = hy.create_cell_version(cell, flow.flow, team).unwrap();
        let (v2, _) = hy.create_cell_version(cell, flow.flow, team).unwrap();
        assert_eq!(hy.fmcad_cell_of(v1).unwrap(), "adder_v1");
        assert_eq!(hy.fmcad_cell_of(v2).unwrap(), "adder_v2");
        assert_eq!(hy.fmcad().cells("p").unwrap(), vec!["adder_v1", "adder_v2"]);
    }

    #[test]
    fn standard_flow_matches_the_paper() {
        let mut hy = Hybrid::new();
        let flow = hy.standard_flow("asic").unwrap();
        assert!(hy.jcf().is_flow_frozen(flow.flow).unwrap());
        let activities = hy.jcf().activities_of(flow.flow);
        assert_eq!(activities.len(), 3);
        // Layout and simulation both wait on schematic entry.
        assert_eq!(
            hy.jcf().predecessors_of(flow.enter_layout),
            vec![flow.enter_schematic]
        );
        assert_eq!(
            hy.jcf().predecessors_of(flow.simulate),
            vec![flow.enter_schematic]
        );
    }

    #[test]
    fn duplicate_project_names_fail_cleanly() {
        let mut hy = Hybrid::new();
        hy.create_project("p").unwrap();
        assert!(hy.create_project("p").is_err());
    }
}
