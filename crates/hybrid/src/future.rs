//! The paper's future-work features, implemented as opt-in extensions.
//!
//! §3.3/§4 sketch three improvements the 1995 prototype lacked:
//!
//! 1. a **JCF procedural interface** *"which might be used by the
//!    design tools to pass the hierarchy information to JCF"* and which
//!    would also remove the copy-through-the-file-system overhead of
//!    §3.6 — *"However, JCF release 3.0 does not support this
//!    feature"*;
//! 2. **non-isomorphic hierarchies** — *"This feature will be supported
//!    in future releases of JCF"*;
//! 3. **data sharing between projects** (§3.1) — *"It would be helpful
//!    to also provide access to cells of other projects."*
//!
//! All three default to *off* so the base configuration reproduces the
//! paper's prototype exactly; experiments enable them individually as
//! ablations.

use crate::error::HybridResult;
use crate::framework::Hybrid;
use jcf::{CellId, ProjectId, UserId};

/// Opt-in switches for the paper's proposed extensions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FutureFeatures {
    /// The JCF procedural interface: tools exchange design data with
    /// the database directly (no staging copies) and pass hierarchy
    /// information to JCF themselves (auto-declared `CompOf`).
    pub procedural_interface: bool,
    /// Accept per-viewtype (non-isomorphic) hierarchies instead of
    /// rejecting them.
    pub non_isomorphic_hierarchies: bool,
    /// Allow shared cells of other projects as hierarchy children.
    pub cross_project_sharing: bool,
}

impl FutureFeatures {
    /// Everything the paper proposes, switched on.
    pub fn all() -> Self {
        FutureFeatures {
            procedural_interface: true,
            non_isomorphic_hierarchies: true,
            cross_project_sharing: true,
        }
    }
}

impl Hybrid {
    /// The future-work features currently enabled.
    pub fn future_features(&self) -> FutureFeatures {
        self.features
    }

    /// Enables or disables future-work features. The default
    /// (`FutureFeatures::default()`) is the paper's 1995 prototype.
    pub(crate) fn set_future_features(&mut self, features: FutureFeatures) {
        self.features = features;
    }

    /// Shares a cell across projects (requires
    /// [`FutureFeatures::cross_project_sharing`]; delegates to the JCF
    /// desktop, manager-only).
    ///
    /// # Errors
    ///
    /// Returns [`crate::HybridError::MappingMissing`] when the feature
    /// is off, or JCF permission errors.
    pub(crate) fn share_cell(&mut self, actor: UserId, cell: CellId) -> HybridResult<()> {
        if !self.features.cross_project_sharing {
            return Err(crate::HybridError::MappingMissing(
                "cross-project sharing is a future-work feature; enable it first".to_owned(),
            ));
        }
        self.jcf.set_cell_shared(actor, cell, true)?;
        Ok(())
    }

    /// Resolves a child cell name for hierarchy declaration: first in
    /// `project`, then (with sharing enabled) any shared cell of any
    /// project.
    pub(crate) fn resolve_child_cell(&self, project: ProjectId, name: &str) -> Option<CellId> {
        for cell in self.jcf.cells_of(project) {
            if self.jcf.display_name(cell.object_id()) == name {
                return Some(cell);
            }
        }
        if self.features.cross_project_sharing {
            for other in self.project_lib.keys() {
                if other == project {
                    continue;
                }
                for cell in self.jcf.cells_of(other) {
                    if self.jcf.display_name(cell.object_id()) == name
                        && self.jcf.is_cell_shared(cell).unwrap_or(false)
                    {
                        return Some(cell);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encapsulation::ToolOutput;
    use design_data::{format, Layout, MasterRef, Netlist};

    struct Env {
        hy: Hybrid,
        alice: UserId,
        flow: crate::framework::StandardFlow,
        team: jcf::TeamId,
    }

    fn env(features: FutureFeatures) -> Env {
        let mut hy = Hybrid::new();
        hy.set_future_features(features);
        let admin = hy.admin();
        let alice = hy.jcf_mut().add_user("alice", false).unwrap();
        let team = hy.jcf_mut().add_team(admin, "t").unwrap();
        hy.jcf_mut().add_team_member(admin, team, alice).unwrap();
        let flow = hy.standard_flow("f").unwrap();
        Env {
            hy,
            alice,
            flow,
            team,
        }
    }

    fn netlist_using(child: &str) -> Vec<u8> {
        let mut n = Netlist::new("top");
        n.add_net("w").unwrap();
        n.add_instance("u1", MasterRef::Cell(child.to_owned()), &[("a", "w")])
            .unwrap();
        format::write_netlist(&n).into_bytes()
    }

    fn layout_using(child: &str) -> Vec<u8> {
        let mut l = Layout::new("top");
        l.add_placement("i1", child, 0, 0).unwrap();
        format::write_layout(&l).into_bytes()
    }

    #[test]
    fn defaults_reproduce_the_1995_prototype() {
        let hy = Hybrid::new();
        assert_eq!(hy.future_features(), FutureFeatures::default());
        assert!(!hy.future_features().procedural_interface);
    }

    #[test]
    fn procedural_interface_auto_declares_hierarchy() {
        let mut e = env(FutureFeatures {
            procedural_interface: true,
            ..Default::default()
        });
        let project = e.hy.create_project("p").unwrap();
        let top = e.hy.create_cell(project, "top").unwrap();
        let fa = e.hy.create_cell(project, "fa").unwrap();
        let (cv, variant) = e.hy.create_cell_version(top, e.flow.flow, e.team).unwrap();
        e.hy.jcf_mut().reserve(e.alice, cv).unwrap();
        // No manual declaration — the tools pass the hierarchy to JCF.
        e.hy.run_activity(e.alice, variant, e.flow.enter_schematic, false, |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: netlist_using("fa").into(),
            }])
        })
        .unwrap();
        assert!(
            e.hy.jcf().is_declared_child(cv, fa),
            "CompOf was auto-declared"
        );
        assert!(e.hy.verify_project(project).unwrap().is_empty());
    }

    #[test]
    fn procedural_interface_skips_staging_io() {
        let mut base = env(FutureFeatures::default());
        let mut fut = env(FutureFeatures {
            procedural_interface: true,
            ..Default::default()
        });
        for e in [&mut base, &mut fut] {
            let project = e.hy.create_project("p").unwrap();
            let cell = e.hy.create_cell(project, "c").unwrap();
            let (cv, variant) = e.hy.create_cell_version(cell, e.flow.flow, e.team).unwrap();
            e.hy.jcf_mut().reserve(e.alice, cv).unwrap();
            // Big enough that design-data transfers dominate over the
            // fixed .meta bookkeeping.
            let design = design_data::generate::random_logic(500, 7);
            let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
            e.hy.run_activity(e.alice, variant, e.flow.enter_schematic, false, move |_| {
                Ok(vec![ToolOutput {
                    viewtype: "schematic".into(),
                    data: bytes.into(),
                }])
            })
            .unwrap();
        }
        let base_ticks = base.hy.io_meter().ticks;
        let fut_ticks = fut.hy.io_meter().ticks;
        assert!(
            fut_ticks < base_ticks / 2,
            "procedural interface must remove the staging copies: {fut_ticks} vs {base_ticks}"
        );
    }

    #[test]
    fn non_isomorphic_support_accepts_differing_views() {
        let mut e = env(FutureFeatures {
            non_isomorphic_hierarchies: true,
            ..Default::default()
        });
        let project = e.hy.create_project("p").unwrap();
        let top = e.hy.create_cell(project, "top").unwrap();
        let fa = e.hy.create_cell(project, "fa").unwrap();
        let ring = e.hy.create_cell(project, "ring").unwrap();
        let (cv, variant) = e.hy.create_cell_version(top, e.flow.flow, e.team).unwrap();
        e.hy.jcf_mut().reserve(e.alice, cv).unwrap();
        e.hy.jcf_mut().declare_comp_of(e.alice, cv, fa).unwrap();
        e.hy.jcf_mut().declare_comp_of(e.alice, cv, ring).unwrap();
        e.hy.run_activity(e.alice, variant, e.flow.enter_schematic, false, |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: netlist_using("fa").into(),
            }])
        })
        .unwrap();
        // The 1995 prototype rejects this; the future release accepts.
        e.hy.run_activity(e.alice, variant, e.flow.enter_layout, false, |_| {
            Ok(vec![ToolOutput {
                viewtype: "layout".into(),
                data: layout_using("ring").into(),
            }])
        })
        .unwrap();
        assert!(e.hy.verify_project(project).unwrap().is_empty());
    }

    #[test]
    fn cross_project_sharing_allows_foreign_ip() {
        let mut e = env(FutureFeatures {
            cross_project_sharing: true,
            procedural_interface: true,
            ..Default::default()
        });
        let admin = e.hy.admin();
        let ip_project = e.hy.create_project("ip-library").unwrap();
        let ip = e.hy.create_cell(ip_project, "pll").unwrap();
        e.hy.share_cell(admin, ip).unwrap();

        let project = e.hy.create_project("soc").unwrap();
        let top = e.hy.create_cell(project, "top").unwrap();
        let (cv, variant) = e.hy.create_cell_version(top, e.flow.flow, e.team).unwrap();
        e.hy.jcf_mut().reserve(e.alice, cv).unwrap();
        e.hy.run_activity(e.alice, variant, e.flow.enter_schematic, false, |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: netlist_using("pll").into(),
            }])
        })
        .unwrap();
        assert!(
            e.hy.jcf().is_declared_child(cv, ip),
            "shared foreign IP was auto-declared"
        );
    }

    #[test]
    fn sharing_requires_the_feature_switch() {
        let mut e = env(FutureFeatures::default());
        let admin = e.hy.admin();
        let p = e.hy.create_project("p").unwrap();
        let cell = e.hy.create_cell(p, "c").unwrap();
        assert!(e.hy.share_cell(admin, cell).is_err());
    }
}
