//! The time-travel layer: retained snapshots, branch workspaces and
//! impact queries.
//!
//! PR 5 made snapshots O(1) to retain and the durability layer made
//! any persisted seq recoverable; this module spends that substrate on
//! the version-control features a 1995-era coupling could not offer:
//!
//! * **Retention** — the [`Service`](crate::Service) (and the sharded
//!   front-end) keeps a bounded ring of published views keyed by
//!   commit sequence number, governed by a pluggable
//!   [`RetentionPolicy`] plus explicit pins. Retaining a view is a
//!   handful of `Arc` bumps, so the write path never notices.
//! * **Time-travel reads** — [`Session::at`](crate::Session::at)
//!   returns a [`HistoryView`]: every zero-copy read of the live
//!   session (`browse`, `read_design_data`, the coupling-map queries,
//!   the impact queries) answered against any retained seq, `&self`,
//!   without blocking writers.
//! * **Branch workspaces** —
//!   [`Session::reserve_at`](crate::Session::reserve_at) opens a
//!   [`Workspace`] against a historical view; staged writes merge
//!   forward into the current head as **one atomic op**, with
//!   concurrent edits surfaced as typed
//!   [`MergeConflict`](crate::Event::MergeConflict) events through the
//!   existing reserve/publish model.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use cad_vfs::Blob;
use jcf::{CellVersionId, DesignObjectId, DovId, ProjectId, UserId, ViewTypeId};

use crate::error::{HybridError, HybridResult};
use crate::events::Event;
use crate::framework::{MirrorLocation, StagingMode};
use crate::ops::Op;
use crate::snapshot::Snapshot;

/// Which published views the history ring keeps.
///
/// Retention is evaluated at publication time against the commit
/// sequence number; explicitly [pinned](crate::Service::pin) seqs are
/// kept regardless of policy until unpinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Keep the most recent `N` published seqs (at least one).
    LastN(usize),
    /// Keep every `stride`-th seq — the checkpoint-cadence policy:
    /// align `stride` with the durability layer's checkpoint interval
    /// and every retained view has a recoverable twin on disk — up to
    /// `cap` of them.
    EveryNth {
        /// Retain seqs divisible by this (at least 1).
        stride: u64,
        /// Keep at most this many matching seqs (at least one).
        cap: usize,
    },
}

impl Default for RetentionPolicy {
    /// The default keeps the last 64 commits.
    fn default() -> RetentionPolicy {
        RetentionPolicy::LastN(64)
    }
}

/// The bounded retention ring: recent views per [`RetentionPolicy`]
/// plus explicit pins, both keyed by commit seq. Generic over the view
/// type so the single-engine service (retaining `Arc<Snapshot>`) and
/// the sharded service (retaining composed shard views) share one
/// implementation.
#[derive(Debug)]
pub(crate) struct HistoryRing<V> {
    policy: RetentionPolicy,
    ring: VecDeque<(u64, V)>,
    pinned: BTreeMap<u64, V>,
}

impl<V: Clone> HistoryRing<V> {
    pub(crate) fn new(policy: RetentionPolicy) -> HistoryRing<V> {
        HistoryRing {
            policy,
            ring: VecDeque::new(),
            pinned: BTreeMap::new(),
        }
    }

    /// Offers the view published at `seq` to the ring. Idempotent at
    /// an unchanged seq, so callers may offer defensively.
    pub(crate) fn observe(&mut self, seq: u64, view: V) {
        if self.ring.back().is_some_and(|(s, _)| *s >= seq) {
            return;
        }
        match self.policy {
            RetentionPolicy::LastN(n) => {
                self.ring.push_back((seq, view));
                while self.ring.len() > n.max(1) {
                    self.ring.pop_front();
                }
            }
            RetentionPolicy::EveryNth { stride, cap } => {
                if !seq.is_multiple_of(stride.max(1)) {
                    return;
                }
                self.ring.push_back((seq, view));
                while self.ring.len() > cap.max(1) {
                    self.ring.pop_front();
                }
            }
        }
    }

    /// The view retained at exactly `seq`, if any (pins win).
    pub(crate) fn get(&self, seq: u64) -> Option<V> {
        if let Some(view) = self.pinned.get(&seq) {
            return Some(view.clone());
        }
        self.ring
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, view)| view.clone())
    }

    /// Pins a currently retained seq so it survives ring eviction.
    pub(crate) fn pin(&mut self, seq: u64) -> HybridResult<()> {
        match self.get(seq) {
            Some(view) => {
                self.pinned.insert(seq, view);
                Ok(())
            }
            None => Err(self.unreachable(seq)),
        }
    }

    /// Drops a pin; returns whether one existed.
    pub(crate) fn unpin(&mut self, seq: u64) -> bool {
        self.pinned.remove(&seq).is_some()
    }

    /// Every retained seq (ring and pins), sorted ascending.
    pub(crate) fn retained(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.ring.iter().map(|(s, _)| *s).collect();
        out.extend(self.pinned.keys().copied());
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The typed miss for `seq`: closest retained boundary attached.
    pub(crate) fn unreachable(&self, seq: u64) -> HybridError {
        let reachable = self
            .retained()
            .into_iter()
            .min_by_key(|s| s.abs_diff(seq))
            .unwrap_or(0);
        HybridError::SeqUnreachable {
            requested: seq,
            reachable,
        }
    }
}

/// A session's read handle on one retained snapshot: every zero-copy
/// read of the live [`Session`](crate::Session), answered at a fixed
/// historical seq. All methods are `&self` and never touch the write
/// path — a history read can not block (or be blocked by) writers.
///
/// Created by [`Session::at`](crate::Session::at).
#[derive(Debug, Clone)]
pub struct HistoryView {
    user: UserId,
    snap: Arc<Snapshot>,
}

impl HistoryView {
    pub(crate) fn new(user: UserId, snap: Arc<Snapshot>) -> HistoryView {
        HistoryView { user, snap }
    }

    /// The commit seq this view is fixed at.
    pub fn seq(&self) -> u64 {
        self.snap.seq()
    }

    /// The user the owning session acts as.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The staging mode that was active at this seq.
    pub fn staging_mode(&self) -> StagingMode {
        self.snap.staging_mode()
    }

    /// The underlying retained [`Snapshot`], for arbitrary queries.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snap
    }

    /// Reads a design object version's data as it stood at this seq —
    /// zero-copy, with the live desktop's visibility rule.
    ///
    /// # Errors
    ///
    /// Returns the same visibility errors as the live path.
    pub fn read_design_data(&self, dov: DovId) -> HybridResult<Blob> {
        self.snap.read_design_data(self.user, dov)
    }

    /// Browses a design object version at this seq (the same zero-copy
    /// path as [`HistoryView::read_design_data`]).
    ///
    /// # Errors
    ///
    /// Returns the same visibility errors as the live path.
    pub fn browse(&self, dov: DovId) -> HybridResult<Blob> {
        self.snap.browse(self.user, dov)
    }

    /// The FMCAD library mapped from a project at this seq.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for uncoupled projects.
    pub fn library_of(&self, project: ProjectId) -> HybridResult<&str> {
        self.snap.library_of(project)
    }

    /// The FMCAD cell mapped from a cell version at this seq.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for uncoupled versions.
    pub fn fmcad_cell_of(&self, cv: CellVersionId) -> HybridResult<&str> {
        self.snap.fmcad_cell_of(cv)
    }

    /// The name of a registered viewtype at this seq.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for foreign ids.
    pub fn viewtype_name(&self, id: ViewTypeId) -> HybridResult<&str> {
        self.snap.viewtype_name(id)
    }

    /// Where a design object version was mirrored in FMCAD at this
    /// seq, if it was.
    pub fn mirror_of(&self, dov: DovId) -> Option<&MirrorLocation> {
        self.snap.mirror_of(dov)
    }

    /// Everything that goes stale if `cv` changes, evaluated on this
    /// seq's derivation/equivalence graph
    /// (see [`Snapshot::stale_dovs`]).
    pub fn stale_dovs(&self, cv: CellVersionId) -> Vec<DovId> {
        self.snap.stale_dovs(cv)
    }

    /// The stale set narrowed to FMCAD-mirrored cellviews
    /// (see [`Snapshot::impacted_cellviews`]).
    pub fn impacted_cellviews(&self, cv: CellVersionId) -> Vec<(DovId, Arc<MirrorLocation>)> {
        self.snap.impacted_cellviews(cv)
    }
}

/// How a [`Workspace`] reaches the write path when it merges forward.
#[derive(Debug, Clone)]
pub(crate) enum MergeBackend {
    /// Through a single-engine [`Service`](crate::Service) on behalf
    /// of the opening session.
    Single {
        service: crate::Service,
        session: u64,
    },
    /// Through the sharded front-end.
    Sharded(crate::ShardedService),
}

/// A branch workspace: opened against a *historical* view with
/// [`Session::reserve_at`](crate::Session::reserve_at), edited by
/// staging new design-object versions, and landed on the current head
/// with [`Workspace::merge_forward`] — one atomic
/// reserve → write → publish, with optimistic conflict detection
/// against the recorded branch point.
///
/// Unlike a live [`reserve`](crate::Session::reserve), opening a
/// workspace takes **no lock on the head**: other designers keep
/// publishing while the branch is edited. The price is optimism — if
/// the head moved under a staged object (or someone holds the
/// reservation at merge time), the merge comes back as a typed
/// [`MergeConflict`](crate::Event::MergeConflict) event and changes
/// nothing.
#[derive(Debug)]
pub struct Workspace {
    backend: MergeBackend,
    user: UserId,
    cv: CellVersionId,
    base_seq: u64,
    /// Per design object known at the branch point, its version count
    /// then — the optimistic-concurrency baseline.
    expected: Vec<(DesignObjectId, u32)>,
    staged: Vec<(DesignObjectId, Blob)>,
}

impl Workspace {
    pub(crate) fn open(
        backend: MergeBackend,
        user: UserId,
        cv: CellVersionId,
        base: &Snapshot,
    ) -> Workspace {
        let mut expected = Vec::new();
        for variant in base.jcf().variants_of(cv) {
            for design_object in base.jcf().design_objects_of(variant) {
                let count = base.jcf().versions_of_design_object(design_object).len() as u32;
                expected.push((design_object, count));
            }
        }
        expected.sort_unstable_by_key(|(d, _)| *d);
        expected.dedup();
        Workspace {
            backend,
            user,
            cv,
            base_seq: base.seq(),
            expected,
            staged: Vec::new(),
        }
    }

    pub(crate) fn open_sharded(
        service: crate::ShardedService,
        user: UserId,
        cv: CellVersionId,
        base_seq: u64,
        base: &crate::ShardView,
    ) -> HybridResult<Workspace> {
        Ok(Workspace {
            backend: MergeBackend::Sharded(service),
            user,
            cv,
            base_seq,
            expected: base.design_object_versions(cv)?,
            staged: Vec::new(),
        })
    }

    /// The designer who opened the workspace.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The cell version this workspace branches.
    pub fn cv(&self) -> CellVersionId {
        self.cv
    }

    /// The retained commit seq the workspace branched from.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The design objects staged so far, in staging order.
    pub fn staged(&self) -> impl Iterator<Item = DesignObjectId> + '_ {
        self.staged.iter().map(|(d, _)| *d)
    }

    /// The design objects that existed under the branched cell version
    /// at the branch point, ascending by id — the stageable set.
    pub fn objects(&self) -> impl Iterator<Item = DesignObjectId> + '_ {
        self.expected.iter().map(|(d, _)| *d)
    }

    /// Stages one new version of `design_object` for the merge. The
    /// object must have existed under the branched cell version at the
    /// branch point; restaging the same object replaces the earlier
    /// staged data (a merge publishes one new version per object).
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::Merge`] for objects the branch point
    /// never knew.
    pub fn stage(&mut self, design_object: DesignObjectId, data: Blob) -> HybridResult<()> {
        if !self.expected.iter().any(|(d, _)| *d == design_object) {
            return Err(HybridError::Merge(format!(
                "{design_object} did not exist under {} at seq {}",
                self.cv, self.base_seq
            )));
        }
        if let Some(slot) = self.staged.iter_mut().find(|(d, _)| *d == design_object) {
            slot.1 = data;
        } else {
            self.staged.push((design_object, data));
        }
        Ok(())
    }

    /// Merges the workspace into the current head as one atomic op and
    /// returns the commit seq with the outcome event:
    /// [`Event::MergeApplied`] when the head accepted every staged
    /// write, or [`Event::MergeConflict`] (with *no* state change) when
    /// the head moved underneath the branch. Both outcomes commit,
    /// journal and replay deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::Merge`] for workspaces inconsistent with
    /// the head (e.g. a staged object that no longer exists) and
    /// desktop errors from the underlying reserve/publish.
    pub fn merge_forward(self) -> HybridResult<(u64, Event)> {
        let op = Op::MergeForward {
            user: self.user,
            cv: self.cv,
            base_seq: self.base_seq,
            expected: self.expected,
            writes: self.staged,
        };
        match self.backend {
            MergeBackend::Single { service, session } => service.submit_from(session, op),
            MergeBackend::Sharded(service) => service.submit(op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_n_keeps_a_sliding_window() {
        let mut ring: HistoryRing<u64> = HistoryRing::new(RetentionPolicy::LastN(3));
        for seq in 1..=5 {
            ring.observe(seq, seq * 10);
        }
        assert_eq!(ring.retained(), vec![3, 4, 5]);
        assert_eq!(ring.get(4), Some(40));
        assert_eq!(ring.get(1), None);
    }

    #[test]
    fn observe_is_idempotent_at_an_unchanged_seq() {
        let mut ring: HistoryRing<u64> = HistoryRing::new(RetentionPolicy::LastN(3));
        ring.observe(1, 10);
        ring.observe(1, 99);
        assert_eq!(ring.get(1), Some(10), "the first offer wins");
        assert_eq!(ring.retained(), vec![1]);
    }

    #[test]
    fn every_nth_skips_off_stride_seqs() {
        let mut ring: HistoryRing<u64> =
            HistoryRing::new(RetentionPolicy::EveryNth { stride: 3, cap: 2 });
        for seq in 1..=12 {
            ring.observe(seq, seq);
        }
        assert_eq!(ring.retained(), vec![9, 12], "stride 3, capped at 2");
    }

    #[test]
    fn pins_survive_ring_eviction() {
        let mut ring: HistoryRing<u64> = HistoryRing::new(RetentionPolicy::LastN(2));
        ring.observe(1, 10);
        ring.pin(1).unwrap();
        for seq in 2..=5 {
            ring.observe(seq, seq);
        }
        assert_eq!(ring.retained(), vec![1, 4, 5]);
        assert_eq!(ring.get(1), Some(10));
        assert!(ring.unpin(1));
        assert!(!ring.unpin(1), "second unpin is a no-op");
        assert_eq!(ring.get(1), None);
    }

    #[test]
    fn misses_name_the_closest_retained_boundary() {
        let mut ring: HistoryRing<u64> = HistoryRing::new(RetentionPolicy::LastN(2));
        ring.observe(7, 7);
        ring.observe(9, 9);
        match ring.unreachable(8) {
            HybridError::SeqUnreachable {
                requested,
                reachable,
            } => {
                assert_eq!(requested, 8);
                assert!(reachable == 7 || reachable == 9);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(ring.pin(42).is_err(), "pinning an unretained seq fails");
    }
}
