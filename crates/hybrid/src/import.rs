//! Importing an existing FMCAD library into JCF — Table 1 in action.
//!
//! The coupling scenario starts from pre-existing FMCAD libraries, so
//! the hybrid framework must map them into the master's world: the
//! library becomes a project, each FMCAD cell a JCF cell with one cell
//! version, each view a viewtype, each cellview a design object and
//! each cellview version a design object version (§2.3, Table 1).

use jcf::{FlowId, ProjectId, TeamId, UserId};

use crate::error::HybridResult;
use crate::framework::{Hybrid, MirrorLocation};

/// Statistics of one library import.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImportReport {
    /// JCF cells created (one per FMCAD cell).
    pub cells: usize,
    /// Design objects created (one per cellview).
    pub design_objects: usize,
    /// Design object versions created (one per cellview version).
    pub versions: usize,
    /// Bytes copied from the library into the OMS database.
    pub bytes_copied: u64,
}

impl Hybrid {
    /// Imports an (uncoupled) FMCAD library into the master framework,
    /// following Table 1 row for row. `actor` must be a member of
    /// `team`; the created cell versions use `flow` and `team`. The
    /// data of every cellview version is copied out of the library
    /// through the staging area into the OMS database, and the library
    /// becomes the coupled mirror of the new project.
    ///
    /// # Errors
    ///
    /// Returns errors from either framework (e.g. an unknown library
    /// or a project name collision).
    pub(crate) fn import_library(
        &mut self,
        actor: UserId,
        library: &str,
        flow: FlowId,
        team: TeamId,
    ) -> HybridResult<(ProjectId, ImportReport)> {
        let mut report = ImportReport::default();
        let project = self.jcf.create_project(library)?;
        self.project_lib
            .insert(project, std::sync::Arc::from(library));
        self.fmcad
            .fire_trigger("library-coupled", &[fml::Value::Str(library.to_owned())])?;

        // Pass 1 — structure: one JCF cell + cell version per FMCAD cell
        // (Table 1 maps the *cell version* onto the FMCAD cell).
        let cell_names: Vec<String> = self
            .fmcad
            .cells(library)?
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut created = Vec::new();
        for cell_name in &cell_names {
            let cell = self.jcf.create_cell(project, cell_name)?;
            let (cv, variant) = self.jcf.create_cell_version(cell, flow, team)?;
            self.cv_cell
                .insert(cv, std::sync::Arc::from(cell_name.as_str()));
            self.jcf.reserve(actor, cv)?;
            report.cells += 1;
            created.push((cell_name.clone(), cell, cv, variant));
        }

        // Pass 2 — design data: cellviews become design objects,
        // cellview versions become design object versions (by copy),
        // collecting the hierarchy references the data contains.
        let mut child_edges: Vec<(jcf::CellVersionId, String)> = Vec::new();
        for (cell_name, _, cv, variant) in &created {
            let views: Vec<String> = self
                .fmcad
                .views(library, cell_name)?
                .into_iter()
                .map(str::to_owned)
                .collect();
            for view in views {
                let viewtype = self.viewtype(&view)?;
                let design_object = self
                    .jcf
                    .create_design_object(actor, *variant, &view, viewtype)?;
                report.design_objects += 1;
                for version in self.fmcad.versions(library, cell_name, &view)? {
                    let data = self
                        .fmcad
                        .read_version(library, cell_name, &view, version)?;
                    report.bytes_copied += data.len() as u64;
                    for child in crate::consistency::children_referenced(&view, &data) {
                        child_edges.push((*cv, child));
                    }
                    let dov = self
                        .jcf
                        .add_design_object_version(actor, design_object, data)?;
                    self.dov_mirror.insert(
                        dov,
                        std::sync::Arc::new(MirrorLocation {
                            library: library.to_owned(),
                            cell: cell_name.clone(),
                            view: view.clone(),
                            version,
                        }),
                    );
                    report.versions += 1;
                }
            }
        }

        // Pass 3 — hierarchy: the paper requires *"the complete design
        // hierarchy information has to be defined and passed to JCF"*;
        // importing performs that desktop submission in batch.
        for (cv, child_name) in child_edges {
            if let Some((_, child_cell, _, _)) =
                created.iter().find(|(name, ..)| *name == child_name)
            {
                if !self.jcf.is_declared_child(cv, *child_cell) {
                    self.jcf.declare_comp_of(actor, cv, *child_cell)?;
                }
            }
        }

        // Pass 4 — publish everything so the team can take over.
        for (_, _, cv, _) in &created {
            self.jcf.publish(actor, *cv)?;
        }
        Ok((project, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_data::{format, generate};

    #[test]
    fn import_maps_library_per_table_1() {
        let mut hy = Hybrid::new();
        let admin = hy.admin();
        let alice = hy.jcf_mut().add_user("alice", false).unwrap();
        let team = hy.jcf_mut().add_team(admin, "t").unwrap();
        hy.jcf_mut().add_team_member(admin, team, alice).unwrap();
        let flow = hy.standard_flow("f").unwrap();

        // Build a legacy (uncoupled) FMCAD library.
        let design = generate::ripple_adder(2);
        let fm = hy.fmcad_mut();
        fm.create_library("legacy").unwrap();
        for (cell, netlist) in &design.netlists {
            fm.create_cell("legacy", cell).unwrap();
            fm.create_cellview("legacy", cell, "schematic", "schematic")
                .unwrap();
            fm.checkin(
                "old",
                "legacy",
                cell,
                "schematic",
                format::write_netlist(netlist).into_bytes(),
            )
            .unwrap();
        }

        let (project, report) = hy.import_library(alice, "legacy", flow.flow, team).unwrap();
        assert_eq!(report.cells, 2);
        assert_eq!(report.design_objects, 2);
        assert_eq!(report.versions, 2);
        assert!(report.bytes_copied > 0);

        // The mapping holds end to end: project->library, cell
        // versions->cells, and the imported data verifies clean.
        assert_eq!(hy.library_of(project).unwrap(), "legacy");
        let cells = hy.jcf().cells_of(project);
        assert_eq!(cells.len(), 2);
        for cell in cells {
            assert_eq!(hy.jcf().versions_of(cell).len(), 1);
        }
        assert!(hy.verify_project(project).unwrap().is_empty());
    }

    #[test]
    fn import_rejects_unknown_library() {
        let mut hy = Hybrid::new();
        let admin = hy.admin();
        let team = hy.jcf_mut().add_team(admin, "t").unwrap();
        hy.jcf_mut().add_team_member(admin, team, admin).unwrap();
        let flow = hy.standard_flow("f").unwrap();
        assert!(hy.import_library(admin, "ghost", flow.flow, team).is_err());
    }
}
