//! # hybrid — the JCF-FMCAD hybrid framework
//!
//! The paper's contribution: a coupling of the JESSI-COMMON-Framework
//! (master) with the FMCAD ECAD framework (slave) that combines JCF's
//! design management, concurrent engineering and configuration
//! facilities with FMCAD's integrated tools and customisation language.
//!
//! The crate implements the full §2.3–§2.4 machinery:
//!
//! * **Data model mapping** ([`mapping`], Table 1): Project↔Library,
//!   CellVersion↔Cell, ViewType↔View, DesignObject↔Cellview,
//!   DesignObjectVersion↔Cellview Version — both as a constant table
//!   and operationally ([`Hybrid::import_library`]).
//! * **Tool encapsulation** ([`Hybrid::run_activity`]): each FMCAD tool
//!   is one JCF activity; inputs are copied out of the OMS database
//!   through the staging area, the tool runs, outputs are consistency
//!   checked, copied back, derivation-tracked and mirrored into the
//!   mapped FMCAD library.
//! * **Consistency guards** ([`Hybrid::verify_project`] and the
//!   write-time checks): hierarchy references must be declared via the
//!   JCF desktop beforehand, non-isomorphic schematic/layout
//!   hierarchies are rejected (JCF 3.0 cannot represent them, §3.3),
//!   and extension-language wrappers lock the FMCAD menus that would
//!   bypass the master.
//! * **The §3.6 performance profile**: metadata operations are cheap;
//!   design data pays the copy path even for read-only access
//!   ([`Hybrid::browse`]), while FMCAD natively reads in place.
//!
//! # Examples
//!
//! ```
//! use hybrid::{Hybrid, ToolOutput};
//!
//! # fn main() -> Result<(), hybrid::HybridError> {
//! let mut hy = Hybrid::new();
//! let admin = hy.admin();
//! let alice = hy.jcf_mut().add_user("alice", false)?;
//! let team = hy.jcf_mut().add_team(admin, "asic")?;
//! hy.jcf_mut().add_team_member(admin, team, alice)?;
//! let flow = hy.standard_flow("asic")?;
//!
//! let project = hy.create_project("alu16")?;
//! let cell = hy.create_cell(project, "adder")?;
//! let (cv, variant) = hy.create_cell_version(cell, flow.flow, team)?;
//! hy.jcf_mut().reserve(alice, cv)?;
//!
//! // Schematic entry runs as a JCF activity wrapping the FMCAD tool.
//! let dovs = hy.run_activity(alice, variant, flow.enter_schematic, false, |_session| {
//!     Ok(vec![ToolOutput {
//!         viewtype: "schematic".into(),
//!         data: b"netlist adder\nport a input\n".to_vec().into(),
//!     }])
//! })?;
//! assert!(hy.mirror_of(dovs[0]).is_some(), "mirrored into the FMCAD library");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod encapsulation;
mod error;
mod framework;
mod future;
mod import;
pub mod mapping;
mod release;

pub use consistency::ConsistencyFinding;
pub use encapsulation::{ToolOutput, ToolSession, STAGING_ROOT};
pub use error::{HybridError, HybridResult};
pub use framework::{Hybrid, MirrorLocation, StagingMode, StandardFlow, COUPLER};
pub use future::FutureFeatures;
pub use import::ImportReport;
pub use release::ExportManifest;
