//! # hybrid — the JCF-FMCAD hybrid framework
//!
//! The paper's contribution: a coupling of the JESSI-COMMON-Framework
//! (master) with the FMCAD ECAD framework (slave) that combines JCF's
//! design management, concurrent engineering and configuration
//! facilities with FMCAD's integrated tools and customisation language.
//!
//! The crate implements the full §2.3–§2.4 machinery:
//!
//! * **Data model mapping** ([`mapping`], Table 1): Project↔Library,
//!   CellVersion↔Cell, ViewType↔View, DesignObject↔Cellview,
//!   DesignObjectVersion↔Cellview Version — both as a constant table
//!   and operationally ([`Engine::import_library`]).
//! * **Tool encapsulation** ([`Engine::run_activity`]): each FMCAD tool
//!   is one JCF activity; inputs are copied out of the OMS database
//!   through the staging area, the tool runs, outputs are consistency
//!   checked, copied back, derivation-tracked and mirrored into the
//!   mapped FMCAD library.
//! * **Consistency guards** ([`Engine::verify_project`] and the
//!   write-time checks): hierarchy references must be declared via the
//!   JCF desktop beforehand, non-isomorphic schematic/layout
//!   hierarchies are rejected (JCF 3.0 cannot represent them, §3.3),
//!   and extension-language wrappers lock the FMCAD menus that would
//!   bypass the master.
//! * **The §3.6 performance profile**: metadata operations are cheap;
//!   design data pays the copy path even for read-only access
//!   ([`Engine::browse`]), while FMCAD natively reads in place.
//!
//! Every mutation flows through the command/event core ([`Engine`]):
//! call sites build (or let the typed wrappers build) an [`Op`], the
//! engine applies it, journals it, and emits a typed [`Event`] to the
//! subscribed [`EventSink`]s. The journal makes restarts replayable
//! ([`Engine::checkpoint`] / [`Engine::restore_from`]), incremental
//! (delta checkpoints against the last base image, segmented journal
//! files), and navigable ([`Engine::recover_at`] restores any
//! persisted sequence number exactly).
//!
//! # Examples
//!
//! ```
//! use hybrid::{Engine, ToolOutput};
//!
//! # fn main() -> Result<(), hybrid::HybridError> {
//! let mut engine = Engine::new();
//! let admin = engine.admin();
//! let alice = engine.add_user("alice", false)?;
//! let team = engine.add_team(admin, "asic")?;
//! engine.add_team_member(admin, team, alice)?;
//! let flow = engine.standard_flow("asic")?;
//!
//! let project = engine.create_project("alu16")?;
//! let cell = engine.create_cell(project, "adder")?;
//! let (cv, variant) = engine.create_cell_version(cell, flow.flow, team)?;
//! engine.reserve(alice, cv)?;
//!
//! // Schematic entry runs as a JCF activity wrapping the FMCAD tool.
//! let dovs = engine.run_activity(alice, variant, flow.enter_schematic, false, |_session| {
//!     Ok(vec![ToolOutput {
//!         viewtype: "schematic".into(),
//!         data: b"netlist adder\nport a input\n".to_vec().into(),
//!     }])
//! })?;
//! assert!(engine.mirror_of(dovs[0]).is_some(), "mirrored into the FMCAD library");
//! // Every op above is journaled and observable.
//! assert_eq!(engine.seq(), 9);
//! assert_eq!(engine.counters().ops()["run-activity"], 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::redundant_clone)]

mod builder;
mod codec;
mod consistency;
mod encapsulation;
mod engine;
mod error;
mod events;
mod framework;
mod future;
mod history;
mod import;
pub mod mapping;
mod ops;
mod release;
mod service;
mod shard;
mod snapshot;

pub use builder::EngineBuilder;
pub use consistency::ConsistencyFinding;
pub use encapsulation::{ToolOutput, ToolSession, STAGING_ROOT};
pub use engine::{BaseImage, Engine, RecoveryReport};
pub use error::{HybridError, HybridResult};
pub use events::{
    CounterSink, Event, EventSink, JournalEntry, MergeConflict, TraceSink, TRACE_CAPACITY,
};
pub use fml::ExecMode;
pub use framework::{Hybrid, MirrorLocation, StagingMode, StandardFlow, COUPLER};
pub use future::FutureFeatures;
pub use history::{HistoryView, RetentionPolicy, Workspace};
pub use import::ImportReport;
pub use ops::Op;
pub use release::ExportManifest;
pub use service::{Service, ServiceStats, Session};
pub use shard::{
    shard_of_name, RouterView, ShardHistoryView, ShardLaneStats, ShardStats, ShardView,
    ShardedService, ShardedServiceBuilder, ShardedSession, VIRT_BASE,
};
pub use snapshot::Snapshot;
