//! Table 1: the JCF-FMCAD data model mapping.
//!
//! *"To summarize the possible mapping of the information models,
//! Table 1 shows the current mapping strategy."* (§2.3) JCF is the
//! master; each JCF object class maps onto an FMCAD object class. The
//! table below is the paper's Table 1 verbatim; experiment E1
//! regenerates it and exercises it operationally via
//! [`Engine::import_library`](crate::Engine::import_library).

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingRow {
    /// The JCF object class (master side).
    pub jcf_object: &'static str,
    /// The FMCAD object class it maps onto (slave side).
    pub fmcad_object: &'static str,
}

/// The paper's Table 1, row for row.
pub const TABLE_1: &[MappingRow] = &[
    MappingRow {
        jcf_object: "Project",
        fmcad_object: "Library",
    },
    MappingRow {
        jcf_object: "CellVersion",
        fmcad_object: "Cell",
    },
    MappingRow {
        jcf_object: "ViewType",
        fmcad_object: "View",
    },
    MappingRow {
        jcf_object: "DesignObject",
        fmcad_object: "Cellview",
    },
    MappingRow {
        jcf_object: "DesignObjectVersion",
        fmcad_object: "Cellview Version",
    },
];

/// JCF concepts with **no** FMCAD counterpart — what the reverse
/// mapping (FMCAD as master) would lose. §3.2: *"users, teams, tools
/// and flows and their relationships ... cannot be distinguished within
/// FMCAD"*; variants and derivation relations have no home either.
/// The master/slave ablation in experiment E1 reports this list.
pub const UNMAPPABLE_TO_FMCAD: &[&str] = &[
    "User",
    "Team",
    "Tool",
    "Flow",
    "Activity",
    "ActivityExecution",
    "Variant",
    "Derivation relation",
    "Workspace reservation",
];

/// FMCAD concepts the forward mapping absorbs rather than mirrors:
/// checkout state becomes the JCF workspace reservation, and dynamic
/// hierarchy binding is replaced by declared `CompOf` metadata.
pub const ABSORBED_FROM_FMCAD: &[&str] = &[
    "CheckOut Status",
    "Locked Flag",
    "dynamic hierarchy binding",
];

/// Renders Table 1 in the paper's two-column layout.
pub fn render_table_1() -> String {
    let mut out = String::from("JCF object            | FMCAD object\n");
    out.push_str("----------------------+-----------------\n");
    for row in TABLE_1 {
        out.push_str(&format!("{:<22}| {}\n", row.jcf_object, row.fmcad_object));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_matches_the_paper() {
        assert_eq!(TABLE_1.len(), 5);
        assert_eq!(TABLE_1[0].jcf_object, "Project");
        assert_eq!(TABLE_1[0].fmcad_object, "Library");
        assert_eq!(TABLE_1[1].jcf_object, "CellVersion");
        assert_eq!(TABLE_1[1].fmcad_object, "Cell");
        assert_eq!(TABLE_1[4].fmcad_object, "Cellview Version");
    }

    #[test]
    fn every_jcf_side_class_exists_in_the_jcf_schema() {
        let schema = jcf::schema::jcf_schema();
        for row in TABLE_1 {
            assert!(
                schema.class_by_name(row.jcf_object).is_some(),
                "Table 1 references unknown JCF class {}",
                row.jcf_object
            );
        }
    }

    #[test]
    fn unmappable_classes_are_genuinely_jcf_only() {
        let schema = jcf::schema::jcf_schema();
        for name in UNMAPPABLE_TO_FMCAD {
            // Entity classes must exist in JCF; relation-like entries are
            // prose descriptions and are exempt.
            if !name.contains(' ') {
                assert!(
                    schema.class_by_name(name).is_some(),
                    "{name} should be a JCF class"
                );
            }
        }
    }

    #[test]
    fn rendered_table_lists_all_rows() {
        let text = render_table_1();
        for row in TABLE_1 {
            assert!(text.contains(row.jcf_object));
            assert!(text.contains(row.fmcad_object));
        }
    }
}
