//! The typed command vocabulary of the hybrid framework.
//!
//! Every mutation of the coupled JCF/FMCAD world is described by one
//! [`Op`] value. The [`Engine`](crate::Engine) is the only public path
//! that executes them, which gives the system a single choke point for
//! journaling, metrics and replay — the description-driven command
//! dispatch the CRISTAL line of work recommends for long-lived EDM
//! systems.
//!
//! Ops are serializable to a one-line text form ([`Op::to_line`] /
//! [`Op::parse_line`]) in the same hex-armoured style as the OMS image
//! format, so an ops journal can be persisted next to a database
//! checkpoint and replayed after a restart.

use cad_tools::ToolKind;
use cad_vfs::Blob;
use jcf::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId, FlowId,
    ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};

use crate::error::{HybridError, HybridResult};
use crate::framework::StagingMode;
use crate::future::FutureFeatures;

/// One serializable mutating operation of the hybrid framework.
///
/// The variants cover everything the workspace performs today: desktop
/// administration, flow definition, project structure, workspace
/// reserve/publish, encapsulated activity runs, configurations, the
/// future-work switches, and the out-of-band FMCAD operations the
/// experiments exercise (checkout/checkin, purge, direct writes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Register a user on the JCF desktop.
    AddUser {
        /// Unique user name.
        name: String,
        /// Whether the user is a project manager.
        manager: bool,
    },
    /// Create a team (manager-only).
    AddTeam {
        /// The acting manager.
        actor: UserId,
        /// Unique team name.
        name: String,
    },
    /// Add a user to a team (manager-only).
    AddTeamMember {
        /// The acting manager.
        actor: UserId,
        /// The team.
        team: TeamId,
        /// The new member.
        user: UserId,
    },
    /// Register a viewtype on both sides of the coupling.
    RegisterViewtype {
        /// The viewtype name.
        name: String,
        /// The FMCAD application bound to the viewtype.
        application: ToolKind,
    },
    /// Register an encapsulated tool resource.
    RegisterTool {
        /// The tool name.
        name: String,
        /// The real application behind it.
        kind: ToolKind,
    },
    /// Define and freeze the paper's three-tool standard flow.
    DefineStandardFlow {
        /// The flow name.
        name: String,
    },
    /// Define and freeze the quality-gated variant of the standard flow.
    DefineQualityGatedFlow {
        /// The flow name.
        name: String,
    },
    /// Define an empty custom flow.
    DefineFlow {
        /// The acting manager.
        actor: UserId,
        /// The flow name.
        name: String,
    },
    /// Add an activity to an unfrozen flow.
    AddActivity {
        /// The acting manager.
        actor: UserId,
        /// The flow under construction.
        flow: FlowId,
        /// The activity name.
        name: String,
        /// The tool the activity runs.
        tool: ToolId,
        /// Input viewtypes.
        needs: Vec<ViewTypeId>,
        /// Output viewtypes.
        creates: Vec<ViewTypeId>,
        /// Activities that must finish first.
        predecessors: Vec<ActivityId>,
    },
    /// Freeze a flow so cell versions can use it.
    FreezeFlow {
        /// The acting manager.
        actor: UserId,
        /// The flow to freeze.
        flow: FlowId,
    },
    /// Create a project and its coupled FMCAD library.
    CreateProject {
        /// The project (and library) name.
        name: String,
    },
    /// Create a cell inside a project.
    CreateCell {
        /// The owning project.
        project: ProjectId,
        /// The cell name.
        name: String,
    },
    /// Create a cell version (with base variant) and its mapped FMCAD
    /// cell.
    CreateCellVersion {
        /// The cell.
        cell: CellId,
        /// The governing flow.
        flow: FlowId,
        /// The owning team.
        team: TeamId,
    },
    /// Derive a named variant inside a reserved cell version.
    DeriveVariant {
        /// The reserving designer.
        user: UserId,
        /// The reserved cell version.
        cv: CellVersionId,
        /// The variant name.
        name: String,
        /// The variant derived from, if any.
        base: Option<VariantId>,
    },
    /// Declare a hierarchy child of a cell version (`CompOf`).
    DeclareCompOf {
        /// The reserving designer.
        user: UserId,
        /// The parent cell version.
        cv: CellVersionId,
        /// The child cell.
        child: CellId,
    },
    /// Share a cell across projects (future-work feature).
    ShareCell {
        /// The acting manager.
        actor: UserId,
        /// The cell to share.
        cell: CellId,
    },
    /// Promote a winning variant into a new cell version.
    PromoteVariant {
        /// The reserving designer.
        user: UserId,
        /// The winning variant.
        winner: VariantId,
    },
    /// Reserve a cell version into a designer's workspace.
    Reserve {
        /// The designer.
        user: UserId,
        /// The cell version.
        cv: CellVersionId,
    },
    /// Publish a reserved cell version back to the team.
    Publish {
        /// The reserving designer.
        user: UserId,
        /// The cell version.
        cv: CellVersionId,
    },
    /// Create a design object under a variant via the desktop.
    CreateDesignObject {
        /// The reserving designer.
        user: UserId,
        /// The owning variant.
        variant: VariantId,
        /// The design object name.
        name: String,
        /// Its viewtype.
        viewtype: ViewTypeId,
    },
    /// Add a design object version (raw desktop write, no tool run).
    AddDesignObjectVersion {
        /// The reserving designer.
        user: UserId,
        /// The design object.
        design_object: DesignObjectId,
        /// The design data.
        data: Blob,
    },
    /// Record that two design object versions are equivalent.
    MarkEquivalent {
        /// One version.
        a: DovId,
        /// The other version.
        b: DovId,
    },
    /// Merge a branch workspace forward into the current head: one
    /// atomic reserve → write → publish against a cell version, with
    /// optimistic conflict detection against the recorded branch
    /// point. The op *succeeds* with either
    /// [`Event::MergeApplied`](crate::Event::MergeApplied) (state
    /// changed) or
    /// [`Event::MergeConflict`](crate::Event::MergeConflict) (typed
    /// conflicts, no state change), so a replay reproduces the same
    /// outcome deterministically.
    MergeForward {
        /// The merging designer.
        user: UserId,
        /// The cell version merged into.
        cv: CellVersionId,
        /// The retained commit sequence the workspace branched from.
        base_seq: u64,
        /// Per design object, the version count observed at the branch
        /// point; a higher count at merge time is a conflict.
        expected: Vec<(DesignObjectId, u32)>,
        /// The staged writes: one new version per design object.
        writes: Vec<(DesignObjectId, Blob)>,
    },
    /// Run one encapsulated tool session as a JCF activity. The
    /// recorded `outputs` are what the tool produced (viewtype name,
    /// data); on replay they are fed back through the full §2.4
    /// pipeline, so staging, consistency checks, derivation recording
    /// and mirroring all happen again deterministically. A session that
    /// itself failed is recorded with `session_error`; the replay
    /// reproduces the failure (rendered text preserved, reported as a
    /// [`HybridError::Journal`] error) after the same partial pipeline.
    RunActivity {
        /// The designer running the activity.
        user: UserId,
        /// The variant worked on.
        variant: VariantId,
        /// The activity.
        activity: ActivityId,
        /// Whether a pending predecessor was overridden.
        override_pending: bool,
        /// The produced `(viewtype name, data)` outputs.
        outputs: Vec<(String, Blob)>,
        /// The rendered error of a failed tool session, if any.
        session_error: Option<String>,
    },
    /// Browse (read-only open) a design object version; pays the §3.6
    /// copy path and bumps the UI counter, so it is journaled.
    Browse {
        /// The reading user.
        user: UserId,
        /// The version to browse.
        dov: DovId,
    },
    /// Read design data via the desktop (bumps the desktop counter).
    ReadDesignData {
        /// The reading user.
        user: UserId,
        /// The version to read.
        dov: DovId,
    },
    /// Create a configuration under a cell version.
    CreateConfiguration {
        /// The acting user.
        user: UserId,
        /// The owning cell version.
        cv: CellVersionId,
        /// The configuration name.
        name: String,
    },
    /// Freeze a selection of design object versions as a configuration
    /// version.
    CreateConfigVersion {
        /// The acting user.
        user: UserId,
        /// The configuration.
        config: ConfigId,
        /// The selected design object versions.
        contents: Vec<DovId>,
    },
    /// Export a configuration version into a directory of the shared
    /// file system (the tapeout package).
    ExportConfig {
        /// The acting user.
        user: UserId,
        /// The configuration version.
        config_version: ConfigVersionId,
        /// Destination directory (absolute VFS path).
        dest: String,
    },
    /// Run layout-versus-schematic on a variant's latest views.
    RunLvs {
        /// The acting user.
        user: UserId,
        /// The variant to check.
        variant: VariantId,
    },
    /// Switch the future-work feature set.
    SetFutureFeatures {
        /// The new switches.
        features: FutureFeatures,
    },
    /// Switch how design data moves through the staging area.
    SetStagingMode {
        /// The new mode.
        mode: StagingMode,
    },
    /// Import an uncoupled FMCAD library into the master (Table 1).
    ImportLibrary {
        /// The importing designer (team member).
        actor: UserId,
        /// The legacy library name.
        library: String,
        /// The flow for the created cell versions.
        flow: FlowId,
        /// The owning team.
        team: TeamId,
    },
    /// Create a standalone FMCAD library (out-of-band, e.g. legacy
    /// data that predates the coupling).
    FmcadCreateLibrary {
        /// The library name.
        name: String,
    },
    /// Create a cell in an FMCAD library directly.
    FmcadCreateCell {
        /// The library.
        library: String,
        /// The cell name.
        cell: String,
    },
    /// Create a cellview in an FMCAD library directly.
    FmcadCreateCellview {
        /// The library.
        library: String,
        /// The cell.
        cell: String,
        /// The view name.
        view: String,
        /// The registered viewtype.
        viewtype: String,
    },
    /// Check a cellview out of an FMCAD library directly.
    FmcadCheckout {
        /// The FMCAD-side user name.
        user: String,
        /// The library.
        library: String,
        /// The cell.
        cell: String,
        /// The view.
        view: String,
    },
    /// Check data into an FMCAD cellview directly.
    FmcadCheckin {
        /// The FMCAD-side user name.
        user: String,
        /// The library.
        library: String,
        /// The cell.
        cell: String,
        /// The view.
        view: String,
        /// The data to check in.
        data: Blob,
    },
    /// Purge one cellview version from an FMCAD library.
    FmcadPurgeVersion {
        /// The FMCAD-side user name.
        user: String,
        /// The library.
        library: String,
        /// The cell.
        cell: String,
        /// The view.
        view: String,
        /// The version to purge.
        version: u32,
    },
    /// Scribble over a versioned library file behind the framework's
    /// back (the experiments' out-of-band corruption probe).
    FmcadDirectWrite {
        /// The library.
        library: String,
        /// The cell.
        cell: String,
        /// The view.
        view: String,
        /// The version whose file is overwritten.
        version: u32,
        /// The bytes to write.
        data: Blob,
    },
}

impl Op {
    /// The stable kind name of this operation (journal + counters key).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::AddUser { .. } => "add-user",
            Op::AddTeam { .. } => "add-team",
            Op::AddTeamMember { .. } => "add-team-member",
            Op::RegisterViewtype { .. } => "register-viewtype",
            Op::RegisterTool { .. } => "register-tool",
            Op::DefineStandardFlow { .. } => "define-standard-flow",
            Op::DefineQualityGatedFlow { .. } => "define-quality-gated-flow",
            Op::DefineFlow { .. } => "define-flow",
            Op::AddActivity { .. } => "add-activity",
            Op::FreezeFlow { .. } => "freeze-flow",
            Op::CreateProject { .. } => "create-project",
            Op::CreateCell { .. } => "create-cell",
            Op::CreateCellVersion { .. } => "create-cell-version",
            Op::DeriveVariant { .. } => "derive-variant",
            Op::DeclareCompOf { .. } => "declare-comp-of",
            Op::ShareCell { .. } => "share-cell",
            Op::PromoteVariant { .. } => "promote-variant",
            Op::Reserve { .. } => "reserve",
            Op::Publish { .. } => "publish",
            Op::CreateDesignObject { .. } => "create-design-object",
            Op::AddDesignObjectVersion { .. } => "add-design-object-version",
            Op::MarkEquivalent { .. } => "mark-equivalent",
            Op::MergeForward { .. } => "merge-forward",
            Op::RunActivity { .. } => "run-activity",
            Op::Browse { .. } => "browse",
            Op::ReadDesignData { .. } => "read-design-data",
            Op::CreateConfiguration { .. } => "create-configuration",
            Op::CreateConfigVersion { .. } => "create-config-version",
            Op::ExportConfig { .. } => "export-config",
            Op::RunLvs { .. } => "run-lvs",
            Op::SetFutureFeatures { .. } => "set-future-features",
            Op::SetStagingMode { .. } => "set-staging-mode",
            Op::ImportLibrary { .. } => "import-library",
            Op::FmcadCreateLibrary { .. } => "fmcad-create-library",
            Op::FmcadCreateCell { .. } => "fmcad-create-cell",
            Op::FmcadCreateCellview { .. } => "fmcad-create-cellview",
            Op::FmcadCheckout { .. } => "fmcad-checkout",
            Op::FmcadCheckin { .. } => "fmcad-checkin",
            Op::FmcadPurgeVersion { .. } => "fmcad-purge-version",
            Op::FmcadDirectWrite { .. } => "fmcad-direct-write",
        }
    }

    /// A short human-readable summary (kind plus key scalars, no
    /// payload bytes) for the tracing ring buffer.
    pub fn summary(&self) -> String {
        match self {
            Op::AddUser { name, manager } => format!("add-user {name} manager={manager}"),
            Op::AddTeam { name, .. } => format!("add-team {name}"),
            Op::AddTeamMember { team, user, .. } => format!("add-team-member {team} {user}"),
            Op::RegisterViewtype { name, application } => {
                format!("register-viewtype {name} ({application})")
            }
            Op::RegisterTool { name, kind } => format!("register-tool {name} ({kind})"),
            Op::DefineStandardFlow { name } => format!("define-standard-flow {name}"),
            Op::DefineQualityGatedFlow { name } => format!("define-quality-gated-flow {name}"),
            Op::DefineFlow { name, .. } => format!("define-flow {name}"),
            Op::AddActivity { flow, name, .. } => format!("add-activity {flow} {name}"),
            Op::FreezeFlow { flow, .. } => format!("freeze-flow {flow}"),
            Op::CreateProject { name } => format!("create-project {name}"),
            Op::CreateCell { project, name } => format!("create-cell {project} {name}"),
            Op::CreateCellVersion { cell, .. } => format!("create-cell-version {cell}"),
            Op::DeriveVariant { cv, name, .. } => format!("derive-variant {cv} {name}"),
            Op::DeclareCompOf { cv, child, .. } => format!("declare-comp-of {cv} {child}"),
            Op::ShareCell { cell, .. } => format!("share-cell {cell}"),
            Op::PromoteVariant { winner, .. } => format!("promote-variant {winner}"),
            Op::Reserve { user, cv } => format!("reserve {cv} by {user}"),
            Op::Publish { user, cv } => format!("publish {cv} by {user}"),
            Op::CreateDesignObject { variant, name, .. } => {
                format!("create-design-object {variant} {name}")
            }
            Op::AddDesignObjectVersion {
                design_object,
                data,
                ..
            } => format!(
                "add-design-object-version {design_object} ({} byte(s))",
                data.len()
            ),
            Op::MarkEquivalent { a, b } => format!("mark-equivalent {a} {b}"),
            Op::MergeForward {
                cv,
                base_seq,
                writes,
                ..
            } => format!(
                "merge-forward {cv} from seq {base_seq} ({} write(s))",
                writes.len()
            ),
            Op::RunActivity {
                variant,
                activity,
                outputs,
                session_error,
                ..
            } => {
                if let Some(err) = session_error {
                    format!("run-activity {activity} on {variant} [session failed: {err}]")
                } else {
                    format!(
                        "run-activity {activity} on {variant} ({} output(s))",
                        outputs.len()
                    )
                }
            }
            Op::Browse { user, dov } => format!("browse {dov} by {user}"),
            Op::ReadDesignData { user, dov } => format!("read-design-data {dov} by {user}"),
            Op::CreateConfiguration { cv, name, .. } => {
                format!("create-configuration {cv} {name}")
            }
            Op::CreateConfigVersion {
                config, contents, ..
            } => format!("create-config-version {config} ({} dov(s))", contents.len()),
            Op::ExportConfig {
                config_version,
                dest,
                ..
            } => format!("export-config {config_version} -> {dest}"),
            Op::RunLvs { variant, .. } => format!("run-lvs {variant}"),
            Op::SetFutureFeatures { features } => format!(
                "set-future-features procedural={} non-isomorphic={} sharing={}",
                features.procedural_interface,
                features.non_isomorphic_hierarchies,
                features.cross_project_sharing
            ),
            Op::SetStagingMode { mode } => format!("set-staging-mode {mode:?}"),
            Op::ImportLibrary { library, .. } => format!("import-library {library}"),
            Op::FmcadCreateLibrary { name } => format!("fmcad-create-library {name}"),
            Op::FmcadCreateCell { library, cell } => format!("fmcad-create-cell {library}/{cell}"),
            Op::FmcadCreateCellview {
                library,
                cell,
                view,
                ..
            } => format!("fmcad-create-cellview {library}/{cell}/{view}"),
            Op::FmcadCheckout {
                user,
                library,
                cell,
                view,
            } => format!("fmcad-checkout {library}/{cell}/{view} by {user}"),
            Op::FmcadCheckin {
                user,
                library,
                cell,
                view,
                data,
            } => format!(
                "fmcad-checkin {library}/{cell}/{view} by {user} ({} byte(s))",
                data.len()
            ),
            Op::FmcadPurgeVersion {
                library,
                cell,
                view,
                version,
                ..
            } => format!("fmcad-purge-version {library}/{cell}/{view} v{version}"),
            Op::FmcadDirectWrite {
                library,
                cell,
                view,
                version,
                data,
            } => format!(
                "fmcad-direct-write {library}/{cell}/{view} v{version} ({} byte(s))",
                data.len()
            ),
        }
    }
}

// --- line codec -------------------------------------------------------------

use crate::codec::{enc_blob, enc_ids, enc_kind, enc_str, unhex, Fields};

impl Op {
    /// Serialises the operation into its one-line journal form:
    /// `kind|field=value|...` with hex-armoured strings and payloads.
    pub fn to_line(&self) -> String {
        let mut f: Vec<(&str, String)> = Vec::new();
        let kind = self.kind_name();
        match self {
            Op::AddUser { name, manager } => {
                f.push(("name", enc_str(name)));
                f.push(("manager", manager.to_string()));
            }
            Op::AddTeam { actor, name } => {
                f.push(("actor", actor.raw().to_string()));
                f.push(("name", enc_str(name)));
            }
            Op::AddTeamMember { actor, team, user } => {
                f.push(("actor", actor.raw().to_string()));
                f.push(("team", team.raw().to_string()));
                f.push(("user", user.raw().to_string()));
            }
            Op::RegisterViewtype { name, application } => {
                f.push(("name", enc_str(name)));
                f.push(("application", enc_kind(*application).to_owned()));
            }
            Op::RegisterTool { name, kind } => {
                f.push(("name", enc_str(name)));
                f.push(("kind", enc_kind(*kind).to_owned()));
            }
            Op::DefineStandardFlow { name } | Op::DefineQualityGatedFlow { name } => {
                f.push(("name", enc_str(name)));
            }
            Op::DefineFlow { actor, name } => {
                f.push(("actor", actor.raw().to_string()));
                f.push(("name", enc_str(name)));
            }
            Op::AddActivity {
                actor,
                flow,
                name,
                tool,
                needs,
                creates,
                predecessors,
            } => {
                f.push(("actor", actor.raw().to_string()));
                f.push(("flow", flow.raw().to_string()));
                f.push(("name", enc_str(name)));
                f.push(("tool", tool.raw().to_string()));
                f.push(("needs", enc_ids(needs, ViewTypeId::raw)));
                f.push(("creates", enc_ids(creates, ViewTypeId::raw)));
                f.push(("predecessors", enc_ids(predecessors, ActivityId::raw)));
            }
            Op::FreezeFlow { actor, flow } => {
                f.push(("actor", actor.raw().to_string()));
                f.push(("flow", flow.raw().to_string()));
            }
            Op::CreateProject { name } | Op::FmcadCreateLibrary { name } => {
                f.push(("name", enc_str(name)));
            }
            Op::CreateCell { project, name } => {
                f.push(("project", project.raw().to_string()));
                f.push(("name", enc_str(name)));
            }
            Op::CreateCellVersion { cell, flow, team } => {
                f.push(("cell", cell.raw().to_string()));
                f.push(("flow", flow.raw().to_string()));
                f.push(("team", team.raw().to_string()));
            }
            Op::DeriveVariant {
                user,
                cv,
                name,
                base,
            } => {
                f.push(("user", user.raw().to_string()));
                f.push(("cv", cv.raw().to_string()));
                f.push(("name", enc_str(name)));
                f.push((
                    "base",
                    base.map(|b| b.raw().to_string()).unwrap_or("-".to_owned()),
                ));
            }
            Op::DeclareCompOf { user, cv, child } => {
                f.push(("user", user.raw().to_string()));
                f.push(("cv", cv.raw().to_string()));
                f.push(("child", child.raw().to_string()));
            }
            Op::ShareCell { actor, cell } => {
                f.push(("actor", actor.raw().to_string()));
                f.push(("cell", cell.raw().to_string()));
            }
            Op::PromoteVariant { user, winner } => {
                f.push(("user", user.raw().to_string()));
                f.push(("winner", winner.raw().to_string()));
            }
            Op::Reserve { user, cv } | Op::Publish { user, cv } => {
                f.push(("user", user.raw().to_string()));
                f.push(("cv", cv.raw().to_string()));
            }
            Op::CreateDesignObject {
                user,
                variant,
                name,
                viewtype,
            } => {
                f.push(("user", user.raw().to_string()));
                f.push(("variant", variant.raw().to_string()));
                f.push(("name", enc_str(name)));
                f.push(("viewtype", viewtype.raw().to_string()));
            }
            Op::AddDesignObjectVersion {
                user,
                design_object,
                data,
            } => {
                f.push(("user", user.raw().to_string()));
                f.push(("design_object", design_object.raw().to_string()));
                f.push(("data", enc_blob(data)));
            }
            Op::MarkEquivalent { a, b } => {
                f.push(("a", a.raw().to_string()));
                f.push(("b", b.raw().to_string()));
            }
            Op::MergeForward {
                user,
                cv,
                base_seq,
                expected,
                writes,
            } => {
                f.push(("user", user.raw().to_string()));
                f.push(("cv", cv.raw().to_string()));
                f.push(("base_seq", base_seq.to_string()));
                let exp = expected
                    .iter()
                    .map(|(d, n)| format!("{}:{}", d.raw(), n))
                    .collect::<Vec<_>>()
                    .join(";");
                f.push(("expected", exp));
                let wr = writes
                    .iter()
                    .map(|(d, data)| format!("{}:{}", d.raw(), enc_blob(data)))
                    .collect::<Vec<_>>()
                    .join(";");
                f.push(("writes", wr));
            }
            Op::RunActivity {
                user,
                variant,
                activity,
                override_pending,
                outputs,
                session_error,
            } => {
                f.push(("user", user.raw().to_string()));
                f.push(("variant", variant.raw().to_string()));
                f.push(("activity", activity.raw().to_string()));
                f.push(("override", override_pending.to_string()));
                let outs = outputs
                    .iter()
                    .map(|(v, d)| format!("{}:{}", enc_str(v), enc_blob(d)))
                    .collect::<Vec<_>>()
                    .join(";");
                f.push(("outputs", outs));
                f.push((
                    "session_error",
                    session_error
                        .as_ref()
                        .map(|e| enc_str(e))
                        .unwrap_or("-".to_owned()),
                ));
            }
            Op::Browse { user, dov } | Op::ReadDesignData { user, dov } => {
                f.push(("user", user.raw().to_string()));
                f.push(("dov", dov.raw().to_string()));
            }
            Op::CreateConfiguration { user, cv, name } => {
                f.push(("user", user.raw().to_string()));
                f.push(("cv", cv.raw().to_string()));
                f.push(("name", enc_str(name)));
            }
            Op::CreateConfigVersion {
                user,
                config,
                contents,
            } => {
                f.push(("user", user.raw().to_string()));
                f.push(("config", config.raw().to_string()));
                f.push(("contents", enc_ids(contents, DovId::raw)));
            }
            Op::ExportConfig {
                user,
                config_version,
                dest,
            } => {
                f.push(("user", user.raw().to_string()));
                f.push(("config_version", config_version.raw().to_string()));
                f.push(("dest", enc_str(dest)));
            }
            Op::RunLvs { user, variant } => {
                f.push(("user", user.raw().to_string()));
                f.push(("variant", variant.raw().to_string()));
            }
            Op::SetFutureFeatures { features } => {
                f.push(("procedural", features.procedural_interface.to_string()));
                f.push((
                    "non_isomorphic",
                    features.non_isomorphic_hierarchies.to_string(),
                ));
                f.push(("sharing", features.cross_project_sharing.to_string()));
            }
            Op::SetStagingMode { mode } => {
                f.push((
                    "mode",
                    match mode {
                        StagingMode::ZeroCopy => "zero-copy",
                        StagingMode::DeepCopy => "deep-copy",
                    }
                    .to_owned(),
                ));
            }
            Op::ImportLibrary {
                actor,
                library,
                flow,
                team,
            } => {
                f.push(("actor", actor.raw().to_string()));
                f.push(("library", enc_str(library)));
                f.push(("flow", flow.raw().to_string()));
                f.push(("team", team.raw().to_string()));
            }
            Op::FmcadCreateCell { library, cell } => {
                f.push(("library", enc_str(library)));
                f.push(("cell", enc_str(cell)));
            }
            Op::FmcadCreateCellview {
                library,
                cell,
                view,
                viewtype,
            } => {
                f.push(("library", enc_str(library)));
                f.push(("cell", enc_str(cell)));
                f.push(("view", enc_str(view)));
                f.push(("viewtype", enc_str(viewtype)));
            }
            Op::FmcadCheckout {
                user,
                library,
                cell,
                view,
            } => {
                f.push(("user", enc_str(user)));
                f.push(("library", enc_str(library)));
                f.push(("cell", enc_str(cell)));
                f.push(("view", enc_str(view)));
            }
            Op::FmcadCheckin {
                user,
                library,
                cell,
                view,
                data,
            } => {
                f.push(("user", enc_str(user)));
                f.push(("library", enc_str(library)));
                f.push(("cell", enc_str(cell)));
                f.push(("view", enc_str(view)));
                f.push(("data", enc_blob(data)));
            }
            Op::FmcadPurgeVersion {
                user,
                library,
                cell,
                view,
                version,
            } => {
                f.push(("user", enc_str(user)));
                f.push(("library", enc_str(library)));
                f.push(("cell", enc_str(cell)));
                f.push(("view", enc_str(view)));
                f.push(("version", version.to_string()));
            }
            Op::FmcadDirectWrite {
                library,
                cell,
                view,
                version,
                data,
            } => {
                f.push(("library", enc_str(library)));
                f.push(("cell", enc_str(cell)));
                f.push(("view", enc_str(view)));
                f.push(("version", version.to_string()));
                f.push(("data", enc_blob(data)));
            }
        }
        crate::codec::assemble(kind, &f)
    }

    /// Parses an operation back from its [`Op::to_line`] form.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::Journal`] for malformed lines.
    pub fn parse_line(line: &str) -> HybridResult<Op> {
        Self::parse_inner(line).map_err(HybridError::Journal)
    }

    fn parse_inner(line: &str) -> Result<Op, String> {
        let f = Fields::parse(line)?;
        let op = match f.kind {
            "add-user" => Op::AddUser {
                name: f.str("name")?,
                manager: f.bool("manager")?,
            },
            "add-team" => Op::AddTeam {
                actor: f.id("actor", UserId::from_raw)?,
                name: f.str("name")?,
            },
            "add-team-member" => Op::AddTeamMember {
                actor: f.id("actor", UserId::from_raw)?,
                team: f.id("team", TeamId::from_raw)?,
                user: f.id("user", UserId::from_raw)?,
            },
            "register-viewtype" => Op::RegisterViewtype {
                name: f.str("name")?,
                application: f.kind("application")?,
            },
            "register-tool" => Op::RegisterTool {
                name: f.str("name")?,
                kind: f.kind("kind")?,
            },
            "define-standard-flow" => Op::DefineStandardFlow {
                name: f.str("name")?,
            },
            "define-quality-gated-flow" => Op::DefineQualityGatedFlow {
                name: f.str("name")?,
            },
            "define-flow" => Op::DefineFlow {
                actor: f.id("actor", UserId::from_raw)?,
                name: f.str("name")?,
            },
            "add-activity" => Op::AddActivity {
                actor: f.id("actor", UserId::from_raw)?,
                flow: f.id("flow", FlowId::from_raw)?,
                name: f.str("name")?,
                tool: f.id("tool", ToolId::from_raw)?,
                needs: f.ids("needs", ViewTypeId::from_raw)?,
                creates: f.ids("creates", ViewTypeId::from_raw)?,
                predecessors: f.ids("predecessors", ActivityId::from_raw)?,
            },
            "freeze-flow" => Op::FreezeFlow {
                actor: f.id("actor", UserId::from_raw)?,
                flow: f.id("flow", FlowId::from_raw)?,
            },
            "create-project" => Op::CreateProject {
                name: f.str("name")?,
            },
            "create-cell" => Op::CreateCell {
                project: f.id("project", ProjectId::from_raw)?,
                name: f.str("name")?,
            },
            "create-cell-version" => Op::CreateCellVersion {
                cell: f.id("cell", CellId::from_raw)?,
                flow: f.id("flow", FlowId::from_raw)?,
                team: f.id("team", TeamId::from_raw)?,
            },
            "derive-variant" => Op::DeriveVariant {
                user: f.id("user", UserId::from_raw)?,
                cv: f.id("cv", CellVersionId::from_raw)?,
                name: f.str("name")?,
                base: match f.get("base")? {
                    "-" => None,
                    raw => Some(VariantId::from_raw(
                        raw.parse().map_err(|_| "bad base id".to_owned())?,
                    )),
                },
            },
            "declare-comp-of" => Op::DeclareCompOf {
                user: f.id("user", UserId::from_raw)?,
                cv: f.id("cv", CellVersionId::from_raw)?,
                child: f.id("child", CellId::from_raw)?,
            },
            "share-cell" => Op::ShareCell {
                actor: f.id("actor", UserId::from_raw)?,
                cell: f.id("cell", CellId::from_raw)?,
            },
            "promote-variant" => Op::PromoteVariant {
                user: f.id("user", UserId::from_raw)?,
                winner: f.id("winner", VariantId::from_raw)?,
            },
            "reserve" => Op::Reserve {
                user: f.id("user", UserId::from_raw)?,
                cv: f.id("cv", CellVersionId::from_raw)?,
            },
            "publish" => Op::Publish {
                user: f.id("user", UserId::from_raw)?,
                cv: f.id("cv", CellVersionId::from_raw)?,
            },
            "create-design-object" => Op::CreateDesignObject {
                user: f.id("user", UserId::from_raw)?,
                variant: f.id("variant", VariantId::from_raw)?,
                name: f.str("name")?,
                viewtype: f.id("viewtype", ViewTypeId::from_raw)?,
            },
            "add-design-object-version" => Op::AddDesignObjectVersion {
                user: f.id("user", UserId::from_raw)?,
                design_object: f.id("design_object", DesignObjectId::from_raw)?,
                data: f.blob("data")?,
            },
            "mark-equivalent" => Op::MarkEquivalent {
                a: f.id("a", DovId::from_raw)?,
                b: f.id("b", DovId::from_raw)?,
            },
            "merge-forward" => {
                let raw_expected = f.get("expected")?;
                let mut expected = Vec::new();
                if !raw_expected.is_empty() {
                    for pair in raw_expected.split(';') {
                        let (d, n) = pair
                            .split_once(':')
                            .ok_or_else(|| "bad expected pair".to_owned())?;
                        let design_object = DesignObjectId::from_raw(
                            d.parse().map_err(|_| "bad expected id".to_owned())?,
                        );
                        let count: u32 = n.parse().map_err(|_| "bad expected count".to_owned())?;
                        expected.push((design_object, count));
                    }
                }
                let raw_writes = f.get("writes")?;
                let mut writes = Vec::new();
                if !raw_writes.is_empty() {
                    for pair in raw_writes.split(';') {
                        let (d, data) = pair
                            .split_once(':')
                            .ok_or_else(|| "bad write pair".to_owned())?;
                        let design_object = DesignObjectId::from_raw(
                            d.parse().map_err(|_| "bad write id".to_owned())?,
                        );
                        let blob =
                            Blob::from(unhex(data).ok_or_else(|| "bad write data hex".to_owned())?);
                        writes.push((design_object, blob));
                    }
                }
                Op::MergeForward {
                    user: f.id("user", UserId::from_raw)?,
                    cv: f.id("cv", CellVersionId::from_raw)?,
                    base_seq: f.u64("base_seq")?,
                    expected,
                    writes,
                }
            }
            "run-activity" => {
                let raw_outputs = f.get("outputs")?;
                let mut outputs = Vec::new();
                if !raw_outputs.is_empty() {
                    for pair in raw_outputs.split(';') {
                        let (v, d) = pair
                            .split_once(':')
                            .ok_or_else(|| "bad output pair".to_owned())?;
                        let view = String::from_utf8(
                            unhex(v).ok_or_else(|| "bad output viewtype hex".to_owned())?,
                        )
                        .map_err(|_| "output viewtype is not utf-8".to_owned())?;
                        let data =
                            Blob::from(unhex(d).ok_or_else(|| "bad output data hex".to_owned())?);
                        outputs.push((view, data));
                    }
                }
                Op::RunActivity {
                    user: f.id("user", UserId::from_raw)?,
                    variant: f.id("variant", VariantId::from_raw)?,
                    activity: f.id("activity", ActivityId::from_raw)?,
                    override_pending: f.bool("override")?,
                    outputs,
                    session_error: match f.get("session_error")? {
                        "-" => None,
                        raw => Some(
                            String::from_utf8(
                                unhex(raw).ok_or_else(|| "bad session error hex".to_owned())?,
                            )
                            .map_err(|_| "session error is not utf-8".to_owned())?,
                        ),
                    },
                }
            }
            "browse" => Op::Browse {
                user: f.id("user", UserId::from_raw)?,
                dov: f.id("dov", DovId::from_raw)?,
            },
            "read-design-data" => Op::ReadDesignData {
                user: f.id("user", UserId::from_raw)?,
                dov: f.id("dov", DovId::from_raw)?,
            },
            "create-configuration" => Op::CreateConfiguration {
                user: f.id("user", UserId::from_raw)?,
                cv: f.id("cv", CellVersionId::from_raw)?,
                name: f.str("name")?,
            },
            "create-config-version" => Op::CreateConfigVersion {
                user: f.id("user", UserId::from_raw)?,
                config: f.id("config", ConfigId::from_raw)?,
                contents: f.ids("contents", DovId::from_raw)?,
            },
            "export-config" => Op::ExportConfig {
                user: f.id("user", UserId::from_raw)?,
                config_version: f.id("config_version", ConfigVersionId::from_raw)?,
                dest: f.str("dest")?,
            },
            "run-lvs" => Op::RunLvs {
                user: f.id("user", UserId::from_raw)?,
                variant: f.id("variant", VariantId::from_raw)?,
            },
            "set-future-features" => Op::SetFutureFeatures {
                features: FutureFeatures {
                    procedural_interface: f.bool("procedural")?,
                    non_isomorphic_hierarchies: f.bool("non_isomorphic")?,
                    cross_project_sharing: f.bool("sharing")?,
                },
            },
            "set-staging-mode" => Op::SetStagingMode {
                mode: match f.get("mode")? {
                    "zero-copy" => StagingMode::ZeroCopy,
                    "deep-copy" => StagingMode::DeepCopy,
                    other => return Err(format!("unknown staging mode {other:?}")),
                },
            },
            "import-library" => Op::ImportLibrary {
                actor: f.id("actor", UserId::from_raw)?,
                library: f.str("library")?,
                flow: f.id("flow", FlowId::from_raw)?,
                team: f.id("team", TeamId::from_raw)?,
            },
            "fmcad-create-library" => Op::FmcadCreateLibrary {
                name: f.str("name")?,
            },
            "fmcad-create-cell" => Op::FmcadCreateCell {
                library: f.str("library")?,
                cell: f.str("cell")?,
            },
            "fmcad-create-cellview" => Op::FmcadCreateCellview {
                library: f.str("library")?,
                cell: f.str("cell")?,
                view: f.str("view")?,
                viewtype: f.str("viewtype")?,
            },
            "fmcad-checkout" => Op::FmcadCheckout {
                user: f.str("user")?,
                library: f.str("library")?,
                cell: f.str("cell")?,
                view: f.str("view")?,
            },
            "fmcad-checkin" => Op::FmcadCheckin {
                user: f.str("user")?,
                library: f.str("library")?,
                cell: f.str("cell")?,
                view: f.str("view")?,
                data: f.blob("data")?,
            },
            "fmcad-purge-version" => Op::FmcadPurgeVersion {
                user: f.str("user")?,
                library: f.str("library")?,
                cell: f.str("cell")?,
                view: f.str("view")?,
                version: f.u32("version")?,
            },
            "fmcad-direct-write" => Op::FmcadDirectWrite {
                library: f.str("library")?,
                cell: f.str("cell")?,
                view: f.str("view")?,
                version: f.u32("version")?,
                data: f.blob("data")?,
            },
            other => return Err(format!("unknown op kind {other:?}")),
        };
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(op: Op) {
        let line = op.to_line();
        assert!(!line.contains('\n'));
        let back = Op::parse_line(&line).unwrap();
        assert_eq!(back, op, "round trip of {line}");
    }

    #[test]
    fn all_op_kinds_round_trip() {
        round_trip(Op::AddUser {
            name: "alice with space".into(),
            manager: true,
        });
        round_trip(Op::AddTeam {
            actor: UserId::from_raw(1),
            name: "t|=;:\n".into(),
        });
        round_trip(Op::AddTeamMember {
            actor: UserId::from_raw(1),
            team: TeamId::from_raw(2),
            user: UserId::from_raw(3),
        });
        round_trip(Op::RegisterViewtype {
            name: "bitstream".into(),
            application: ToolKind::Framework,
        });
        round_trip(Op::RegisterTool {
            name: "router".into(),
            kind: ToolKind::LayoutEditor,
        });
        round_trip(Op::DefineStandardFlow { name: "f".into() });
        round_trip(Op::DefineQualityGatedFlow { name: "q".into() });
        round_trip(Op::DefineFlow {
            actor: UserId::from_raw(1),
            name: "custom".into(),
        });
        round_trip(Op::AddActivity {
            actor: UserId::from_raw(1),
            flow: FlowId::from_raw(9),
            name: "enter".into(),
            tool: ToolId::from_raw(4),
            needs: vec![],
            creates: vec![ViewTypeId::from_raw(5), ViewTypeId::from_raw(6)],
            predecessors: vec![ActivityId::from_raw(7)],
        });
        round_trip(Op::FreezeFlow {
            actor: UserId::from_raw(1),
            flow: FlowId::from_raw(9),
        });
        round_trip(Op::CreateProject { name: "p".into() });
        round_trip(Op::CreateCell {
            project: ProjectId::from_raw(11),
            name: "alu".into(),
        });
        round_trip(Op::CreateCellVersion {
            cell: CellId::from_raw(12),
            flow: FlowId::from_raw(9),
            team: TeamId::from_raw(2),
        });
        round_trip(Op::DeriveVariant {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
            name: "exp".into(),
            base: Some(VariantId::from_raw(14)),
        });
        round_trip(Op::DeriveVariant {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
            name: "exp2".into(),
            base: None,
        });
        round_trip(Op::DeclareCompOf {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
            child: CellId::from_raw(15),
        });
        round_trip(Op::ShareCell {
            actor: UserId::from_raw(1),
            cell: CellId::from_raw(15),
        });
        round_trip(Op::PromoteVariant {
            user: UserId::from_raw(3),
            winner: VariantId::from_raw(14),
        });
        round_trip(Op::Reserve {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
        });
        round_trip(Op::Publish {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
        });
        round_trip(Op::CreateDesignObject {
            user: UserId::from_raw(3),
            variant: VariantId::from_raw(14),
            name: "sch".into(),
            viewtype: ViewTypeId::from_raw(5),
        });
        round_trip(Op::AddDesignObjectVersion {
            user: UserId::from_raw(3),
            design_object: DesignObjectId::from_raw(16),
            data: vec![0u8, 255, 10, 61, 124].into(),
        });
        round_trip(Op::MarkEquivalent {
            a: DovId::from_raw(17),
            b: DovId::from_raw(18),
        });
        round_trip(Op::MergeForward {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
            base_seq: 42,
            expected: vec![
                (DesignObjectId::from_raw(16), 2),
                (DesignObjectId::from_raw(21), 1),
            ],
            writes: vec![
                (DesignObjectId::from_raw(16), b"netlist y\n".to_vec().into()),
                (DesignObjectId::from_raw(21), Blob::new()),
            ],
        });
        round_trip(Op::MergeForward {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
            base_seq: 0,
            expected: vec![],
            writes: vec![],
        });
        round_trip(Op::RunActivity {
            user: UserId::from_raw(3),
            variant: VariantId::from_raw(14),
            activity: ActivityId::from_raw(7),
            override_pending: true,
            outputs: vec![
                ("schematic".into(), b"netlist x\n".to_vec().into()),
                ("layout".into(), Blob::new()),
            ],
            session_error: None,
        });
        round_trip(Op::RunActivity {
            user: UserId::from_raw(3),
            variant: VariantId::from_raw(14),
            activity: ActivityId::from_raw(7),
            override_pending: false,
            outputs: vec![],
            session_error: Some("tool: parse failed".into()),
        });
        round_trip(Op::Browse {
            user: UserId::from_raw(3),
            dov: DovId::from_raw(17),
        });
        round_trip(Op::ReadDesignData {
            user: UserId::from_raw(3),
            dov: DovId::from_raw(17),
        });
        round_trip(Op::CreateConfiguration {
            user: UserId::from_raw(3),
            cv: CellVersionId::from_raw(13),
            name: "rel".into(),
        });
        round_trip(Op::CreateConfigVersion {
            user: UserId::from_raw(3),
            config: ConfigId::from_raw(19),
            contents: vec![DovId::from_raw(17), DovId::from_raw(18)],
        });
        round_trip(Op::ExportConfig {
            user: UserId::from_raw(3),
            config_version: ConfigVersionId::from_raw(20),
            dest: "/releases/r1".into(),
        });
        round_trip(Op::RunLvs {
            user: UserId::from_raw(3),
            variant: VariantId::from_raw(14),
        });
        round_trip(Op::SetFutureFeatures {
            features: FutureFeatures::all(),
        });
        round_trip(Op::SetStagingMode {
            mode: StagingMode::DeepCopy,
        });
        round_trip(Op::ImportLibrary {
            actor: UserId::from_raw(3),
            library: "legacy".into(),
            flow: FlowId::from_raw(9),
            team: TeamId::from_raw(2),
        });
        round_trip(Op::FmcadCreateLibrary { name: "lib".into() });
        round_trip(Op::FmcadCreateCell {
            library: "lib".into(),
            cell: "c".into(),
        });
        round_trip(Op::FmcadCreateCellview {
            library: "lib".into(),
            cell: "c".into(),
            view: "schematic".into(),
            viewtype: "schematic".into(),
        });
        round_trip(Op::FmcadCheckout {
            user: "u".into(),
            library: "lib".into(),
            cell: "c".into(),
            view: "schematic".into(),
        });
        round_trip(Op::FmcadCheckin {
            user: "u".into(),
            library: "lib".into(),
            cell: "c".into(),
            view: "schematic".into(),
            data: b"bytes".to_vec().into(),
        });
        round_trip(Op::FmcadPurgeVersion {
            user: "u".into(),
            library: "lib".into(),
            cell: "c".into(),
            view: "schematic".into(),
            version: 3,
        });
        round_trip(Op::FmcadDirectWrite {
            library: "lib".into(),
            cell: "c".into(),
            view: "schematic".into(),
            version: 3,
            data: b"corrupt".to_vec().into(),
        });
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Op::parse_line("no-such-op|x=1").is_err());
        assert!(Op::parse_line("reserve|user=3").is_err());
        assert!(Op::parse_line("reserve|user=zz|cv=1").is_err());
        assert!(Op::parse_line("add-user|name=xyz|manager=true").is_err());
    }
}
