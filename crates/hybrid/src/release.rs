//! Release utilities: cross-view verification and configuration export.
//!
//! Configurations are one of JCF's headline management features; a
//! release flow needs (a) a machine check that the views of a variant
//! agree (LVS) and (b) a way to hand a consistent snapshot — one
//! version per design object — to downstream consumers. Both are built
//! on top of the coupled frameworks here.

use cad_tools::{check_lvs, LvsReport};
use cad_vfs::VfsPath;
use design_data::format;
use jcf::{ConfigVersionId, UserId, VariantId};

use crate::error::{HybridError, HybridResult};
use crate::framework::Hybrid;

/// Manifest of one exported configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExportManifest {
    /// `(file name, bytes written)` per exported design object version.
    pub files: Vec<(String, u64)>,
    /// Total bytes copied out of the database.
    pub total_bytes: u64,
}

impl Hybrid {
    /// Runs layout-versus-schematic on the latest versions of a
    /// variant's `schematic` and `layout` design objects.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] if either view has no
    /// version yet, and parse errors for corrupt data.
    pub(crate) fn run_lvs(&mut self, user: UserId, variant: VariantId) -> HybridResult<LvsReport> {
        let mut bytes = Vec::with_capacity(2);
        for view in ["schematic", "layout"] {
            let viewtype = self.viewtype(view)?;
            let dov = self
                .jcf
                .design_object_by_viewtype(variant, viewtype)
                .and_then(|d| self.jcf.latest_version(d))
                .ok_or_else(|| HybridError::MappingMissing(format!("{view} of {variant}")))?;
            bytes.push(self.jcf.read_design_data(user, dov)?);
        }
        let netlist = format::parse_netlist(&String::from_utf8_lossy(&bytes[0]))
            .map_err(|e| HybridError::Tool(e.into()))?;
        let layout = format::parse_layout(&String::from_utf8_lossy(&bytes[1]))
            .map_err(|e| HybridError::Tool(e.into()))?;
        self.bump_fmcad_ui();
        Ok(check_lvs(&netlist, &layout))
    }

    /// Exports every design object version selected by a configuration
    /// version into a directory of the shared file system — the
    /// "tapeout package". Each file is named
    /// `<design object>.<version number>` and the copy pays full I/O
    /// cost (it crosses the database boundary).
    ///
    /// # Errors
    ///
    /// Returns visibility errors for unpublished data the user cannot
    /// see, and file system errors.
    pub(crate) fn export_config(
        &mut self,
        user: UserId,
        config_version: ConfigVersionId,
        dest: &VfsPath,
    ) -> HybridResult<ExportManifest> {
        self.fmcad.fs().mkdir_all(dest)?;
        let mut manifest = ExportManifest::default();
        for dov in self.jcf.config_contents(config_version) {
            let design_object = self.jcf.design_object_of(dov)?;
            let number = self
                .jcf
                .database()
                .get(dov.object_id(), "number")
                .map_err(jcf::JcfError::Database)?
                .as_int()
                .unwrap_or(0);
            let name = format!(
                "{}.{}",
                self.jcf.display_name(design_object.object_id()),
                number
            );
            let data = self.jcf.read_design_data(user, dov)?;
            let len = data.len() as u64;
            let path = dest.join(&name)?;
            self.fmcad.fs().write(&path, data)?;
            manifest.files.push((name, len));
            manifest.total_bytes += len;
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encapsulation::ToolOutput;
    use design_data::generate;

    struct Env {
        hy: Hybrid,
        alice: UserId,
        flow: crate::framework::StandardFlow,
        team: jcf::TeamId,
    }

    fn env() -> Env {
        let mut hy = Hybrid::new();
        let admin = hy.admin();
        let alice = hy.jcf_mut().add_user("alice", false).unwrap();
        let team = hy.jcf_mut().add_team(admin, "t").unwrap();
        hy.jcf_mut().add_team_member(admin, team, alice).unwrap();
        let flow = hy.standard_flow("f").unwrap();
        Env {
            hy,
            alice,
            flow,
            team,
        }
    }

    fn design_in_variant(e: &mut Env) -> (jcf::CellVersionId, VariantId, Vec<jcf::DovId>) {
        let project = e.hy.create_project("p").unwrap();
        let cell = e.hy.create_cell(project, "fa").unwrap();
        let (cv, variant) = e.hy.create_cell_version(cell, e.flow.flow, e.team).unwrap();
        e.hy.jcf_mut().reserve(e.alice, cv).unwrap();
        let design = generate::ripple_adder(1);
        let sch = format::write_netlist(&design.netlists["full_adder"]).into_bytes();
        let lay = format::write_layout(&design.layouts["full_adder"]).into_bytes();
        let mut dovs =
            e.hy.run_activity(e.alice, variant, e.flow.enter_schematic, false, move |_| {
                Ok(vec![ToolOutput {
                    viewtype: "schematic".into(),
                    data: sch.into(),
                }])
            })
            .unwrap();
        dovs.extend(
            e.hy.run_activity(e.alice, variant, e.flow.enter_layout, false, move |_| {
                Ok(vec![ToolOutput {
                    viewtype: "layout".into(),
                    data: lay.into(),
                }])
            })
            .unwrap(),
        );
        (cv, variant, dovs)
    }

    #[test]
    fn lvs_runs_clean_on_matching_views() {
        let mut e = env();
        let (_, variant, _) = design_in_variant(&mut e);
        let report = e.hy.run_lvs(e.alice, variant).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.matched_nets > 0);
    }

    #[test]
    fn lvs_requires_both_views() {
        let mut e = env();
        let project = e.hy.create_project("p").unwrap();
        let cell = e.hy.create_cell(project, "fa").unwrap();
        let (cv, variant) = e.hy.create_cell_version(cell, e.flow.flow, e.team).unwrap();
        e.hy.jcf_mut().reserve(e.alice, cv).unwrap();
        assert!(matches!(
            e.hy.run_lvs(e.alice, variant),
            Err(HybridError::MappingMissing(_))
        ));
    }

    #[test]
    fn config_export_writes_the_selected_snapshot() {
        let mut e = env();
        let (cv, _, dovs) = design_in_variant(&mut e);
        let config =
            e.hy.jcf_mut()
                .create_configuration(e.alice, cv, "rel")
                .unwrap();
        let cfg_v =
            e.hy.jcf_mut()
                .create_config_version(e.alice, config, &dovs)
                .unwrap();
        let dest = VfsPath::parse("/releases/rel1").unwrap();
        let manifest = e.hy.export_config(e.alice, cfg_v, &dest).unwrap();
        assert_eq!(manifest.files.len(), 2);
        assert!(manifest.total_bytes > 0);
        // The files really are in the shared file system.
        let names: Vec<String> = e.hy.fmcad_mut().fs().read_dir(&dest).unwrap();
        assert_eq!(names, vec!["layout.1".to_owned(), "schematic.1".to_owned()]);
        let exported =
            e.hy.fmcad_mut()
                .fs()
                .read(&dest.join("schematic.1").unwrap())
                .unwrap();
        assert!(exported.starts_with(b"netlist full_adder"));
    }
}
