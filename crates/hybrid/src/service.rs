//! Concurrent multi-session front-end over the [`Engine`].
//!
//! The paper's system was inherently multi-user: several designers
//! drive the coupled frameworks at once, each through their own JCF
//! desktop session. This module reproduces that shape as a
//! thread-safe service with a sharded read/write discipline:
//!
//! * **Reads are snapshot reads.** The service keeps a published
//!   [`Snapshot`] (an immutable view over the OMS database and the
//!   coupling state); `browse`, `read_design_data` and arbitrary
//!   queries run against it with `&self`, in parallel, with zero byte
//!   copies — concurrent readers share [`cad_vfs::Blob`] handles.
//! * **Writes are group-committed.** All mutations funnel into a
//!   batched apply queue. The first writer to arrive becomes the
//!   *leader*: it drains every queued op in one engine critical
//!   section, fills each submitter's result slot, republishes the
//!   snapshot once per batch and fans the emitted events out to every
//!   session's subscription queue. Followers just park on their slot.
//!
//! The effect is the classic group-commit trade: writers pay one lock
//! handoff per *batch* instead of per op, and readers never wait on
//! writers at all (at worst they read the previous snapshot).
//!
//! # Examples
//!
//! ```
//! use hybrid::{Engine, Service};
//!
//! # fn main() -> Result<(), hybrid::HybridError> {
//! let service = Service::new(Engine::builder().build());
//! let mut admin = service.open_session(service.admin());
//! let alice_id = admin.add_user("alice", false)?;
//! let alice = service.open_session(alice_id);
//! // Reads run against the published snapshot, in parallel, &self:
//! assert_eq!(alice.snapshot().seq(), 1);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use cad_vfs::Blob;
use jcf::{CellId, CellVersionId, DovId, FlowId, ProjectId, TeamId, UserId, VariantId};

use crate::engine::Engine;
use crate::error::{HybridError, HybridResult};
use crate::events::Event;
use crate::framework::StandardFlow;
use crate::history::{HistoryRing, HistoryView, MergeBackend, RetentionPolicy, Workspace};
use crate::ops::Op;
use crate::snapshot::Snapshot;

/// Lock a mutex, riding through poisoning: a writer that panicked
/// mid-batch must not take the whole service down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A session's private queue of committed `(seq, event)` pairs.
type EventQueue = Arc<Mutex<VecDeque<(u64, Event)>>>;

/// One submitted op waiting for its batch to commit. The filled
/// result carries the engine sequence number the op committed (or,
/// for failed ops, journaled) at.
struct Slot {
    result: Mutex<Option<HybridResult<(u64, Event)>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, result: HybridResult<(u64, Event)>) {
        *lock(&self.result) = Some(result);
        self.ready.notify_one();
    }

    fn wait(&self) -> HybridResult<(u64, Event)> {
        let mut guard = lock(&self.result);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The batched apply queue. `draining` marks that a leader is inside
/// the engine critical section; writers that arrive meanwhile enqueue
/// and either park (followers) or take over leadership once the
/// current leader hands the engine back.
struct Queue {
    pending: Vec<(Op, Arc<Slot>, u64)>,
    draining: bool,
}

/// Running counters of the service's concurrency behaviour; all
/// monotone, all cheap (relaxed atomics).
#[derive(Debug, Default)]
struct Stats {
    /// Ops committed through the write queue.
    ops: AtomicU64,
    /// Engine critical sections (group commits).
    batches: AtomicU64,
    /// Largest single batch.
    max_batch: AtomicU64,
    /// Writers that parked as followers instead of leading.
    writer_waits: AtomicU64,
    /// Snapshot reads that found the publish lock briefly held.
    reader_waits: AtomicU64,
    /// Ops currently enqueued but not yet taken by a leader (gauge,
    /// the BUSY-threshold signal of the network front-end).
    queue_depth: AtomicU64,
    /// Deepest the pending queue has ever been.
    max_queue_depth: AtomicU64,
}

/// A point-in-time copy of the service's concurrency counters.
///
/// Returned by [`Service::stats`]; the E12 benchmark reports these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Ops committed through the write queue.
    pub ops: u64,
    /// Engine critical sections (group commits).
    pub batches: u64,
    /// Largest single group commit, in ops.
    pub max_batch: u64,
    /// Writers that parked as followers instead of leading a batch.
    pub writer_waits: u64,
    /// Snapshot reads that found the publish lock briefly held.
    pub reader_waits: u64,
    /// Ops enqueued but not yet taken by a leader at sample time (the
    /// write-queue depth the network front-end's BUSY threshold reads).
    pub queue_depth: u64,
    /// Deepest the pending queue has ever been.
    pub max_queue_depth: u64,
}

struct Inner {
    engine: Mutex<Engine>,
    queue: Mutex<Queue>,
    /// The published read view; replaced (not mutated) once per batch.
    snapshot: Mutex<Arc<Snapshot>>,
    /// Sequence number of the published snapshot, for cheap staleness
    /// checks: sessions revalidate their cached view against this
    /// atomic instead of taking the snapshot lock on every read.
    published_seq: AtomicU64,
    /// Per-session event queues, keyed by session id.
    subscribers: Mutex<Vec<(u64, EventQueue)>>,
    /// The time-travel retention ring: recently published snapshots by
    /// commit seq, plus pins (§15). Only writers touch it (once per
    /// committed op); history reads clone an `Arc` out and leave.
    history: Mutex<HistoryRing<Arc<Snapshot>>>,
    next_session: AtomicU64,
    stats: Stats,
    admin: UserId,
}

/// Thread-safe multi-session service over one [`Engine`].
///
/// Cloning is cheap (an [`Arc`] bump); clones share the engine, the
/// write queue and the published snapshot. Open one [`Session`] per
/// user with [`Service::open_session`].
#[derive(Clone)]
pub struct Service {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Wraps an engine (typically from [`Engine::builder`]) into a
    /// service and publishes the initial snapshot. History is retained
    /// under the default [`RetentionPolicy`]; use
    /// [`Service::with_retention`] to pick another.
    pub fn new(engine: Engine) -> Service {
        Service::with_retention(engine, RetentionPolicy::default())
    }

    /// Like [`Service::new`] with an explicit history retention policy.
    pub fn with_retention(engine: Engine, policy: RetentionPolicy) -> Service {
        let admin = engine.admin();
        let seq = engine.seq();
        let snapshot = engine.snapshot();
        let mut history = HistoryRing::new(policy);
        history.observe(seq, Arc::clone(&snapshot));
        Service {
            inner: Arc::new(Inner {
                engine: Mutex::new(engine),
                queue: Mutex::new(Queue {
                    pending: Vec::new(),
                    draining: false,
                }),
                snapshot: Mutex::new(snapshot),
                published_seq: AtomicU64::new(seq),
                subscribers: Mutex::new(Vec::new()),
                history: Mutex::new(history),
                next_session: AtomicU64::new(1),
                stats: Stats::default(),
                admin,
            }),
        }
    }

    /// The built-in framework administrator.
    pub fn admin(&self) -> UserId {
        self.inner.admin
    }

    /// Opens a session acting as `user`. The session subscribes to the
    /// engine's event stream from this point on.
    pub fn open_session(&self, user: UserId) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let events = Arc::new(Mutex::new(VecDeque::new()));
        lock(&self.inner.subscribers).push((id, Arc::clone(&events)));
        Session {
            service: self.clone(),
            id,
            user,
            events,
            cache: Mutex::new(None),
        }
    }

    /// The currently published [`Snapshot`]. Never blocks on writers:
    /// if a leader is just republishing, the previous snapshot is
    /// returned (and the brush with the lock is counted as a
    /// `reader_wait`).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        match self.inner.snapshot.try_lock() {
            Ok(guard) => Arc::clone(&guard),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.inner
                    .stats
                    .reader_waits
                    .fetch_add(1, Ordering::Relaxed);
                Arc::clone(&lock(&self.inner.snapshot))
            }
            Err(std::sync::TryLockError::Poisoned(p)) => Arc::clone(&p.into_inner()),
        }
    }

    /// A copy of the service's concurrency counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        ServiceStats {
            ops: s.ops.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            max_batch: s.max_batch.load(Ordering::Relaxed),
            writer_waits: s.writer_waits.load(Ordering::Relaxed),
            reader_waits: s.reader_waits.load(Ordering::Relaxed),
            queue_depth: s.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: s.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// The current write-queue depth: ops enqueued but not yet taken
    /// by a batch leader. One relaxed atomic load — cheap enough for a
    /// per-request saturation check (the network front-end's BUSY
    /// threshold).
    pub fn queue_depth(&self) -> u64 {
        self.inner.stats.queue_depth.load(Ordering::Relaxed)
    }

    /// Runs a closure against the engine under the write lock, outside
    /// the batching queue. For maintenance paths (checkpointing, fault
    /// arming) that need the whole engine, not one op.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        let mut engine = lock(&self.inner.engine);
        let out = f(&mut engine);
        lock(&self.inner.history).observe(engine.seq(), engine.snapshot());
        self.republish(&engine);
        out
    }

    /// Submits one op through the batched write queue and blocks until
    /// its batch commits. Returns the engine sequence number the op
    /// committed at together with its event — the form the network
    /// front-end ships back over the wire. (In-process callers usually
    /// go through the typed [`Session`] wrappers instead.)
    ///
    /// # Errors
    ///
    /// Returns whatever the op returns on the engine.
    pub fn submit(&self, op: Op) -> HybridResult<(u64, Event)> {
        self.submit_from(0, op)
    }

    /// Submits one op on behalf of session `session`.
    pub(crate) fn submit_from(&self, session: u64, op: Op) -> HybridResult<(u64, Event)> {
        let slot = Slot::new();
        let lead = {
            let mut queue = lock(&self.inner.queue);
            queue.pending.push((op, Arc::clone(&slot), session));
            let depth = queue.pending.len() as u64;
            self.inner.stats.queue_depth.store(depth, Ordering::Relaxed);
            self.inner
                .stats
                .max_queue_depth
                .fetch_max(depth, Ordering::Relaxed);
            if queue.draining {
                // A leader is already inside the engine; it (or the
                // next leader) will pick this op up.
                self.inner
                    .stats
                    .writer_waits
                    .fetch_add(1, Ordering::Relaxed);
                false
            } else {
                queue.draining = true;
                true
            }
        };
        if lead {
            self.drain();
        }
        slot.wait()
    }

    /// Leader path: repeatedly swap out the pending queue and commit
    /// it as one batch, until no ops remain; then hand leadership back.
    fn drain(&self) {
        let mut engine = lock(&self.inner.engine);
        loop {
            let batch = {
                let mut queue = lock(&self.inner.queue);
                if queue.pending.is_empty() {
                    queue.draining = false;
                    break;
                }
                std::mem::take(&mut queue.pending)
            };
            let size = batch.len() as u64;
            let stats = &self.inner.stats;
            stats.queue_depth.store(0, Ordering::Relaxed);
            stats.batches.fetch_add(1, Ordering::Relaxed);
            stats.ops.fetch_add(size, Ordering::Relaxed);
            stats.max_batch.fetch_max(size, Ordering::Relaxed);
            let mut fanout = Vec::new();
            let mut results = Vec::new();
            for (op, slot, session) in batch {
                let result = engine.apply(op);
                let seq = engine.seq();
                if let Ok(event) = &result {
                    fanout.push((session, seq, event.clone()));
                }
                // Offer every committed seq to the retention ring —
                // O(1) per op (the snapshot cache hands back one Arc
                // per seq) and entirely off the read path.
                lock(&self.inner.history).observe(seq, engine.snapshot());
                results.push((slot, result.map(|event| (seq, event))));
            }
            // One republish and one fan-out per batch, not per op — and
            // the republish happens before any submitter wakes, so every
            // writer sees its own committed write in the next snapshot
            // it reads (read-your-writes).
            self.republish(&engine);
            for (slot, result) in results {
                slot.fill(result);
            }
            self.fan_out(&fanout);
        }
    }

    /// Replaces the published snapshot with the engine's current state.
    fn republish(&self, engine: &Engine) {
        *lock(&self.inner.snapshot) = engine.snapshot();
        self.inner
            .published_seq
            .store(engine.seq(), Ordering::Release);
    }

    /// Delivers committed events to every session's queue (including
    /// the submitter's own).
    fn fan_out(&self, events: &[(u64, u64, Event)]) {
        let subscribers = lock(&self.inner.subscribers);
        for (_, queue) in subscribers.iter() {
            let mut queue = lock(queue);
            for (_session, seq, event) in events {
                queue.push_back((*seq, event.clone()));
            }
        }
    }

    fn close_session(&self, id: u64) {
        lock(&self.inner.subscribers).retain(|(sid, _)| *sid != id);
    }

    // --- the time-travel surface (§15) ------------------------------------

    /// The snapshot retained at exactly commit seq `seq`.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::SeqUnreachable`] (naming the closest
    /// retained boundary) when `seq` was never retained or has been
    /// evicted.
    pub fn at(&self, seq: u64) -> HybridResult<Arc<Snapshot>> {
        let history = lock(&self.inner.history);
        history.get(seq).ok_or_else(|| history.unreachable(seq))
    }

    /// Pins a retained seq so it survives ring eviction until
    /// [`Service::unpin`].
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::SeqUnreachable`] for unretained seqs.
    pub fn pin(&self, seq: u64) -> HybridResult<()> {
        lock(&self.inner.history).pin(seq)
    }

    /// Drops a pin; returns whether one existed.
    pub fn unpin(&self, seq: u64) -> bool {
        lock(&self.inner.history).unpin(seq)
    }

    /// Every currently retained seq (ring and pins), sorted ascending.
    pub fn retained_seqs(&self) -> Vec<u64> {
        lock(&self.inner.history).retained()
    }
}

/// One user's handle on the [`Service`]: typed write wrappers that
/// group-commit through the shared queue, snapshot reads that never
/// block on writers, and a private queue of committed events.
///
/// Dropping the session unsubscribes it.
#[derive(Debug)]
pub struct Session {
    service: Service,
    id: u64,
    user: UserId,
    events: EventQueue,
    /// The session's cached view, revalidated against the service's
    /// published sequence number on every read. A session is driven by
    /// one thread, so this mutex is effectively uncontended — reads of
    /// an unchanged snapshot never touch shared service locks.
    cache: Mutex<Option<Arc<Snapshot>>>,
}

impl Drop for Session {
    fn drop(&mut self) {
        self.service.close_session(self.id);
    }
}

impl Session {
    /// The user this session acts as.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The owning service.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// The currently published [`Snapshot`] — the session's read view.
    /// Cached per session: only the first read after a write batch
    /// pays the (brief) shared snapshot lock.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        let mut cache = lock(&self.cache);
        self.refresh(&mut cache);
        Arc::clone(cache.as_ref().expect("refresh filled the cache"))
    }

    /// Runs a closure against the session's (revalidated) cached view
    /// without cloning the [`Arc`] — the zero-shared-traffic read path.
    fn with_snapshot<R>(&self, f: impl FnOnce(&Snapshot) -> R) -> R {
        let mut cache = lock(&self.cache);
        self.refresh(&mut cache);
        f(cache.as_ref().expect("refresh filled the cache"))
    }

    fn refresh(&self, cache: &mut Option<Arc<Snapshot>>) {
        let published = self.service.inner.published_seq.load(Ordering::Acquire);
        let stale = cache.as_ref().is_none_or(|s| s.seq() != published);
        if stale {
            *cache = Some(self.service.snapshot());
        }
    }

    /// Drains the events committed since the last call (each with the
    /// engine sequence number it committed at).
    pub fn events(&self) -> Vec<(u64, Event)> {
        lock(&self.events).drain(..).collect()
    }

    /// Submits one raw op through the write queue and blocks until its
    /// batch commits.
    ///
    /// # Errors
    ///
    /// Returns whatever the op returns on the engine.
    pub fn apply(&self, op: Op) -> HybridResult<Event> {
        self.apply_seq(op).map(|(_, event)| event)
    }

    /// Like [`Session::apply`], also returning the engine sequence
    /// number the op committed at — the handle read-your-writes
    /// time-travel needs: `let (seq, _) = s.apply_seq(op)?;
    /// s.at(seq)?` sees exactly that write (given it was retained).
    ///
    /// # Errors
    ///
    /// Returns whatever the op returns on the engine.
    pub fn apply_seq(&self, op: Op) -> HybridResult<(u64, Event)> {
        self.service.submit_from(self.id, op)
    }

    /// This session's reads against the snapshot retained at commit
    /// seq `seq` — time travel. The returned [`HistoryView`] answers
    /// every zero-copy read of the live session at that fixed seq,
    /// `&self`, without ever touching the write path.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::SeqUnreachable`] when `seq` is not
    /// retained (see [`Service::at`]).
    pub fn at(&self, seq: u64) -> HybridResult<HistoryView> {
        Ok(HistoryView::new(self.user, self.service.at(seq)?))
    }

    /// Opens a branch [`Workspace`] on `cv` against the snapshot
    /// retained at `seq`. Unlike [`Session::reserve`], this takes no
    /// lock on the head — the reservation happens atomically inside
    /// [`Workspace::merge_forward`], and concurrent edits surface
    /// there as typed [`Event::MergeConflict`] outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::SeqUnreachable`] when `seq` is not
    /// retained.
    pub fn reserve_at(&self, cv: CellVersionId, seq: u64) -> HybridResult<Workspace> {
        let base = self.service.at(seq)?;
        Ok(Workspace::open(
            MergeBackend::Single {
                service: self.service.clone(),
                session: self.id,
            },
            self.user,
            cv,
            &base,
        ))
    }

    /// Reads design data from the published snapshot: zero-copy, in
    /// parallel with other readers, never blocking on writers.
    ///
    /// # Errors
    ///
    /// Returns desktop visibility errors.
    pub fn read_design_data(&self, dov: DovId) -> HybridResult<Blob> {
        self.with_snapshot(|snap| snap.read_design_data(self.user, dov))
    }

    /// Browses design data from the published snapshot (same zero-copy
    /// path as [`Session::read_design_data`]).
    ///
    /// # Errors
    ///
    /// Returns desktop visibility errors.
    pub fn browse(&self, dov: DovId) -> HybridResult<Blob> {
        self.with_snapshot(|snap| snap.browse(self.user, dov))
    }

    // --- typed write wrappers (the session-side desktop) -----------------

    fn expect<T>(event: Event, pick: impl FnOnce(Event) -> Option<T>) -> HybridResult<T> {
        let kind = event.kind_name();
        pick(event)
            .ok_or_else(|| HybridError::Journal(format!("engine returned unexpected event {kind}")))
    }

    /// Adds a user (sessions are not permission-checked; the acting
    /// user travels in the op where the desktop requires one).
    ///
    /// # Errors
    ///
    /// Returns desktop errors (e.g. a taken name).
    pub fn add_user(&self, name: &str, manager: bool) -> HybridResult<UserId> {
        Self::expect(
            self.apply(Op::AddUser {
                name: name.to_owned(),
                manager,
            })?,
            |e| match e {
                Event::UserAdded(id) => Some(id),
                _ => None,
            },
        )
    }

    /// Adds a team owned by this session's user.
    ///
    /// # Errors
    ///
    /// Returns desktop errors.
    pub fn add_team(&self, name: &str) -> HybridResult<TeamId> {
        Self::expect(
            self.apply(Op::AddTeam {
                actor: self.user,
                name: name.to_owned(),
            })?,
            |e| match e {
                Event::TeamAdded(id) => Some(id),
                _ => None,
            },
        )
    }

    /// Adds a member to a team.
    ///
    /// # Errors
    ///
    /// Returns desktop errors.
    pub fn add_team_member(&self, team: TeamId, user: UserId) -> HybridResult<()> {
        self.apply(Op::AddTeamMember {
            actor: self.user,
            team,
            user,
        })?;
        Ok(())
    }

    /// Defines and freezes the paper's standard three-tool flow.
    ///
    /// # Errors
    ///
    /// Returns desktop errors.
    pub fn standard_flow(&self, name: &str) -> HybridResult<StandardFlow> {
        Self::expect(
            self.apply(Op::DefineStandardFlow {
                name: name.to_owned(),
            })?,
            |e| match e {
                Event::StandardFlowDefined(flow) => Some(flow),
                _ => None,
            },
        )
    }

    /// Creates a project with its coupled FMCAD library.
    ///
    /// # Errors
    ///
    /// Returns name-clash errors from either framework.
    pub fn create_project(&self, name: &str) -> HybridResult<ProjectId> {
        Self::expect(
            self.apply(Op::CreateProject {
                name: name.to_owned(),
            })?,
            |e| match e {
                Event::ProjectCreated(id) => Some(id),
                _ => None,
            },
        )
    }

    /// Creates a cell under a project.
    ///
    /// # Errors
    ///
    /// Returns desktop errors.
    pub fn create_cell(&self, project: ProjectId, name: &str) -> HybridResult<CellId> {
        Self::expect(
            self.apply(Op::CreateCell {
                project,
                name: name.to_owned(),
            })?,
            |e| match e {
                Event::CellCreated(id) => Some(id),
                _ => None,
            },
        )
    }

    /// Creates a cell version (and its mapped FMCAD cell).
    ///
    /// # Errors
    ///
    /// Returns errors from either framework.
    pub fn create_cell_version(
        &self,
        cell: CellId,
        flow: FlowId,
        team: TeamId,
    ) -> HybridResult<(CellVersionId, VariantId)> {
        Self::expect(
            self.apply(Op::CreateCellVersion { cell, flow, team })?,
            |e| match e {
                Event::CellVersionCreated(cv, variant) => Some((cv, variant)),
                _ => None,
            },
        )
    }

    /// Reserves a cell version for this session's user.
    ///
    /// # Errors
    ///
    /// Returns reservation errors.
    pub fn reserve(&self, cv: CellVersionId) -> HybridResult<()> {
        self.apply(Op::Reserve {
            user: self.user,
            cv,
        })?;
        Ok(())
    }

    /// Publishes a cell version's design data.
    ///
    /// # Errors
    ///
    /// Returns reservation errors.
    pub fn publish(&self, cv: CellVersionId) -> HybridResult<()> {
        self.apply(Op::Publish {
            user: self.user,
            cv,
        })?;
        Ok(())
    }

    /// Runs an encapsulated activity with pre-recorded tool outputs
    /// (the replayable form of
    /// [`Engine::run_activity`](crate::Engine::run_activity)).
    ///
    /// # Errors
    ///
    /// Returns flow, reservation and consistency errors.
    pub fn run_activity(
        &self,
        variant: VariantId,
        activity: jcf::ActivityId,
        override_pending: bool,
        outputs: Vec<crate::ToolOutput>,
        session_error: Option<String>,
    ) -> HybridResult<Vec<DovId>> {
        Self::expect(
            self.apply(Op::RunActivity {
                user: self.user,
                variant,
                activity,
                override_pending,
                outputs: outputs.into_iter().map(|o| (o.viewtype, o.data)).collect(),
                session_error,
            })?,
            |e| match e {
                Event::ActivityRun { dovs } => Some(dovs),
                _ => None,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_and_session_are_send_and_sync() {
        fn assert_both<T: Send + Sync>() {}
        assert_both::<Service>();
        assert_both::<Session>();
        assert_both::<Arc<Snapshot>>();
    }

    #[test]
    fn writes_commit_and_events_fan_out_to_all_sessions() {
        let service = Service::new(Engine::builder().build());
        let admin = service.open_session(service.admin());
        let observer = service.open_session(service.admin());
        let alice = admin.add_user("alice", false).unwrap();
        let _ = alice;
        let seen: Vec<_> = observer.events();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, 1);
        assert_eq!(seen[0].1.kind_name(), "user-added");
        // The submitter sees its own event too.
        assert_eq!(admin.events().len(), 1);
    }

    #[test]
    fn snapshot_republishes_once_per_batch() {
        let service = Service::new(Engine::builder().build());
        let session = service.open_session(service.admin());
        assert_eq!(session.snapshot().seq(), 0);
        session.create_project("p").unwrap();
        assert_eq!(session.snapshot().seq(), 1);
        let stats = service.stats();
        assert_eq!(stats.ops, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.max_batch, 1);
    }

    #[test]
    fn failed_ops_return_their_error_to_the_submitter() {
        let service = Service::new(Engine::builder().build());
        let session = service.open_session(service.admin());
        session.create_project("p").unwrap();
        let err = session.create_project("p").unwrap_err();
        assert_eq!(err.kind(), "jcf");
        // Failures are journaled (engine semantics) but not fanned out.
        assert_eq!(
            session.events().len(),
            1,
            "only the successful op produced an event"
        );
    }

    #[test]
    fn dropped_sessions_stop_receiving_events() {
        let service = Service::new(Engine::builder().build());
        let writer = service.open_session(service.admin());
        let ephemeral = service.open_session(service.admin());
        drop(ephemeral);
        writer.create_project("p").unwrap();
        assert_eq!(lock(&service.inner.subscribers).len(), 1);
    }

    #[test]
    fn concurrent_writers_group_commit() {
        let service = Service::new(Engine::builder().build());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let service = service.clone();
                std::thread::spawn(move || {
                    let session = service.open_session(service.admin());
                    (0..16)
                        .map(|j| session.create_project(&format!("p-{i}-{j}")).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut projects = Vec::new();
        for t in threads {
            projects.extend(t.join().unwrap());
        }
        let stats = service.stats();
        assert_eq!(stats.ops, 128);
        assert!(stats.batches <= 128);
        let snap = service.snapshot();
        assert_eq!(snap.seq(), 128);
        // Every project committed exactly once, visible in the view.
        projects.sort();
        projects.dedup();
        assert_eq!(projects.len(), 128);
        for project in projects {
            assert!(snap.library_of(project).is_ok());
        }
    }

    #[test]
    fn queue_depth_counters_track_the_write_queue() {
        let service = Service::new(Engine::builder().build());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let service = service.clone();
                std::thread::spawn(move || {
                    let session = service.open_session(service.admin());
                    for j in 0..16 {
                        session.create_project(&format!("q-{i}-{j}")).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = service.stats();
        assert!(stats.max_queue_depth >= 1, "at least one op was queued");
        assert!(stats.max_queue_depth <= 128);
        assert_eq!(service.queue_depth(), 0, "all ops committed, gauge drained");
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn raw_submit_returns_the_commit_sequence() {
        let service = Service::new(Engine::builder().build());
        let (seq, event) = service
            .submit(Op::CreateProject { name: "p".into() })
            .unwrap();
        assert_eq!(seq, 1);
        assert_eq!(event.kind_name(), "project-created");
        assert_eq!(service.snapshot().seq(), 1);
    }

    #[test]
    fn concurrent_readers_share_payloads_with_zero_copies() {
        let service = Service::new(Engine::builder().build());
        let admin = service.open_session(service.admin());
        let alice = admin.add_user("alice", false).unwrap();
        let team = admin.add_team("asic").unwrap();
        admin.add_team_member(team, alice).unwrap();
        let flow = admin.standard_flow("std").unwrap();
        let project = admin.create_project("alu").unwrap();
        let cell = admin.create_cell(project, "adder").unwrap();
        let (cv, variant) = admin.create_cell_version(cell, flow.flow, team).unwrap();
        let alice_session = service.open_session(alice);
        alice_session.reserve(cv).unwrap();
        let dovs = alice_session
            .run_activity(
                variant,
                flow.enter_schematic,
                false,
                vec![crate::ToolOutput {
                    viewtype: "schematic".into(),
                    data: b"netlist adder\nport a input\n".to_vec().into(),
                }],
                None,
            )
            .unwrap();
        let dov = dovs[0];
        let reference = alice_session.read_design_data(dov).unwrap();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let service = service.clone();
                let reference = reference.clone();
                std::thread::spawn(move || {
                    let session = service.open_session(alice);
                    let before = Blob::materializations();
                    for _ in 0..32 {
                        let data = session.read_design_data(dov).unwrap();
                        assert!(Blob::ptr_eq(&data, &reference));
                    }
                    assert_eq!(Blob::materializations(), before);
                })
            })
            .collect();
        for t in readers {
            t.join().unwrap();
        }
    }

    #[test]
    fn with_engine_republishes_the_snapshot() {
        let service = Service::new(Engine::builder().build());
        let session = service.open_session(service.admin());
        service.with_engine(|engine| {
            engine.create_project("direct").unwrap();
        });
        assert_eq!(session.snapshot().seq(), 1);
    }
}
