//! Sharded write path: partitioned engines behind one service.
//!
//! [`Service`](crate::Service) funnels every write through a single
//! engine critical section; on a workload of independent projects that
//! single queue is the scaling wall. This module splits the OMS behind
//! the service into N partition [`Engine`]s keyed by project/library:
//!
//! * A **[`ShardRouter`]** (internal) maps each [`Op`] to its owning
//!   partition. Partition names hash to shards with a pure FNV-1a
//!   placement function ([`shard_of_name`]), so routing at submit time
//!   needs no registry lookup for name-keyed ops.
//! * **Per-shard leader/follower write queues** replicate the group
//!   commit discipline of [`Service`](crate::Service): one lane per
//!   shard, each with its own engine lock, batch queue and published
//!   snapshot.
//! * **Per-shard append-only journals** record every op in *envelope*
//!   form (the virtual-id op plus its global commit sequence) before
//!   the engine applies it, so restart replay reproduces successes
//!   *and* failures in commit order.
//! * **Per-shard snapshot caches** are composed into one cross-shard
//!   [`ShardView`] for readers, revalidated against a global version
//!   counter.
//!
//! # Virtual ids
//!
//! Each partition engine has its own object-id space, so the ids two
//! engines hand out collide. The router therefore exposes *virtual*
//! ids: `vid = VIRT_BASE + seq * 256 + k`, a pure function of the op's
//! global commit sequence `seq` and the index `k` of the created id
//! within the op's event. Ids below `VIRT_BASE` (the bootstrap
//! entities, identical on every shard) pass through untranslated.
//! Because the vid depends only on the journal record, live execution
//! and restart replay allocate byte-identical ids regardless of how
//! concurrent shard drains interleave — and regardless of the shard
//! count, which is what makes the 1/2/4/8-shard fingerprints of the
//! E14 campaign comparable.
//!
//! # Routing classes
//!
//! * **Broadcast** ops (users, teams, tools, viewtypes, flows, mode
//!   switches) apply to *every* shard in index order; the created
//!   entities get one virtual id mapping to a per-shard local id each.
//! * **Partition** ops route to the single shard owning their
//!   project/library, either by name hash (`create-project`,
//!   `import-library`, the `fmcad-*` family) or by resolving a virtual
//!   id back to its partition.
//! * **Cross-partition** ops — hierarchy binding across libraries
//!   (`declare-comp-of`) and equivalence relations (`mark-equivalent`)
//!   — go through a deterministic two-phase commit: a `prep` record in
//!   both participating shards' journals under one shared commit
//!   sequence, the router-level effect, then a `cmit` record in both.
//!   Recovery treats the op as committed only when the commit record
//!   is present in **both** journals; an orphaned prepare is rolled
//!   back deterministically and reported in
//!   [`RecoveryReport::rolled_back_prepares`].
//!
//! Cross-ness is partition inequality, not shard inequality, so the
//! decision — and therefore the journal record stream — is invariant
//! across shard counts.
//!
//! # Persistence
//!
//! Epochs: `root/CURRENT` is a one-line pointer at the live epoch
//! directory `ck-<k>`, which holds one engine checkpoint per shard
//! (`shard-<i>/`), the router image (`router.meta`) and the envelope
//! journals (`shard-<i>.log`). [`ShardedService::checkpoint`] stages a
//! new epoch and flips `CURRENT` atomically; [`ShardedService::sync`]
//! rewrites the journals (whole-file atomic, ascending shard order);
//! [`ShardedService::recover`] merges the journals by commit sequence
//! and replays through the router.
//!
//! # Simplifications
//!
//! The sharded service does not fan events out to per-session
//! subscription queues (use [`Service`](crate::Service) when event
//! subscriptions matter); each write returns its own `(seq, event)`
//! pair instead. Recovery requires the same shard count the journals
//! were written with (it is recorded in `router.meta`).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use cad_vfs::{Blob, Vfs, VfsPath};
use jcf::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId, FlowId,
    ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};
use oms::{PMap, PmapKey};

use crate::engine::{Engine, RecoveryReport};
use crate::error::{HybridError, HybridResult};
use crate::events::{Event, MergeConflict};
use crate::framework::{MirrorLocation, StagingMode, StandardFlow};
use crate::future::FutureFeatures;
use crate::history::{HistoryRing, RetentionPolicy, Workspace};
use crate::ops::Op;
use crate::snapshot::Snapshot;

/// First virtual id. Everything below is a bootstrap-era local id,
/// identical on every shard, and passes through the router untouched.
pub const VIRT_BASE: u64 = 1 << 32;

/// Virtual ids per commit sequence: one op creates at most this many
/// entities (the largest creator, `run-activity`, is bounded by the
/// flow's created-viewtype list).
const VID_STRIDE: u64 = 256;

const CURRENT_PTR: &str = "CURRENT";
const ROUTER_META: &str = "router.meta";
/// Per-epoch record of where each shard's engine chain stood when the
/// epoch was committed: `Engine::recover_at` targets at recovery time.
const EPOCH_META: &str = "epoch.meta";

/// Lock a mutex, riding through poisoning (same policy as
/// [`Service`](crate::Service): a panicked writer must not take the
/// whole service down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The design objects `event` created implicitly (an activity's first
/// output for a viewtype), shard-local ids in order of each object's
/// first produced dov. An object is fresh exactly when its first
/// version is one of the activity's dovs, so the answer — and the
/// vid slots derived from it — cannot depend on the shard count.
fn fresh_activity_objects(engine: &Engine, event: &Event) -> Vec<u64> {
    let Event::ActivityRun { dovs } = event else {
        return Vec::new();
    };
    let mut fresh = Vec::new();
    for dov in dovs {
        if let Ok(d) = engine.jcf().design_object_of(*dov) {
            if engine.jcf().versions_of_design_object(d).first() == Some(dov)
                && !fresh.contains(&d.raw())
            {
                fresh.push(d.raw());
            }
        }
    }
    fresh
}

/// FNV-1a 64, the router's placement and fingerprint hash.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pure placement function: which shard owns the partition named
/// `name` when `nshards` shards exist. Stable across restarts (it is
/// a function of the name alone), so submit-time routing needs no
/// registry lookup.
pub fn shard_of_name(name: &str, nshards: usize) -> usize {
    (fnv64(name.as_bytes()) % nshards.max(1) as u64) as usize
}

fn hex_encode(s: &str) -> String {
    s.bytes().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Result<String, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex field {s:?}"));
    }
    let mut bytes = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        let b = u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| format!("bad hex: {e}"))?;
        bytes.push(b);
    }
    String::from_utf8(bytes).map_err(|e| format!("hex field is not utf-8: {e}"))
}

fn map_oms(e: oms::OmsError) -> HybridError {
    match e {
        oms::OmsError::Vfs(fs) => HybridError::Vfs(fs),
        other => HybridError::Journal(format!("shard store: {other}")),
    }
}

// ---------------------------------------------------------------------------
// Envelope journal records
// ---------------------------------------------------------------------------

/// One entry of a per-shard envelope journal. Records carry the op in
/// *virtual-id* form — replay re-translates against the rebuilt maps.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EnvelopeRecord {
    /// A partition-local op owned by this shard.
    Local { seq: u64, op: Op },
    /// A broadcast op; the same record lands in every shard's journal
    /// and is deduplicated by sequence at recovery.
    Bcast { seq: u64, op: Op },
    /// Phase one of a cross-partition commit between partitions `a`
    /// and `b`; recorded in both participants' journals.
    Prepare { seq: u64, a: u32, b: u32, op: Op },
    /// Phase two: the commit marker that makes a prepare durable.
    Commit { seq: u64 },
}

impl EnvelopeRecord {
    /// Renders one journal line. The `line=` field is last because op
    /// lines contain `|` themselves.
    fn to_line(&self) -> String {
        match self {
            EnvelopeRecord::Local { seq, op } => format!("op|seq={seq}|line={}", op.to_line()),
            EnvelopeRecord::Bcast { seq, op } => format!("bcast|seq={seq}|line={}", op.to_line()),
            EnvelopeRecord::Prepare { seq, a, b, op } => {
                format!("prep|seq={seq}|a={a}|b={b}|line={}", op.to_line())
            }
            EnvelopeRecord::Commit { seq } => format!("cmit|seq={seq}"),
        }
    }

    fn parse_line(line: &str) -> Result<EnvelopeRecord, String> {
        let (head, op_line) = match line.find("|line=") {
            Some(at) => (&line[..at], Some(&line[at + "|line=".len()..])),
            None => (line, None),
        };
        let mut fields = head.split('|');
        let kind = fields.next().unwrap_or_default();
        let mut seq = None;
        let mut a = None;
        let mut b = None;
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("malformed field {field:?}"))?;
            let parsed: u64 = value
                .parse()
                .map_err(|e| format!("bad numeric field {field:?}: {e}"))?;
            match key {
                "seq" => seq = Some(parsed),
                "a" => a = Some(parsed as u32),
                "b" => b = Some(parsed as u32),
                other => return Err(format!("unknown field key {other:?}")),
            }
        }
        let seq = seq.ok_or_else(|| format!("record without seq: {line:?}"))?;
        let op = |raw: Option<&str>| -> Result<Op, String> {
            let raw = raw.ok_or_else(|| format!("record without op line: {line:?}"))?;
            Op::parse_line(raw).map_err(|e| format!("bad op line: {e}"))
        };
        match kind {
            "op" => Ok(EnvelopeRecord::Local {
                seq,
                op: op(op_line)?,
            }),
            "bcast" => Ok(EnvelopeRecord::Bcast {
                seq,
                op: op(op_line)?,
            }),
            "prep" => Ok(EnvelopeRecord::Prepare {
                seq,
                a: a.ok_or_else(|| format!("prepare without participant a: {line:?}"))?,
                b: b.ok_or_else(|| format!("prepare without participant b: {line:?}"))?,
                op: op(op_line)?,
            }),
            "cmit" => Ok(EnvelopeRecord::Commit { seq }),
            other => Err(format!("unknown record kind {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Router state
// ---------------------------------------------------------------------------

/// Where a virtual id lives.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VirtEntry {
    /// A broadcast entity: one local id per shard, indexed by shard.
    Broadcast { locals: Vec<u64> },
    /// A partition entity: the owning partition and its local id
    /// there. Partitions (not shards) key the entry, so the map is
    /// byte-identical across shard counts.
    Sharded { part: u32, local: u64 },
}

/// How an op travels, resolved against the router state at submit
/// time. Stable until drain: partitions are never unregistered (a
/// failed create rolls back before its vid is ever visible) and vid
/// entries are immutable once registered.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RoutePlan {
    /// Apply on every shard (home lane 0).
    AllShards,
    /// Apply on one shard; `part` is the owning partition for vid
    /// registration (`None` for the partition-less `fmcad-*` family).
    One { shard: usize, part: Option<u32> },
    /// `create-project` / `import-library`: registers the partition.
    NewPart { shard: usize, name: String },
    /// Two-phase commit between distinct partitions.
    Cross {
        pa: u32,
        pb: u32,
        sa: usize,
        sb: usize,
    },
}

impl RoutePlan {
    /// The lane whose queue carries the op.
    fn home(&self) -> usize {
        match self {
            RoutePlan::AllShards => 0,
            RoutePlan::One { shard, .. } | RoutePlan::NewPart { shard, .. } => *shard,
            RoutePlan::Cross { sa, sb, .. } => (*sa).min(*sb),
        }
    }
}

/// The shard router: virtual-id maps, partition registry, envelope
/// journals and the global commit sequence. Guarded by one mutex in
/// the live service; owned directly during recovery replay.
struct ShardRouter {
    nshards: usize,
    /// Next global commit sequence to assign.
    next_seq: u64,
    /// Current persistence epoch (0 = never checkpointed).
    epoch: u64,
    /// Next partition index; failed creates burn an index so replay
    /// assigns identically without rollback bookkeeping.
    next_part: u32,
    /// Live partition name → partition index.
    parts: BTreeMap<String, u32>,
    /// Partition index → owning shard under the current shard count.
    part_shard: BTreeMap<u32, u32>,
    /// vid → location. Persistent map: O(1) clone per published view.
    forward: PMap<u64, VirtEntry>,
    /// Per shard: local raw id → vid (derived from `forward`; not
    /// serialized).
    reverse: Vec<PMap<u64, u64>>,
    /// Cross-partition hierarchy edges `(cv vid, child cell vid)` in
    /// commit order.
    comp_edges: Vec<(u64, u64)>,
    /// Cross-partition equivalences `(dov vid, dov vid)` in commit
    /// order.
    equiv_edges: Vec<(u64, u64)>,
    /// Per-shard envelope journals since the last checkpoint.
    logs: Vec<Vec<EnvelopeRecord>>,
    /// Broadcast ops committed.
    broadcasts: u64,
    /// Cross-partition two-phase commits.
    cross_commits: u64,
}

impl ShardRouter {
    fn new(nshards: usize) -> ShardRouter {
        ShardRouter {
            nshards,
            next_seq: 0,
            epoch: 0,
            next_part: 0,
            parts: BTreeMap::new(),
            part_shard: BTreeMap::new(),
            forward: PMap::new(),
            reverse: vec![PMap::new(); nshards],
            comp_edges: Vec::new(),
            equiv_edges: Vec::new(),
            logs: vec![Vec::new(); nshards],
            broadcasts: 0,
            cross_commits: 0,
        }
    }

    fn assign_seq(&mut self, forced: Option<u64>) -> u64 {
        match forced {
            Some(seq) => {
                self.next_seq = self.next_seq.max(seq + 1);
                seq
            }
            None => {
                let seq = self.next_seq;
                self.next_seq += 1;
                seq
            }
        }
    }

    // -- id translation ----------------------------------------------------

    /// vid → local id on `shard`. Sub-`VIRT_BASE` ids pass through.
    fn resolve_raw(&self, raw: u64, shard: usize) -> Result<u64, String> {
        if raw < VIRT_BASE {
            return Ok(raw);
        }
        match self.forward.get(&raw) {
            Some(VirtEntry::Broadcast { locals }) => Ok(locals[shard]),
            Some(VirtEntry::Sharded { part, local }) => {
                let owner = self.shard_of_part(*part)?;
                if owner == shard {
                    Ok(*local)
                } else {
                    Err(format!(
                        "id {raw} lives on shard {owner} but the op routes to shard {shard}"
                    ))
                }
            }
            None => Err(format!("unknown virtual id {raw}")),
        }
    }

    fn tr<T: PmapKey>(&self, id: T, shard: usize) -> Result<T, String> {
        Ok(T::from_bits(self.resolve_raw(id.to_bits(), shard)?))
    }

    /// local id on `shard` → vid (pass-through for bootstrap ids).
    fn rv_raw(&self, shard: usize, local: u64) -> u64 {
        self.reverse[shard].get(&local).copied().unwrap_or(local)
    }

    fn rv<T: PmapKey>(&self, shard: usize, id: T) -> T {
        T::from_bits(self.rv_raw(shard, id.to_bits()))
    }

    fn shard_of_part(&self, part: u32) -> Result<usize, String> {
        self.part_shard
            .get(&part)
            .map(|&s| s as usize)
            .ok_or_else(|| format!("unknown partition {part}"))
    }

    fn sharded_part(&self, raw: u64) -> Result<u32, String> {
        match self.forward.get(&raw) {
            Some(VirtEntry::Sharded { part, .. }) => Ok(*part),
            Some(VirtEntry::Broadcast { .. }) => Err(format!(
                "id {raw} is replicated on every shard and cannot anchor a partition op"
            )),
            None => Err(format!("id {raw} is not a routable virtual id")),
        }
    }

    fn register(&mut self, vid: u64, entry: VirtEntry) {
        match &entry {
            VirtEntry::Broadcast { locals } => {
                for (shard, &local) in locals.iter().enumerate() {
                    self.reverse[shard].insert(local, vid);
                }
            }
            VirtEntry::Sharded { part, local } => {
                if let Ok(shard) = self.shard_of_part(*part) {
                    self.reverse[shard].insert(*local, vid);
                }
            }
        }
        self.forward.insert(vid, entry);
    }

    // -- routing -----------------------------------------------------------

    fn plan(&self, op: &Op) -> Result<RoutePlan, String> {
        use Op::*;
        Ok(match op {
            AddUser { .. }
            | AddTeam { .. }
            | AddTeamMember { .. }
            | RegisterViewtype { .. }
            | RegisterTool { .. }
            | DefineStandardFlow { .. }
            | DefineQualityGatedFlow { .. }
            | DefineFlow { .. }
            | AddActivity { .. }
            | FreezeFlow { .. }
            | SetFutureFeatures { .. }
            | SetStagingMode { .. } => RoutePlan::AllShards,
            CreateProject { name } => RoutePlan::NewPart {
                shard: shard_of_name(name, self.nshards),
                name: name.clone(),
            },
            ImportLibrary { library, .. } => RoutePlan::NewPart {
                shard: shard_of_name(library, self.nshards),
                name: library.clone(),
            },
            FmcadCreateLibrary { name } => RoutePlan::One {
                shard: shard_of_name(name, self.nshards),
                part: None,
            },
            FmcadCreateCell { library, .. }
            | FmcadCreateCellview { library, .. }
            | FmcadCheckout { library, .. }
            | FmcadCheckin { library, .. }
            | FmcadPurgeVersion { library, .. }
            | FmcadDirectWrite { library, .. } => RoutePlan::One {
                shard: shard_of_name(library, self.nshards),
                part: None,
            },
            CreateCell { project, .. } => self.plan_by_id(project.raw())?,
            CreateCellVersion { cell, .. } => self.plan_by_id(cell.raw())?,
            DeriveVariant { cv, .. } => self.plan_by_id(cv.raw())?,
            ShareCell { cell, .. } => self.plan_by_id(cell.raw())?,
            PromoteVariant { winner, .. } => self.plan_by_id(winner.raw())?,
            Reserve { cv, .. } => self.plan_by_id(cv.raw())?,
            Publish { cv, .. } => self.plan_by_id(cv.raw())?,
            CreateDesignObject { variant, .. } => self.plan_by_id(variant.raw())?,
            AddDesignObjectVersion { design_object, .. } => self.plan_by_id(design_object.raw())?,
            RunActivity { variant, .. } => self.plan_by_id(variant.raw())?,
            Browse { dov, .. } => self.plan_by_id(dov.raw())?,
            ReadDesignData { dov, .. } => self.plan_by_id(dov.raw())?,
            CreateConfiguration { cv, .. } => self.plan_by_id(cv.raw())?,
            CreateConfigVersion { config, .. } => self.plan_by_id(config.raw())?,
            ExportConfig { config_version, .. } => self.plan_by_id(config_version.raw())?,
            RunLvs { variant, .. } => self.plan_by_id(variant.raw())?,
            DeclareCompOf { cv, child, .. } => self.plan_cross(cv.raw(), child.raw())?,
            MarkEquivalent { a, b } => self.plan_cross(a.raw(), b.raw())?,
            MergeForward { cv, .. } => self.plan_by_id(cv.raw())?,
        })
    }

    fn plan_by_id(&self, raw: u64) -> Result<RoutePlan, String> {
        let part = self.sharded_part(raw)?;
        Ok(RoutePlan::One {
            shard: self.shard_of_part(part)?,
            part: Some(part),
        })
    }

    fn plan_cross(&self, ra: u64, rb: u64) -> Result<RoutePlan, String> {
        let pa = self.sharded_part(ra)?;
        let pb = self.sharded_part(rb)?;
        if pa == pb {
            Ok(RoutePlan::One {
                shard: self.shard_of_part(pa)?,
                part: Some(pa),
            })
        } else {
            Ok(RoutePlan::Cross {
                pa,
                pb,
                sa: self.shard_of_part(pa)?,
                sb: self.shard_of_part(pb)?,
            })
        }
    }

    // -- op translation (vid → local) --------------------------------------

    /// Rebuilds `op` with every id translated into `shard`'s local id
    /// space. Errors when an id does not resolve onto that shard.
    fn translate(&self, op: &Op, shard: usize) -> Result<Op, String> {
        use Op::*;
        Ok(match op {
            AddUser { .. }
            | RegisterViewtype { .. }
            | RegisterTool { .. }
            | DefineStandardFlow { .. }
            | DefineQualityGatedFlow { .. }
            | CreateProject { .. }
            | SetFutureFeatures { .. }
            | SetStagingMode { .. }
            | FmcadCreateLibrary { .. }
            | FmcadCreateCell { .. }
            | FmcadCreateCellview { .. }
            | FmcadCheckout { .. }
            | FmcadCheckin { .. }
            | FmcadPurgeVersion { .. }
            | FmcadDirectWrite { .. } => op.clone(),
            AddTeam { actor, name } => AddTeam {
                actor: self.tr(*actor, shard)?,
                name: name.clone(),
            },
            AddTeamMember { actor, team, user } => AddTeamMember {
                actor: self.tr(*actor, shard)?,
                team: self.tr(*team, shard)?,
                user: self.tr(*user, shard)?,
            },
            DefineFlow { actor, name } => DefineFlow {
                actor: self.tr(*actor, shard)?,
                name: name.clone(),
            },
            AddActivity {
                actor,
                flow,
                name,
                tool,
                needs,
                creates,
                predecessors,
            } => AddActivity {
                actor: self.tr(*actor, shard)?,
                flow: self.tr(*flow, shard)?,
                name: name.clone(),
                tool: self.tr(*tool, shard)?,
                needs: self.tr_vec(needs, shard)?,
                creates: self.tr_vec(creates, shard)?,
                predecessors: self.tr_vec(predecessors, shard)?,
            },
            FreezeFlow { actor, flow } => FreezeFlow {
                actor: self.tr(*actor, shard)?,
                flow: self.tr(*flow, shard)?,
            },
            CreateCell { project, name } => CreateCell {
                project: self.tr(*project, shard)?,
                name: name.clone(),
            },
            CreateCellVersion { cell, flow, team } => CreateCellVersion {
                cell: self.tr(*cell, shard)?,
                flow: self.tr(*flow, shard)?,
                team: self.tr(*team, shard)?,
            },
            DeriveVariant {
                user,
                cv,
                name,
                base,
            } => DeriveVariant {
                user: self.tr(*user, shard)?,
                cv: self.tr(*cv, shard)?,
                name: name.clone(),
                base: match base {
                    Some(b) => Some(self.tr(*b, shard)?),
                    None => None,
                },
            },
            DeclareCompOf { user, cv, child } => DeclareCompOf {
                user: self.tr(*user, shard)?,
                cv: self.tr(*cv, shard)?,
                child: self.tr(*child, shard)?,
            },
            ShareCell { actor, cell } => ShareCell {
                actor: self.tr(*actor, shard)?,
                cell: self.tr(*cell, shard)?,
            },
            PromoteVariant { user, winner } => PromoteVariant {
                user: self.tr(*user, shard)?,
                winner: self.tr(*winner, shard)?,
            },
            Reserve { user, cv } => Reserve {
                user: self.tr(*user, shard)?,
                cv: self.tr(*cv, shard)?,
            },
            Publish { user, cv } => Publish {
                user: self.tr(*user, shard)?,
                cv: self.tr(*cv, shard)?,
            },
            CreateDesignObject {
                user,
                variant,
                name,
                viewtype,
            } => CreateDesignObject {
                user: self.tr(*user, shard)?,
                variant: self.tr(*variant, shard)?,
                name: name.clone(),
                viewtype: self.tr(*viewtype, shard)?,
            },
            AddDesignObjectVersion {
                user,
                design_object,
                data,
            } => AddDesignObjectVersion {
                user: self.tr(*user, shard)?,
                design_object: self.tr(*design_object, shard)?,
                data: data.clone(),
            },
            MarkEquivalent { a, b } => MarkEquivalent {
                a: self.tr(*a, shard)?,
                b: self.tr(*b, shard)?,
            },
            MergeForward {
                user,
                cv,
                base_seq,
                expected,
                writes,
            } => MergeForward {
                user: self.tr(*user, shard)?,
                cv: self.tr(*cv, shard)?,
                base_seq: *base_seq,
                expected: expected
                    .iter()
                    .map(|(d, n)| Ok((self.tr(*d, shard)?, *n)))
                    .collect::<Result<Vec<_>, String>>()?,
                writes: writes
                    .iter()
                    .map(|(d, data)| Ok((self.tr(*d, shard)?, data.clone())))
                    .collect::<Result<Vec<_>, String>>()?,
            },
            RunActivity {
                user,
                variant,
                activity,
                override_pending,
                outputs,
                session_error,
            } => RunActivity {
                user: self.tr(*user, shard)?,
                variant: self.tr(*variant, shard)?,
                activity: self.tr(*activity, shard)?,
                override_pending: *override_pending,
                outputs: outputs.clone(),
                session_error: session_error.clone(),
            },
            Browse { user, dov } => Browse {
                user: self.tr(*user, shard)?,
                dov: self.tr(*dov, shard)?,
            },
            ReadDesignData { user, dov } => ReadDesignData {
                user: self.tr(*user, shard)?,
                dov: self.tr(*dov, shard)?,
            },
            CreateConfiguration { user, cv, name } => CreateConfiguration {
                user: self.tr(*user, shard)?,
                cv: self.tr(*cv, shard)?,
                name: name.clone(),
            },
            CreateConfigVersion {
                user,
                config,
                contents,
            } => CreateConfigVersion {
                user: self.tr(*user, shard)?,
                config: self.tr(*config, shard)?,
                contents: self.tr_vec(contents, shard)?,
            },
            ExportConfig {
                user,
                config_version,
                dest,
            } => ExportConfig {
                user: self.tr(*user, shard)?,
                config_version: self.tr(*config_version, shard)?,
                dest: dest.clone(),
            },
            RunLvs { user, variant } => RunLvs {
                user: self.tr(*user, shard)?,
                variant: self.tr(*variant, shard)?,
            },
            ImportLibrary {
                actor,
                library,
                flow,
                team,
            } => ImportLibrary {
                actor: self.tr(*actor, shard)?,
                library: library.clone(),
                flow: self.tr(*flow, shard)?,
                team: self.tr(*team, shard)?,
            },
        })
    }

    fn tr_vec<T: PmapKey>(&self, ids: &[T], shard: usize) -> Result<Vec<T>, String> {
        ids.iter().map(|id| self.tr(*id, shard)).collect()
    }
}

impl ShardRouter {
    // -- live/replay op protocol (pre = under router lock before the
    //    engine applies; post = under router lock after) ------------------

    /// Assigns the sequence, appends the envelope record and returns
    /// the shard-local translation. A translation failure records
    /// nothing and consumes no sequence — the op never reached any
    /// engine, so there is nothing to replay.
    fn pre_local(
        &mut self,
        shard: usize,
        op: &Op,
        forced: Option<u64>,
    ) -> Result<(u64, Op), String> {
        let translated = self.translate(op, shard)?;
        let seq = self.assign_seq(forced);
        self.logs[shard].push(EnvelopeRecord::Local {
            seq,
            op: op.clone(),
        });
        Ok((seq, translated))
    }

    /// `pre_local` plus partition registration for `create-project` /
    /// `import-library`. The index comes from a monotone counter that
    /// never rolls back — a failed create burns its index, which is
    /// what keeps replay's assignments identical without bookkeeping.
    fn pre_new_part(
        &mut self,
        shard: usize,
        name: &str,
        op: &Op,
        forced: Option<u64>,
    ) -> Result<(u64, Op, u32, bool), String> {
        let translated = self.translate(op, shard)?;
        let (part, fresh) = match self.parts.get(name) {
            Some(&existing) => (existing, false),
            None => {
                let part = self.next_part;
                self.next_part += 1;
                self.parts.insert(name.to_owned(), part);
                self.part_shard.insert(part, shard as u32);
                (part, true)
            }
        };
        let seq = self.assign_seq(forced);
        self.logs[shard].push(EnvelopeRecord::Local {
            seq,
            op: op.clone(),
        });
        Ok((seq, translated, part, fresh))
    }

    /// Rolls a freshly registered partition back after the owning
    /// engine rejected its create op.
    fn rollback_part(&mut self, name: &str, part: u32) {
        self.parts.remove(name);
        self.part_shard.remove(&part);
    }

    /// Translates a broadcast op for every shard (all-or-nothing) and
    /// appends the shared record to every journal.
    fn pre_bcast(&mut self, op: &Op, forced: Option<u64>) -> Result<(u64, Vec<Op>), String> {
        let translated = (0..self.nshards)
            .map(|shard| self.translate(op, shard))
            .collect::<Result<Vec<_>, _>>()?;
        let seq = self.assign_seq(forced);
        for log in &mut self.logs {
            log.push(EnvelopeRecord::Bcast {
                seq,
                op: op.clone(),
            });
        }
        self.broadcasts += 1;
        Ok((seq, translated))
    }

    /// The deterministic two-phase commit for a cross-partition op:
    /// prepare in both participants' journals, the router-level
    /// effect, commit in both — all under one router critical section,
    /// so a live 2PC cannot be left half-done (only injected
    /// persistence faults can tear it, which is what recovery's
    /// commit-in-both rule handles).
    fn commit_cross(
        &mut self,
        op: &Op,
        pa: u32,
        pb: u32,
        sa: usize,
        sb: usize,
        forced: Option<u64>,
    ) -> Result<(u64, Event), String> {
        let event = match op {
            Op::DeclareCompOf { cv, child, .. } => Event::CompOfDeclared(*cv, *child),
            Op::MarkEquivalent { a, b } => Event::MarkedEquivalent(*a, *b),
            other => {
                return Err(format!(
                    "op {} is not cross-partition capable",
                    other.kind_name()
                ))
            }
        };
        let seq = self.assign_seq(forced);
        let prepare = EnvelopeRecord::Prepare {
            seq,
            a: pa,
            b: pb,
            op: op.clone(),
        };
        self.logs[sa].push(prepare.clone());
        if sb != sa {
            self.logs[sb].push(prepare);
        }
        match op {
            Op::DeclareCompOf { cv, child, .. } => self.comp_edges.push((cv.raw(), child.raw())),
            Op::MarkEquivalent { a, b } => self.equiv_edges.push((a.raw(), b.raw())),
            _ => unreachable!("validated above"),
        }
        self.logs[sa].push(EnvelopeRecord::Commit { seq });
        if sb != sa {
            self.logs[sb].push(EnvelopeRecord::Commit { seq });
        }
        self.cross_commits += 1;
        Ok((seq, event))
    }

    // -- event absorption (local → vid, with registration) -----------------

    fn absorb_local(&mut self, seq: u64, shard: usize, part: Option<u32>, event: &Event) -> Event {
        self.translate_outcome(seq, std::slice::from_ref(event), Some((shard, part)))
    }

    /// Registers virtual ids for the design objects an activity created
    /// implicitly. They appear in no event — the engine numbers them
    /// behind [`Event::ActivityRun`] — but the branch-workspace surface
    /// addresses them across shard counts, so they need vids like any
    /// created id. Slots continue after the activity's dov slots,
    /// ordered by each object's first produced dov, which makes every
    /// vid a pure function of the global seq.
    fn register_activity_objects(
        &mut self,
        seq: u64,
        part: Option<u32>,
        first_slot: u64,
        locals: &[u64],
    ) {
        let part = part.expect("activities run on an owning partition");
        for (j, &local) in locals.iter().enumerate() {
            let k = first_slot + j as u64;
            assert!(k < VID_STRIDE, "one op created {k}+ ids");
            self.register(
                VIRT_BASE + seq * VID_STRIDE + k,
                VirtEntry::Sharded { part, local },
            );
        }
    }

    fn absorb_bcast(&mut self, seq: u64, events: &[Event]) -> Event {
        self.translate_outcome(seq, events, None)
    }

    /// Translates an apply outcome into virtual-id form, allocating
    /// and registering `vid = VIRT_BASE + seq*256 + k` for every id
    /// the event *created* (slot order is fixed per event kind) and
    /// reverse-mapping every id it merely *references*. For broadcast
    /// outcomes (`local == None`) `events` is indexed by shard and the
    /// vid maps to one local id per shard.
    fn translate_outcome(
        &mut self,
        seq: u64,
        events: &[Event],
        local: Option<(usize, Option<u32>)>,
    ) -> Event {
        fn alloc(
            router: &mut ShardRouter,
            seq: u64,
            k: u64,
            events: &[Event],
            local: Option<(usize, Option<u32>)>,
            extract: &dyn Fn(&Event) -> u64,
        ) -> u64 {
            assert!(k < VID_STRIDE, "one op created {k}+ ids");
            let vid = VIRT_BASE + seq * VID_STRIDE + k;
            let entry = match local {
                Some((_, part)) => VirtEntry::Sharded {
                    part: part.expect("creator ops carry their owning partition"),
                    local: extract(&events[0]),
                },
                None => VirtEntry::Broadcast {
                    locals: events.iter().map(&extract).collect(),
                },
            };
            router.register(vid, entry);
            vid
        }
        let ref_shard = local.map(|(shard, _)| shard).unwrap_or(0);
        macro_rules! slot {
            ($k:expr, $pat:pat => $raw:expr) => {
                alloc(self, seq, $k, events, local, &|e| match e {
                    $pat => $raw,
                    _ => unreachable!("apply outcomes diverged across shards"),
                })
            };
        }
        match events[0].clone() {
            Event::UserAdded(_) => {
                Event::UserAdded(UserId::from_raw(slot!(0, Event::UserAdded(x) => x.raw())))
            }
            Event::TeamAdded(_) => {
                Event::TeamAdded(TeamId::from_raw(slot!(0, Event::TeamAdded(x) => x.raw())))
            }
            Event::TeamMemberAdded(team, user) => {
                Event::TeamMemberAdded(self.rv(ref_shard, team), self.rv(ref_shard, user))
            }
            Event::ViewtypeRegistered(_) => Event::ViewtypeRegistered(ViewTypeId::from_raw(
                slot!(0, Event::ViewtypeRegistered(x) => x.raw()),
            )),
            Event::ToolRegistered(_) => Event::ToolRegistered(ToolId::from_raw(
                slot!(0, Event::ToolRegistered(x) => x.raw()),
            )),
            Event::StandardFlowDefined(_) => {
                let flow = slot!(0, Event::StandardFlowDefined(f) => f.flow.raw());
                let schematic = slot!(1, Event::StandardFlowDefined(f) => f.enter_schematic.raw());
                let layout = slot!(2, Event::StandardFlowDefined(f) => f.enter_layout.raw());
                let simulate = slot!(3, Event::StandardFlowDefined(f) => f.simulate.raw());
                Event::StandardFlowDefined(StandardFlow {
                    flow: FlowId::from_raw(flow),
                    enter_schematic: ActivityId::from_raw(schematic),
                    enter_layout: ActivityId::from_raw(layout),
                    simulate: ActivityId::from_raw(simulate),
                })
            }
            Event::QualityGatedFlowDefined(_) => {
                let flow = slot!(0, Event::QualityGatedFlowDefined(f) => f.flow.raw());
                let schematic =
                    slot!(1, Event::QualityGatedFlowDefined(f) => f.enter_schematic.raw());
                let layout = slot!(2, Event::QualityGatedFlowDefined(f) => f.enter_layout.raw());
                let simulate = slot!(3, Event::QualityGatedFlowDefined(f) => f.simulate.raw());
                Event::QualityGatedFlowDefined(StandardFlow {
                    flow: FlowId::from_raw(flow),
                    enter_schematic: ActivityId::from_raw(schematic),
                    enter_layout: ActivityId::from_raw(layout),
                    simulate: ActivityId::from_raw(simulate),
                })
            }
            Event::FlowDefined(_) => {
                Event::FlowDefined(FlowId::from_raw(slot!(0, Event::FlowDefined(x) => x.raw())))
            }
            Event::ActivityAdded(_) => Event::ActivityAdded(ActivityId::from_raw(
                slot!(0, Event::ActivityAdded(x) => x.raw()),
            )),
            Event::FlowFrozen(flow) => Event::FlowFrozen(self.rv(ref_shard, flow)),
            Event::ProjectCreated(_) => Event::ProjectCreated(ProjectId::from_raw(
                slot!(0, Event::ProjectCreated(x) => x.raw()),
            )),
            Event::CellCreated(_) => {
                Event::CellCreated(CellId::from_raw(slot!(0, Event::CellCreated(x) => x.raw())))
            }
            Event::CellVersionCreated(..) => {
                let cv = slot!(0, Event::CellVersionCreated(cv, _) => cv.raw());
                let variant = slot!(1, Event::CellVersionCreated(_, v) => v.raw());
                Event::CellVersionCreated(CellVersionId::from_raw(cv), VariantId::from_raw(variant))
            }
            Event::VariantDerived(_) => Event::VariantDerived(VariantId::from_raw(
                slot!(0, Event::VariantDerived(x) => x.raw()),
            )),
            Event::CompOfDeclared(cv, cell) => {
                Event::CompOfDeclared(self.rv(ref_shard, cv), self.rv(ref_shard, cell))
            }
            Event::CellShared(cell) => Event::CellShared(self.rv(ref_shard, cell)),
            Event::VariantPromoted(..) => {
                let cv = slot!(0, Event::VariantPromoted(cv, _) => cv.raw());
                let variant = slot!(1, Event::VariantPromoted(_, v) => v.raw());
                Event::VariantPromoted(CellVersionId::from_raw(cv), VariantId::from_raw(variant))
            }
            Event::Reserved(cv) => Event::Reserved(self.rv(ref_shard, cv)),
            Event::Published(cv) => Event::Published(self.rv(ref_shard, cv)),
            Event::DesignObjectCreated(_) => Event::DesignObjectCreated(DesignObjectId::from_raw(
                slot!(0, Event::DesignObjectCreated(x) => x.raw()),
            )),
            Event::DovAdded(_) => {
                Event::DovAdded(DovId::from_raw(slot!(0, Event::DovAdded(x) => x.raw())))
            }
            Event::MarkedEquivalent(a, b) => {
                Event::MarkedEquivalent(self.rv(ref_shard, a), self.rv(ref_shard, b))
            }
            Event::ActivityRun { dovs } => {
                let mut virt = Vec::with_capacity(dovs.len());
                for k in 0..dovs.len() {
                    virt.push(DovId::from_raw(
                        slot!(k as u64, Event::ActivityRun { dovs } => dovs[k].raw()),
                    ));
                }
                Event::ActivityRun { dovs: virt }
            }
            Event::MergeApplied { cv, dovs } => {
                let virt_cv = self.rv(ref_shard, cv);
                let mut virt = Vec::with_capacity(dovs.len());
                for k in 0..dovs.len() {
                    virt.push(DovId::from_raw(
                        slot!(k as u64, Event::MergeApplied { dovs, .. } => dovs[k].raw()),
                    ));
                }
                Event::MergeApplied {
                    cv: virt_cv,
                    dovs: virt,
                }
            }
            Event::MergeConflict { cv, conflicts } => Event::MergeConflict {
                cv: self.rv(ref_shard, cv),
                conflicts: conflicts
                    .into_iter()
                    .map(|c| match c {
                        MergeConflict::ReservedByOther { holder } => {
                            MergeConflict::ReservedByOther {
                                holder: self.rv(ref_shard, holder),
                            }
                        }
                        MergeConflict::DesignObjectAdvanced {
                            design_object,
                            expected,
                            found,
                        } => MergeConflict::DesignObjectAdvanced {
                            design_object: self.rv(ref_shard, design_object),
                            expected,
                            found,
                        },
                    })
                    .collect(),
            },
            Event::ConfigurationCreated(_) => Event::ConfigurationCreated(ConfigId::from_raw(
                slot!(0, Event::ConfigurationCreated(x) => x.raw()),
            )),
            Event::ConfigVersionCreated(_) => Event::ConfigVersionCreated(
                ConfigVersionId::from_raw(slot!(0, Event::ConfigVersionCreated(x) => x.raw())),
            ),
            Event::LibraryImported(_, report) => Event::LibraryImported(
                ProjectId::from_raw(slot!(0, Event::LibraryImported(p, _) => p.raw())),
                report,
            ),
            passthrough @ (Event::Browsed { .. }
            | Event::DesignDataRead { .. }
            | Event::ConfigExported(_)
            | Event::LvsRun(_)
            | Event::FutureFeaturesSet
            | Event::StagingModeSet
            | Event::FmcadLibraryCreated
            | Event::FmcadCellCreated
            | Event::FmcadCellviewCreated
            | Event::FmcadCheckedOut { .. }
            | Event::FmcadCheckedIn { .. }
            | Event::FmcadVersionPurged
            | Event::FmcadFileWritten) => passthrough,
        }
    }

    // -- router image (router.meta) ----------------------------------------

    /// Renders the router image persisted at a checkpoint: shard
    /// count, sequence, partition registry, the full virtual-id map
    /// and the cross-partition relation edges. Reverse maps are
    /// derived, not serialized. Deterministic line order (sorted maps)
    /// makes the rendering double as a fingerprint input.
    fn meta_lines(&self, epoch: u64) -> Vec<String> {
        let mut lines = vec![format!(
            "meta|v=1|shards={}|seq={}|epoch={}|next-part={}",
            self.nshards, self.next_seq, epoch, self.next_part
        )];
        for (name, idx) in &self.parts {
            lines.push(format!(
                "part|idx={idx}|shard={}|name={}",
                self.part_shard[idx],
                hex_encode(name)
            ));
        }
        for (vid, entry) in self.forward.iter() {
            match entry {
                VirtEntry::Broadcast { locals } => lines.push(format!(
                    "vid|id={vid}|bcast={}",
                    locals
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                )),
                VirtEntry::Sharded { part, local } => {
                    lines.push(format!("vid|id={vid}|part={part}|local={local}"))
                }
            }
        }
        for (parent, child) in &self.comp_edges {
            lines.push(format!("comp|parent={parent}|child={child}"));
        }
        for (a, b) in &self.equiv_edges {
            lines.push(format!("equiv|a={a}|b={b}"));
        }
        lines
    }

    /// Rebuilds a router from its persisted image, re-deriving the
    /// per-shard reverse maps from the forward entries.
    fn from_meta(lines: &[String]) -> Result<ShardRouter, String> {
        fn fields(line: &str) -> Result<(&str, BTreeMap<&str, &str>), String> {
            let mut parts = line.split('|');
            let kind = parts.next().unwrap_or_default();
            let mut map = BTreeMap::new();
            for field in parts {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("malformed meta field {field:?}"))?;
                map.insert(key, value);
            }
            Ok((kind, map))
        }
        fn num<T: std::str::FromStr>(map: &BTreeMap<&str, &str>, key: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            map.get(key)
                .ok_or_else(|| format!("meta line missing {key}"))?
                .parse()
                .map_err(|e| format!("bad meta field {key}: {e}"))
        }
        let head = lines.first().ok_or("empty router image")?;
        let (kind, map) = fields(head)?;
        if kind != "meta" || map.get("v") != Some(&"1") {
            return Err(format!("unsupported router image header {head:?}"));
        }
        let mut router = ShardRouter::new(num::<usize>(&map, "shards")?);
        router.next_seq = num(&map, "seq")?;
        router.epoch = num(&map, "epoch")?;
        router.next_part = num(&map, "next-part")?;
        for line in &lines[1..] {
            let (kind, map) = fields(line)?;
            match kind {
                "part" => {
                    let idx: u32 = num(&map, "idx")?;
                    let shard: u32 = num(&map, "shard")?;
                    let name = hex_decode(map.get("name").ok_or("part line missing name")?)?;
                    router.parts.insert(name, idx);
                    router.part_shard.insert(idx, shard);
                }
                "vid" => {
                    let vid: u64 = num(&map, "id")?;
                    let entry = if let Some(bcast) = map.get("bcast") {
                        let locals = bcast
                            .split(',')
                            .map(|raw| raw.parse().map_err(|e| format!("bad local id: {e}")))
                            .collect::<Result<Vec<u64>, String>>()?;
                        VirtEntry::Broadcast { locals }
                    } else {
                        VirtEntry::Sharded {
                            part: num(&map, "part")?,
                            local: num(&map, "local")?,
                        }
                    };
                    router.register(vid, entry);
                }
                "comp" => router
                    .comp_edges
                    .push((num(&map, "parent")?, num(&map, "child")?)),
                "equiv" => router.equiv_edges.push((num(&map, "a")?, num(&map, "b")?)),
                other => return Err(format!("unknown router image line kind {other:?}")),
            }
        }
        Ok(router)
    }

    /// FNV-1a fold over the rendered router image — the router's
    /// contribution to [`ShardedService::state_fingerprint`].
    fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in self.meta_lines(self.epoch) {
            for &b in line.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x1f;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

// ---------------------------------------------------------------------------
// Per-shard write lanes (group commit, leader/follower)
// ---------------------------------------------------------------------------

/// One submitted op waiting for its lane's batch to commit.
struct Slot {
    result: Mutex<Option<HybridResult<(u64, Event)>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, result: HybridResult<(u64, Event)>) {
        *lock(&self.result) = Some(result);
        self.ready.notify_one();
    }

    fn wait(&self) -> HybridResult<(u64, Event)> {
        let mut guard = lock(&self.result);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A lane's batched apply queue; `draining` marks that a leader is
/// inside the lane's engine critical section.
struct Queue {
    pending: Vec<(Op, RoutePlan, Arc<Slot>)>,
    draining: bool,
}

/// One write lane: a partition engine plus its group-commit queue,
/// published snapshot and busy-time counters.
struct Lane {
    engine: Mutex<Engine>,
    queue: Mutex<Queue>,
    /// The lane's published read view; replaced once per batch.
    snapshot: Mutex<Arc<Snapshot>>,
    /// Nanoseconds spent inside the engine critical section *applying*
    /// ops (lock wait excluded) — the numerator of the E14
    /// critical-path throughput model.
    busy_ns: AtomicU64,
    ops: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    writer_waits: AtomicU64,
}

impl Lane {
    fn new(engine: Engine) -> Lane {
        let snapshot = engine.snapshot();
        Lane {
            engine: Mutex::new(engine),
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                draining: false,
            }),
            snapshot: Mutex::new(snapshot),
            busy_ns: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            writer_waits: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of one write lane's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardLaneStats {
    /// Ops committed through this lane (including broadcast legs).
    pub ops: u64,
    /// Engine critical sections (group commits) led on this lane.
    pub batches: u64,
    /// Largest single group commit, in ops.
    pub max_batch: u64,
    /// Writers that parked as followers instead of leading a batch.
    pub writer_waits: u64,
    /// Nanoseconds spent applying ops inside the engine critical
    /// section (lock wait excluded).
    pub busy_ns: u64,
}

/// A point-in-time copy of the sharded service's counters.
///
/// The E14 benchmark computes its critical-path throughput from
/// `max(shards[i].busy_ns) + router_ns` — the serial spine of the
/// sharded write path on a machine with unbounded cores.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardStats {
    /// Per-lane counters, indexed by shard.
    pub shards: Vec<ShardLaneStats>,
    /// Nanoseconds spent inside the router critical section (routing,
    /// sequence assignment, id translation; lock wait excluded). This
    /// work is serial across all lanes.
    pub router_ns: u64,
    /// Broadcast ops committed (each applied once per shard).
    pub broadcasts: u64,
    /// Cross-partition two-phase commits.
    pub cross_commits: u64,
    /// The next global commit sequence.
    pub seq: u64,
}

struct ShardInner {
    lanes: Vec<Lane>,
    router: Mutex<ShardRouter>,
    /// Serial time inside the router lock (post-acquisition only).
    router_ns: AtomicU64,
    /// Bumped on every lane publish and cross commit; readers
    /// revalidate their cached [`ShardView`] against it.
    version: AtomicU64,
    view: Mutex<Option<Arc<ShardView>>>,
    /// The retention ring of composed views, keyed by global commit
    /// seq — the sharded twin of the single-engine service's ring.
    history: Mutex<HistoryRing<Arc<ShardView>>>,
    admin: UserId,
}

/// Thread-safe multi-session service over N partition [`Engine`]s.
///
/// Cloning is cheap (an [`Arc`] bump); clones share the lanes and the
/// router. Open one [`ShardedSession`] per user with
/// [`ShardedService::open_session`]; compose a cross-shard read view
/// with [`ShardedService::view`]. DESIGN.md §12 describes the routing
/// and determinism model.
#[derive(Clone)]
pub struct ShardedService {
    inner: Arc<ShardInner>,
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.inner.lanes.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ShardedService {
    /// A builder for a sharded service with non-default engine options.
    pub fn builder() -> ShardedServiceBuilder {
        ShardedServiceBuilder::new()
    }

    /// A sharded service over `shards` default-configured engines
    /// (clamped to at least one).
    pub fn new(shards: usize) -> ShardedService {
        ShardedService::builder().shards(shards).build()
    }

    fn from_engines(
        engines: Vec<Engine>,
        router: ShardRouter,
        retention: RetentionPolicy,
    ) -> ShardedService {
        let admin = engines[0].admin();
        let lanes = engines.into_iter().map(Lane::new).collect();
        let service = ShardedService {
            inner: Arc::new(ShardInner {
                lanes,
                router: Mutex::new(router),
                router_ns: AtomicU64::new(0),
                version: AtomicU64::new(1),
                view: Mutex::new(None),
                history: Mutex::new(HistoryRing::new(retention)),
                admin,
            }),
        };
        // A recovered service re-seeds its ring with the recovered
        // head; a fresh one has no commits to retain yet.
        service.observe_history();
        service
    }

    /// The built-in framework administrator (identical on every shard).
    pub fn admin(&self) -> UserId {
        self.inner.admin
    }

    /// The number of partition engines.
    pub fn shards(&self) -> usize {
        self.inner.lanes.len()
    }

    /// Ops currently queued (not yet committed) across all write
    /// lanes. The network front-end samples this to decide when to
    /// answer `busy` instead of accepting more work.
    pub fn queue_depth(&self) -> u64 {
        self.inner
            .lanes
            .iter()
            .map(|lane| lock(&lane.queue).pending.len() as u64)
            .sum()
    }

    /// Opens a session acting as `user`.
    ///
    /// Unlike [`Service::open_session`](crate::Service::open_session),
    /// sharded sessions do not subscribe to an event stream — each
    /// write returns its own `(seq, event)` pair instead.
    pub fn open_session(&self, user: UserId) -> ShardedSession {
        ShardedSession {
            service: self.clone(),
            user,
        }
    }

    /// Runs a closure against the router under its lock, charging the
    /// time *inside* the closure (not the lock wait) to `router_ns`.
    fn with_router<R>(&self, f: impl FnOnce(&mut ShardRouter) -> R) -> R {
        let mut router = lock(&self.inner.router);
        let start = Instant::now();
        let out = f(&mut router);
        self.inner
            .router_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Replaces lane `i`'s published snapshot and bumps the view
    /// version.
    fn publish_lane(&self, i: usize, engine: &Engine) {
        *lock(&self.inner.lanes[i].snapshot) = engine.snapshot();
        self.inner.version.fetch_add(1, Ordering::Release);
    }

    /// Submits one op in virtual-id form and blocks until its lane's
    /// batch commits. Returns the global commit sequence and the
    /// event, with every id translated back to virtual form.
    pub fn submit(&self, op: Op) -> HybridResult<(u64, Event)> {
        let plan = self
            .with_router(|r| r.plan(&op))
            .map_err(HybridError::ShardRouting)?;
        let home = plan.home();
        let slot = Slot::new();
        let lane = &self.inner.lanes[home];
        let lead = {
            let mut queue = lock(&lane.queue);
            queue.pending.push((op, plan, Arc::clone(&slot)));
            if queue.draining {
                lane.writer_waits.fetch_add(1, Ordering::Relaxed);
                false
            } else {
                queue.draining = true;
                true
            }
        };
        if lead {
            self.drain(home);
        }
        slot.wait()
    }

    /// Leader path for one lane: repeatedly swap out the pending queue
    /// and commit it as one batch, until no ops remain.
    fn drain(&self, home: usize) {
        let lane = &self.inner.lanes[home];
        let mut engine = lock(&lane.engine);
        loop {
            let batch = {
                let mut queue = lock(&lane.queue);
                if queue.pending.is_empty() {
                    queue.draining = false;
                    break;
                }
                std::mem::take(&mut queue.pending)
            };
            let size = batch.len() as u64;
            lane.batches.fetch_add(1, Ordering::Relaxed);
            lane.ops.fetch_add(size, Ordering::Relaxed);
            lane.max_batch.fetch_max(size, Ordering::Relaxed);
            let mut results = Vec::with_capacity(batch.len());
            for (op, plan, slot) in batch {
                results.push((slot, self.run_plan(home, &mut engine, &op, plan)));
            }
            // Republish before any submitter wakes (read-your-writes),
            // then offer the fresh composed view to the history ring.
            self.publish_lane(home, &engine);
            self.observe_history();
            for (slot, result) in results {
                slot.fill(result);
            }
        }
    }

    /// Absorbs a local apply outcome, also registering vids for the
    /// design objects an activity created implicitly (which no event
    /// carries — see [`ShardRouter::register_activity_objects`]).
    fn absorb_local_with_objects(
        &self,
        seq: u64,
        shard: usize,
        part: Option<u32>,
        engine: &Engine,
        event: &Event,
    ) -> Event {
        let fresh = fresh_activity_objects(engine, event);
        self.with_router(|r| {
            let virt = r.absorb_local(seq, shard, part, event);
            if let Event::ActivityRun { dovs } = event {
                r.register_activity_objects(seq, part, dovs.len() as u64, &fresh);
            }
            virt
        })
    }

    /// Executes one planned op while holding the home lane's engine.
    fn run_plan(
        &self,
        home: usize,
        engine: &mut Engine,
        op: &Op,
        plan: RoutePlan,
    ) -> HybridResult<(u64, Event)> {
        let lanes = &self.inner.lanes;
        match plan {
            RoutePlan::One { shard, part } => {
                debug_assert_eq!(shard, home);
                let (seq, translated) = self
                    .with_router(|r| r.pre_local(shard, op, None))
                    .map_err(HybridError::ShardRouting)?;
                let start = Instant::now();
                let result = engine.apply(translated);
                lanes[shard]
                    .busy_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                // On failure the envelope record stays — replay
                // reproduces the rejection in commit order.
                let event = result?;
                Ok((
                    seq,
                    self.absorb_local_with_objects(seq, shard, part, engine, &event),
                ))
            }
            RoutePlan::NewPart { shard, name } => {
                debug_assert_eq!(shard, home);
                let (seq, translated, part, fresh) = self
                    .with_router(|r| r.pre_new_part(shard, &name, op, None))
                    .map_err(HybridError::ShardRouting)?;
                let start = Instant::now();
                let result = engine.apply(translated);
                lanes[shard]
                    .busy_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                match result {
                    Ok(event) => Ok((
                        seq,
                        self.with_router(|r| r.absorb_local(seq, shard, Some(part), &event)),
                    )),
                    Err(e) => {
                        if fresh {
                            // The index stays burned; only the name
                            // mapping rolls back.
                            self.with_router(|r| r.rollback_part(&name, part));
                        }
                        Err(e)
                    }
                }
            }
            RoutePlan::AllShards => {
                debug_assert_eq!(home, 0);
                let (seq, translated) = self
                    .with_router(|r| r.pre_bcast(op, None))
                    .map_err(HybridError::ShardRouting)?;
                // The lane-0 leader is the only thread that ever locks
                // more than one engine, and it does so in ascending
                // index order — no cycle with single-lane leaders.
                let mut others: Vec<MutexGuard<'_, Engine>> =
                    lanes[1..].iter().map(|lane| lock(&lane.engine)).collect();
                let mut results = Vec::with_capacity(translated.len());
                for (i, translated_op) in translated.into_iter().enumerate() {
                    let start = Instant::now();
                    let result = if i == 0 {
                        engine.apply(translated_op)
                    } else {
                        others[i - 1].apply(translated_op)
                    };
                    lanes[i]
                        .busy_ns
                        .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    results.push(result);
                }
                for (i, guard) in others.iter().enumerate() {
                    self.publish_lane(i + 1, guard);
                }
                drop(others);
                let oks = results.iter().filter(|r| r.is_ok()).count();
                if oks == results.len() {
                    let events: Vec<Event> =
                        results.into_iter().map(|r| r.expect("all ok")).collect();
                    Ok((seq, self.with_router(|r| r.absorb_bcast(seq, &events))))
                } else if oks == 0 {
                    // Broadcast state is identical on every shard, so
                    // every engine rejected with the same error.
                    Err(results
                        .into_iter()
                        .next()
                        .expect("nonempty")
                        .expect_err("all err"))
                } else {
                    Err(HybridError::Journal(
                        "broadcast outcome diverged across shards".into(),
                    ))
                }
            }
            RoutePlan::Cross { pa, pb, sa, sb } => {
                let out = self
                    .with_router(|r| r.commit_cross(op, pa, pb, sa, sb, None))
                    .map_err(HybridError::ShardRouting)?;
                // The router's relation tables changed; stale views
                // must revalidate.
                self.inner.version.fetch_add(1, Ordering::Release);
                Ok(out)
            }
        }
    }

    /// Offers the current composed view to the retention ring, keyed
    /// by the last committed global sequence. The ring skips repeat
    /// offers at an unchanged seq, so this is safe to call from every
    /// publication site.
    fn observe_history(&self) {
        let view = self.view();
        if let Some(seq) = view.seq().checked_sub(1) {
            lock(&self.inner.history).observe(seq, view);
        }
    }

    /// The retained composed view at exactly commit seq `seq`.
    ///
    /// # Errors
    ///
    /// [`HybridError::SeqUnreachable`] (naming the closest retained
    /// boundary) when `seq` was never retained or has been evicted.
    pub fn at(&self, seq: u64) -> HybridResult<Arc<ShardView>> {
        let history = lock(&self.inner.history);
        history.get(seq).ok_or_else(|| history.unreachable(seq))
    }

    /// Pins a retained seq so it survives ring eviction.
    ///
    /// # Errors
    ///
    /// [`HybridError::SeqUnreachable`] when `seq` is not retained.
    pub fn pin(&self, seq: u64) -> HybridResult<()> {
        lock(&self.inner.history).pin(seq)
    }

    /// Drops a pin; returns whether one existed.
    pub fn unpin(&self, seq: u64) -> bool {
        lock(&self.inner.history).unpin(seq)
    }

    /// Every retained commit seq (ring and pins), sorted ascending.
    pub fn retained_seqs(&self) -> Vec<u64> {
        lock(&self.inner.history).retained()
    }

    /// A copy of the service's concurrency counters.
    pub fn stats(&self) -> ShardStats {
        let shards = self
            .inner
            .lanes
            .iter()
            .map(|lane| ShardLaneStats {
                ops: lane.ops.load(Ordering::Relaxed),
                batches: lane.batches.load(Ordering::Relaxed),
                max_batch: lane.max_batch.load(Ordering::Relaxed),
                writer_waits: lane.writer_waits.load(Ordering::Relaxed),
                busy_ns: lane.busy_ns.load(Ordering::Relaxed),
            })
            .collect();
        let router = lock(&self.inner.router);
        ShardStats {
            shards,
            router_ns: self.inner.router_ns.load(Ordering::Relaxed),
            broadcasts: router.broadcasts,
            cross_commits: router.cross_commits,
            seq: router.next_seq,
        }
    }

    /// Runs a closure against one shard's engine under its write lock,
    /// outside the batching queue, republishing its snapshot after.
    /// For maintenance paths (fault arming, meter inspection).
    pub fn with_shard_engine<R>(&self, shard: usize, f: impl FnOnce(&mut Engine) -> R) -> R {
        let mut engine = lock(&self.inner.lanes[shard].engine);
        let out = f(&mut engine);
        self.publish_lane(shard, &engine);
        out
    }

    /// The shard owning a virtual id, with its shard-local id there —
    /// `None` for broadcast or unknown ids.
    pub fn resolve_shard(&self, raw: u64) -> Option<(usize, u64)> {
        let router = lock(&self.inner.router);
        match router.forward.get(&raw) {
            Some(VirtEntry::Sharded { part, local }) => {
                Some((router.shard_of_part(*part).ok()?, *local))
            }
            _ => None,
        }
    }

    /// A deterministic fingerprint over every shard engine's state
    /// plus the router image. Byte-identical across live execution,
    /// restart replay, and — for the same op stream — across shard
    /// counts of the *router* contribution's logical content (the E14
    /// campaign compares full fingerprints only between runs with the
    /// same shard count, and per-owner-shard engine fingerprints
    /// across counts).
    pub fn state_fingerprint(&self) -> HybridResult<String> {
        let guards: Vec<MutexGuard<'_, Engine>> = self
            .inner
            .lanes
            .iter()
            .map(|lane| lock(&lane.engine))
            .collect();
        let mut joined = String::new();
        for (i, engine) in guards.iter().enumerate() {
            joined.push_str(&format!("shard-{i}={}\n", engine.state_fingerprint()?));
        }
        drop(guards);
        let router = lock(&self.inner.router);
        joined.push_str(&format!("router={}\n", router.fingerprint()));
        Ok(format!("{:016x}", fnv64(joined.as_bytes())))
    }
}

// ---------------------------------------------------------------------------
// Persistence: epoch checkpoints, journal sync, recovery
// ---------------------------------------------------------------------------

/// One merged journal entry at recovery time, after deduplicating
/// broadcast and cross records across the per-shard logs.
enum Merged {
    Local { shard: usize, op: Op },
    Bcast { op: Op },
    Cross { a: u32, b: u32, op: Op },
}

/// Commit sequence number of an envelope record.
fn env_seq(rec: &EnvelopeRecord) -> u64 {
    match rec {
        EnvelopeRecord::Local { seq, .. }
        | EnvelopeRecord::Bcast { seq, .. }
        | EnvelopeRecord::Prepare { seq, .. }
        | EnvelopeRecord::Commit { seq } => *seq,
    }
}

/// Parsed `epoch.meta`: the router's next commit sequence at the
/// epoch flip, and each shard engine's sequence number at its
/// checkpoint — the exact [`Engine::recover_at`] targets that rebuild
/// the epoch's engine states from the per-shard chains.
struct EpochMeta {
    next_seq: u64,
    engine_seqs: Vec<u64>,
}

/// Reads just the `seq|next=` record of an epoch's metadata — enough
/// to pick the point-in-time anchor epoch before any router state is
/// loaded. `None` for unreadable or uncommitted epoch directories.
fn epoch_next_seq(fs: &Vfs, dir: &VfsPath) -> Option<u64> {
    let path = dir.join(EPOCH_META).ok()?;
    if !fs.exists(&path) {
        return None;
    }
    let lines = oms::persist::load_journal(fs, &path).ok()?;
    lines
        .iter()
        .find_map(|line| line.strip_prefix("seq|next=")?.parse().ok())
}

fn load_epoch_meta(fs: &Vfs, dir: &VfsPath, nshards: usize) -> HybridResult<EpochMeta> {
    let lines = oms::persist::load_journal(fs, &dir.join(EPOCH_META)?).map_err(map_oms)?;
    let mut next_seq = None;
    let mut engine_seqs = vec![None; nshards];
    for line in &lines {
        let err = || HybridError::Journal(format!("malformed epoch meta line {line:?}"));
        if let Some(rest) = line.strip_prefix("seq|next=") {
            next_seq = Some(rest.parse().map_err(|_| err())?);
        } else if let Some(rest) = line.strip_prefix("engseq|shard=") {
            let (shard, seq) = rest.split_once("|seq=").ok_or_else(err)?;
            let shard: usize = shard.parse().map_err(|_| err())?;
            let slot = engine_seqs.get_mut(shard).ok_or_else(err)?;
            *slot = Some(seq.parse().map_err(|_| err())?);
        } else {
            return Err(err());
        }
    }
    let engine_seqs: Option<Vec<u64>> = engine_seqs.into_iter().collect();
    match (next_seq, engine_seqs) {
        (Some(next_seq), Some(engine_seqs)) => Ok(EpochMeta {
            next_seq,
            engine_seqs,
        }),
        _ => Err(HybridError::Journal(
            "epoch meta is missing records".to_owned(),
        )),
    }
}

/// Directory of shard `i`'s engine checkpoint chain. The chains live
/// *beside* the epoch directories and span them: every service
/// checkpoint adds one O(Δ) delta checkpoint per shard instead of
/// rewriting full images into a fresh epoch directory.
fn shard_chain_dir(root: &VfsPath, i: usize) -> HybridResult<VfsPath> {
    Ok(root.join(&format!("shard-{i}"))?)
}

impl ShardedService {
    /// Writes an epoch checkpoint: one **delta** checkpoint per shard
    /// into the persistent per-shard chains (`shard-<i>/`; the first
    /// epoch writes the base images), the epoch metadata and router
    /// image into `ck-<k>/`, and the `CURRENT` pointer flip that
    /// commits it all — then truncates the in-memory envelope
    /// journals. Earlier epoch directories are retained for
    /// [`ShardedService::recover_at`] until
    /// [`ShardedService::compact`] removes them.
    ///
    /// Locks every engine (ascending) and the router for the duration,
    /// so the images are mutually consistent.
    pub fn checkpoint(&self, fs: &mut Vfs, root: &VfsPath) -> HybridResult<()> {
        let mut guards: Vec<MutexGuard<'_, Engine>> = self
            .inner
            .lanes
            .iter()
            .map(|lane| lock(&lane.engine))
            .collect();
        let mut router = lock(&self.inner.router);
        let next = router.epoch + 1;
        let dir = root.join(&format!("ck-{next}"))?;
        fs.mkdir_all(&dir)?;
        // A crash after some engine checkpoints leaves their chains
        // one delta ahead of the committed epoch; recovery targets
        // the recorded engine sequences, so the extra delta is simply
        // an unreferenced fork until a retry commits past it.
        let mut epoch_lines = vec![format!("seq|next={}", router.next_seq)];
        for (i, engine) in guards.iter_mut().enumerate() {
            engine.checkpoint(fs, &shard_chain_dir(root, i)?)?;
            epoch_lines.push(format!("engseq|shard={i}|seq={}", engine.seq()));
        }
        oms::persist::save_journal(fs, &dir.join(EPOCH_META)?, &epoch_lines).map_err(map_oms)?;
        oms::persist::save_journal(fs, &dir.join(ROUTER_META)?, &router.meta_lines(next))
            .map_err(map_oms)?;
        // The pointer flip is the commit point: everything before it
        // is invisible to recovery, everything after is cleanup.
        oms::persist::save_text(fs, &root.join(CURRENT_PTR)?, &format!("ck-{next}"))
            .map_err(map_oms)?;
        router.epoch = next;
        for log in &mut router.logs {
            log.clear();
        }
        Ok(())
    }

    /// Drops persistence no longer needed to restore the **newest**
    /// epoch: every epoch directory other than the current one
    /// (including stale `ck-*` beyond the pointer, left by crashed
    /// checkpoints) and the retired journal segments of each shard's
    /// engine chain. Point-in-time recovery to the removed epochs is
    /// given up; the current epoch is unaffected.
    ///
    /// Returns the number of files and directories removed.
    pub fn compact(&self, fs: &mut Vfs, root: &VfsPath) -> HybridResult<usize> {
        let mut guards: Vec<MutexGuard<'_, Engine>> = self
            .inner
            .lanes
            .iter()
            .map(|lane| lock(&lane.engine))
            .collect();
        let router = lock(&self.inner.router);
        if router.epoch == 0 || !fs.exists(root) {
            return Ok(0);
        }
        let mut removed = 0;
        for name in fs.read_dir(root)? {
            if let Some(k) = name.strip_prefix("ck-").and_then(|v| v.parse::<u64>().ok()) {
                if k != router.epoch {
                    fs.remove_all(&root.join(&name)?)?;
                    removed += 1;
                }
            }
        }
        for (i, engine) in guards.iter_mut().enumerate() {
            removed += engine.compact(fs, &shard_chain_dir(root, i)?)?;
        }
        Ok(removed)
    }

    /// Rewrites the per-shard envelope journals under the live epoch
    /// (whole-file atomic, ascending shard order). Requires a prior
    /// [`checkpoint`](ShardedService::checkpoint) to anchor the epoch.
    pub fn sync(&self, fs: &mut Vfs, root: &VfsPath) -> HybridResult<()> {
        let router = lock(&self.inner.router);
        if router.epoch == 0 {
            return Err(HybridError::Journal(
                "sync before first checkpoint: no epoch to anchor the journals to".into(),
            ));
        }
        let dir = root.join(&format!("ck-{}", router.epoch))?;
        for (i, log) in router.logs.iter().enumerate() {
            let lines: Vec<String> = log.iter().map(EnvelopeRecord::to_line).collect();
            oms::persist::save_journal(fs, &dir.join(&format!("shard-{i}.log"))?, &lines)
                .map_err(map_oms)?;
        }
        Ok(())
    }

    /// Restores a sharded service from the live epoch and replays the
    /// envelope journals, merged across shards by commit sequence.
    ///
    /// Replay goes through the same routing, translation and
    /// absorption code as live execution with the recorded sequence
    /// forced, so virtual ids, partition indexes and fingerprints come
    /// out byte-identical. Recorded ops whose apply fails again are
    /// reproduced failures, not recovery errors. A cross-partition
    /// prepare counts as committed only when its commit record is in
    /// **both** participants' journals; otherwise it is rolled back
    /// and reported.
    pub fn recover(
        backup: &mut Vfs,
        root: &VfsPath,
    ) -> HybridResult<(ShardedService, RecoveryReport)> {
        Self::recover_inner(backup, root, None)
    }

    /// **Point-in-time recovery** to commit sequence `seq`: restores
    /// the service to the state after exactly the commits numbered
    /// `0..=seq`. The newest committed epoch whose checkpoint precedes
    /// the target anchors the restore — each shard engine recovers to
    /// its recorded chain boundary via [`Engine::recover_at`] — and
    /// the epoch's envelope journals replay only up to the target
    /// (cross-shard prepares past it, or without both commit records
    /// at or below it, are rolled back as usual).
    ///
    /// Requires the epochs covering `seq` to still exist:
    /// [`ShardedService::compact`] removes old epochs and with them
    /// their targets.
    ///
    /// # Errors
    ///
    /// [`HybridError::SeqUnreachable`] when no retained epoch
    /// checkpoint precedes `seq`, or when `seq` lies beyond the last
    /// commit the synced journals persisted; otherwise as
    /// [`ShardedService::recover`].
    pub fn recover_at(
        backup: &mut Vfs,
        root: &VfsPath,
        seq: u64,
    ) -> HybridResult<(ShardedService, RecoveryReport)> {
        Self::recover_inner(backup, root, Some(seq))
    }

    fn recover_inner(
        backup: &mut Vfs,
        root: &VfsPath,
        target: Option<u64>,
    ) -> HybridResult<(ShardedService, RecoveryReport)> {
        let current = oms::persist::load_text(backup, &root.join(CURRENT_PTR)?).map_err(map_oms)?;
        let cur_epoch: u64 = current
            .trim()
            .strip_prefix("ck-")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| {
                HybridError::Journal(format!("malformed CURRENT pointer {current:?}"))
            })?;
        // Epoch selection: the newest committed epoch whose recorded
        // next commit sequence does not pass the target. Epochs past
        // `CURRENT` are uncommitted leftovers and never considered.
        let epoch = match target {
            None => cur_epoch,
            Some(t) => (1..=cur_epoch)
                .rev()
                .find(|k| {
                    root.join(&format!("ck-{k}"))
                        .ok()
                        .and_then(|d| epoch_next_seq(backup, &d))
                        .is_some_and(|next| next <= t + 1)
                })
                .ok_or(HybridError::SeqUnreachable {
                    requested: t,
                    reachable: 0,
                })?,
        };
        let dir = root.join(&format!("ck-{epoch}"))?;
        let meta = oms::persist::load_journal(backup, &dir.join(ROUTER_META)?).map_err(map_oms)?;
        let mut router = ShardRouter::from_meta(&meta).map_err(HybridError::Journal)?;
        let nshards = router.nshards;
        let epoch_meta = load_epoch_meta(backup, &dir, nshards)?;
        if epoch_meta.next_seq != router.next_seq {
            return Err(HybridError::Journal(format!(
                "epoch meta next sequence {} disagrees with the router image's {}",
                epoch_meta.next_seq, router.next_seq
            )));
        }
        // Each engine recovers to the exact chain boundary the epoch
        // recorded — not the newest one, which may belong to a later
        // (or crashed, uncommitted) checkpoint.
        let mut engines = Vec::with_capacity(nshards);
        for (i, &engseq) in epoch_meta.engine_seqs.iter().enumerate() {
            let (engine, _) = Engine::recover_at(backup, &shard_chain_dir(root, i)?, engseq)?;
            engines.push(engine);
        }
        // Merge the per-shard envelope journals by commit sequence.
        // Missing logs mean "no sync since the checkpoint" for that
        // shard; a torn tail drops only the unterminated fragment.
        let mut dropped_fragment = None;
        let mut torn_segment = None;
        let mut torn_offset = None;
        let mut merged: BTreeMap<u64, Merged> = BTreeMap::new();
        let mut commits: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); nshards];
        for (shard, shard_commits) in commits.iter_mut().enumerate() {
            let path = dir.join(&format!("shard-{shard}.log"))?;
            if !backup.exists(&path) {
                continue;
            }
            let (lines, fragment) =
                oms::persist::load_journal_lenient(backup, &path).map_err(map_oms)?;
            if dropped_fragment.is_none() {
                if let Some(tail) = fragment {
                    dropped_fragment = Some(tail.fragment);
                    torn_segment = Some(format!("ck-{epoch}/shard-{shard}.log"));
                    torn_offset = Some(tail.offset);
                }
            }
            for line in &lines {
                let record = EnvelopeRecord::parse_line(line).map_err(HybridError::Journal)?;
                if target.is_some_and(|t| env_seq(&record) > t) {
                    continue;
                }
                match record {
                    EnvelopeRecord::Local { seq, op } => {
                        merged.insert(seq, Merged::Local { shard, op });
                    }
                    EnvelopeRecord::Bcast { seq, op } => {
                        merged.entry(seq).or_insert(Merged::Bcast { op });
                    }
                    EnvelopeRecord::Prepare { seq, a, b, op } => {
                        merged.entry(seq).or_insert(Merged::Cross { a, b, op });
                    }
                    EnvelopeRecord::Commit { seq } => {
                        shard_commits.insert(seq);
                    }
                }
            }
        }
        let mut replayed = 0usize;
        let mut rolled_back_prepares = Vec::new();
        for (seq, entry) in merged {
            match entry {
                Merged::Local { shard, op } => {
                    match router.plan(&op).map_err(HybridError::Journal)? {
                        RoutePlan::One {
                            shard: planned,
                            part,
                        } => {
                            debug_assert_eq!(planned, shard);
                            let (_, translated) = router
                                .pre_local(shard, &op, Some(seq))
                                .map_err(HybridError::Journal)?;
                            if let Ok(event) = engines[shard].apply(translated) {
                                let fresh = fresh_activity_objects(&engines[shard], &event);
                                router.absorb_local(seq, shard, part, &event);
                                if let Event::ActivityRun { dovs } = &event {
                                    router.register_activity_objects(
                                        seq,
                                        part,
                                        dovs.len() as u64,
                                        &fresh,
                                    );
                                }
                            }
                        }
                        RoutePlan::NewPart {
                            shard: planned,
                            name,
                        } => {
                            debug_assert_eq!(planned, shard);
                            let (_, translated, part, fresh) = router
                                .pre_new_part(planned, &name, &op, Some(seq))
                                .map_err(HybridError::Journal)?;
                            match engines[planned].apply(translated) {
                                Ok(event) => {
                                    router.absorb_local(seq, planned, Some(part), &event);
                                }
                                Err(_) => {
                                    if fresh {
                                        router.rollback_part(&name, part);
                                    }
                                }
                            }
                        }
                        _ => {
                            return Err(HybridError::Journal(format!(
                                "local journal record at seq {seq} replans as non-local"
                            )))
                        }
                    }
                    replayed += 1;
                }
                Merged::Bcast { op } => {
                    let (_, translated) = router
                        .pre_bcast(&op, Some(seq))
                        .map_err(HybridError::Journal)?;
                    let mut events = Vec::with_capacity(nshards);
                    for (i, translated_op) in translated.into_iter().enumerate() {
                        if let Ok(event) = engines[i].apply(translated_op) {
                            events.push(event);
                        }
                    }
                    if events.len() == nshards {
                        router.absorb_bcast(seq, &events);
                    }
                    replayed += 1;
                }
                Merged::Cross { a, b, op } => {
                    // Lazy commit check: the participating partitions
                    // may have been registered by replayed ops after
                    // the checkpoint, so resolve them here, in
                    // sequence order.
                    let committed = match (router.shard_of_part(a), router.shard_of_part(b)) {
                        (Ok(sa), Ok(sb)) => {
                            if commits[sa].contains(&seq) && commits[sb].contains(&seq) {
                                Some((sa, sb))
                            } else {
                                None
                            }
                        }
                        _ => None,
                    };
                    match committed {
                        Some((sa, sb)) => {
                            router
                                .commit_cross(&op, a, b, sa, sb, Some(seq))
                                .map_err(HybridError::Journal)?;
                            replayed += 1;
                        }
                        None => {
                            // Orphaned prepare: burn the sequence (so
                            // post-recovery vids stay monotone) and
                            // record nothing.
                            router.assign_seq(Some(seq));
                            rolled_back_prepares.push(seq);
                        }
                    }
                }
            }
        }
        // The target must be reached exactly: a forced-sequence replay
        // advances the router through every persisted commit at or
        // below it, so falling short means the journals never recorded
        // the requested commit.
        if let Some(t) = target {
            if router.next_seq != t + 1 {
                return Err(HybridError::SeqUnreachable {
                    requested: t,
                    reachable: router.next_seq.saturating_sub(1),
                });
            }
        }
        let report = RecoveryReport {
            replayed,
            dropped_fragment,
            torn_segment,
            torn_offset,
            chain_break: None,
            rolled_back_prepares,
        };
        // Retention is a runtime knob, not persisted state: a
        // recovered service starts with the default policy and the
        // recovered head as its only retained seq.
        Ok((
            ShardedService::from_engines(engines, router, RetentionPolicy::default()),
            report,
        ))
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and builds a [`ShardedService`] — shard count plus the
/// engine options every partition engine is built with.
#[derive(Debug)]
pub struct ShardedServiceBuilder {
    shards: usize,
    staging: Option<StagingMode>,
    features: Option<FutureFeatures>,
    trace_capacity: Option<usize>,
    retention: Option<RetentionPolicy>,
}

impl ShardedServiceBuilder {
    /// A builder for a single-shard service with default options.
    pub fn new() -> ShardedServiceBuilder {
        ShardedServiceBuilder {
            shards: 1,
            staging: None,
            features: None,
            trace_capacity: None,
            retention: None,
        }
    }

    /// The number of partition engines (clamped to at least one).
    pub fn shards(mut self, shards: usize) -> ShardedServiceBuilder {
        self.shards = shards.max(1);
        self
    }

    /// The staging mode every partition engine runs in.
    pub fn staging_mode(mut self, mode: StagingMode) -> ShardedServiceBuilder {
        self.staging = Some(mode);
        self
    }

    /// The future-features toggles every partition engine runs with.
    pub fn future_features(mut self, features: FutureFeatures) -> ShardedServiceBuilder {
        self.features = Some(features);
        self
    }

    /// The trace ring capacity of every partition engine.
    pub fn trace_capacity(mut self, capacity: usize) -> ShardedServiceBuilder {
        self.trace_capacity = Some(capacity);
        self
    }

    /// The history retention policy of the composed-view ring.
    pub fn retention(mut self, policy: RetentionPolicy) -> ShardedServiceBuilder {
        self.retention = Some(policy);
        self
    }

    /// Builds the service: `shards` identically configured engines
    /// behind one router.
    pub fn build(self) -> ShardedService {
        let engines = (0..self.shards)
            .map(|_| {
                let mut builder = Engine::builder();
                if let Some(mode) = self.staging {
                    builder = builder.staging_mode(mode);
                }
                if let Some(features) = self.features {
                    builder = builder.future_features(features);
                }
                if let Some(capacity) = self.trace_capacity {
                    builder = builder.trace_capacity(capacity);
                }
                builder.build()
            })
            .collect();
        ShardedService::from_engines(
            engines,
            ShardRouter::new(self.shards),
            self.retention.unwrap_or_default(),
        )
    }
}

impl Default for ShardedServiceBuilder {
    fn default() -> ShardedServiceBuilder {
        ShardedServiceBuilder::new()
    }
}

// ---------------------------------------------------------------------------
// Sessions and the composed read view
// ---------------------------------------------------------------------------

/// A user-scoped handle over a [`ShardedService`].
///
/// Every id a session takes or returns is in *virtual* form — callers
/// never see shard-local ids unless they go through the
/// [`ShardView::shard`] escape hatch.
#[derive(Debug, Clone)]
pub struct ShardedSession {
    service: ShardedService,
    user: UserId,
}

impl ShardedSession {
    /// The user this session acts as.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The service behind this session.
    pub fn service(&self) -> &ShardedService {
        &self.service
    }

    /// The current composed cross-shard read view.
    pub fn view(&self) -> Arc<ShardView> {
        self.service.view()
    }

    /// Submits one raw op; see [`ShardedService::submit`].
    pub fn apply(&self, op: Op) -> HybridResult<(u64, Event)> {
        self.service.submit(op)
    }

    /// This session's read handle on the retained composed view at
    /// commit seq `seq` — the sharded
    /// [`Session::at`](crate::Session::at).
    ///
    /// # Errors
    ///
    /// [`HybridError::SeqUnreachable`] when `seq` is not retained.
    pub fn at(&self, seq: u64) -> HybridResult<ShardHistoryView> {
        Ok(ShardHistoryView {
            user: self.user,
            seq,
            view: self.service.at(seq)?,
        })
    }

    /// Opens a branch [`Workspace`] on `cv` against the retained view
    /// at `seq` — the sharded
    /// [`Session::reserve_at`](crate::Session::reserve_at). The merge
    /// routes to `cv`'s owning shard like any other single-partition
    /// op.
    ///
    /// # Errors
    ///
    /// [`HybridError::SeqUnreachable`] when `seq` is not retained;
    /// [`HybridError::ShardRouting`] when `cv` was unknown at `seq`.
    pub fn reserve_at(&self, cv: CellVersionId, seq: u64) -> HybridResult<Workspace> {
        let base = self.service.at(seq)?;
        Workspace::open_sharded(self.service.clone(), self.user, cv, seq, &base)
    }

    /// Adds a user (broadcast). Admin-only names are enforced by the
    /// engines, identically on every shard.
    pub fn add_user(&self, name: &str, manager: bool) -> HybridResult<UserId> {
        match self.apply(Op::AddUser {
            name: name.into(),
            manager,
        })? {
            (_, Event::UserAdded(id)) => Ok(id),
            (_, other) => unreachable!("add-user produced {other:?}"),
        }
    }

    /// Adds a team (broadcast).
    pub fn add_team(&self, name: &str) -> HybridResult<TeamId> {
        match self.apply(Op::AddTeam {
            actor: self.user,
            name: name.into(),
        })? {
            (_, Event::TeamAdded(id)) => Ok(id),
            (_, other) => unreachable!("add-team produced {other:?}"),
        }
    }

    /// Adds a member to a team (broadcast).
    pub fn add_team_member(&self, team: TeamId, user: UserId) -> HybridResult<()> {
        self.apply(Op::AddTeamMember {
            actor: self.user,
            team,
            user,
        })?;
        Ok(())
    }

    /// Defines and freezes the standard three-tool flow (broadcast).
    pub fn standard_flow(&self, name: &str) -> HybridResult<StandardFlow> {
        match self.apply(Op::DefineStandardFlow { name: name.into() })? {
            (_, Event::StandardFlowDefined(flow)) => Ok(flow),
            (_, other) => unreachable!("define-standard-flow produced {other:?}"),
        }
    }

    /// Creates a project — the op that *places* a partition on its
    /// owning shard ([`shard_of_name`]).
    pub fn create_project(&self, name: &str) -> HybridResult<ProjectId> {
        match self.apply(Op::CreateProject { name: name.into() })? {
            (_, Event::ProjectCreated(id)) => Ok(id),
            (_, other) => unreachable!("create-project produced {other:?}"),
        }
    }

    /// Creates a cell in a project (routed to the project's shard).
    pub fn create_cell(&self, project: ProjectId, name: &str) -> HybridResult<CellId> {
        match self.apply(Op::CreateCell {
            project,
            name: name.into(),
        })? {
            (_, Event::CellCreated(id)) => Ok(id),
            (_, other) => unreachable!("create-cell produced {other:?}"),
        }
    }

    /// Creates a cell version with its initial variant.
    pub fn create_cell_version(
        &self,
        cell: CellId,
        flow: FlowId,
        team: TeamId,
    ) -> HybridResult<(CellVersionId, VariantId)> {
        match self.apply(Op::CreateCellVersion { cell, flow, team })? {
            (_, Event::CellVersionCreated(cv, variant)) => Ok((cv, variant)),
            (_, other) => unreachable!("create-cell-version produced {other:?}"),
        }
    }

    /// Derives a named variant of a reserved cell version.
    pub fn derive_variant(
        &self,
        cv: CellVersionId,
        name: &str,
        base: Option<VariantId>,
    ) -> HybridResult<VariantId> {
        match self.apply(Op::DeriveVariant {
            user: self.user,
            cv,
            name: name.into(),
            base,
        })? {
            (_, Event::VariantDerived(id)) => Ok(id),
            (_, other) => unreachable!("derive-variant produced {other:?}"),
        }
    }

    /// Reserves a cell version for this session's user.
    pub fn reserve(&self, cv: CellVersionId) -> HybridResult<u64> {
        let (seq, _) = self.apply(Op::Reserve {
            user: self.user,
            cv,
        })?;
        Ok(seq)
    }

    /// Publishes a reserved cell version.
    pub fn publish(&self, cv: CellVersionId) -> HybridResult<u64> {
        let (seq, _) = self.apply(Op::Publish {
            user: self.user,
            cv,
        })?;
        Ok(seq)
    }

    /// Declares a hierarchy child of a cell version. When the child
    /// cell lives in a different partition this is a cross-shard
    /// two-phase commit.
    pub fn declare_comp_of(&self, cv: CellVersionId, child: CellId) -> HybridResult<u64> {
        let (seq, _) = self.apply(Op::DeclareCompOf {
            user: self.user,
            cv,
            child,
        })?;
        Ok(seq)
    }

    /// Marks two design object versions equivalent (cross-shard when
    /// they live in different partitions).
    pub fn mark_equivalent(&self, a: DovId, b: DovId) -> HybridResult<u64> {
        let (seq, _) = self.apply(Op::MarkEquivalent { a, b })?;
        Ok(seq)
    }

    /// Runs an activity with pre-computed tool outputs (the
    /// replay-form op, which is what keeps sharded runs byte-identical
    /// with the single-engine golden tables).
    pub fn run_activity(
        &self,
        variant: VariantId,
        activity: ActivityId,
        override_pending: bool,
        outputs: Vec<(String, Blob)>,
    ) -> HybridResult<Vec<DovId>> {
        match self.apply(Op::RunActivity {
            user: self.user,
            variant,
            activity,
            override_pending,
            outputs,
            session_error: None,
        })? {
            (_, Event::ActivityRun { dovs }) => Ok(dovs),
            (_, other) => unreachable!("run-activity produced {other:?}"),
        }
    }

    /// Browses a design object version (journaled read; pays the
    /// staging copy path on the owning shard).
    pub fn browse(&self, dov: DovId) -> HybridResult<Blob> {
        match self.apply(Op::Browse {
            user: self.user,
            dov,
        })? {
            (_, Event::Browsed { data }) => Ok(data),
            (_, other) => unreachable!("browse produced {other:?}"),
        }
    }

    /// Reads design data via the desktop (journaled read).
    pub fn read_design_data(&self, dov: DovId) -> HybridResult<Blob> {
        match self.apply(Op::ReadDesignData {
            user: self.user,
            dov,
        })? {
            (_, Event::DesignDataRead { data }) => Ok(data),
            (_, other) => unreachable!("read-design-data produced {other:?}"),
        }
    }
}

/// The router's contribution to a [`ShardView`]: the frozen virtual-id
/// map, partition registry and cross-partition relations.
#[derive(Debug, Clone)]
pub struct RouterView {
    forward: PMap<u64, VirtEntry>,
    part_shard: BTreeMap<u32, u32>,
    partitions: Vec<(String, u32)>,
    comp_edges: Vec<(u64, u64)>,
    equiv_edges: Vec<(u64, u64)>,
    nshards: usize,
    seq: u64,
}

impl RouterView {
    /// The owning shard and shard-local id of a virtual id — `None`
    /// for broadcast entities (which live on every shard) and unknown
    /// ids.
    pub fn resolve(&self, raw: u64) -> Option<(usize, u64)> {
        match self.forward.get(&raw)? {
            VirtEntry::Sharded { part, local } => {
                let shard = *self.part_shard.get(part)? as usize;
                Some((shard, *local))
            }
            VirtEntry::Broadcast { .. } => None,
        }
    }

    /// The shard-local id of a virtual id on a given shard: broadcast
    /// entities resolve everywhere, sharded entities only on their
    /// owner, bootstrap ids (below [`VIRT_BASE`]) pass through.
    pub fn local_on(&self, raw: u64, shard: usize) -> Option<u64> {
        if raw < VIRT_BASE {
            return Some(raw);
        }
        match self.forward.get(&raw)? {
            VirtEntry::Broadcast { locals } => locals.get(shard).copied(),
            VirtEntry::Sharded { part, local } => {
                (*self.part_shard.get(part)? as usize == shard).then_some(*local)
            }
        }
    }

    /// The registered partitions as `(name, shard)` pairs, sorted by
    /// name.
    pub fn partitions(&self) -> Vec<(String, usize)> {
        self.partitions
            .iter()
            .map(|(name, idx)| {
                let shard = self.part_shard.get(idx).copied().unwrap_or(0) as usize;
                (name.clone(), shard)
            })
            .collect()
    }

    /// Cross-partition `comp-of` edges as `(parent cv, child cell)`
    /// virtual-id pairs, in commit order.
    pub fn cross_comp_edges(&self) -> &[(u64, u64)] {
        &self.comp_edges
    }

    /// Cross-partition equivalence edges as virtual-id pairs, in
    /// commit order.
    pub fn cross_equivalences(&self) -> &[(u64, u64)] {
        &self.equiv_edges
    }

    /// The number of shards behind the view.
    pub fn shards(&self) -> usize {
        self.nshards
    }

    /// The next global commit sequence at capture time.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// A composed point-in-time read view over every shard's published
/// [`Snapshot`] plus the router's id map — the sharded counterpart of
/// [`Service::snapshot`](crate::Service::snapshot). Cheap to capture
/// (Arc clones) and revalidated against a version counter.
#[derive(Debug)]
pub struct ShardView {
    version: u64,
    snaps: Vec<Arc<Snapshot>>,
    router: RouterView,
}

impl ShardView {
    /// The number of shard snapshots composed into this view.
    pub fn shards(&self) -> usize {
        self.snaps.len()
    }

    /// One shard's snapshot — the escape hatch into shard-local ids
    /// (use [`RouterView::local_on`] to translate).
    pub fn shard(&self, shard: usize) -> &Arc<Snapshot> {
        &self.snaps[shard]
    }

    /// The router's id map and relation tables at capture time.
    pub fn router(&self) -> &RouterView {
        &self.router
    }

    /// The view's monotone freshness version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The next global commit sequence at capture time.
    pub fn seq(&self) -> u64 {
        self.router.seq
    }

    /// Browses a design object version through the owning shard's
    /// snapshot — the zero-materialization read path (no journal
    /// entry, no engine lock).
    pub fn browse(&self, user: UserId, dov: DovId) -> HybridResult<Blob> {
        let (shard, local_user, local_dov) = self.locate(user, dov)?;
        self.snaps[shard].browse(local_user, local_dov)
    }

    /// Reads design data through the owning shard's snapshot.
    pub fn read_design_data(&self, user: UserId, dov: DovId) -> HybridResult<Blob> {
        let (shard, local_user, local_dov) = self.locate(user, dov)?;
        self.snaps[shard].read_design_data(local_user, local_dov)
    }

    fn locate(&self, user: UserId, dov: DovId) -> HybridResult<(usize, UserId, DovId)> {
        let (shard, local) = self.router.resolve(dov.raw()).ok_or_else(|| {
            HybridError::ShardRouting(format!(
                "design object version {} has no owning shard",
                dov.raw()
            ))
        })?;
        let local_user = self.router.local_on(user.raw(), shard).ok_or_else(|| {
            HybridError::ShardRouting(format!("user {} is unknown on shard {shard}", user.raw()))
        })?;
        Ok((shard, UserId::from_raw(local_user), DovId::from_raw(local)))
    }

    /// Per-shard reverse id maps (local → virtual), derived from the
    /// frozen forward map. Built lazily per query; the impact walks
    /// need to lift every shard-local neighbour back into virtual
    /// space.
    fn reverse_maps(&self) -> Vec<BTreeMap<u64, u64>> {
        let mut rev: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); self.snaps.len()];
        for (vid, entry) in self.router.forward.iter() {
            match entry {
                VirtEntry::Broadcast { locals } => {
                    for (shard, local) in locals.iter().enumerate() {
                        rev[shard].insert(*local, vid);
                    }
                }
                VirtEntry::Sharded { part, local } => {
                    if let Some(shard) = self.router.part_shard.get(part) {
                        rev[*shard as usize].insert(*local, vid);
                    }
                }
            }
        }
        rev
    }

    /// The virtual id of shard-local `local` on `shard`. Bootstrap ids
    /// (below [`VIRT_BASE`]) pass through untranslated.
    fn vid_of(rev: &[BTreeMap<u64, u64>], shard: usize, local: u64) -> Option<u64> {
        rev[shard]
            .get(&local)
            .copied()
            .or((local < VIRT_BASE).then_some(local))
    }

    fn resolve_cv(&self, cv: CellVersionId) -> HybridResult<(usize, CellVersionId)> {
        let (shard, local) = self.router.resolve(cv.raw()).ok_or_else(|| {
            HybridError::ShardRouting(format!("cell version {} has no owning shard", cv.raw()))
        })?;
        Ok((shard, CellVersionId::from_raw(local)))
    }

    /// Everything that goes stale if `cv` changes — the cross-shard
    /// twin of [`Snapshot::stale_dovs`]: each shard's local
    /// derivation/equivalence walk, glued together through the
    /// router's cross-partition equivalence edges, answered in virtual
    /// ids. Sorted by id, so the answer is invariant across shard
    /// counts for the same op stream.
    ///
    /// # Errors
    ///
    /// [`HybridError::ShardRouting`] for ids the view does not know.
    pub fn stale_dovs(&self, cv: CellVersionId) -> HybridResult<Vec<DovId>> {
        let (cv_shard, local_cv) = self.resolve_cv(cv)?;
        let rev = self.reverse_maps();
        let mut cross: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (a, b) in self.router.cross_equivalences() {
            cross.entry(*a).or_default().push(*b);
            cross.entry(*b).or_default().push(*a);
        }
        let seeds: Vec<u64> = self.snaps[cv_shard]
            .dovs_under(local_cv)
            .into_iter()
            .filter_map(|d| ShardView::vid_of(&rev, cv_shard, d.raw()))
            .collect();
        let stale = oms::graph::reachable(&seeds, |vid| {
            let mut out = Vec::new();
            if let Some((shard, local)) = self.router.resolve(vid) {
                for n in self.snaps[shard].impact_neighbors(DovId::from_raw(local)) {
                    out.extend(ShardView::vid_of(&rev, shard, n));
                }
            }
            if let Some(glued) = cross.get(&vid) {
                out.extend(glued.iter().copied());
            }
            out
        });
        Ok(stale.into_iter().map(DovId::from_raw).collect())
    }

    /// The stale set of [`ShardView::stale_dovs`] narrowed to versions
    /// mirrored into FMCAD, with their Table-1 mirror locations.
    ///
    /// # Errors
    ///
    /// [`HybridError::ShardRouting`] for ids the view does not know.
    pub fn impacted_cellviews(
        &self,
        cv: CellVersionId,
    ) -> HybridResult<Vec<(DovId, Arc<MirrorLocation>)>> {
        let mut out = Vec::new();
        for dov in self.stale_dovs(cv)? {
            if let Some((shard, local)) = self.router.resolve(dov.raw()) {
                if let Some(mirror) = self.snaps[shard].mirror_arc(DovId::from_raw(local)) {
                    out.push((dov, mirror));
                }
            }
        }
        Ok(out)
    }

    /// Per design object under `cv`, its version count — in virtual
    /// ids, sorted by object. The optimistic-concurrency baseline of a
    /// sharded [`Workspace`].
    pub(crate) fn design_object_versions(
        &self,
        cv: CellVersionId,
    ) -> HybridResult<Vec<(DesignObjectId, u32)>> {
        let (shard, local_cv) = self.resolve_cv(cv)?;
        let rev = self.reverse_maps();
        let snap = &self.snaps[shard];
        let mut out = Vec::new();
        for variant in snap.jcf().variants_of(local_cv) {
            for design_object in snap.jcf().design_objects_of(variant) {
                let count = snap.jcf().versions_of_design_object(design_object).len() as u32;
                let vid = ShardView::vid_of(&rev, shard, design_object.raw()).ok_or_else(|| {
                    HybridError::ShardRouting(format!(
                        "design object {} has no virtual id",
                        design_object.raw()
                    ))
                })?;
                out.push((DesignObjectId::from_raw(vid), count));
            }
        }
        out.sort_unstable_by_key(|(d, _)| *d);
        out.dedup();
        Ok(out)
    }
}

/// A sharded session's read handle on one retained composed view: the
/// cross-shard twin of [`HistoryView`](crate::HistoryView). All
/// methods are `&self` and never touch any write lane.
///
/// Created by [`ShardedSession::at`].
#[derive(Debug, Clone)]
pub struct ShardHistoryView {
    user: UserId,
    seq: u64,
    view: Arc<ShardView>,
}

impl ShardHistoryView {
    /// The commit seq this view is fixed at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The user the owning session acts as.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The underlying retained [`ShardView`], for arbitrary queries.
    pub fn view(&self) -> &Arc<ShardView> {
        &self.view
    }

    /// Browses a design object version as it stood at this seq
    /// (zero-copy, owning shard's snapshot).
    ///
    /// # Errors
    ///
    /// Returns the same routing and visibility errors as the live
    /// [`ShardView::browse`].
    pub fn browse(&self, dov: DovId) -> HybridResult<Blob> {
        self.view.browse(self.user, dov)
    }

    /// Reads design data via the desktop as it stood at this seq.
    ///
    /// # Errors
    ///
    /// Returns the same routing and visibility errors as the live
    /// [`ShardView::read_design_data`].
    pub fn read_design_data(&self, dov: DovId) -> HybridResult<Blob> {
        self.view.read_design_data(self.user, dov)
    }

    /// Everything that goes stale if `cv` changes, evaluated on this
    /// seq's cross-shard graph (see [`ShardView::stale_dovs`]).
    ///
    /// # Errors
    ///
    /// [`HybridError::ShardRouting`] for ids the view does not know.
    pub fn stale_dovs(&self, cv: CellVersionId) -> HybridResult<Vec<DovId>> {
        self.view.stale_dovs(cv)
    }

    /// The stale set narrowed to FMCAD-mirrored cellviews
    /// (see [`ShardView::impacted_cellviews`]).
    ///
    /// # Errors
    ///
    /// [`HybridError::ShardRouting`] for ids the view does not know.
    pub fn impacted_cellviews(
        &self,
        cv: CellVersionId,
    ) -> HybridResult<Vec<(DovId, Arc<MirrorLocation>)>> {
        self.view.impacted_cellviews(cv)
    }
}

impl ShardedService {
    /// The current composed read view, rebuilt only when a write has
    /// been published since the last capture.
    pub fn view(&self) -> Arc<ShardView> {
        let version = self.inner.version.load(Ordering::Acquire);
        if let Some(view) = lock(&self.inner.view).as_ref() {
            if view.version == version {
                return Arc::clone(view);
            }
        }
        let snaps: Vec<Arc<Snapshot>> = self
            .inner
            .lanes
            .iter()
            .map(|lane| Arc::clone(&lock(&lane.snapshot)))
            .collect();
        let router = {
            let router = lock(&self.inner.router);
            RouterView {
                forward: router.forward.clone(),
                part_shard: router.part_shard.clone(),
                partitions: router
                    .parts
                    .iter()
                    .map(|(name, idx)| (name.clone(), *idx))
                    .collect(),
                comp_edges: router.comp_edges.clone(),
                equiv_edges: router.equiv_edges.clone(),
                nshards: router.nshards,
                seq: router.next_seq,
            }
        };
        let view = Arc::new(ShardView {
            version,
            snaps,
            router,
        });
        *lock(&self.inner.view) = Some(Arc::clone(&view));
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NETLIST: &[u8] = b"netlist adder\nport a input\n";

    struct Bootstrapped {
        service: ShardedService,
        designer: UserId,
        team: TeamId,
        flow: StandardFlow,
    }

    fn bootstrap(shards: usize) -> Bootstrapped {
        let service = ShardedService::new(shards);
        let admin = service.open_session(service.admin());
        let designer = admin.add_user("alice", false).expect("fresh user");
        let team = admin.add_team("asic").expect("fresh team");
        admin
            .add_team_member(team, designer)
            .expect("manager adds members");
        let flow = admin.standard_flow("asic").expect("fresh flow");
        Bootstrapped {
            service,
            designer,
            team,
            flow,
        }
    }

    /// One cell version reserved and drawn in the named project; the
    /// returned ids are all virtual.
    fn drawn_cell(
        b: &Bootstrapped,
        project_name: &str,
    ) -> (ProjectId, CellId, CellVersionId, VariantId, DovId) {
        let alice = b.service.open_session(b.designer);
        let project = alice.create_project(project_name).expect("fresh project");
        let cell = alice.create_cell(project, "adder").expect("fresh cell");
        let (cv, variant) = alice
            .create_cell_version(cell, b.flow.flow, b.team)
            .expect("fresh version");
        alice.reserve(cv).expect("free version");
        let dovs = alice
            .run_activity(
                variant,
                b.flow.enter_schematic,
                false,
                vec![("schematic".into(), NETLIST.to_vec().into())],
            )
            .expect("schematic entry");
        (project, cell, cv, variant, dovs[0])
    }

    #[test]
    fn placement_is_pure_and_total() {
        for n in [1, 2, 4, 8] {
            assert!(shard_of_name("alu16", n) < n);
            assert_eq!(shard_of_name("alu16", n), shard_of_name("alu16", n));
        }
        assert_eq!(shard_of_name("anything", 1), 0);
    }

    #[test]
    fn created_ids_are_virtual_and_browsable() {
        let b = bootstrap(2);
        assert!(b.designer.raw() >= VIRT_BASE, "created ids are virtual");
        assert!(b.flow.flow.raw() >= VIRT_BASE);
        let (project, _, _, _, dov) = drawn_cell(&b, "alu16");
        assert!(project.raw() >= VIRT_BASE);
        let view = b.service.view();
        let data = view.browse(b.designer, dov).expect("visible to holder");
        assert_eq!(data.as_slice(), NETLIST);
        let via_session = b
            .service
            .open_session(b.designer)
            .browse(dov)
            .expect("journaled browse");
        assert_eq!(via_session.as_slice(), NETLIST);
    }

    #[test]
    fn partitions_land_on_their_hashed_shard() {
        let b = bootstrap(4);
        let (project, ..) = drawn_cell(&b, "alu16");
        let expected = shard_of_name("alu16", 4);
        assert_eq!(
            b.service
                .resolve_shard(project.raw())
                .map(|(shard, _)| shard),
            Some(expected)
        );
        let partitions = b.service.view().router().partitions();
        assert_eq!(partitions, vec![("alu16".to_string(), expected)]);
    }

    /// The determinism tentpole: the same op script commits with
    /// byte-identical `(seq, event)` streams at 1, 2 and 4 shards.
    #[test]
    fn event_stream_is_invariant_across_shard_counts() {
        let streams: Vec<Vec<(u64, Event)>> = [1usize, 2, 4]
            .into_iter()
            .map(|shards| {
                let b = bootstrap(shards);
                let alice = b.service.open_session(b.designer);
                let mut stream = Vec::new();
                for name in ["alu16", "dsp", "rom", "fpu"] {
                    let project = alice.create_project(name).expect("fresh project");
                    let cell = alice.create_cell(project, "top").expect("fresh cell");
                    let (cv, variant) = alice
                        .create_cell_version(cell, b.flow.flow, b.team)
                        .expect("fresh version");
                    alice.reserve(cv).expect("free version");
                    stream.push(
                        alice
                            .apply(Op::RunActivity {
                                user: b.designer,
                                variant,
                                activity: b.flow.enter_schematic,
                                override_pending: false,
                                outputs: vec![("schematic".into(), NETLIST.to_vec().into())],
                                session_error: None,
                            })
                            .expect("schematic entry"),
                    );
                }
                // A reproduced failure: duplicate project name.
                alice
                    .create_project("alu16")
                    .expect_err("duplicate project must fail");
                stream
            })
            .collect();
        assert_eq!(streams[0], streams[1], "1 vs 2 shards");
        assert_eq!(streams[0], streams[2], "1 vs 4 shards");
    }

    #[test]
    fn cross_partition_ops_two_phase_commit() {
        for shards in [1usize, 2] {
            let b = bootstrap(shards);
            let (_, _, cv_a, _, dov_a) = drawn_cell(&b, "alu16");
            let (_, cell_b, _, _, dov_b) = drawn_cell(&b, "dsp");
            let alice = b.service.open_session(b.designer);
            let comp_seq = alice.declare_comp_of(cv_a, cell_b).expect("cross comp-of");
            let equiv_seq = alice.mark_equivalent(dov_a, dov_b).expect("cross equiv");
            let stats = b.service.stats();
            assert_eq!(stats.cross_commits, 2, "at {shards} shard(s)");
            let view = b.service.view();
            assert_eq!(
                view.router().cross_comp_edges(),
                &[(cv_a.raw(), cell_b.raw())]
            );
            assert_eq!(
                view.router().cross_equivalences(),
                &[(dov_a.raw(), dov_b.raw())]
            );
            assert!(comp_seq < equiv_seq);
        }
    }

    #[test]
    fn same_partition_relations_stay_local() {
        let b = bootstrap(2);
        let (project, _, cv, _, _) = drawn_cell(&b, "alu16");
        let alice = b.service.open_session(b.designer);
        let child = alice.create_cell(project, "carry").expect("fresh cell");
        alice.declare_comp_of(cv, child).expect("local comp-of");
        let stats = b.service.stats();
        assert_eq!(stats.cross_commits, 0, "same partition is not a 2PC");
    }

    #[test]
    fn routing_errors_are_typed() {
        let b = bootstrap(2);
        let alice = b.service.open_session(b.designer);
        let bogus = ProjectId::from_raw(VIRT_BASE + 999 * 256);
        let err = alice.create_cell(bogus, "x").expect_err("unknown vid");
        assert_eq!(err.kind(), "shard-routing");
        // A broadcast entity cannot anchor a partition op.
        let err = b
            .service
            .submit(Op::CreateCellVersion {
                cell: CellId::from_raw(b.team.raw()),
                flow: b.flow.flow,
                team: b.team,
            })
            .expect_err("broadcast id cannot own a partition op");
        assert_eq!(err.kind(), "shard-routing");
    }

    #[test]
    fn broadcast_rejections_are_uniform() {
        let b = bootstrap(4);
        let admin = b.service.open_session(b.service.admin());
        admin
            .add_user("alice", false)
            .expect_err("duplicate user everywhere");
        // The service keeps working afterwards.
        admin.add_user("bob", false).expect("fresh user");
    }

    #[test]
    fn sync_before_checkpoint_is_an_error() {
        let b = bootstrap(2);
        let mut fs = Vfs::new();
        let root = VfsPath::root();
        let err = b.service.sync(&mut fs, &root).expect_err("no epoch yet");
        assert_eq!(err.kind(), "journal");
    }

    #[test]
    fn checkpoint_recover_round_trips_fingerprints() {
        let b = bootstrap(2);
        let (_, _, cv_a, _, dov_a) = drawn_cell(&b, "alu16");
        let mut fs = Vfs::new();
        let root = VfsPath::root();
        b.service.checkpoint(&mut fs, &root).expect("checkpoint");
        // Post-checkpoint tail: a new partition, a cross 2PC, and a
        // reproduced failure — all carried by the envelope journals.
        let (_, cell_b, _, _, dov_b) = drawn_cell(&b, "dsp");
        let alice = b.service.open_session(b.designer);
        alice.declare_comp_of(cv_a, cell_b).expect("cross comp-of");
        alice.mark_equivalent(dov_a, dov_b).expect("cross equiv");
        alice
            .create_project("dsp")
            .expect_err("duplicate project must fail");
        b.service.sync(&mut fs, &root).expect("sync");
        let live = b.service.state_fingerprint().expect("live fingerprint");
        let (recovered, report) = ShardedService::recover(&mut fs, &root).expect("recover");
        assert_eq!(
            recovered
                .state_fingerprint()
                .expect("recovered fingerprint"),
            live
        );
        assert!(report.replayed > 0);
        assert!(report.rolled_back_prepares.is_empty());
        assert!(report.dropped_fragment.is_none());
        // The recovered service keeps committing at the right seq.
        let next = recovered.open_session(b.designer);
        let before = b.service.stats().seq;
        let (seq, _) = next
            .apply(Op::CreateProject { name: "fpu".into() })
            .expect("post-recovery write");
        assert_eq!(seq, before);
        assert_eq!(
            recovered
                .view()
                .browse(b.designer, dov_a)
                .expect("recovered data")
                .as_slice(),
            NETLIST
        );
    }

    #[test]
    fn recovery_requires_checkpoint_and_reports_missing_store() {
        let mut fs = Vfs::new();
        let err = ShardedService::recover(&mut fs, &VfsPath::root())
            .expect_err("empty store has no CURRENT pointer");
        assert_eq!(err.kind(), "journal");
    }

    #[test]
    fn concurrent_writers_preserve_per_project_order() {
        let b = bootstrap(4);
        let alice = b.service.open_session(b.designer);
        let projects: Vec<ProjectId> = (0..4)
            .map(|i| alice.create_project(&format!("p{i}")).expect("fresh"))
            .collect();
        let threads: Vec<_> = projects
            .iter()
            .enumerate()
            .map(|(w, &project)| {
                let service = b.service.clone();
                let user = b.designer;
                std::thread::spawn(move || {
                    let session = service.open_session(user);
                    for i in 0..8 {
                        session
                            .create_cell(project, &format!("c{w}-{i}"))
                            .expect("fresh cell");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("writer");
        }
        let stats = b.service.stats();
        let total: u64 = stats.shards.iter().map(|s| s.ops).sum();
        // Broadcasts count once per shard; everything else once.
        assert!(total >= 4 * 8);
        let view = b.service.view();
        for (w, &project) in projects.iter().enumerate() {
            let (shard, local) = view.router().resolve(project.raw()).expect("placed");
            let snap = view.shard(shard);
            assert_eq!(
                snap.jcf().cells_of(ProjectId::from_raw(local)).len(),
                8,
                "writer {w}'s cells on shard {shard}"
            );
        }
    }
}
