//! Immutable, shareable views over the coupled frameworks.
//!
//! §3.6 of the paper observes that *"design data have to be copied to
//! and from the JCF database even in the case of read only accesses"*
//! — the live [`Engine::browse`](crate::Engine::browse) path pays that
//! cost faithfully. A [`Snapshot`] is the coupling layer's answer for
//! concurrent read-mostly sessions: a frozen view of the OMS database
//! plus the coupling state, taken in one call and readable from any
//! number of threads with **zero** byte copies — design data comes
//! back as shared [`Blob`] handles straight out of the snapshot
//! database, never touching the staging area, the desktop counters or
//! the ops journal.
//!
//! A snapshot is *consistent* (it reflects exactly the engine state at
//! one sequence number, recorded in [`Snapshot::seq`]) and *detached*
//! (later engine mutations are invisible; take a new snapshot to see
//! them).

use std::sync::Arc;

use cad_vfs::Blob;
use jcf::{CellVersionId, DovId, Jcf, ProjectId, UserId, ViewTypeId};
use oms::PMap;

use crate::error::{HybridError, HybridResult};
use crate::framework::{Hybrid, MirrorLocation, StagingMode};

/// A frozen, thread-shareable view of an engine: the master framework
/// (with its OMS database) plus the Table-1 coupling maps, fixed at
/// one engine sequence number.
///
/// Created by [`Engine::snapshot`](crate::Engine::snapshot) (or by the
/// session [`Service`](crate::Service), which republishes one after
/// every write batch). All methods take `&self`; the type is `Send +
/// Sync`, so one snapshot can serve many reader threads at once.
///
/// # Examples
///
/// ```
/// use hybrid::Engine;
///
/// # fn main() -> Result<(), hybrid::HybridError> {
/// let mut engine = Engine::new();
/// let project = engine.create_project("alu16")?;
/// let snap = engine.snapshot();
/// // The snapshot answers reads without touching the engine...
/// assert_eq!(snap.library_of(project)?, "alu16");
/// // ...and stays fixed while the engine moves on.
/// engine.create_project("filter")?;
/// assert_eq!(snap.seq(), 1);
/// assert_eq!(engine.seq(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Snapshot {
    jcf: Jcf,
    seq: u64,
    staging_mode: StagingMode,
    project_lib: PMap<ProjectId, Arc<str>>,
    cv_cell: PMap<CellVersionId, Arc<str>>,
    viewtype_names: PMap<ViewTypeId, Arc<str>>,
    dov_mirror: PMap<DovId, Arc<MirrorLocation>>,
}

impl Snapshot {
    /// Freezes the given hybrid state at the given sequence number.
    ///
    /// This is O(1): the OMS database and all four coupling maps are
    /// persistent structures, so each `clone` below is a reference-count
    /// bump and later engine writes path-copy away from the snapshot
    /// instead of invalidating it.
    pub(crate) fn capture(hy: &Hybrid, seq: u64) -> Snapshot {
        Snapshot {
            jcf: hy.jcf.snapshot(),
            seq,
            staging_mode: hy.staging_mode,
            project_lib: hy.project_lib.clone(),
            cv_cell: hy.cv_cell.clone(),
            viewtype_names: hy.viewtype_names.clone(),
            dov_mirror: hy.dov_mirror.clone(),
        }
    }

    /// The engine sequence number this snapshot reflects.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The staging mode that was active when the snapshot was taken.
    pub fn staging_mode(&self) -> StagingMode {
        self.staging_mode
    }

    /// Read access to the frozen master framework — every `&self`
    /// query of [`Jcf`] works here.
    pub fn jcf(&self) -> &Jcf {
        &self.jcf
    }

    /// Reads a design object version's data with the same visibility
    /// rule as the live desktop (published, or reserved by `user`) but
    /// none of its costs: the bytes come back as a shared [`Blob`]
    /// handle out of the snapshot database — no staging file, no
    /// desktop-counter bump, no journal entry.
    ///
    /// # Errors
    ///
    /// Returns the same visibility errors as the live path.
    pub fn read_design_data(&self, user: UserId, dov: DovId) -> HybridResult<Blob> {
        Ok(self.jcf.peek_design_data(user, dov)?)
    }

    /// Browses a design object version read-only. On a snapshot this
    /// is the same zero-copy read as [`Snapshot::read_design_data`] —
    /// the §3.6 copy-through-staging cost is a property of the *live*
    /// coupled path, which a frozen view never takes.
    ///
    /// # Errors
    ///
    /// Returns the same visibility errors as the live path.
    pub fn browse(&self, user: UserId, dov: DovId) -> HybridResult<Blob> {
        self.read_design_data(user, dov)
    }

    /// The FMCAD library mapped from a project (Table 1).
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for uncoupled projects.
    pub fn library_of(&self, project: ProjectId) -> HybridResult<&str> {
        self.project_lib
            .get(&project)
            .map(|s| &**s)
            .ok_or_else(|| HybridError::MappingMissing(format!("library of {project}")))
    }

    /// The FMCAD cell mapped from a cell version (Table 1).
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for uncoupled versions.
    pub fn fmcad_cell_of(&self, cv: CellVersionId) -> HybridResult<&str> {
        self.cv_cell
            .get(&cv)
            .map(|s| &**s)
            .ok_or_else(|| HybridError::MappingMissing(format!("fmcad cell of {cv}")))
    }

    /// The name of a registered viewtype.
    ///
    /// # Errors
    ///
    /// Returns [`HybridError::MappingMissing`] for foreign ids.
    pub fn viewtype_name(&self, id: ViewTypeId) -> HybridResult<&str> {
        self.viewtype_names
            .get(&id)
            .map(|s| &**s)
            .ok_or_else(|| HybridError::MappingMissing(format!("viewtype {id}")))
    }

    /// Where a design object version is mirrored in FMCAD, if it is.
    pub fn mirror_of(&self, dov: DovId) -> Option<&MirrorLocation> {
        self.dov_mirror.get(&dov).map(|m| &**m)
    }

    /// [`Snapshot::mirror_of`] as a shared handle, for composed views
    /// that outlive the borrow.
    pub(crate) fn mirror_arc(&self, dov: DovId) -> Option<Arc<MirrorLocation>> {
        self.dov_mirror.get(&dov).map(Arc::clone)
    }

    /// Every design object version under `cv`: all versions of all
    /// design objects of all of its variants, in sorted id order. The
    /// seed set of the impact queries.
    pub(crate) fn dovs_under(&self, cv: CellVersionId) -> Vec<DovId> {
        let mut out: Vec<DovId> = Vec::new();
        for variant in self.jcf.variants_of(cv) {
            for design_object in self.jcf.design_objects_of(variant) {
                out.extend(self.jcf.versions_of_design_object(design_object));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The impact neighbours of one design object version: everything
    /// derived from it plus everything marked equivalent to it.
    pub(crate) fn impact_neighbors(&self, dov: DovId) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .jcf
            .derivations_of(dov)
            .into_iter()
            .map(DovId::raw)
            .collect();
        out.extend(self.jcf.equivalents_of(dov).into_iter().map(DovId::raw));
        out
    }

    /// Everything that goes stale if `cv` changes: the design object
    /// versions reachable from any version under `cv` through the
    /// derivation and equivalence graphs ("It's a Complete Haystack" —
    /// the dependency-impact answer the 1995 coupling could not give).
    /// Versions under `cv` itself are excluded; the answer is sorted by
    /// id, so equal states give byte-equal answers.
    pub fn stale_dovs(&self, cv: CellVersionId) -> Vec<DovId> {
        let seeds: Vec<u64> = self.dovs_under(cv).into_iter().map(DovId::raw).collect();
        oms::graph::reachable(&seeds, |id| self.impact_neighbors(DovId::from_raw(id)))
            .into_iter()
            .map(DovId::from_raw)
            .collect()
    }

    /// The stale set of [`Snapshot::stale_dovs`] narrowed to versions
    /// mirrored into FMCAD: the cellviews an ECAD user would actually
    /// see go out of date, with their Table-1 mirror locations.
    pub fn impacted_cellviews(&self, cv: CellVersionId) -> Vec<(DovId, Arc<MirrorLocation>)> {
        self.stale_dovs(cv)
            .into_iter()
            .filter_map(|dov| self.dov_mirror.get(&dov).map(|m| (dov, Arc::clone(m))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encapsulation::ToolOutput;
    use crate::engine::Engine;

    fn seeded() -> (Engine, UserId, crate::framework::StandardFlow, jcf::TeamId) {
        let mut en = Engine::new();
        let admin = en.admin();
        let alice = en.add_user("alice", false).unwrap();
        let team = en.add_team(admin, "asic").unwrap();
        en.add_team_member(admin, team, alice).unwrap();
        let flow = en.standard_flow("std").unwrap();
        (en, alice, flow, team)
    }

    fn seeded_with_data() -> (Engine, UserId, DovId) {
        let (mut en, alice, flow, team) = seeded();
        let project = en.create_project("alu").unwrap();
        let cell = en.create_cell(project, "adder").unwrap();
        let (cv, variant) = en.create_cell_version(cell, flow.flow, team).unwrap();
        en.reserve(alice, cv).unwrap();
        let dovs = en
            .run_activity(alice, variant, flow.enter_schematic, false, |_s| {
                Ok(vec![ToolOutput {
                    viewtype: "schematic".into(),
                    data: b"netlist adder\nport a input\n".to_vec().into(),
                }])
            })
            .unwrap();
        (en, alice, dovs[0])
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_both<T: Send + Sync>() {}
        assert_both::<Snapshot>();
    }

    #[test]
    fn snapshot_reads_match_the_live_desktop() {
        let (mut en, alice, dov) = seeded_with_data();
        let live = en.read_design_data(alice, dov).unwrap();
        let snap = en.snapshot();
        let frozen = snap.read_design_data(alice, dov).unwrap();
        assert_eq!(live, frozen);
        assert_eq!(snap.browse(alice, dov).unwrap(), frozen);
    }

    #[test]
    fn snapshot_reads_are_zero_copy_and_unjournaled() {
        let (en, alice, dov) = seeded_with_data();
        let seq_before = en.seq();
        let desktop_before = en.jcf().desktop_ops();
        let snap = en.snapshot();
        let before = Blob::materializations();
        let a = snap.read_design_data(alice, dov).unwrap();
        let b = snap.browse(alice, dov).unwrap();
        assert_eq!(Blob::materializations(), before, "no byte copies");
        assert!(Blob::ptr_eq(&a, &b), "both reads share one payload");
        assert_eq!(en.seq(), seq_before, "nothing journaled");
        assert_eq!(en.jcf().desktop_ops(), desktop_before, "no desktop bump");
    }

    #[test]
    fn snapshot_enforces_desktop_visibility() {
        let (mut en, alice, dov) = seeded_with_data();
        let mallory = en.add_user("mallory", false).unwrap();
        let snap = en.snapshot();
        assert!(snap.read_design_data(alice, dov).is_ok(), "holder reads");
        assert!(
            snap.read_design_data(mallory, dov).is_err(),
            "unpublished data stays invisible to strangers"
        );
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let (mut en, alice, dov) = seeded_with_data();
        let snap = en.snapshot();
        let frozen = snap.read_design_data(alice, dov).unwrap();
        let mirror = snap.mirror_of(dov).cloned().unwrap();
        // The engine moves on: a new project and a new mirror state.
        en.create_project("filter").unwrap();
        assert_eq!(snap.seq() + 1, en.seq());
        assert_eq!(snap.read_design_data(alice, dov).unwrap(), frozen);
        assert_eq!(snap.mirror_of(dov), Some(&mirror));
    }

    #[test]
    fn coupling_queries_survive_the_freeze() {
        let (mut en, _alice, flow, team) = seeded();
        let project = en.create_project("alu").unwrap();
        let cell = en.create_cell(project, "adder").unwrap();
        let (cv, _variant) = en.create_cell_version(cell, flow.flow, team).unwrap();
        let snap = en.snapshot();
        assert_eq!(snap.library_of(project).unwrap(), "alu");
        assert_eq!(snap.fmcad_cell_of(cv).unwrap(), "adder_v1");
        let schematic = en.viewtype("schematic").unwrap();
        assert_eq!(snap.viewtype_name(schematic).unwrap(), "schematic");
        assert_eq!(snap.staging_mode(), en.staging_mode());
    }
}
