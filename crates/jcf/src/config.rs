//! Configuration management: consistent selections of design object
//! versions.
//!
//! A JCF configuration picks at most one version per design object of a
//! cell version (Figure 1: `Config Version` with `CVV in Config` and
//! `Precedes`). Configurations are one of the *"very powerful design
//! management features"* the paper couples into FMCAD.

use oms::Value;

use crate::error::{JcfError, JcfResult};
use crate::framework::{CellVersionId, ConfigId, ConfigVersionId, DovId, Jcf, UserId};

impl Jcf {
    /// Creates a named configuration under a cell version. Requires the
    /// workspace reservation.
    ///
    /// # Errors
    ///
    /// Returns reservation errors and [`JcfError::NameTaken`] within
    /// the cell version.
    pub fn create_configuration(
        &mut self,
        user: UserId,
        cv: CellVersionId,
        name: &str,
    ) -> JcfResult<ConfigId> {
        self.bump();
        self.require_reservation(user, cv)?;
        for existing in self.configurations_of(cv) {
            if self.name_of(existing.0) == name {
                return Err(JcfError::NameTaken(format!("configuration {name}")));
            }
        }
        let class = self.class("Configuration");
        let rels = self.rels;
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            db.link(rels.cell_version_config, cv.0, id)?;
            Ok(id)
        })?;
        Ok(ConfigId(id))
    }

    /// Creates a new configuration version from a selection of design
    /// object versions.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::ConfigConflict`] if two selected versions
    /// belong to the same design object, and reservation errors.
    pub fn create_config_version(
        &mut self,
        user: UserId,
        config: ConfigId,
        selection: &[DovId],
    ) -> JcfResult<ConfigVersionId> {
        self.bump();
        let cv = self.cell_version_of_config(config)?;
        self.require_reservation(user, cv)?;
        // Enforce at most one version per design object.
        let mut seen = Vec::new();
        for dov in selection {
            let design_object = self.design_object_of(*dov)?;
            if seen.contains(&design_object) {
                return Err(JcfError::ConfigConflict {
                    design_object: self.name_of(design_object.0),
                });
            }
            seen.push(design_object);
        }
        let previous = self.config_versions_of(config).last().copied();
        let number = self.config_versions_of(config).len() as i64 + 1;
        let class = self.class("ConfigurationVersion");
        let rels = self.rels;
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "number", Value::from(number))?;
            db.link(rels.config_version, config.0, id)?;
            if let Some(prev) = previous {
                db.link(rels.config_precedes, prev.0, id)?;
            }
            for dov in selection {
                db.link(rels.config_contains, id, dov.0)?;
            }
            Ok(id)
        })?;
        Ok(ConfigVersionId(id))
    }

    /// The configurations of a cell version.
    pub fn configurations_of(&self, cv: CellVersionId) -> Vec<ConfigId> {
        self.db
            .targets(self.rels.cell_version_config, cv.0)
            .into_iter()
            .map(ConfigId)
            .collect()
    }

    /// The versions of a configuration, oldest first.
    pub fn config_versions_of(&self, config: ConfigId) -> Vec<ConfigVersionId> {
        self.db
            .targets(self.rels.config_version, config.0)
            .into_iter()
            .map(ConfigVersionId)
            .collect()
    }

    /// The design object versions a configuration version selects.
    pub fn config_contents(&self, version: ConfigVersionId) -> Vec<DovId> {
        self.db
            .targets(self.rels.config_contains, version.0)
            .into_iter()
            .map(DovId)
            .collect()
    }

    /// The cell version a configuration belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] for orphaned configurations.
    pub fn cell_version_of_config(&self, config: ConfigId) -> JcfResult<CellVersionId> {
        self.db
            .sources(self.rels.cell_version_config, config.0)
            .first()
            .map(|&id| CellVersionId(id))
            .ok_or_else(|| JcfError::NotFound(format!("cell version of {config}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::VariantId;

    fn fixture() -> (Jcf, UserId, CellVersionId, VariantId) {
        let mut jcf = Jcf::new();
        let admin = jcf.add_user("admin", true).unwrap();
        let alice = jcf.add_user("alice", false).unwrap();
        let team = jcf.add_team(admin, "t").unwrap();
        jcf.add_team_member(admin, team, alice).unwrap();
        let flow = jcf.define_flow(admin, "f").unwrap();
        let project = jcf.create_project("p").unwrap();
        let cell = jcf.create_cell(project, "alu").unwrap();
        let (cv, variant) = jcf.create_cell_version(cell, flow, team).unwrap();
        jcf.reserve(alice, cv).unwrap();
        (jcf, alice, cv, variant)
    }

    #[test]
    fn config_selects_one_version_per_object() {
        let (mut jcf, alice, cv, variant) = fixture();
        let vt = jcf.add_viewtype("schematic").unwrap();
        let d = jcf.create_design_object(alice, variant, "sch", vt).unwrap();
        let v1 = jcf.add_design_object_version(alice, d, vec![1]).unwrap();
        let v2 = jcf.add_design_object_version(alice, d, vec![2]).unwrap();
        let config = jcf.create_configuration(alice, cv, "golden").unwrap();
        assert!(matches!(
            jcf.create_config_version(alice, config, &[v1, v2]),
            Err(JcfError::ConfigConflict { .. })
        ));
        let ok = jcf.create_config_version(alice, config, &[v2]).unwrap();
        assert_eq!(jcf.config_contents(ok), vec![v2]);
    }

    #[test]
    fn config_versions_precede_each_other() {
        let (mut jcf, alice, cv, variant) = fixture();
        let vt = jcf.add_viewtype("schematic").unwrap();
        let d = jcf.create_design_object(alice, variant, "sch", vt).unwrap();
        let v1 = jcf.add_design_object_version(alice, d, vec![1]).unwrap();
        let config = jcf.create_configuration(alice, cv, "golden").unwrap();
        let c1 = jcf.create_config_version(alice, config, &[v1]).unwrap();
        let c2 = jcf.create_config_version(alice, config, &[]).unwrap();
        assert_eq!(jcf.config_versions_of(config), vec![c1, c2]);
        assert!(jcf.database().linked(jcf.rels.config_precedes, c1.0, c2.0));
    }

    #[test]
    fn duplicate_config_names_rejected() {
        let (mut jcf, alice, cv, _) = fixture();
        jcf.create_configuration(alice, cv, "golden").unwrap();
        assert!(matches!(
            jcf.create_configuration(alice, cv, "golden"),
            Err(JcfError::NameTaken(_))
        ));
    }

    #[test]
    fn configs_require_reservation() {
        let (mut jcf, alice, cv, _) = fixture();
        jcf.publish(alice, cv).unwrap();
        assert!(matches!(
            jcf.create_configuration(alice, cv, "late"),
            Err(JcfError::NotReserved { .. })
        ));
    }
}
