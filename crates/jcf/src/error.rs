//! Error type for JCF desktop operations.

use std::error::Error;
use std::fmt;

use oms::OmsError;

/// Error returned by JCF framework operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JcfError {
    /// A low-level database operation failed (usually a framework bug
    /// surfaced to keep the error chain inspectable).
    Database(OmsError),
    /// A named entity was not found.
    NotFound(String),
    /// The name is already taken within its namespace.
    NameTaken(String),
    /// The acting user is not a member of the responsible team.
    NotTeamMember {
        /// The acting user's name.
        user: String,
        /// The team attached to the cell version.
        team: String,
    },
    /// The cell version is reserved in another user's workspace.
    AlreadyReserved {
        /// Who holds the reservation.
        holder: String,
    },
    /// A write was attempted without holding the reservation.
    NotReserved {
        /// The acting user's name.
        user: String,
    },
    /// Flows are fixed once defined; this one was already frozen.
    FlowFrozen(String),
    /// The activity's predecessors have not all completed.
    FlowOrderViolation {
        /// The activity that may not run yet.
        activity: String,
        /// The unfinished predecessor blocking it.
        missing_predecessor: String,
    },
    /// An input viewtype required by the activity has no design object
    /// version in the variant.
    MissingInput {
        /// The activity that cannot start.
        activity: String,
        /// The viewtype with no available version.
        viewtype: String,
    },
    /// The activity is not part of the flow attached to the cell version.
    ActivityNotInFlow {
        /// The offending activity.
        activity: String,
        /// The governing flow.
        flow: String,
    },
    /// Only the project manager may define or change flows and teams.
    PermissionDenied {
        /// The acting user's name.
        user: String,
        /// What was attempted.
        action: &'static str,
    },
    /// A configuration may contain at most one version per design object.
    ConfigConflict {
        /// The design object selected twice.
        design_object: String,
    },
    /// Hierarchy metadata must be declared before designing (§3.3).
    HierarchyNotDeclared {
        /// The undeclared child cell.
        child: String,
    },
    /// Data sharing between projects is not possible (§3.1).
    CrossProjectAccess {
        /// The project that owns the data.
        owner_project: String,
    },
}

impl fmt::Display for JcfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JcfError::Database(e) => write!(f, "database error: {e}"),
            JcfError::NotFound(n) => write!(f, "not found: {n}"),
            JcfError::NameTaken(n) => write!(f, "name already in use: {n}"),
            JcfError::NotTeamMember { user, team } => {
                write!(f, "user {user:?} is not a member of team {team:?}")
            }
            JcfError::AlreadyReserved { holder } => {
                write!(f, "cell version is reserved by {holder:?}")
            }
            JcfError::NotReserved { user } => {
                write!(f, "user {user:?} does not hold the reservation")
            }
            JcfError::FlowFrozen(n) => write!(f, "flow {n:?} is frozen and cannot be modified"),
            JcfError::FlowOrderViolation {
                activity,
                missing_predecessor,
            } => write!(
                f,
                "activity {activity:?} requires predecessor {missing_predecessor:?} to finish first"
            ),
            JcfError::MissingInput { activity, viewtype } => {
                write!(f, "activity {activity:?} needs a {viewtype:?} version")
            }
            JcfError::ActivityNotInFlow { activity, flow } => {
                write!(f, "activity {activity:?} is not part of flow {flow:?}")
            }
            JcfError::PermissionDenied { user, action } => {
                write!(f, "user {user:?} may not {action}")
            }
            JcfError::ConfigConflict { design_object } => write!(
                f,
                "configuration already contains a version of {design_object:?}"
            ),
            JcfError::HierarchyNotDeclared { child } => {
                write!(
                    f,
                    "hierarchy to child cell {child:?} was not declared via the desktop"
                )
            }
            JcfError::CrossProjectAccess { owner_project } => {
                write!(
                    f,
                    "data sharing across projects is not supported (owner: {owner_project:?})"
                )
            }
        }
    }
}

impl Error for JcfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JcfError::Database(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<OmsError> for JcfError {
    fn from(e: OmsError) -> Self {
        JcfError::Database(e)
    }
}

/// Convenience alias for JCF results.
pub type JcfResult<T> = Result<T, JcfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<JcfError>();
    }

    #[test]
    fn database_errors_chain() {
        let e: JcfError = OmsError::TransactionState("x").into();
        assert!(Error::source(&e).is_some());
    }
}
