//! Flow management: fixed design flows and their enforced execution.
//!
//! *"Flows are fixed and cannot be modified, i.e., the user must follow
//! the flow constraints"* (§2.1). Flows are defined by the project
//! manager only; JCF then *"records all derivation relationships"*
//! between the data an activity reads and the data it creates (§2.4),
//! yielding the what-belongs-to-what information FMCAD cannot provide
//! (§3.5).

use oms::Value;

use crate::error::{JcfError, JcfResult};
use crate::framework::{
    ActivityId, DovId, ExecutionId, FlowId, Jcf, ToolId, UserId, VariantId, ViewTypeId,
};

impl Jcf {
    /// Defines a new, initially unfrozen flow (manager-only).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::PermissionDenied`] for non-managers and
    /// [`JcfError::NameTaken`] for duplicate flow names.
    pub fn define_flow(&mut self, actor: UserId, name: &str) -> JcfResult<FlowId> {
        self.bump();
        self.require_manager_pub(actor, "define flows")?;
        if self
            .db
            .find_by_attr(self.class("Flow"), "name", &Value::from(name))
            .is_some()
        {
            return Err(JcfError::NameTaken(format!("flow {name}")));
        }
        let class = self.class("Flow");
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            db.set(id, "frozen", Value::from(false))?;
            Ok(id)
        })?;
        Ok(FlowId(id))
    }

    pub(crate) fn require_manager_pub(&self, user: UserId, action: &'static str) -> JcfResult<()> {
        let is_manager = self
            .db
            .get(user.0, "is_manager")?
            .as_bool()
            .unwrap_or(false);
        if !is_manager {
            return Err(JcfError::PermissionDenied {
                user: self.name_of(user.0),
                action,
            });
        }
        Ok(())
    }

    /// Adds an activity to an unfrozen flow (manager-only).
    ///
    /// `needs` are the viewtypes whose versions the activity consumes;
    /// `creates` the viewtypes it produces; `predecessors` the
    /// activities that must complete first (Figure 1's `Precedes`).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::FlowFrozen`] once the flow is frozen,
    /// [`JcfError::PermissionDenied`] for non-managers, and
    /// [`JcfError::NameTaken`] for duplicate activity names in the flow.
    #[allow(clippy::too_many_arguments)]
    pub fn add_activity(
        &mut self,
        actor: UserId,
        flow: FlowId,
        name: &str,
        tool: ToolId,
        needs: &[ViewTypeId],
        creates: &[ViewTypeId],
        predecessors: &[ActivityId],
    ) -> JcfResult<ActivityId> {
        self.bump();
        self.require_manager_pub(actor, "modify flows")?;
        let frozen = self.db.get(flow.0, "frozen")?.as_bool().unwrap_or(false);
        if frozen {
            return Err(JcfError::FlowFrozen(self.name_of(flow.0)));
        }
        for existing in self.activities_of(flow) {
            if self.name_of(existing.0) == name {
                return Err(JcfError::NameTaken(format!("activity {name}")));
            }
        }
        let class = self.class("Activity");
        let rels = self.rels;
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            db.link(rels.flow_activity, flow.0, id)?;
            db.link(rels.activity_tool, id, tool.0)?;
            for v in needs {
                db.link(rels.activity_needs, id, v.0)?;
            }
            for v in creates {
                db.link(rels.activity_creates, id, v.0)?;
            }
            for p in predecessors {
                db.link(rels.activity_precedes, p.0, id)?;
            }
            Ok(id)
        })?;
        Ok(ActivityId(id))
    }

    /// Freezes a flow; from now on it is a fixed resource (manager-only).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::PermissionDenied`] for non-managers.
    pub fn freeze_flow(&mut self, actor: UserId, flow: FlowId) -> JcfResult<()> {
        self.bump();
        self.require_manager_pub(actor, "freeze flows")?;
        self.db.set(flow.0, "frozen", Value::from(true))?;
        Ok(())
    }

    /// Returns `true` if the flow is frozen.
    ///
    /// # Errors
    ///
    /// Returns database errors for dead ids.
    pub fn is_flow_frozen(&self, flow: FlowId) -> JcfResult<bool> {
        Ok(self.db.get(flow.0, "frozen")?.as_bool().unwrap_or(false))
    }

    /// The activities of a flow, in definition order.
    pub fn activities_of(&self, flow: FlowId) -> Vec<ActivityId> {
        self.db
            .targets(self.rels.flow_activity, flow.0)
            .into_iter()
            .map(ActivityId)
            .collect()
    }

    /// The predecessors an activity waits on.
    pub fn predecessors_of(&self, activity: ActivityId) -> Vec<ActivityId> {
        self.db
            .sources(self.rels.activity_precedes, activity.0)
            .into_iter()
            .map(ActivityId)
            .collect()
    }

    /// The viewtypes an activity needs.
    pub fn needs_of(&self, activity: ActivityId) -> Vec<ViewTypeId> {
        self.db
            .targets(self.rels.activity_needs, activity.0)
            .into_iter()
            .map(ViewTypeId)
            .collect()
    }

    /// The viewtypes an activity creates.
    pub fn creates_of(&self, activity: ActivityId) -> Vec<ViewTypeId> {
        self.db
            .targets(self.rels.activity_creates, activity.0)
            .into_iter()
            .map(ViewTypeId)
            .collect()
    }

    /// The tool an activity runs.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] if the activity has no tool.
    pub fn tool_of(&self, activity: ActivityId) -> JcfResult<ToolId> {
        self.db
            .targets(self.rels.activity_tool, activity.0)
            .first()
            .map(|&id| ToolId(id))
            .ok_or_else(|| JcfError::NotFound(format!("tool of {activity}")))
    }

    // --- execution --------------------------------------------------------

    /// Checks whether `activity` may start in `variant` right now:
    /// it must belong to the attached flow, its predecessors must have
    /// finished (in this variant) and its needed viewtypes must have at
    /// least one version available.
    ///
    /// # Errors
    ///
    /// Returns the specific violated constraint.
    pub fn can_execute(&self, variant: VariantId, activity: ActivityId) -> JcfResult<()> {
        let cv = self.cell_version_of(variant)?;
        let flow = self.flow_of(cv)?;
        if !self.activities_of(flow).contains(&activity) {
            return Err(JcfError::ActivityNotInFlow {
                activity: self.name_of(activity.0),
                flow: self.name_of(flow.0),
            });
        }
        for pred in self.predecessors_of(activity) {
            if !self.has_finished_execution(variant, pred) {
                return Err(JcfError::FlowOrderViolation {
                    activity: self.name_of(activity.0),
                    missing_predecessor: self.name_of(pred.0),
                });
            }
        }
        for viewtype in self.needs_of(activity) {
            let available = self
                .design_object_by_viewtype(variant, viewtype)
                .and_then(|d| self.latest_version(d));
            if available.is_none() {
                return Err(JcfError::MissingInput {
                    activity: self.name_of(activity.0),
                    viewtype: self.name_of(viewtype.0),
                });
            }
        }
        Ok(())
    }

    fn has_finished_execution(&self, variant: VariantId, activity: ActivityId) -> bool {
        self.executions_of(variant).iter().any(|&e| {
            self.db
                .targets(self.rels.execution_activity, e.0)
                .first()
                .is_some_and(|&a| a == activity.0)
                && self
                    .db
                    .get(e.0, "finished")
                    .ok()
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false)
        })
    }

    /// Starts an activity in a variant, gathering its inputs (the
    /// latest version of each needed viewtype). Requires the workspace
    /// reservation.
    ///
    /// With `override_pending` the predecessor-order check is skipped —
    /// the paper's wrappers *"enabled activity execution when its
    /// predecessor was not yet finished"* (§2.4); the override is
    /// recorded on the execution so audits can find it.
    ///
    /// # Errors
    ///
    /// Returns reservation errors and the [`Jcf::can_execute`]
    /// constraint violations (input availability is checked even when
    /// overriding).
    pub fn start_activity(
        &mut self,
        user: UserId,
        variant: VariantId,
        activity: ActivityId,
        override_pending: bool,
    ) -> JcfResult<ExecutionId> {
        let now = self.bump();
        let cv = self.cell_version_of(variant)?;
        self.require_reservation(user, cv)?;
        let mut override_used = false;
        match self.can_execute(variant, activity) {
            Ok(()) => {}
            Err(JcfError::FlowOrderViolation { .. }) if override_pending => {
                override_used = true;
                // The wrapper may override the order, but never missing
                // inputs: the tool would have nothing to run on.
                for viewtype in self.needs_of(activity) {
                    let available = self
                        .design_object_by_viewtype(variant, viewtype)
                        .and_then(|d| self.latest_version(d));
                    if available.is_none() {
                        return Err(JcfError::MissingInput {
                            activity: self.name_of(activity.0),
                            viewtype: self.name_of(viewtype.0),
                        });
                    }
                }
            }
            Err(e) => return Err(e),
        }
        let mut inputs = Vec::new();
        for viewtype in self.needs_of(activity) {
            if let Some(dov) = self
                .design_object_by_viewtype(variant, viewtype)
                .and_then(|d| self.latest_version(d))
            {
                inputs.push(dov);
            }
        }
        let class = self.class("ActivityExecution");
        let rels = self.rels;
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "finished", Value::from(false))?;
            db.set(id, "overridden", Value::from(override_used))?;
            db.set(id, "started_at", Value::from(now))?;
            db.link(rels.execution_activity, id, activity.0)?;
            db.link(rels.execution_variant, id, variant.0)?;
            for input in &inputs {
                db.link(rels.execution_reads, id, input.0)?;
            }
            Ok(id)
        })?;
        Ok(ExecutionId(id))
    }

    /// Finishes an activity execution, storing its outputs as new
    /// design object versions and recording every input-to-output
    /// derivation edge.
    ///
    /// Each output is `(viewtype, design object name, data)`; a design
    /// object is created on first use of the name in the variant.
    /// Output payloads are [`Blob`](cad_vfs::Blob)s — storing them in
    /// the database shares the tool's buffer instead of copying it.
    ///
    /// # Errors
    ///
    /// Returns reservation errors.
    pub fn finish_activity(
        &mut self,
        user: UserId,
        execution: ExecutionId,
        outputs: &[(ViewTypeId, &str, cad_vfs::Blob)],
    ) -> JcfResult<Vec<DovId>> {
        self.bump();
        let variant = self.variant_of_execution(execution)?;
        let cv = self.cell_version_of(variant)?;
        self.require_reservation(user, cv)?;
        let inputs: Vec<DovId> = self
            .db
            .targets(self.rels.execution_reads, execution.0)
            .into_iter()
            .map(DovId)
            .collect();
        let mut created = Vec::new();
        for (viewtype, name, data) in outputs {
            let design_object = match self
                .design_objects_of(variant)
                .into_iter()
                .find(|d| self.name_of(d.0) == *name)
            {
                Some(d) => d,
                None => self.create_design_object(user, variant, name, *viewtype)?,
            };
            let dov = self.add_design_object_version(user, design_object, data.clone())?;
            let rels = self.rels;
            self.db.link(rels.execution_creates, execution.0, dov.0)?;
            for input in &inputs {
                // Self-derivation (tool rewriting its own input view) is
                // recorded by add_design_object_version already.
                if *input != dov {
                    let _ = self.db.link(rels.dov_derived, input.0, dov.0);
                }
            }
            created.push(dov);
        }
        self.db.set(execution.0, "finished", Value::from(true))?;
        Ok(created)
    }

    /// The activity executions recorded in a variant, in start order.
    pub fn executions_of(&self, variant: VariantId) -> Vec<ExecutionId> {
        self.db
            .sources(self.rels.execution_variant, variant.0)
            .into_iter()
            .map(ExecutionId)
            .collect()
    }

    /// The variant an execution ran in.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] for orphaned executions.
    pub fn variant_of_execution(&self, execution: ExecutionId) -> JcfResult<VariantId> {
        self.db
            .targets(self.rels.execution_variant, execution.0)
            .first()
            .map(|&id| VariantId(id))
            .ok_or_else(|| JcfError::NotFound(format!("variant of {execution}")))
    }

    /// Returns `true` if the execution used the predecessor override.
    ///
    /// # Errors
    ///
    /// Returns database errors for dead ids.
    pub fn was_overridden(&self, execution: ExecutionId) -> JcfResult<bool> {
        Ok(self
            .db
            .get(execution.0, "overridden")?
            .as_bool()
            .unwrap_or(false))
    }

    // --- derivation queries -----------------------------------------------

    /// The design object versions this one was directly derived from.
    pub fn derived_from(&self, dov: DovId) -> Vec<DovId> {
        self.db
            .sources(self.rels.dov_derived, dov.0)
            .into_iter()
            .map(DovId)
            .collect()
    }

    /// The design object versions directly derived from this one.
    pub fn derivations_of(&self, dov: DovId) -> Vec<DovId> {
        self.db
            .targets(self.rels.dov_derived, dov.0)
            .into_iter()
            .map(DovId)
            .collect()
    }

    /// The transitive derivation ancestry of a version (everything it
    /// was ultimately derived from), sorted.
    pub fn derivation_closure(&self, dov: DovId) -> Vec<DovId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut frontier = vec![dov];
        while let Some(current) = frontier.pop() {
            for parent in self.derived_from(current) {
                if seen.insert(parent) {
                    frontier.push(parent);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Marks two design object versions as equivalent representations
    /// (Figure 1's `equivalent` relation).
    ///
    /// # Errors
    ///
    /// Returns database errors for dead ids.
    pub fn mark_equivalent(&mut self, a: DovId, b: DovId) -> JcfResult<()> {
        self.bump();
        self.db.link(self.rels.dov_equivalent, a.0, b.0)?;
        Ok(())
    }

    /// The design object versions marked equivalent to this one, in
    /// either direction: the `equivalent` relation is stored as a
    /// directed link but means an undirected pairing, so the symmetric
    /// neighbourhood is the union of link sources and targets, sorted
    /// and deduplicated.
    pub fn equivalents_of(&self, dov: DovId) -> Vec<DovId> {
        let mut out = self.db.targets(self.rels.dov_equivalent, dov.0);
        out.extend(self.db.sources(self.rels.dov_equivalent, dov.0));
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(DovId).collect()
    }

    /// The what-belongs-to-what report for a variant: for every design
    /// object version, which versions it was derived from and which
    /// execution created it. FMCAD has no equivalent (§3.5).
    pub fn what_belongs_to_what(&self, variant: VariantId) -> Vec<ProvenanceEntry> {
        let mut out = Vec::new();
        for design_object in self.design_objects_of(variant) {
            for dov in self.versions_of_design_object(design_object) {
                let created_by = self
                    .db
                    .sources(self.rels.execution_creates, dov.0)
                    .first()
                    .copied()
                    .map(ExecutionId);
                let activity = created_by.and_then(|e| {
                    self.db
                        .targets(self.rels.execution_activity, e.0)
                        .first()
                        .map(|&a| self.name_of(a))
                });
                out.push(ProvenanceEntry {
                    design_object: self.name_of(design_object.0),
                    version: dov,
                    derived_from: self.derived_from(dov),
                    created_by_activity: activity,
                });
            }
        }
        out
    }
}

/// The state of one activity of a flow, relative to a variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivityState {
    /// At least one execution of the activity has finished here.
    Finished,
    /// All constraints are satisfied; the activity may start now.
    Ready,
    /// The activity cannot start; the reason is the constraint text.
    Blocked(String),
}

impl std::fmt::Display for ActivityState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActivityState::Finished => f.write_str("finished"),
            ActivityState::Ready => f.write_str("ready"),
            ActivityState::Blocked(reason) => write!(f, "blocked: {reason}"),
        }
    }
}

impl Jcf {
    /// The desktop's flow-status view: every activity of the variant's
    /// flow with its current state, in flow definition order.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] for orphaned variants.
    pub fn flow_status(&self, variant: VariantId) -> JcfResult<Vec<(ActivityId, ActivityState)>> {
        let cv = self.cell_version_of(variant)?;
        let flow = self.flow_of(cv)?;
        let mut out = Vec::new();
        for activity in self.activities_of(flow) {
            let state = if self.has_finished_execution_pub(variant, activity) {
                ActivityState::Finished
            } else {
                match self.can_execute(variant, activity) {
                    Ok(()) => ActivityState::Ready,
                    Err(e) => ActivityState::Blocked(e.to_string()),
                }
            };
            out.push((activity, state));
        }
        Ok(out)
    }

    pub(crate) fn has_finished_execution_pub(
        &self,
        variant: VariantId,
        activity: ActivityId,
    ) -> bool {
        self.has_finished_execution(variant, activity)
    }
}

/// One row of the what-belongs-to-what report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceEntry {
    /// Name of the design object.
    pub design_object: String,
    /// The version described.
    pub version: DovId,
    /// Versions it was directly derived from.
    pub derived_from: Vec<DovId>,
    /// Name of the activity whose execution created it, if recorded.
    pub created_by_activity: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{CellVersionId, TeamId};

    struct Fixture {
        jcf: Jcf,
        alice: UserId,
        cv: CellVersionId,
        variant: VariantId,
        schematic: ViewTypeId,
        waveform: ViewTypeId,
        enter: ActivityId,
        simulate: ActivityId,
        flow: FlowId,
        team: TeamId,
    }

    fn fixture() -> Fixture {
        let mut jcf = Jcf::new();
        let admin = jcf.add_user("admin", true).unwrap();
        let alice = jcf.add_user("alice", false).unwrap();
        let team = jcf.add_team(admin, "asic").unwrap();
        jcf.add_team_member(admin, team, alice).unwrap();
        let schematic = jcf.add_viewtype("schematic").unwrap();
        let waveform = jcf.add_viewtype("waveform").unwrap();
        let sch_tool = jcf.add_tool("schematic-entry").unwrap();
        let sim_tool = jcf.add_tool("simulator").unwrap();
        let flow = jcf.define_flow(admin, "entry-then-sim").unwrap();
        let enter = jcf
            .add_activity(admin, flow, "enter", sch_tool, &[], &[schematic], &[])
            .unwrap();
        let simulate = jcf
            .add_activity(
                admin,
                flow,
                "simulate",
                sim_tool,
                &[schematic],
                &[waveform],
                &[enter],
            )
            .unwrap();
        jcf.freeze_flow(admin, flow).unwrap();
        let project = jcf.create_project("p").unwrap();
        let cell = jcf.create_cell(project, "alu").unwrap();
        let (cv, variant) = jcf.create_cell_version(cell, flow, team).unwrap();
        jcf.reserve(alice, cv).unwrap();
        Fixture {
            jcf,
            alice,
            cv,
            variant,
            schematic,
            waveform,
            enter,
            simulate,
            flow,
            team,
        }
    }

    #[test]
    fn frozen_flows_cannot_change() {
        let mut f = fixture();
        let admin = f.jcf.user_by_name("admin").unwrap();
        let tool = f.jcf.add_tool("x").unwrap();
        assert!(matches!(
            f.jcf
                .add_activity(admin, f.flow, "late", tool, &[], &[], &[]),
            Err(JcfError::FlowFrozen(_))
        ));
        assert!(f.jcf.is_flow_frozen(f.flow).unwrap());
    }

    #[test]
    fn designers_cannot_define_flows() {
        let mut f = fixture();
        assert!(matches!(
            f.jcf.define_flow(f.alice, "rogue"),
            Err(JcfError::PermissionDenied { .. })
        ));
        assert!(matches!(
            f.jcf.freeze_flow(f.alice, f.flow),
            Err(JcfError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn flow_order_is_enforced() {
        let f = fixture();
        assert!(matches!(
            f.jcf.can_execute(f.variant, f.simulate),
            Err(JcfError::FlowOrderViolation { .. })
        ));
        assert!(f.jcf.can_execute(f.variant, f.enter).is_ok());
    }

    #[test]
    fn full_activity_cycle_records_derivations() {
        let mut f = fixture();
        // Run "enter": creates the schematic.
        let e1 = f
            .jcf
            .start_activity(f.alice, f.variant, f.enter, false)
            .unwrap();
        let sch_dovs = f
            .jcf
            .finish_activity(
                f.alice,
                e1,
                &[(f.schematic, "sch", b"netlist alu".to_vec().into())],
            )
            .unwrap();
        assert_eq!(sch_dovs.len(), 1);
        // Now "simulate" may run and must read the schematic.
        assert!(f.jcf.can_execute(f.variant, f.simulate).is_ok());
        let e2 = f
            .jcf
            .start_activity(f.alice, f.variant, f.simulate, false)
            .unwrap();
        let wave_dovs = f
            .jcf
            .finish_activity(
                f.alice,
                e2,
                &[(f.waveform, "waves", b"waves".to_vec().into())],
            )
            .unwrap();
        // Derivation: waveform derived from schematic.
        assert_eq!(f.jcf.derived_from(wave_dovs[0]), vec![sch_dovs[0]]);
        assert_eq!(f.jcf.derivations_of(sch_dovs[0]), vec![wave_dovs[0]]);
        // Provenance report names the creating activities.
        let report = f.jcf.what_belongs_to_what(f.variant);
        assert_eq!(report.len(), 2);
        assert!(report
            .iter()
            .any(|r| r.design_object == "waves"
                && r.created_by_activity.as_deref() == Some("simulate")));
    }

    #[test]
    fn missing_input_blocks_even_with_override() {
        let mut f = fixture();
        // simulate needs a schematic; overriding order does not waive inputs.
        assert!(matches!(
            f.jcf.start_activity(f.alice, f.variant, f.simulate, true),
            Err(JcfError::MissingInput { .. })
        ));
    }

    #[test]
    fn override_skips_order_and_is_recorded() {
        let mut f = fixture();
        // Create the schematic out-of-band so only the order constraint bites.
        let d = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        f.jcf
            .add_design_object_version(f.alice, d, b"x".to_vec())
            .unwrap();
        assert!(matches!(
            f.jcf.start_activity(f.alice, f.variant, f.simulate, false),
            Err(JcfError::FlowOrderViolation { .. })
        ));
        let e = f
            .jcf
            .start_activity(f.alice, f.variant, f.simulate, true)
            .unwrap();
        assert!(f.jcf.was_overridden(e).unwrap());
    }

    #[test]
    fn foreign_activities_rejected() {
        let mut f = fixture();
        let admin = f.jcf.user_by_name("admin").unwrap();
        let other_flow = f.jcf.define_flow(admin, "other").unwrap();
        let tool = f.jcf.add_tool("t2").unwrap();
        let foreign = f
            .jcf
            .add_activity(admin, other_flow, "alien", tool, &[], &[], &[])
            .unwrap();
        assert!(matches!(
            f.jcf.can_execute(f.variant, foreign),
            Err(JcfError::ActivityNotInFlow { .. })
        ));
        let _ = (f.cv, f.team);
    }

    #[test]
    fn executions_require_reservation() {
        let mut f = fixture();
        f.jcf.publish(f.alice, f.cv).unwrap();
        assert!(matches!(
            f.jcf.start_activity(f.alice, f.variant, f.enter, false),
            Err(JcfError::NotReserved { .. })
        ));
    }

    #[test]
    fn derivation_closure_walks_the_full_ancestry() {
        let mut f = fixture();
        let e1 = f
            .jcf
            .start_activity(f.alice, f.variant, f.enter, false)
            .unwrap();
        let sch = f
            .jcf
            .finish_activity(f.alice, e1, &[(f.schematic, "sch", b"a".to_vec().into())])
            .unwrap();
        let e2 = f
            .jcf
            .start_activity(f.alice, f.variant, f.simulate, false)
            .unwrap();
        let w1 = f
            .jcf
            .finish_activity(f.alice, e2, &[(f.waveform, "waves", b"b".to_vec().into())])
            .unwrap();
        // Second simulation run: its waveform derives from the schematic
        // and (via versioning) from the first waveform.
        let e3 = f
            .jcf
            .start_activity(f.alice, f.variant, f.simulate, false)
            .unwrap();
        let w2 = f
            .jcf
            .finish_activity(f.alice, e3, &[(f.waveform, "waves", b"c".to_vec().into())])
            .unwrap();
        let closure = f.jcf.derivation_closure(w2[0]);
        assert!(closure.contains(&sch[0]));
        assert!(closure.contains(&w1[0]));
        assert!(
            !closure.contains(&w2[0]),
            "a version is not its own ancestor"
        );
        assert!(f.jcf.derivation_closure(sch[0]).is_empty());
    }

    #[test]
    fn flow_status_tracks_the_design_state() {
        let mut f = fixture();
        let status = f.jcf.flow_status(f.variant).unwrap();
        assert_eq!(status.len(), 2);
        assert_eq!(status[0].1, ActivityState::Ready, "enter may start");
        assert!(
            matches!(status[1].1, ActivityState::Blocked(_)),
            "simulate waits"
        );
        // Run "enter"; simulate becomes ready; enter becomes finished.
        let e = f
            .jcf
            .start_activity(f.alice, f.variant, f.enter, false)
            .unwrap();
        f.jcf
            .finish_activity(f.alice, e, &[(f.schematic, "sch", b"x".to_vec().into())])
            .unwrap();
        let status = f.jcf.flow_status(f.variant).unwrap();
        assert_eq!(status[0].1, ActivityState::Finished);
        assert_eq!(status[1].1, ActivityState::Ready);
    }

    #[test]
    fn mark_equivalent_links_both_views() {
        let mut f = fixture();
        let d = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        let a = f
            .jcf
            .add_design_object_version(f.alice, d, vec![1])
            .unwrap();
        let d2 = f
            .jcf
            .create_design_object(f.alice, f.variant, "waves", f.waveform)
            .unwrap();
        let b = f
            .jcf
            .add_design_object_version(f.alice, d2, vec![2])
            .unwrap();
        f.jcf.mark_equivalent(a, b).unwrap();
        assert!(f.jcf.database().linked(f.jcf.rels.dov_equivalent, a.0, b.0));
    }
}
