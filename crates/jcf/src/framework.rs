//! The JCF framework object: resources and project structure.

use oms::{Database, ObjectId, RelId, Value};

use crate::error::{JcfError, JcfResult};
use crate::schema::jcf_schema;

macro_rules! typed_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) ObjectId);

        impl $name {
            /// The underlying database object id.
            pub fn object_id(self) -> ObjectId {
                self.0
            }

            /// The raw id value, for journal/image encoding.
            pub fn raw(self) -> u64 {
                self.0.raw()
            }

            /// Rebuilds the handle from a raw id taken from a journal
            /// or image of the same database.
            pub fn from_raw(raw: u64) -> Self {
                $name(ObjectId::from_raw(raw))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }

        /// Typed ids key the hybrid coupling maps, which live on the
        /// same persistent trie as the store itself.
        impl oms::PmapKey for $name {
            fn to_bits(self) -> u64 {
                self.0.raw()
            }
            fn from_bits(bits: u64) -> Self {
                $name(ObjectId::from_raw(bits))
            }
        }
    };
}

typed_id!(
    /// Handle to a registered user.
    UserId
);
typed_id!(
    /// Handle to a team.
    TeamId
);
typed_id!(
    /// Handle to a registered tool.
    ToolId
);
typed_id!(
    /// Handle to a viewtype resource.
    ViewTypeId
);
typed_id!(
    /// Handle to a design flow.
    FlowId
);
typed_id!(
    /// Handle to an activity of a flow.
    ActivityId
);
typed_id!(
    /// Handle to a project.
    ProjectId
);
typed_id!(
    /// Handle to a cell.
    CellId
);
typed_id!(
    /// Handle to a cell version.
    CellVersionId
);
typed_id!(
    /// Handle to a variant inside a cell version.
    VariantId
);
typed_id!(
    /// Handle to a design object.
    DesignObjectId
);
typed_id!(
    /// Handle to a design object version (the actual design data).
    DovId
);
typed_id!(
    /// Handle to an activity execution record.
    ExecutionId
);
typed_id!(
    /// Handle to a configuration.
    ConfigId
);
typed_id!(
    /// Handle to a configuration version.
    ConfigVersionId
);

/// Cached relationship ids, resolved once at construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Rels {
    pub team_member: RelId,
    pub flow_activity: RelId,
    pub activity_tool: RelId,
    pub activity_needs: RelId,
    pub activity_creates: RelId,
    pub activity_precedes: RelId,
    pub project_cell: RelId,
    pub cell_version: RelId,
    pub cell_version_precedes: RelId,
    pub cell_version_flow: RelId,
    pub cell_version_team: RelId,
    pub comp_of: RelId,
    pub cell_version_variant: RelId,
    pub variant_derived: RelId,
    pub variant_design_object: RelId,
    pub design_object_viewtype: RelId,
    pub design_object_version: RelId,
    pub dov_derived: RelId,
    pub dov_equivalent: RelId,
    pub execution_activity: RelId,
    pub execution_variant: RelId,
    pub execution_reads: RelId,
    pub execution_creates: RelId,
    pub cell_version_config: RelId,
    pub config_version: RelId,
    pub config_precedes: RelId,
    pub config_contains: RelId,
    pub reserved_by: RelId,
}

/// The JESSI-COMMON-Framework 3.0 model.
///
/// One `Jcf` value is one running framework installation: the OMS
/// database underneath holds both the *resources* (users, teams, tools,
/// viewtypes, flows — administrator-controlled metadata) and the
/// *project data* (projects, cells, versions, variants, design objects
/// and their versioned data), exactly as Figure 1 of the paper lays
/// out.
///
/// Every public method is a *desktop operation*; the framework counts
/// them (see [`Jcf::desktop_ops`]) so the user-interface experiment E7
/// can quantify the extra interaction steps the hybrid environment
/// costs.
///
/// # Examples
///
/// ```
/// use jcf::Jcf;
///
/// # fn main() -> Result<(), jcf::JcfError> {
/// let mut jcf = Jcf::new();
/// let admin = jcf.add_user("admin", true)?;
/// let alice = jcf.add_user("alice", false)?;
/// let team = jcf.add_team(admin, "asic")?;
/// jcf.add_team_member(admin, team, alice)?;
/// assert_eq!(jcf.team_members(team).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Jcf {
    pub(crate) db: Database,
    pub(crate) rels: Rels,
    pub(crate) desktop_ops: u64,
    pub(crate) clock: i64,
    pub(crate) checkpointer: oms::persist::Checkpointer,
}

impl Default for Jcf {
    fn default() -> Self {
        Self::new()
    }
}

impl Jcf {
    /// Creates an empty framework installation.
    pub fn new() -> Self {
        let db = Database::new(jcf_schema());
        let rel = |name: &str| {
            db.schema()
                .relationship_by_name(name)
                .expect("schema declares it")
        };
        let rels = Rels {
            team_member: rel("team_member"),
            flow_activity: rel("flow_activity"),
            activity_tool: rel("activity_tool"),
            activity_needs: rel("activity_needs"),
            activity_creates: rel("activity_creates"),
            activity_precedes: rel("activity_precedes"),
            project_cell: rel("project_cell"),
            cell_version: rel("cell_version"),
            cell_version_precedes: rel("cell_version_precedes"),
            cell_version_flow: rel("cell_version_flow"),
            cell_version_team: rel("cell_version_team"),
            comp_of: rel("comp_of"),
            cell_version_variant: rel("cell_version_variant"),
            variant_derived: rel("variant_derived"),
            variant_design_object: rel("variant_design_object"),
            design_object_viewtype: rel("design_object_viewtype"),
            design_object_version: rel("design_object_version"),
            dov_derived: rel("dov_derived"),
            dov_equivalent: rel("dov_equivalent"),
            execution_activity: rel("execution_activity"),
            execution_variant: rel("execution_variant"),
            execution_reads: rel("execution_reads"),
            execution_creates: rel("execution_creates"),
            cell_version_config: rel("cell_version_config"),
            config_version: rel("config_version"),
            config_precedes: rel("config_precedes"),
            config_contains: rel("config_contains"),
            reserved_by: rel("reserved_by"),
        };
        Jcf {
            db,
            rels,
            desktop_ops: 0,
            clock: 0,
            checkpointer: oms::persist::Checkpointer::new(),
        }
    }

    /// Read access to the underlying database (for schema introspection
    /// and experiments; mutation goes through the desktop API only).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Takes a point-in-time copy of the installation for concurrent
    /// readers: the OMS store is snapshotted (metadata maps copied,
    /// design-data blobs shared by reference — see
    /// [`Database::snapshot`]), the desktop counters are carried over,
    /// and the incremental checkpoint cache is reset. The copy answers
    /// every `&self` navigation and [`Jcf::peek_design_data`] query
    /// exactly as the live installation would at this instant, and is
    /// fully independent of later desktop operations.
    pub fn snapshot(&self) -> Jcf {
        Jcf {
            db: self.db.snapshot(),
            rels: self.rels,
            desktop_ops: self.desktop_ops,
            clock: self.clock,
            checkpointer: oms::persist::Checkpointer::new(),
        }
    }

    /// Checkpoints the entire OMS database — metadata *and* design
    /// data — to a file in the virtual file system. This is how JCF
    /// installations were backed up: everything lives in one store.
    ///
    /// Serialisation is incremental: a per-object content-hash cache
    /// ([`oms::persist::Checkpointer`]) re-encodes only objects that
    /// changed since the previous checkpoint of this framework.
    ///
    /// # Errors
    ///
    /// Returns database/file-system errors wrapped as [`JcfError`].
    pub fn checkpoint(&mut self, fs: &mut cad_vfs::Vfs, path: &cad_vfs::VfsPath) -> JcfResult<()> {
        self.bump();
        self.checkpointer
            .save(&self.db, fs, path)
            .map_err(JcfError::Database)
    }

    /// Restores a framework from a checkpoint written by
    /// [`Jcf::checkpoint`]. All object ids remain valid across the
    /// restart; the desktop-operation counter starts fresh.
    ///
    /// # Errors
    ///
    /// Returns a corrupt-image error for damaged checkpoints.
    pub fn restore(fs: &mut cad_vfs::Vfs, path: &cad_vfs::VfsPath) -> JcfResult<Jcf> {
        let db = oms::persist::load(crate::schema::jcf_schema(), fs, path)
            .map_err(JcfError::Database)?;
        let mut jcf = Jcf::new();
        jcf.db = db;
        // Resume the logical clock past every restored timestamp so new
        // events sort after old ones.
        let mut max_time = 0i64;
        for class in ["DesignObjectVersion", "ActivityExecution"] {
            let class = jcf.class(class);
            for id in jcf.db.objects_of(class) {
                for attr in ["created_at", "started_at"] {
                    if let Ok(v) = jcf.db.get(id, attr) {
                        max_time = max_time.max(v.as_int().unwrap_or(0));
                    }
                }
            }
        }
        jcf.clock = max_time;
        Ok(jcf)
    }

    /// Rebuilds a framework around an already-restored [`Database`]
    /// over the JCF schema — the warm half of delta recovery: the
    /// caller parsed (or cached) a base image, applied delta records,
    /// and hands over the result. The desktop counters and logical
    /// clock start at zero; delta chains always persist the exact
    /// counters, so callers follow up with [`Jcf::resume_counters`]
    /// instead of the lossy timestamp scan [`Jcf::restore`] performs.
    pub fn from_database(db: Database) -> Jcf {
        let mut jcf = Jcf::new();
        jcf.db = db;
        jcf
    }

    /// Number of desktop operations performed so far (experiment E7).
    pub fn desktop_ops(&self) -> u64 {
        self.desktop_ops
    }

    /// The logical clock value: every desktop operation advances it and
    /// new timestamps are taken from it.
    pub fn clock(&self) -> i64 {
        self.clock
    }

    /// Resumes the desktop-operation counter and logical clock at exact
    /// recorded values. [`Jcf::restore`] alone is lossy (it rebuilds the
    /// clock from the surviving timestamps and zeroes the counter);
    /// callers that persist the counters alongside the image use this to
    /// continue the original timeline tick for tick.
    pub fn resume_counters(&mut self, desktop_ops: u64, clock: i64) {
        self.desktop_ops = desktop_ops;
        self.clock = clock;
    }

    pub(crate) fn bump(&mut self) -> i64 {
        self.desktop_ops += 1;
        self.clock += 1;
        self.clock
    }

    pub(crate) fn class(&self, name: &str) -> oms::ClassId {
        self.db
            .schema()
            .class_by_name(name)
            .expect("schema declares all classes")
    }

    pub(crate) fn name_of(&self, id: ObjectId) -> String {
        self.db
            .get(id, "name")
            .ok()
            .and_then(|v| v.as_text().map(str::to_owned))
            .unwrap_or_else(|| id.to_string())
    }

    fn unique_name(&self, class: &str, name: &str) -> JcfResult<()> {
        if self
            .db
            .find_by_attr(self.class(class), "name", &Value::from(name))
            .is_some()
        {
            return Err(JcfError::NameTaken(format!("{class} {name}")));
        }
        Ok(())
    }

    fn require_manager(&self, user: UserId, action: &'static str) -> JcfResult<()> {
        let is_manager = self
            .db
            .get(user.0, "is_manager")
            .map_err(JcfError::Database)?
            .as_bool()
            .unwrap_or(false);
        if !is_manager {
            return Err(JcfError::PermissionDenied {
                user: self.name_of(user.0),
                action,
            });
        }
        Ok(())
    }

    // --- resources (administrator / project manager) -------------------

    /// Registers a user. `is_manager` grants project-manager rights
    /// (flows and teams can only be defined by managers, §3.5).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NameTaken`] for duplicate user names.
    pub fn add_user(&mut self, name: &str, is_manager: bool) -> JcfResult<UserId> {
        self.bump();
        self.unique_name("User", name)?;
        let class = self.class("User");
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            db.set(id, "is_manager", Value::from(is_manager))?;
            Ok(id)
        })?;
        Ok(UserId(id))
    }

    /// Creates a team (manager-only).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::PermissionDenied`] for non-managers and
    /// [`JcfError::NameTaken`] for duplicate team names.
    pub fn add_team(&mut self, actor: UserId, name: &str) -> JcfResult<TeamId> {
        self.bump();
        self.require_manager(actor, "create teams")?;
        self.unique_name("Team", name)?;
        let class = self.class("Team");
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            Ok(id)
        })?;
        Ok(TeamId(id))
    }

    /// Adds a user to a team (manager-only).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::PermissionDenied`] for non-managers.
    pub fn add_team_member(&mut self, actor: UserId, team: TeamId, user: UserId) -> JcfResult<()> {
        self.bump();
        self.require_manager(actor, "manage teams")?;
        self.db.link(self.rels.team_member, team.0, user.0)?;
        Ok(())
    }

    /// The members of a team.
    pub fn team_members(&self, team: TeamId) -> Vec<UserId> {
        self.db
            .targets(self.rels.team_member, team.0)
            .into_iter()
            .map(UserId)
            .collect()
    }

    /// Returns `true` if `user` belongs to `team`.
    pub fn is_team_member(&self, team: TeamId, user: UserId) -> bool {
        self.db.linked(self.rels.team_member, team.0, user.0)
    }

    /// Registers a tool resource.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NameTaken`] for duplicate tool names.
    pub fn add_tool(&mut self, name: &str) -> JcfResult<ToolId> {
        self.bump();
        self.unique_name("Tool", name)?;
        let class = self.class("Tool");
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            Ok(id)
        })?;
        Ok(ToolId(id))
    }

    /// Registers a viewtype resource (e.g. `schematic`, `layout`).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NameTaken`] for duplicate viewtype names.
    pub fn add_viewtype(&mut self, name: &str) -> JcfResult<ViewTypeId> {
        self.bump();
        self.unique_name("ViewType", name)?;
        let class = self.class("ViewType");
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            Ok(id)
        })?;
        Ok(ViewTypeId(id))
    }

    /// Resolves a viewtype by name.
    pub fn viewtype_by_name(&self, name: &str) -> Option<ViewTypeId> {
        self.db
            .find_by_attr(self.class("ViewType"), "name", &Value::from(name))
            .map(ViewTypeId)
    }

    /// Resolves a user by name.
    pub fn user_by_name(&self, name: &str) -> Option<UserId> {
        self.db
            .find_by_attr(self.class("User"), "name", &Value::from(name))
            .map(UserId)
    }

    /// The display name of any framework entity with a `name` attribute.
    pub fn display_name(&self, id: ObjectId) -> String {
        self.name_of(id)
    }

    // --- project structure ----------------------------------------------

    /// Creates a project.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NameTaken`] for duplicate project names.
    pub fn create_project(&mut self, name: &str) -> JcfResult<ProjectId> {
        self.bump();
        self.unique_name("Project", name)?;
        let class = self.class("Project");
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            Ok(id)
        })?;
        Ok(ProjectId(id))
    }

    /// Creates a cell inside a project.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NameTaken`] if the project already has a
    /// cell of this name.
    pub fn create_cell(&mut self, project: ProjectId, name: &str) -> JcfResult<CellId> {
        self.bump();
        for existing in self.db.targets(self.rels.project_cell, project.0) {
            if self.name_of(existing) == name {
                return Err(JcfError::NameTaken(format!("cell {name}")));
            }
        }
        let class = self.class("Cell");
        let rels = self.rels;
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            db.link(rels.project_cell, project.0, id)?;
            Ok(id)
        })?;
        Ok(CellId(id))
    }

    /// Creates a new cell version with its attached flow and team, plus
    /// the initial `base` variant. Links `precedes` from the previous
    /// latest version, if any.
    ///
    /// # Errors
    ///
    /// Propagates database errors (all ids must come from this
    /// framework instance).
    pub fn create_cell_version(
        &mut self,
        cell: CellId,
        flow: FlowId,
        team: TeamId,
    ) -> JcfResult<(CellVersionId, VariantId)> {
        self.bump();
        let previous = self
            .db
            .targets(self.rels.cell_version, cell.0)
            .into_iter()
            .last();
        let number = self.db.targets(self.rels.cell_version, cell.0).len() as i64 + 1;
        let cv_class = self.class("CellVersion");
        let variant_class = self.class("Variant");
        let rels = self.rels;
        let (cv, variant) = self.db.transact(|db| {
            let cv = db.create(cv_class)?;
            db.set(cv, "number", Value::from(number))?;
            db.link(rels.cell_version, cell.0, cv)?;
            db.link(rels.cell_version_flow, cv, flow.0)?;
            db.link(rels.cell_version_team, cv, team.0)?;
            if let Some(prev) = previous {
                db.link(rels.cell_version_precedes, prev, cv)?;
            }
            let variant = db.create(variant_class)?;
            db.set(variant, "name", Value::from("base"))?;
            db.link(rels.cell_version_variant, cv, variant)?;
            Ok((cv, variant))
        })?;
        Ok((CellVersionId(cv), VariantId(variant)))
    }

    /// The cells of a project, in creation order.
    pub fn cells_of(&self, project: ProjectId) -> Vec<CellId> {
        self.db
            .targets(self.rels.project_cell, project.0)
            .into_iter()
            .map(CellId)
            .collect()
    }

    /// The versions of a cell, in creation (and numbering) order.
    pub fn versions_of(&self, cell: CellId) -> Vec<CellVersionId> {
        self.db
            .targets(self.rels.cell_version, cell.0)
            .into_iter()
            .map(CellVersionId)
            .collect()
    }

    /// The variants of a cell version, in creation order.
    pub fn variants_of(&self, cv: CellVersionId) -> Vec<VariantId> {
        self.db
            .targets(self.rels.cell_version_variant, cv.0)
            .into_iter()
            .map(VariantId)
            .collect()
    }

    /// The flow attached to a cell version.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] if the link is missing (corrupt
    /// installation).
    pub fn flow_of(&self, cv: CellVersionId) -> JcfResult<FlowId> {
        self.db
            .targets(self.rels.cell_version_flow, cv.0)
            .first()
            .map(|&id| FlowId(id))
            .ok_or_else(|| JcfError::NotFound(format!("flow of {cv}")))
    }

    /// The team attached to a cell version.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] if the link is missing.
    pub fn team_of(&self, cv: CellVersionId) -> JcfResult<TeamId> {
        self.db
            .targets(self.rels.cell_version_team, cv.0)
            .first()
            .map(|&id| TeamId(id))
            .ok_or_else(|| JcfError::NotFound(format!("team of {cv}")))
    }

    /// The project that owns a cell.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] if the cell is orphaned.
    pub fn project_of(&self, cell: CellId) -> JcfResult<ProjectId> {
        self.db
            .sources(self.rels.project_cell, cell.0)
            .first()
            .map(|&id| ProjectId(id))
            .ok_or_else(|| JcfError::NotFound(format!("project of cell {cell}")))
    }

    /// The cell a version belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] if the version is orphaned.
    pub fn cell_of(&self, cv: CellVersionId) -> JcfResult<CellId> {
        self.db
            .sources(self.rels.cell_version, cv.0)
            .first()
            .map(|&id| CellId(id))
            .ok_or_else(|| JcfError::NotFound(format!("cell of {cv}")))
    }

    /// The cell version that owns a variant.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] if the variant is orphaned.
    pub fn cell_version_of(&self, variant: VariantId) -> JcfResult<CellVersionId> {
        self.db
            .sources(self.rels.cell_version_variant, variant.0)
            .first()
            .map(|&id| CellVersionId(id))
            .ok_or_else(|| JcfError::NotFound(format!("cell version of {variant}")))
    }

    /// Derives a new variant inside the same cell version, optionally
    /// recording which variant it was derived from. The caller must
    /// hold the workspace reservation.
    ///
    /// # Errors
    ///
    /// Returns reservation errors, or [`JcfError::NameTaken`] for a
    /// duplicate variant name within the cell version.
    pub fn derive_variant(
        &mut self,
        actor: UserId,
        cv: CellVersionId,
        name: &str,
        from: Option<VariantId>,
    ) -> JcfResult<VariantId> {
        self.bump();
        self.require_reservation(actor, cv)?;
        for v in self.variants_of(cv) {
            if self.name_of(v.0) == name {
                return Err(JcfError::NameTaken(format!("variant {name}")));
            }
        }
        let class = self.class("Variant");
        let rels = self.rels;
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            db.link(rels.cell_version_variant, cv.0, id)?;
            if let Some(parent) = from {
                db.link(rels.variant_derived, parent.0, id)?;
            }
            Ok(id)
        })?;
        Ok(VariantId(id))
    }

    /// Renders the desktop's project browser: the tree of cells, cell
    /// versions (with reservation state), variants and design objects.
    pub fn project_tree(&self, project: ProjectId) -> String {
        let mut out = format!("project {}\n", self.name_of(project.0));
        for cell in self.cells_of(project) {
            out.push_str(&format!("└─ cell {}\n", self.name_of(cell.0)));
            for cv in self.versions_of(cell) {
                let number = self
                    .db
                    .get(cv.0, "number")
                    .ok()
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                let holder = match self.reserver(cv) {
                    Some(user) => format!(" [reserved by {}]", self.name_of(user.0)),
                    None => String::new(),
                };
                out.push_str(&format!("   └─ version {number}{holder}\n"));
                for variant in self.variants_of(cv) {
                    out.push_str(&format!("      └─ variant {}\n", self.name_of(variant.0)));
                    for design_object in self.design_objects_of(variant) {
                        let versions = self.versions_of_design_object(design_object).len();
                        out.push_str(&format!(
                            "         └─ {} ({versions} version(s))\n",
                            self.name_of(design_object.0)
                        ));
                    }
                }
            }
        }
        out
    }

    // --- hierarchy metadata (CompOf) --------------------------------------

    /// Declares that `parent_version` is (in part) composed of
    /// `child` — the manual hierarchy submission the paper describes:
    /// *"all hierarchical manipulations must be done manually via the
    /// JCF desktop before the design is started"* (§3.3).
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::CrossProjectAccess`] if the child cell lives
    /// in a different project (data sharing between projects is not
    /// possible, §3.1) **unless** the child was marked shared via the
    /// future-work [`Jcf::set_cell_shared`], and reservation errors.
    pub fn declare_comp_of(
        &mut self,
        actor: UserId,
        parent_version: CellVersionId,
        child: CellId,
    ) -> JcfResult<()> {
        self.bump();
        self.require_reservation(actor, parent_version)?;
        let parent_cell = self.cell_of(parent_version)?;
        let parent_project = self.project_of(parent_cell)?;
        let child_project = self.project_of(child)?;
        if parent_project != child_project && !self.is_cell_shared(child)? {
            return Err(JcfError::CrossProjectAccess {
                owner_project: self.name_of(child_project.0),
            });
        }
        self.db.link(self.rels.comp_of, parent_version.0, child.0)?;
        Ok(())
    }

    /// Marks a cell as shared across projects (manager-only) — the
    /// §3.1 future-work feature: *"It would be helpful to also provide
    /// access to cells of other projects."* JCF 3.0 itself did not have
    /// this; it is implemented here as the paper's proposed extension.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::PermissionDenied`] for non-managers.
    pub fn set_cell_shared(&mut self, actor: UserId, cell: CellId, shared: bool) -> JcfResult<()> {
        self.bump();
        self.require_manager_pub(actor, "share cells across projects")?;
        self.db.set(cell.0, "shared", Value::from(shared))?;
        Ok(())
    }

    /// Returns `true` if the cell is shared across projects.
    ///
    /// # Errors
    ///
    /// Returns database errors for dead ids.
    pub fn is_cell_shared(&self, cell: CellId) -> JcfResult<bool> {
        Ok(self.db.get(cell.0, "shared")?.as_bool().unwrap_or(false))
    }

    /// The declared children of a cell version (hierarchy metadata).
    pub fn comp_of(&self, cv: CellVersionId) -> Vec<CellId> {
        self.db
            .targets(self.rels.comp_of, cv.0)
            .into_iter()
            .map(CellId)
            .collect()
    }

    /// Returns `true` if `child` is a declared component of `cv`.
    pub fn is_declared_child(&self, cv: CellVersionId, child: CellId) -> bool {
        self.db.linked(self.rels.comp_of, cv.0, child.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn managed() -> (Jcf, UserId) {
        let mut jcf = Jcf::new();
        let admin = jcf.add_user("admin", true).unwrap();
        (jcf, admin)
    }

    #[test]
    fn duplicate_user_names_rejected() {
        let (mut jcf, _) = managed();
        assert!(matches!(
            jcf.add_user("admin", false),
            Err(JcfError::NameTaken(_))
        ));
    }

    #[test]
    fn only_managers_create_teams() {
        let (mut jcf, admin) = managed();
        let bob = jcf.add_user("bob", false).unwrap();
        assert!(matches!(
            jcf.add_team(bob, "t"),
            Err(JcfError::PermissionDenied { .. })
        ));
        let team = jcf.add_team(admin, "t").unwrap();
        assert!(matches!(
            jcf.add_team_member(bob, team, bob),
            Err(JcfError::PermissionDenied { .. })
        ));
        jcf.add_team_member(admin, team, bob).unwrap();
        assert!(jcf.is_team_member(team, bob));
    }

    #[test]
    fn cell_versions_number_and_precede() {
        let (mut jcf, admin) = managed();
        let team = jcf.add_team(admin, "t").unwrap();
        let flow = jcf.define_flow(admin, "f").unwrap();
        let project = jcf.create_project("p").unwrap();
        let cell = jcf.create_cell(project, "alu").unwrap();
        let (v1, _) = jcf.create_cell_version(cell, flow, team).unwrap();
        let (v2, _) = jcf.create_cell_version(cell, flow, team).unwrap();
        assert_eq!(jcf.versions_of(cell), vec![v1, v2]);
        assert_eq!(
            jcf.database().get(v2.0, "number").unwrap().as_int(),
            Some(2)
        );
        assert!(jcf
            .database()
            .linked(jcf.rels.cell_version_precedes, v1.0, v2.0));
    }

    #[test]
    fn duplicate_cell_name_within_project_rejected() {
        let (mut jcf, _) = managed();
        let project = jcf.create_project("p").unwrap();
        jcf.create_cell(project, "alu").unwrap();
        assert!(matches!(
            jcf.create_cell(project, "alu"),
            Err(JcfError::NameTaken(_))
        ));
        let other = jcf.create_project("q").unwrap();
        jcf.create_cell(other, "alu").unwrap();
    }

    #[test]
    fn base_variant_created_with_version() {
        let (mut jcf, admin) = managed();
        let team = jcf.add_team(admin, "t").unwrap();
        let flow = jcf.define_flow(admin, "f").unwrap();
        let project = jcf.create_project("p").unwrap();
        let cell = jcf.create_cell(project, "alu").unwrap();
        let (cv, base) = jcf.create_cell_version(cell, flow, team).unwrap();
        assert_eq!(jcf.variants_of(cv), vec![base]);
        assert_eq!(jcf.name_of(base.0), "base");
        assert_eq!(jcf.flow_of(cv).unwrap(), flow);
        assert_eq!(jcf.team_of(cv).unwrap(), team);
        assert_eq!(jcf.cell_of(cv).unwrap(), cell);
        assert_eq!(jcf.cell_version_of(base).unwrap(), cv);
    }

    #[test]
    fn comp_of_rejects_cross_project_children() {
        let (mut jcf, admin) = managed();
        let team = jcf.add_team(admin, "t").unwrap();
        jcf.add_team_member(admin, team, admin).unwrap();
        let flow = jcf.define_flow(admin, "f").unwrap();
        let p1 = jcf.create_project("p1").unwrap();
        let p2 = jcf.create_project("p2").unwrap();
        let parent = jcf.create_cell(p1, "top").unwrap();
        let foreign = jcf.create_cell(p2, "ip").unwrap();
        let local = jcf.create_cell(p1, "sub").unwrap();
        let (cv, _) = jcf.create_cell_version(parent, flow, team).unwrap();
        jcf.reserve(admin, cv).unwrap();
        assert!(matches!(
            jcf.declare_comp_of(admin, cv, foreign),
            Err(JcfError::CrossProjectAccess { .. })
        ));
        jcf.declare_comp_of(admin, cv, local).unwrap();
        assert!(jcf.is_declared_child(cv, local));
        assert_eq!(jcf.comp_of(cv), vec![local]);
    }

    #[test]
    fn checkpoint_restore_round_trips_the_installation() {
        let (mut jcf, admin) = managed();
        let alice = jcf.add_user("alice", false).unwrap();
        let team = jcf.add_team(admin, "t").unwrap();
        jcf.add_team_member(admin, team, alice).unwrap();
        let flow = jcf.define_flow(admin, "f").unwrap();
        let project = jcf.create_project("p").unwrap();
        let cell = jcf.create_cell(project, "alu").unwrap();
        let (cv, variant) = jcf.create_cell_version(cell, flow, team).unwrap();
        jcf.reserve(alice, cv).unwrap();
        let vt = jcf.add_viewtype("schematic").unwrap();
        let d = jcf.create_design_object(alice, variant, "sch", vt).unwrap();
        let dov = jcf
            .add_design_object_version(alice, d, b"data".to_vec())
            .unwrap();

        let mut fs = cad_vfs::Vfs::new();
        let path = cad_vfs::VfsPath::parse("/backup/jcf.db").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        jcf.checkpoint(&mut fs, &path).unwrap();

        let mut restored = Jcf::restore(&mut fs, &path).unwrap();
        // Structure, reservation and data all survive by id.
        assert_eq!(restored.cells_of(project), vec![cell]);
        assert_eq!(restored.reserver(cv), Some(alice));
        assert_eq!(restored.read_design_data(alice, dov).unwrap(), b"data");
        // And work continues: a new version stamps after the old one.
        let dov2 = restored
            .add_design_object_version(alice, d, b"v2".to_vec())
            .unwrap();
        let t1 = restored
            .database()
            .get(dov.object_id(), "created_at")
            .unwrap()
            .as_int()
            .unwrap();
        let t2 = restored
            .database()
            .get(dov2.object_id(), "created_at")
            .unwrap()
            .as_int()
            .unwrap();
        assert!(t2 > t1, "clock resumes past restored timestamps");
    }

    #[test]
    fn restore_rejects_corrupt_checkpoints() {
        let mut fs = cad_vfs::Vfs::new();
        let path = cad_vfs::VfsPath::parse("/bad.db").unwrap();
        fs.write(&path, b"nonsense".to_vec()).unwrap();
        assert!(Jcf::restore(&mut fs, &path).is_err());
    }

    #[test]
    fn shared_cells_cross_project_boundaries() {
        let (mut jcf, admin) = managed();
        let alice = jcf.add_user("alice", false).unwrap();
        let team = jcf.add_team(admin, "t").unwrap();
        jcf.add_team_member(admin, team, admin).unwrap();
        let flow = jcf.define_flow(admin, "f").unwrap();
        let p1 = jcf.create_project("p1").unwrap();
        let p2 = jcf.create_project("p2").unwrap();
        let parent = jcf.create_cell(p1, "top").unwrap();
        let ip = jcf.create_cell(p2, "ip").unwrap();
        let (cv, _) = jcf.create_cell_version(parent, flow, team).unwrap();
        jcf.reserve(admin, cv).unwrap();
        // Unshared: blocked; only managers may share; shared: allowed.
        assert!(matches!(
            jcf.declare_comp_of(admin, cv, ip),
            Err(JcfError::CrossProjectAccess { .. })
        ));
        assert!(matches!(
            jcf.set_cell_shared(alice, ip, true),
            Err(JcfError::PermissionDenied { .. })
        ));
        jcf.set_cell_shared(admin, ip, true).unwrap();
        assert!(jcf.is_cell_shared(ip).unwrap());
        jcf.declare_comp_of(admin, cv, ip).unwrap();
        // And unsharing closes the door again for new declarations.
        jcf.set_cell_shared(admin, ip, false).unwrap();
        assert!(!jcf.is_cell_shared(ip).unwrap());
    }

    #[test]
    fn desktop_ops_counter_increments() {
        let (mut jcf, _) = managed();
        let before = jcf.desktop_ops();
        jcf.create_project("p").unwrap();
        let _ = jcf.add_user("dup-check", false);
        assert_eq!(jcf.desktop_ops(), before + 2);
    }
}
