//! # jcf — the JESSI-COMMON-Framework 3.0 model
//!
//! A from-scratch executable model of JCF 3.0 as described in §2.1 and
//! Figure 1 of the paper: the *master* framework of the hybrid
//! JCF–FMCAD coupling.
//!
//! The crate reproduces JCF's defining properties:
//!
//! * **Resources vs project data.** Users, teams, tools, viewtypes and
//!   flows are administrator-controlled metadata; projects, cells,
//!   versions, variants and design objects are project data. Both live
//!   in the [`oms`] object-oriented database whose schema
//!   ([`schema::jcf_schema`]) transcribes Figure 1.
//! * **Two-level versioning.** Cells version into cell versions
//!   (each with its own attached flow and team); inside a cell version,
//!   variants branch (§3.2).
//! * **The workspace concept.** A cell version must be reserved into a
//!   user's private workspace for writing; others read only published
//!   data. This is *"the kernel of the JCF multi-user capabilities"*.
//! * **Fixed flows.** Flows are frozen resources; the flow engine
//!   enforces activity order and input availability, with the
//!   override-and-record escape hatch the paper's wrappers added.
//! * **Derivation tracking.** Every activity execution records which
//!   design object versions it read and created, giving the
//!   what-belongs-to-what report FMCAD cannot produce (§3.5).
//! * **Hierarchy as metadata.** Composition (`CompOf`) is declared
//!   manually via the desktop, separate from design files (§3.3).
//!
//! # Examples
//!
//! ```
//! use jcf::Jcf;
//!
//! # fn main() -> Result<(), jcf::JcfError> {
//! let mut jcf = Jcf::new();
//! let admin = jcf.add_user("admin", true)?;
//! let alice = jcf.add_user("alice", false)?;
//! let team = jcf.add_team(admin, "asic")?;
//! jcf.add_team_member(admin, team, alice)?;
//!
//! let schematic = jcf.add_viewtype("schematic")?;
//! let tool = jcf.add_tool("schematic-entry")?;
//! let flow = jcf.define_flow(admin, "entry")?;
//! let enter = jcf.add_activity(admin, flow, "enter", tool, &[], &[schematic], &[])?;
//! jcf.freeze_flow(admin, flow)?;
//!
//! let project = jcf.create_project("alu16")?;
//! let cell = jcf.create_cell(project, "adder")?;
//! let (cv, variant) = jcf.create_cell_version(cell, flow, team)?;
//! jcf.reserve(alice, cv)?;
//! let exec = jcf.start_activity(alice, variant, enter, false)?;
//! jcf.finish_activity(alice, exec, &[(schematic, "sch", b"netlist adder".to_vec().into())])?;
//! jcf.publish(alice, cv)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod flow;
mod framework;
pub mod schema;
mod workspace;

pub use error::{JcfError, JcfResult};
pub use flow::{ActivityState, ProvenanceEntry};
pub use framework::{
    ActivityId, CellId, CellVersionId, ConfigId, ConfigVersionId, DesignObjectId, DovId,
    ExecutionId, FlowId, Jcf, ProjectId, TeamId, ToolId, UserId, VariantId, ViewTypeId,
};
