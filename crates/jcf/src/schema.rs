//! The JCF 3.0 information architecture as an OMS schema.
//!
//! This module transcribes Figure 1 of the paper into classes and
//! relationships of the OMS database. Experiment E2 introspects the
//! result and checks it against the figure's entity/relation inventory.

use oms::{AttrType, Cardinality, Schema, SchemaBuilder};

/// Class names of the JCF schema, in Figure 1 vocabulary.
pub const CLASSES: &[&str] = &[
    "User",
    "Team",
    "Tool",
    "ViewType",
    "Flow",
    "Activity",
    "Project",
    "Cell",
    "CellVersion",
    "Variant",
    "DesignObject",
    "DesignObjectVersion",
    "ActivityExecution",
    "Configuration",
    "ConfigurationVersion",
];

/// Relationship names of the JCF schema (Figure 1 edges).
pub const RELATIONSHIPS: &[&str] = &[
    "team_member",            // Team -> User (team structure)
    "flow_activity",          // Flow -> Activity (flows own activities)
    "activity_tool",          // Activity -> Tool (the tool an activity runs)
    "activity_needs",         // Activity -> ViewType ("Needs of Version")
    "activity_creates",       // Activity -> ViewType ("Creates")
    "activity_precedes",      // Activity -> Activity ("precedes")
    "project_cell",           // Project -> Cell ("Project has entry")
    "cell_version",           // Cell -> CellVersion (version mechanism)
    "cell_version_precedes",  // CellVersion -> CellVersion
    "cell_version_flow",      // CellVersion -> Flow (attached flow)
    "cell_version_team",      // CellVersion -> Team (attached team)
    "comp_of",                // CellVersion -> Cell (CompOf hierarchy)
    "cell_version_variant",   // CellVersion -> Variant
    "variant_derived",        // Variant -> Variant (derived)
    "variant_design_object",  // Variant -> DesignObject (design data)
    "design_object_viewtype", // DesignObject -> ViewType
    "design_object_version",  // DesignObject -> DesignObjectVersion
    "dov_derived",            // DesignObjectVersion -> DesignObjectVersion
    "dov_equivalent",         // DesignObjectVersion -> DesignObjectVersion
    "execution_activity",     // ActivityExecution -> Activity (Activity Proxy)
    "execution_variant",      // ActivityExecution -> Variant
    "execution_reads",        // ActivityExecution -> DOV ("Needs of Version")
    "execution_creates",      // ActivityExecution -> DOV ("Creates")
    "cell_version_config",    // CellVersion -> Configuration
    "config_version",         // Configuration -> ConfigurationVersion
    "config_precedes",        // ConfigurationVersion -> ConfigurationVersion
    "config_contains",        // ConfigurationVersion -> DOV ("CVV in Config")
    "reserved_by",            // CellVersion -> User (workspace reservation)
];

/// Builds the JCF 3.0 schema.
///
/// # Panics
///
/// Never panics for the fixed declarations below; the `expect`s guard
/// against editing mistakes when the schema is extended.
pub fn jcf_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let user = b
        .class(
            "User",
            &[("name", AttrType::Text), ("is_manager", AttrType::Bool)],
        )
        .expect("fresh schema");
    let team = b
        .class("Team", &[("name", AttrType::Text)])
        .expect("fresh schema");
    let tool = b
        .class("Tool", &[("name", AttrType::Text)])
        .expect("fresh schema");
    let viewtype = b
        .class("ViewType", &[("name", AttrType::Text)])
        .expect("fresh schema");
    let flow = b
        .class(
            "Flow",
            &[("name", AttrType::Text), ("frozen", AttrType::Bool)],
        )
        .expect("fresh schema");
    let activity = b
        .class("Activity", &[("name", AttrType::Text)])
        .expect("fresh schema");
    let project = b
        .class("Project", &[("name", AttrType::Text)])
        .expect("fresh schema");
    // `shared` is the §3.1 future-work flag: a shared cell may be used
    // as a hierarchy child from other projects once the feature is on.
    let cell = b
        .class(
            "Cell",
            &[("name", AttrType::Text), ("shared", AttrType::Bool)],
        )
        .expect("fresh schema");
    let cell_version = b
        .class("CellVersion", &[("number", AttrType::Int)])
        .expect("fresh schema");
    let variant = b
        .class("Variant", &[("name", AttrType::Text)])
        .expect("fresh schema");
    let design_object = b
        .class("DesignObject", &[("name", AttrType::Text)])
        .expect("fresh schema");
    let dov = b
        .class(
            "DesignObjectVersion",
            &[
                ("number", AttrType::Int),
                ("data", AttrType::Bytes),
                ("published", AttrType::Bool),
                ("created_at", AttrType::Int),
            ],
        )
        .expect("fresh schema");
    let execution = b
        .class(
            "ActivityExecution",
            &[
                ("finished", AttrType::Bool),
                ("overridden", AttrType::Bool),
                ("started_at", AttrType::Int),
            ],
        )
        .expect("fresh schema");
    let config = b
        .class("Configuration", &[("name", AttrType::Text)])
        .expect("fresh schema");
    let config_version = b
        .class("ConfigurationVersion", &[("number", AttrType::Int)])
        .expect("fresh schema");

    use Cardinality::{ManyToMany, ManyToOne, OneToMany};
    b.relationship("team_member", team, user, ManyToMany)
        .expect("fresh schema");
    b.relationship("flow_activity", flow, activity, OneToMany)
        .expect("fresh schema");
    b.relationship("activity_tool", activity, tool, ManyToOne)
        .expect("fresh schema");
    b.relationship("activity_needs", activity, viewtype, ManyToMany)
        .expect("fresh schema");
    b.relationship("activity_creates", activity, viewtype, ManyToMany)
        .expect("fresh schema");
    b.relationship("activity_precedes", activity, activity, ManyToMany)
        .expect("fresh schema");
    b.relationship("project_cell", project, cell, OneToMany)
        .expect("fresh schema");
    b.relationship("cell_version", cell, cell_version, OneToMany)
        .expect("fresh schema");
    b.relationship(
        "cell_version_precedes",
        cell_version,
        cell_version,
        ManyToMany,
    )
    .expect("fresh schema");
    b.relationship("cell_version_flow", cell_version, flow, ManyToOne)
        .expect("fresh schema");
    b.relationship("cell_version_team", cell_version, team, ManyToOne)
        .expect("fresh schema");
    b.relationship("comp_of", cell_version, cell, ManyToMany)
        .expect("fresh schema");
    b.relationship("cell_version_variant", cell_version, variant, OneToMany)
        .expect("fresh schema");
    b.relationship("variant_derived", variant, variant, ManyToMany)
        .expect("fresh schema");
    b.relationship("variant_design_object", variant, design_object, OneToMany)
        .expect("fresh schema");
    b.relationship("design_object_viewtype", design_object, viewtype, ManyToOne)
        .expect("fresh schema");
    b.relationship("design_object_version", design_object, dov, OneToMany)
        .expect("fresh schema");
    b.relationship("dov_derived", dov, dov, ManyToMany)
        .expect("fresh schema");
    b.relationship("dov_equivalent", dov, dov, ManyToMany)
        .expect("fresh schema");
    b.relationship("execution_activity", execution, activity, ManyToOne)
        .expect("fresh schema");
    b.relationship("execution_variant", execution, variant, ManyToOne)
        .expect("fresh schema");
    b.relationship("execution_reads", execution, dov, ManyToMany)
        .expect("fresh schema");
    b.relationship("execution_creates", execution, dov, ManyToMany)
        .expect("fresh schema");
    b.relationship("cell_version_config", cell_version, config, OneToMany)
        .expect("fresh schema");
    b.relationship("config_version", config, config_version, OneToMany)
        .expect("fresh schema");
    b.relationship(
        "config_precedes",
        config_version,
        config_version,
        ManyToMany,
    )
    .expect("fresh schema");
    b.relationship("config_contains", config_version, dov, ManyToMany)
        .expect("fresh schema");
    b.relationship("reserved_by", cell_version, user, ManyToOne)
        .expect("fresh schema");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_declares_all_figure1_classes() {
        let s = jcf_schema();
        for class in CLASSES {
            assert!(s.class_by_name(class).is_some(), "missing class {class}");
        }
        assert_eq!(s.classes().count(), CLASSES.len());
    }

    #[test]
    fn schema_declares_all_figure1_relationships() {
        let s = jcf_schema();
        for rel in RELATIONSHIPS {
            assert!(
                s.relationship_by_name(rel).is_some(),
                "missing relationship {rel}"
            );
        }
        assert_eq!(s.relationships().count(), RELATIONSHIPS.len());
    }

    #[test]
    fn metadata_and_design_data_are_distinguished() {
        // Resources (Figure 1 left column) vs project data: both exist.
        let s = jcf_schema();
        let dov = s.class_by_name("DesignObjectVersion").unwrap();
        assert!(
            s.class(dov).attribute("data").is_some(),
            "design data lives in DOVs"
        );
        let flow = s.class_by_name("Flow").unwrap();
        assert!(
            s.class(flow).attribute("frozen").is_some(),
            "flows are fixed resources"
        );
    }

    #[test]
    fn hierarchy_is_separate_metadata() {
        // CompOf is a relationship on metadata, not inside design files
        // (the decisive difference from FMCAD, §2.2/§3.2).
        let s = jcf_schema();
        let comp_of = s.relationship_by_name("comp_of").unwrap();
        let def = s.relationship(comp_of);
        assert_eq!(s.class(def.source).name, "CellVersion");
        assert_eq!(s.class(def.target).name, "Cell");
    }
}
