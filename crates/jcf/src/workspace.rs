//! The JCF workspace concept: reserve / publish and data access.
//!
//! *"The workspace concept of JCF allows only one user to work on a
//! particular cell version if this cell version is reserved in his
//! private workspace. Other users are only allowed to read the
//! published parts of the design data. When the work is finished, the
//! cell can be published and then be modified by other users. This
//! workspace concept is the kernel of the JCF multi-user
//! capabilities."* (§2.1)

use cad_vfs::Blob;
use oms::Value;

use crate::error::{JcfError, JcfResult};
use crate::framework::{CellVersionId, DesignObjectId, DovId, Jcf, UserId, VariantId, ViewTypeId};

impl Jcf {
    /// Reserves a cell version into the user's private workspace.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotTeamMember`] if the user is not in the
    /// cell version's team and [`JcfError::AlreadyReserved`] if another
    /// user holds it. Re-reserving one's own reservation is a no-op.
    pub fn reserve(&mut self, user: UserId, cv: CellVersionId) -> JcfResult<()> {
        self.bump();
        let team = self.team_of(cv)?;
        if !self.is_team_member(team, user) {
            return Err(JcfError::NotTeamMember {
                user: self.name_of(user.0),
                team: self.name_of(team.0),
            });
        }
        match self.reserver(cv) {
            Some(holder) if holder == user => Ok(()),
            Some(holder) => Err(JcfError::AlreadyReserved {
                holder: self.name_of(holder.0),
            }),
            None => {
                self.db.link(self.rels.reserved_by, cv.0, user.0)?;
                Ok(())
            }
        }
    }

    /// Publishes the user's work on a cell version: all design object
    /// versions below it become readable by others and the reservation
    /// is released.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotReserved`] if the user does not hold the
    /// reservation.
    pub fn publish(&mut self, user: UserId, cv: CellVersionId) -> JcfResult<()> {
        self.bump();
        self.require_reservation(user, cv)?;
        let dovs: Vec<DovId> = self
            .variants_of(cv)
            .into_iter()
            .flat_map(|v| self.design_objects_of(v))
            .flat_map(|d| self.versions_of_design_object(d))
            .collect();
        for dov in dovs {
            self.db.set(dov.0, "published", Value::from(true))?;
        }
        self.db.unlink(self.rels.reserved_by, cv.0, user.0)?;
        Ok(())
    }

    /// The user currently holding the reservation, if any.
    pub fn reserver(&self, cv: CellVersionId) -> Option<UserId> {
        self.db
            .targets(self.rels.reserved_by, cv.0)
            .first()
            .copied()
            .map(UserId)
    }

    /// All cell versions currently reserved in `user`'s private
    /// workspace, sorted — the desktop's workspace browser view.
    pub fn reservations_of(&self, user: UserId) -> Vec<CellVersionId> {
        self.db
            .sources(self.rels.reserved_by, user.0)
            .into_iter()
            .map(CellVersionId)
            .collect()
    }

    /// Checks that `user` holds the reservation on `cv`.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotReserved`] otherwise.
    pub fn require_reservation(&self, user: UserId, cv: CellVersionId) -> JcfResult<()> {
        match self.reserver(cv) {
            Some(holder) if holder == user => Ok(()),
            _ => Err(JcfError::NotReserved {
                user: self.name_of(user.0),
            }),
        }
    }

    /// Promotes a variant: creates a new cell version (same flow and
    /// team) whose base variant carries a copy of the latest version of
    /// each design object — the desktop operation behind *"select the
    /// optimal design solution"* (§2.1) after exploring variants.
    ///
    /// The caller must hold the reservation on the source cell version
    /// and receives the reservation on the new one.
    ///
    /// # Errors
    ///
    /// Returns reservation errors.
    pub fn promote_variant(
        &mut self,
        user: UserId,
        winner: VariantId,
    ) -> JcfResult<(CellVersionId, VariantId)> {
        self.bump();
        let old_cv = self.cell_version_of(winner)?;
        self.require_reservation(user, old_cv)?;
        let cell = self.cell_of(old_cv)?;
        let flow = self.flow_of(old_cv)?;
        let team = self.team_of(old_cv)?;
        let (new_cv, new_variant) = self.create_cell_version(cell, flow, team)?;
        self.reserve(user, new_cv)?;
        for design_object in self.design_objects_of(winner) {
            let viewtype = self.viewtype_of(design_object)?;
            let name = self.name_of(design_object.0);
            if let Some(latest) = self.latest_version(design_object) {
                let data = self.read_design_data(user, latest)?;
                let new_do = self.create_design_object(user, new_variant, &name, viewtype)?;
                let new_dov = self.add_design_object_version(user, new_do, data)?;
                // Provenance: the promoted copy derives from the winner.
                self.db.link(self.rels.dov_derived, latest.0, new_dov.0)?;
            }
        }
        Ok((new_cv, new_variant))
    }

    // --- design objects and their versions ------------------------------

    /// Creates a design object of `viewtype` in a variant. Requires the
    /// reservation on the owning cell version.
    ///
    /// # Errors
    ///
    /// Returns reservation errors or [`JcfError::NameTaken`] within the
    /// variant.
    pub fn create_design_object(
        &mut self,
        user: UserId,
        variant: VariantId,
        name: &str,
        viewtype: ViewTypeId,
    ) -> JcfResult<DesignObjectId> {
        self.bump();
        let cv = self.cell_version_of(variant)?;
        self.require_reservation(user, cv)?;
        for existing in self.design_objects_of(variant) {
            if self.name_of(existing.0) == name {
                return Err(JcfError::NameTaken(format!("design object {name}")));
            }
        }
        let class = self.class("DesignObject");
        let rels = self.rels;
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "name", Value::from(name))?;
            db.link(rels.variant_design_object, variant.0, id)?;
            db.link(rels.design_object_viewtype, id, viewtype.0)?;
            Ok(id)
        })?;
        Ok(DesignObjectId(id))
    }

    /// Stores a new design object version holding `data`. Requires the
    /// reservation. The new version is unpublished until
    /// [`Jcf::publish`].
    ///
    /// # Errors
    ///
    /// Returns reservation errors.
    pub fn add_design_object_version(
        &mut self,
        user: UserId,
        design_object: DesignObjectId,
        data: impl Into<Blob>,
    ) -> JcfResult<DovId> {
        let data = data.into();
        let now = self.bump();
        let variant = self.variant_of_design_object(design_object)?;
        let cv = self.cell_version_of(variant)?;
        self.require_reservation(user, cv)?;
        let number = self.versions_of_design_object(design_object).len() as i64 + 1;
        let class = self.class("DesignObjectVersion");
        let rels = self.rels;
        let previous = self
            .versions_of_design_object(design_object)
            .last()
            .copied();
        let id = self.db.transact(|db| {
            let id = db.create(class)?;
            db.set(id, "number", Value::from(number))?;
            db.set(id, "data", Value::from(data))?;
            db.set(id, "published", Value::from(false))?;
            db.set(id, "created_at", Value::from(now))?;
            db.link(rels.design_object_version, design_object.0, id)?;
            if let Some(prev) = previous {
                db.link(rels.dov_derived, prev.0, id)?;
            }
            Ok(id)
        })?;
        Ok(DovId(id))
    }

    /// Reads a design object version's data, enforcing the workspace
    /// visibility rule: the reserver sees everything, everyone else
    /// only published versions.
    ///
    /// Returns a [`Blob`] sharing the stored payload — crossing the
    /// database boundary no longer duplicates the design data.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotReserved`] (as a stand-in for "not
    /// visible") when an unpublished version is read by a non-holder.
    pub fn read_design_data(&mut self, user: UserId, dov: DovId) -> JcfResult<Blob> {
        self.bump();
        self.peek_design_data(user, dov)
    }

    /// Reads a design object version's data without charging a desktop
    /// operation: the same §2.1 visibility rule as
    /// [`Jcf::read_design_data`], but through `&self` so concurrent
    /// readers over a [`Jcf::snapshot`](crate::Jcf::snapshot) need no
    /// write access. The returned [`Blob`] shares the stored payload.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotReserved`] (as a stand-in for "not
    /// visible") when an unpublished version is read by a non-holder.
    pub fn peek_design_data(&self, user: UserId, dov: DovId) -> JcfResult<Blob> {
        let published = self.db.get(dov.0, "published")?.as_bool().unwrap_or(false);
        if !published {
            let design_object = self.design_object_of(dov)?;
            let variant = self.variant_of_design_object(design_object)?;
            let cv = self.cell_version_of(variant)?;
            self.require_reservation(user, cv)?;
        }
        Ok(self
            .db
            .get(dov.0, "data")?
            .as_blob()
            .cloned()
            .unwrap_or_default())
    }

    /// Returns `true` if the design object version is published.
    ///
    /// # Errors
    ///
    /// Returns database errors for dead ids.
    pub fn is_published(&self, dov: DovId) -> JcfResult<bool> {
        Ok(self.db.get(dov.0, "published")?.as_bool().unwrap_or(false))
    }

    /// The design objects of a variant, in creation order.
    pub fn design_objects_of(&self, variant: VariantId) -> Vec<DesignObjectId> {
        self.db
            .targets(self.rels.variant_design_object, variant.0)
            .into_iter()
            .map(DesignObjectId)
            .collect()
    }

    /// The versions of a design object, oldest first.
    pub fn versions_of_design_object(&self, design_object: DesignObjectId) -> Vec<DovId> {
        self.db
            .targets(self.rels.design_object_version, design_object.0)
            .into_iter()
            .map(DovId)
            .collect()
    }

    /// The design object owning a version.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] for orphaned versions.
    pub fn design_object_of(&self, dov: DovId) -> JcfResult<DesignObjectId> {
        self.db
            .sources(self.rels.design_object_version, dov.0)
            .first()
            .map(|&id| DesignObjectId(id))
            .ok_or_else(|| JcfError::NotFound(format!("design object of {dov}")))
    }

    /// The variant owning a design object.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] for orphaned design objects.
    pub fn variant_of_design_object(&self, design_object: DesignObjectId) -> JcfResult<VariantId> {
        self.db
            .sources(self.rels.variant_design_object, design_object.0)
            .first()
            .map(|&id| VariantId(id))
            .ok_or_else(|| JcfError::NotFound(format!("variant of {design_object}")))
    }

    /// The viewtype of a design object.
    ///
    /// # Errors
    ///
    /// Returns [`JcfError::NotFound`] for orphaned design objects.
    pub fn viewtype_of(&self, design_object: DesignObjectId) -> JcfResult<ViewTypeId> {
        self.db
            .targets(self.rels.design_object_viewtype, design_object.0)
            .first()
            .map(|&id| ViewTypeId(id))
            .ok_or_else(|| JcfError::NotFound(format!("viewtype of {design_object}")))
    }

    /// Finds a design object of the given viewtype in a variant, if one
    /// exists (the flow engine uses this to locate activity inputs).
    pub fn design_object_by_viewtype(
        &self,
        variant: VariantId,
        viewtype: ViewTypeId,
    ) -> Option<DesignObjectId> {
        self.design_objects_of(variant)
            .into_iter()
            .find(|d| self.viewtype_of(*d).ok() == Some(viewtype))
    }

    /// The newest version of a design object, if any.
    pub fn latest_version(&self, design_object: DesignObjectId) -> Option<DovId> {
        self.versions_of_design_object(design_object)
            .last()
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{FlowId, TeamId};

    struct Fixture {
        jcf: Jcf,
        admin: UserId,
        alice: UserId,
        bob: UserId,
        team: TeamId,
        flow: FlowId,
        cv: CellVersionId,
        variant: VariantId,
        schematic: ViewTypeId,
    }

    fn fixture() -> Fixture {
        let mut jcf = Jcf::new();
        let admin = jcf.add_user("admin", true).unwrap();
        let alice = jcf.add_user("alice", false).unwrap();
        let bob = jcf.add_user("bob", false).unwrap();
        let team = jcf.add_team(admin, "asic").unwrap();
        jcf.add_team_member(admin, team, alice).unwrap();
        jcf.add_team_member(admin, team, bob).unwrap();
        let flow = jcf.define_flow(admin, "basic").unwrap();
        let schematic = jcf.add_viewtype("schematic").unwrap();
        let project = jcf.create_project("p").unwrap();
        let cell = jcf.create_cell(project, "alu").unwrap();
        let (cv, variant) = jcf.create_cell_version(cell, flow, team).unwrap();
        Fixture {
            jcf,
            admin,
            alice,
            bob,
            team,
            flow,
            cv,
            variant,
            schematic,
        }
    }

    #[test]
    fn reservation_is_exclusive() {
        let mut f = fixture();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        assert_eq!(f.jcf.reserver(f.cv), Some(f.alice));
        assert!(matches!(
            f.jcf.reserve(f.bob, f.cv),
            Err(JcfError::AlreadyReserved { .. })
        ));
        // Re-reserving one's own is fine.
        f.jcf.reserve(f.alice, f.cv).unwrap();
    }

    #[test]
    fn non_team_members_cannot_reserve() {
        let mut f = fixture();
        let eve = f.jcf.add_user("eve", false).unwrap();
        assert!(matches!(
            f.jcf.reserve(eve, f.cv),
            Err(JcfError::NotTeamMember { .. })
        ));
        let _ = (f.admin, f.team, f.flow);
    }

    #[test]
    fn writes_require_reservation() {
        let mut f = fixture();
        assert!(matches!(
            f.jcf
                .create_design_object(f.alice, f.variant, "sch", f.schematic),
            Err(JcfError::NotReserved { .. })
        ));
        f.jcf.reserve(f.alice, f.cv).unwrap();
        let d = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        assert!(matches!(
            f.jcf.add_design_object_version(f.bob, d, vec![1]),
            Err(JcfError::NotReserved { .. })
        ));
        f.jcf
            .add_design_object_version(f.alice, d, vec![1])
            .unwrap();
    }

    #[test]
    fn unpublished_data_is_private_to_the_reserver() {
        let mut f = fixture();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        let d = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        let dov = f
            .jcf
            .add_design_object_version(f.alice, d, b"secret".to_vec())
            .unwrap();
        assert_eq!(f.jcf.read_design_data(f.alice, dov).unwrap(), b"secret");
        assert!(f.jcf.read_design_data(f.bob, dov).is_err());
        assert!(!f.jcf.is_published(dov).unwrap());
    }

    #[test]
    fn publish_releases_and_exposes() {
        let mut f = fixture();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        let d = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        let dov = f
            .jcf
            .add_design_object_version(f.alice, d, b"data".to_vec())
            .unwrap();
        f.jcf.publish(f.alice, f.cv).unwrap();
        assert_eq!(f.jcf.reserver(f.cv), None);
        assert!(f.jcf.is_published(dov).unwrap());
        assert_eq!(f.jcf.read_design_data(f.bob, dov).unwrap(), b"data");
        // Now bob can take over.
        f.jcf.reserve(f.bob, f.cv).unwrap();
    }

    #[test]
    fn publish_requires_holding_the_reservation() {
        let mut f = fixture();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        assert!(matches!(
            f.jcf.publish(f.bob, f.cv),
            Err(JcfError::NotReserved { .. })
        ));
    }

    #[test]
    fn dov_numbers_increment_and_chain() {
        let mut f = fixture();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        let d = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        let v1 = f
            .jcf
            .add_design_object_version(f.alice, d, vec![1])
            .unwrap();
        let v2 = f
            .jcf
            .add_design_object_version(f.alice, d, vec![2])
            .unwrap();
        assert_eq!(f.jcf.versions_of_design_object(d), vec![v1, v2]);
        assert_eq!(f.jcf.latest_version(d), Some(v2));
        assert_eq!(f.jcf.derived_from(v2), vec![v1]);
    }

    #[test]
    fn design_object_lookup_by_viewtype() {
        let mut f = fixture();
        let layout = f.jcf.add_viewtype("layout").unwrap();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        let d = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        assert_eq!(
            f.jcf.design_object_by_viewtype(f.variant, f.schematic),
            Some(d)
        );
        assert_eq!(f.jcf.design_object_by_viewtype(f.variant, layout), None);
    }

    #[test]
    fn promoting_a_variant_starts_the_next_cell_version() {
        let mut f = fixture();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        // Explore two variants; the experiment wins.
        let exp = f
            .jcf
            .derive_variant(f.alice, f.cv, "exp", Some(f.variant))
            .unwrap();
        let d = f
            .jcf
            .create_design_object(f.alice, exp, "sch", f.schematic)
            .unwrap();
        let winner_dov = f
            .jcf
            .add_design_object_version(f.alice, d, b"winning".to_vec())
            .unwrap();

        let (new_cv, new_variant) = f.jcf.promote_variant(f.alice, exp).unwrap();
        assert_ne!(new_cv, f.cv);
        assert_eq!(f.jcf.reserver(new_cv), Some(f.alice));
        // The data was carried over and its provenance recorded.
        let new_do = f.jcf.design_objects_of(new_variant)[0];
        let new_dov = f.jcf.latest_version(new_do).unwrap();
        assert_eq!(
            f.jcf.read_design_data(f.alice, new_dov).unwrap(),
            b"winning"
        );
        assert_eq!(f.jcf.derived_from(new_dov), vec![winner_dov]);
        // The cell now has two versions linked by precedes.
        let cell = f.jcf.cell_of(f.cv).unwrap();
        assert_eq!(f.jcf.versions_of(cell).len(), 2);
    }

    #[test]
    fn promotion_requires_the_reservation() {
        let mut f = fixture();
        assert!(matches!(
            f.jcf.promote_variant(f.alice, f.variant),
            Err(JcfError::NotReserved { .. })
        ));
    }

    #[test]
    fn workspace_browser_lists_reservations() {
        let mut f = fixture();
        assert!(f.jcf.reservations_of(f.alice).is_empty());
        f.jcf.reserve(f.alice, f.cv).unwrap();
        assert_eq!(f.jcf.reservations_of(f.alice), vec![f.cv]);
        f.jcf.publish(f.alice, f.cv).unwrap();
        assert!(f.jcf.reservations_of(f.alice).is_empty());
    }

    #[test]
    fn two_variants_can_hold_parallel_work() {
        // The key §3.1 capability: parallel work on different versions
        // of the same design object via variants.
        let mut f = fixture();
        f.jcf.reserve(f.alice, f.cv).unwrap();
        let v2 = f
            .jcf
            .derive_variant(f.alice, f.cv, "experiment", Some(f.variant))
            .unwrap();
        let d1 = f
            .jcf
            .create_design_object(f.alice, f.variant, "sch", f.schematic)
            .unwrap();
        let d2 = f
            .jcf
            .create_design_object(f.alice, v2, "sch", f.schematic)
            .unwrap();
        f.jcf
            .add_design_object_version(f.alice, d1, b"main".to_vec())
            .unwrap();
        f.jcf
            .add_design_object_version(f.alice, d2, b"exp".to_vec())
            .unwrap();
        assert_ne!(d1, d2);
        assert_eq!(f.jcf.variants_of(f.cv).len(), 2);
    }
}
