//! Error type for the OMS database kernel.

use std::error::Error;
use std::fmt;

use crate::schema::{ClassId, RelId};
use crate::store::ObjectId;

/// Error returned by fallible OMS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmsError {
    /// No class with this name is defined in the schema.
    UnknownClass(String),
    /// No relationship with this name is defined in the schema.
    UnknownRelationship(String),
    /// The object id does not (or no longer) denote a live object.
    NoSuchObject(ObjectId),
    /// The attribute is not declared on the object's class.
    UnknownAttribute {
        /// The class lacking the attribute.
        class: ClassId,
        /// The undeclared attribute name.
        attribute: String,
    },
    /// The value's type does not match the attribute declaration.
    TypeMismatch {
        /// The attribute being written.
        attribute: String,
        /// The declared type.
        expected: &'static str,
        /// The value's actual type.
        found: &'static str,
    },
    /// The link endpoints do not match the relationship's classes.
    EndpointClassMismatch {
        /// The violated relationship.
        relationship: RelId,
    },
    /// Creating this link would violate the relationship cardinality.
    CardinalityViolation {
        /// The violated relationship.
        relationship: RelId,
        /// The endpoint whose `One` side is already occupied.
        object: ObjectId,
    },
    /// The requested link does not exist.
    NoSuchLink {
        /// The relationship searched.
        relationship: RelId,
        /// The link source.
        source: ObjectId,
        /// The link target.
        target: ObjectId,
    },
    /// A name was declared twice while building a schema.
    DuplicateSchemaName(String),
    /// An operation that requires an open transaction found none, or
    /// `begin` was called while one was already open.
    TransactionState(&'static str),
    /// An object cannot be deleted while links still reference it.
    ObjectStillLinked(ObjectId),
    /// A persisted database image could not be parsed.
    CorruptImage {
        /// 1-based line of the offending entry (0 for I/O failures).
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A file system operation underneath the persistence layer failed;
    /// the typed fault (injected write fault, quota, missing file, ...)
    /// is preserved instead of being flattened into a message.
    Vfs(cad_vfs::VfsError),
}

impl fmt::Display for OmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmsError::UnknownClass(n) => write!(f, "unknown class {n:?}"),
            OmsError::UnknownRelationship(n) => write!(f, "unknown relationship {n:?}"),
            OmsError::NoSuchObject(id) => write!(f, "no such object {id}"),
            OmsError::UnknownAttribute { class, attribute } => {
                write!(f, "class #{} has no attribute {attribute:?}", class.index())
            }
            OmsError::TypeMismatch {
                attribute,
                expected,
                found,
            } => {
                write!(f, "attribute {attribute:?} expects {expected}, got {found}")
            }
            OmsError::EndpointClassMismatch { relationship } => {
                write!(
                    f,
                    "link endpoints do not match relationship #{}",
                    relationship.index()
                )
            }
            OmsError::CardinalityViolation {
                relationship,
                object,
            } => write!(
                f,
                "cardinality of relationship #{} violated at object {object}",
                relationship.index()
            ),
            OmsError::NoSuchLink {
                relationship,
                source,
                target,
            } => write!(
                f,
                "no link {source} -> {target} in relationship #{}",
                relationship.index()
            ),
            OmsError::DuplicateSchemaName(n) => write!(f, "duplicate schema name {n:?}"),
            OmsError::TransactionState(msg) => write!(f, "transaction state error: {msg}"),
            OmsError::ObjectStillLinked(id) => {
                write!(f, "object {id} still participates in links")
            }
            OmsError::CorruptImage { line, reason } => {
                write!(f, "corrupt database image at line {line}: {reason}")
            }
            OmsError::Vfs(e) => write!(f, "file system error: {e}"),
        }
    }
}

impl Error for OmsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OmsError::Vfs(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<cad_vfs::VfsError> for OmsError {
    fn from(e: cad_vfs::VfsError) -> Self {
        OmsError::Vfs(e)
    }
}

/// Convenience alias for results of OMS operations.
pub type OmsResult<T> = Result<T, OmsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OmsError>();
    }

    #[test]
    fn display_messages_are_concise() {
        let e = OmsError::UnknownClass("Cell".to_owned());
        assert_eq!(e.to_string(), "unknown class \"Cell\"");
    }
}
