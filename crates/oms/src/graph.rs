//! Generic reachability walks over id graphs.
//!
//! The relationship tables of a [`Database`](crate::Database) are edge
//! sets over plain `u64` object ids; every derivation / equivalence /
//! impact question the frameworks ask bottoms out in "which ids are
//! reachable from these seeds under this neighbour function". This
//! module provides that walk once, deterministically: breadth-first,
//! visiting ids in insertion order and returning the closure as a
//! sorted set, so two walks over equal edge sets always produce equal
//! answers regardless of seed order.

use std::collections::{BTreeSet, VecDeque};

/// The forward closure of `seeds` under `neighbors`, including the
/// seeds themselves.
///
/// `neighbors` is queried once per discovered id; duplicate edges and
/// cycles are tolerated (each id is expanded at most once). The result
/// is a [`BTreeSet`], so iteration order is the sorted id order — a
/// deterministic fingerprint-friendly rendering of the closure.
pub fn closure<I, F>(seeds: I, mut neighbors: F) -> BTreeSet<u64>
where
    I: IntoIterator<Item = u64>,
    F: FnMut(u64) -> Vec<u64>,
{
    let mut seen = BTreeSet::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    for seed in seeds {
        if seen.insert(seed) {
            queue.push_back(seed);
        }
    }
    while let Some(id) = queue.pop_front() {
        for next in neighbors(id) {
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    seen
}

/// [`closure`] minus the seeds: only the ids *reached*, not the ones
/// asked about. The impact queries of the coupling layer ("what
/// becomes stale if this changes?") want exactly this set.
pub fn reachable<F>(seeds: &[u64], neighbors: F) -> BTreeSet<u64>
where
    F: FnMut(u64) -> Vec<u64>,
{
    let mut out = closure(seeds.iter().copied(), neighbors);
    for seed in seeds {
        out.remove(seed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(u64, u64)]) -> impl Fn(u64) -> Vec<u64> + '_ {
        move |id| {
            pairs
                .iter()
                .filter(|(from, _)| *from == id)
                .map(|(_, to)| *to)
                .collect()
        }
    }

    #[test]
    fn closure_includes_seeds_and_follows_chains() {
        let pairs = [(1, 2), (2, 3), (3, 4)];
        let got = closure([1], edges(&pairs));
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cycles_terminate_and_duplicates_collapse() {
        let pairs = [(1, 2), (2, 1), (2, 2), (1, 2)];
        let got = closure([1, 1], edges(&pairs));
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn reachable_excludes_the_seeds() {
        let pairs = [(1, 2), (2, 3)];
        let got = reachable(&[1, 2], edges(&pairs));
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn seed_order_does_not_change_the_answer() {
        let pairs = [(5, 1), (1, 9), (9, 5), (2, 9)];
        let a = closure([5, 2], edges(&pairs));
        let b = closure([2, 5], edges(&pairs));
        assert_eq!(a, b);
    }
}
