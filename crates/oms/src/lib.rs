//! # oms — the object-oriented database kernel
//!
//! A from-scratch model of the *"common object-oriented database OMS"*
//! \[Meck92\] in which JCF 3.0 stores all of its metadata and design data
//! (paper §2.1).
//!
//! The kernel provides:
//!
//! * a typed [`Schema`] of classes, attributes and binary relationships
//!   with cardinality — the *metadata are completely under the control
//!   of the framework*;
//! * a [`Database`] of objects whose attribute types, link endpoint
//!   classes and link cardinalities are enforced on every mutation;
//! * journal-based transactions ([`Database::begin`] /
//!   [`Database::commit`] / [`Database::abort`]) so desktop operations
//!   are all-or-nothing;
//! * [`VersionGraph`] — acyclic derivation histories used for cell
//!   versions, variants and design-object versions;
//! * [`persist`] — checkpointing the store to the
//!   [`cad_vfs`] virtual UNIX file system, the only way data crosses
//!   the database boundary (the paper stresses that no direct
//!   interface to the internal structures exists).
//!
//! # Examples
//!
//! ```
//! use oms::{AttrType, Cardinality, Database, SchemaBuilder, Value};
//!
//! # fn main() -> Result<(), oms::OmsError> {
//! let mut b = SchemaBuilder::new();
//! let project = b.class("Project", &[("name", AttrType::Text)])?;
//! let cell = b.class("Cell", &[("name", AttrType::Text)])?;
//! let has_cell = b.relationship("has_cell", project, cell, Cardinality::OneToMany)?;
//!
//! let mut db = Database::new(b.build());
//! let (p, c) = db.transact(|db| {
//!     let p = db.create(project)?;
//!     db.set(p, "name", Value::from("alu16"))?;
//!     let c = db.create(cell)?;
//!     db.set(c, "name", Value::from("adder"))?;
//!     db.link(has_cell, p, c)?;
//!     Ok((p, c))
//! })?;
//! assert_eq!(db.targets(has_cell, p), vec![c]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::redundant_clone)]

mod error;
pub mod graph;
pub mod persist;
pub mod pmap;
mod schema;
mod store;
mod value;
mod version;

pub use error::{OmsError, OmsResult};
pub use pmap::{DiffEntry, PMap, PmapKey};
pub use schema::{
    AttrDef, AttrType, Cardinality, ClassDef, ClassId, RelDef, RelId, Schema, SchemaBuilder,
};
pub use store::{Database, ObjectId};
pub use value::Value;
pub use version::VersionGraph;
