//! Checkpointing a [`Database`] to and from the virtual file system.
//!
//! JCF stores both metadata and design data in OMS; encapsulated tools
//! only ever see copies staged through the UNIX file system (§2.1).
//! This module provides the database half of that pipeline: a complete,
//! human-readable image of the store that can be written to a
//! `Vfs` file in the `cad_vfs` file system and read back.
//!
//! The image format is line-oriented:
//!
//! ```text
//! oms-image v1
//! object <raw-id> <class-name>
//! attr <raw-id> <attr-name> <type>:<hex-or-literal>
//! link <rel-name> <src-raw-id> <dst-raw-id>
//! ```
//!
//! Text and byte values are hex-encoded so arbitrary content (including
//! newlines) survives the round trip.
//!
//! Repeated checkpoints of a mostly-unchanged store should not pay
//! full re-serialisation: a [`Checkpointer`] caches the serialised
//! block of every object keyed by a content hash (blob payloads
//! contribute their cached [`Blob`](cad_vfs::Blob) hash, so unchanged
//! design data is never re-hex-encoded), and reuses the block when the
//! hash matches.

use std::collections::BTreeMap;

use cad_vfs::{Vfs, VfsPath};

use crate::error::{OmsError, OmsResult};
use crate::pmap::DiffEntry;
use crate::schema::{AttrType, RelId, Schema};
use crate::store::{Database, Object, ObjectId};
use crate::value::Value;

/// Serialises the full database into its textual image.
pub fn dump(db: &Database) -> String {
    let (schema, objects, links) = db.raw_parts();
    let mut out = String::from("oms-image v1\n");
    for (id, obj) in objects {
        out.push_str(&object_block(id, obj, schema));
    }
    append_links(&mut out, schema, &links);
    out
}

fn object_block(id: ObjectId, obj: &Object, schema: &Schema) -> String {
    let class_name = &schema.class(obj.class).name;
    let mut out = format!("object {} {}\n", id.raw(), class_name);
    for (name, value) in &obj.attrs {
        out.push_str(&format!("attr {} {} {}\n", id.raw(), name, encode(value)));
    }
    out
}

fn append_links(
    out: &mut String,
    schema: &Schema,
    links: &[(crate::schema::RelId, ObjectId, ObjectId)],
) {
    for (rel, s, t) in links {
        let rel_name = &schema.relationship(*rel).name;
        out.push_str(&format!("link {} {} {}\n", rel_name, s.raw(), t.raw()));
    }
}

/// FNV-1a 64 accumulator for object fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// The FNV-1a 64 offset basis — the initial accumulator state for
/// [`fnv64_seeded`] chains.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64 over `bytes`, the same function every persisted
/// fingerprint in the stack uses.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a 64 accumulation from `state` (start chains at
/// [`FNV_OFFSET`]). Chained segment fingerprints use this so each
/// manifest record commits to the whole journal prefix, not just its
/// own bytes.
pub fn fnv64_seeded(state: u64, bytes: &[u8]) -> u64 {
    let mut h = Fnv(state);
    h.write(bytes);
    h.0
}

/// A content fingerprint of one object: class plus every attribute.
/// Byte payloads contribute their cached blob hash, so fingerprinting
/// an unchanged multi-megabyte design costs one `u64` read, not a
/// re-scan of the payload.
fn object_hash(obj: &Object, schema: &Schema) -> u64 {
    let mut h = Fnv::new();
    h.write(schema.class(obj.class).name.as_bytes());
    for (name, value) in &obj.attrs {
        h.write_u64(name.len() as u64);
        h.write(name.as_bytes());
        match value {
            Value::Int(i) => {
                h.write_u64(1);
                h.write_u64(*i as u64);
            }
            Value::Bool(b) => {
                h.write_u64(2);
                h.write_u64(u64::from(*b));
            }
            Value::Text(s) => {
                h.write_u64(3);
                h.write_u64(s.len() as u64);
                h.write(s.as_bytes());
            }
            Value::Bytes(b) => {
                h.write_u64(4);
                h.write_u64(b.content_hash());
            }
        }
    }
    h.0
}

/// Incremental image writer with per-object dirty tracking.
///
/// Holds the serialised block of every object from the previous
/// checkpoint keyed by its content fingerprint; objects whose
/// fingerprint is unchanged reuse the cached block instead of being
/// re-encoded. Deleted objects fall out of the cache naturally, and
/// the produced image is byte-identical to [`dump`].
#[derive(Debug, Default)]
pub struct Checkpointer {
    cache: BTreeMap<u64, (u64, String)>,
    last_reused: usize,
    last_serialized: usize,
}

impl Checkpointer {
    /// A checkpointer with an empty cache (first dump serialises all).
    pub fn new() -> Checkpointer {
        Checkpointer::default()
    }

    /// Objects whose cached block was reused in the last [`Checkpointer::dump`].
    pub fn last_reused(&self) -> usize {
        self.last_reused
    }

    /// Objects that were (re-)serialised in the last [`Checkpointer::dump`].
    pub fn last_serialized(&self) -> usize {
        self.last_serialized
    }

    /// Serialises the database, reusing cached blocks for unchanged
    /// objects. Output is byte-identical to [`dump`].
    pub fn dump(&mut self, db: &Database) -> String {
        let (schema, objects, links) = db.raw_parts();
        let mut out = String::from("oms-image v1\n");
        let mut fresh = BTreeMap::new();
        self.last_reused = 0;
        self.last_serialized = 0;
        for (id, obj) in objects {
            let hash = object_hash(obj, schema);
            let block = match self.cache.remove(&id.raw()) {
                Some((cached_hash, block)) if cached_hash == hash => {
                    self.last_reused += 1;
                    block
                }
                _ => {
                    self.last_serialized += 1;
                    object_block(id, obj, schema)
                }
            };
            out.push_str(&block);
            fresh.insert(id.raw(), (hash, block));
        }
        self.cache = fresh;
        append_links(&mut out, schema, &links);
        out
    }

    /// Writes the (incrementally serialised) image to `path`
    /// atomically, like [`save`].
    ///
    /// # Errors
    ///
    /// Propagates file system errors as a corrupt-image error carrying
    /// the message, like [`save`].
    pub fn save(&mut self, db: &Database, fs: &mut Vfs, path: &VfsPath) -> OmsResult<()> {
        let image = self.dump(db);
        atomic_write(fs, path, image.into_bytes())
    }
}

/// The sibling staging path (`<name>.tmp`) the atomic-commit protocol
/// writes before renaming onto `path`; `None` for the root. A stale
/// staging file is the only debris a crashed commit can leave — loaders
/// never look at it, and the next commit simply overwrites it.
pub fn staging_path(path: &VfsPath) -> Option<VfsPath> {
    let name = path.file_name()?;
    let parent = path.parent()?;
    parent.join(&format!("{name}.tmp")).ok()
}

/// Writes `bytes` to `path` atomically: stage the full payload at the
/// sibling [`staging_path`], then `rename` onto `path` — the commit
/// point. A crash (or injected fault) mid-write can tear the staged
/// temporary but never the destination, which either keeps its previous
/// content or receives the complete new image.
fn atomic_write(fs: &mut Vfs, path: &VfsPath, bytes: Vec<u8>) -> OmsResult<()> {
    let tmp = staging_path(path).ok_or_else(|| OmsError::CorruptImage {
        line: 0,
        reason: "cannot stage the root path".to_owned(),
    })?;
    fs.write(&tmp, bytes)?;
    Ok(fs.rename(&tmp, path)?)
}

/// Parses a textual image back into a database over `schema`.
///
/// # Errors
///
/// Returns [`OmsError::CorruptImage`] on any syntactic or schema
/// mismatch (unknown class, attribute or relationship, bad encoding).
pub fn parse(schema: Schema, image: &str) -> OmsResult<Database> {
    let mut db = Database::new(schema);
    let mut lines = image.lines().enumerate();
    match lines.next() {
        Some((_, "oms-image v1")) => {}
        Some((n, other)) => {
            return Err(OmsError::CorruptImage {
                line: n + 1,
                reason: format!("bad header {other:?}"),
            })
        }
        None => {
            return Err(OmsError::CorruptImage {
                line: 1,
                reason: "empty image".to_owned(),
            })
        }
    }
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        let corrupt = |reason: String| OmsError::CorruptImage {
            line: lineno,
            reason,
        };
        let mut parts = line.splitn(2, ' ');
        let keyword = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default();
        match keyword {
            "object" => {
                let (raw, class_name) = split2(rest)
                    .ok_or_else(|| corrupt("expected `object <id> <class>`".to_owned()))?;
                let raw: u64 = raw
                    .parse()
                    .map_err(|_| corrupt(format!("bad id {raw:?}")))?;
                let class = db
                    .schema()
                    .class_by_name(class_name)
                    .ok_or_else(|| corrupt(format!("unknown class {class_name:?}")))?;
                db.raw_insert(raw, class);
            }
            "attr" => {
                let (raw, rest2) = split2(rest)
                    .ok_or_else(|| corrupt("expected `attr <id> <name> <value>`".to_owned()))?;
                let (name, encoded) = split2(rest2)
                    .ok_or_else(|| corrupt("expected `attr <id> <name> <value>`".to_owned()))?;
                let raw: u64 = raw
                    .parse()
                    .map_err(|_| corrupt(format!("bad id {raw:?}")))?;
                let value =
                    decode(encoded).ok_or_else(|| corrupt(format!("bad value {encoded:?}")))?;
                db.set(ObjectId::for_tests(raw), name, value)
                    .map_err(|e| corrupt(e.to_string()))?;
            }
            "link" => {
                let (rel_name, rest2) = split2(rest)
                    .ok_or_else(|| corrupt("expected `link <rel> <src> <dst>`".to_owned()))?;
                let (s, t) = split2(rest2)
                    .ok_or_else(|| corrupt("expected `link <rel> <src> <dst>`".to_owned()))?;
                let rel = db
                    .schema()
                    .relationship_by_name(rel_name)
                    .ok_or_else(|| corrupt(format!("unknown relationship {rel_name:?}")))?;
                let s: u64 = s.parse().map_err(|_| corrupt(format!("bad id {s:?}")))?;
                let t: u64 = t.parse().map_err(|_| corrupt(format!("bad id {t:?}")))?;
                db.link(rel, ObjectId::for_tests(s), ObjectId::for_tests(t))
                    .map_err(|e| corrupt(e.to_string()))?;
            }
            other => return Err(corrupt(format!("unknown keyword {other:?}"))),
        }
    }
    Ok(db)
}

/// Header line of a persisted delta image.
pub const DELTA_MAGIC: &str = "oms-delta v1";

/// Serialises the difference between two databases as a **delta
/// image**: the records that turn `base` into `target`. Both databases
/// must share one schema (the engine always diffs a snapshot against
/// its own successor).
///
/// The cost is O(changes), not O(database): the object trie and every
/// link trie are diffed structurally via [`PMap::diff`](crate::PMap::diff),
/// which skips pointer-shared subtrees, so a 100k-object store with a
/// 200-op delta serialises ~200 records.
///
/// The format extends the image grammar with delta-only keywords, in a
/// fixed record order that makes application single-pass:
///
/// ```text
/// oms-delta v1
/// base <tag>                  # caller-chosen line binding the delta to its base
/// next <next-id>              # the target's exact allocation counter
/// unlink <rel> <src> <dst>    # links present in base, absent in target
/// del <raw-id>                # objects present in base, absent in target
/// object <raw-id> <class>     # added or updated objects (full block,
/// attr <raw-id> <name> <enc>  #   exactly as in the full image)
/// link <rel> <src> <dst>      # links present in target, absent in base
/// ```
///
/// Unlinks precede deletes (referential integrity) and object blocks
/// precede links (endpoints must exist); within each section records
/// are key-sorted, so equal deltas have equal bytes.
///
/// # Errors
///
/// Rejects a `base_tag` containing a newline (it would break the line
/// framing).
pub fn dump_delta(base: &Database, target: &Database, base_tag: &str) -> OmsResult<String> {
    if base_tag.contains('\n') {
        return Err(OmsError::CorruptImage {
            line: 2,
            reason: "base tag contains a newline".to_owned(),
        });
    }
    let schema = target.schema();
    let mut out = format!(
        "{DELTA_MAGIC}\nbase {base_tag}\nnext {}\n",
        target.next_id_raw()
    );

    // Link sections first (computed before object records are written
    // out, appended after them).
    let mut unlinks = String::new();
    let mut links = String::new();
    for rel in schema.relationships() {
        let rel_name = &schema.relationship(rel).name;
        let mut removed = |s: ObjectId, t: ObjectId| {
            unlinks.push_str(&format!("unlink {} {} {}\n", rel_name, s.raw(), t.raw()));
        };
        let mut added = |s: ObjectId, t: ObjectId| {
            links.push_str(&format!("link {} {} {}\n", rel_name, s.raw(), t.raw()));
        };
        for entry in base.forward_map(rel).diff(target.forward_map(rel)) {
            match entry {
                DiffEntry::Added(s, set) => {
                    for t in set.iter() {
                        added(s, *t);
                    }
                }
                DiffEntry::Removed(s) => {
                    let old = base.forward_map(rel).get(&s).expect("removed key in base");
                    for t in old.iter() {
                        removed(s, *t);
                    }
                }
                DiffEntry::Updated(s, new_set) => {
                    let old = base.forward_map(rel).get(&s).expect("updated key in base");
                    for t in old.iter().filter(|t| !new_set.contains(t)) {
                        removed(s, *t);
                    }
                    for t in new_set.iter().filter(|t| !old.contains(t)) {
                        added(s, *t);
                    }
                }
            }
        }
    }
    out.push_str(&unlinks);

    let mut puts = String::new();
    for entry in base.objects_map().diff(target.objects_map()) {
        match entry {
            DiffEntry::Removed(id) => out.push_str(&format!("del {}\n", id.raw())),
            DiffEntry::Added(id, obj) | DiffEntry::Updated(id, obj) => {
                puts.push_str(&object_block(id, &obj, schema));
            }
        }
    }
    out.push_str(&puts);
    out.push_str(&links);
    Ok(out)
}

/// Reads the `base` tag line of a delta image without applying it, so
/// a recovery chain can verify the delta really extends the checkpoint
/// it is about to be applied to.
///
/// # Errors
///
/// Returns [`OmsError::CorruptImage`] when the header or base line is
/// missing or malformed.
pub fn delta_base_tag(text: &str) -> OmsResult<&str> {
    let mut lines = text.lines();
    if lines.next() != Some(DELTA_MAGIC) {
        return Err(OmsError::CorruptImage {
            line: 1,
            reason: "bad delta header".to_owned(),
        });
    }
    match lines.next().and_then(|l| l.strip_prefix("base ")) {
        Some(tag) => Ok(tag),
        None => Err(OmsError::CorruptImage {
            line: 2,
            reason: "missing base tag".to_owned(),
        }),
    }
}

/// Applies a delta image produced by [`dump_delta`] to `db` (which
/// must be in the delta's base state): after the call, `db` equals the
/// target the delta was dumped from — [`dump`] outputs byte-identical
/// images, and the allocation counter matches exactly.
///
/// # Errors
///
/// Returns [`OmsError::CorruptImage`] on any syntactic or schema
/// mismatch, including records that do not apply cleanly (an `unlink`
/// of an absent link, a `del` of a still-linked object) — either means
/// the delta is being applied to the wrong base.
pub fn apply_delta(db: &mut Database, text: &str) -> OmsResult<()> {
    delta_base_tag(text)?;
    let mut next_id = None;
    // Skip the two header lines already validated above.
    for (idx, line) in text.lines().enumerate().skip(2) {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        let corrupt = |reason: String| OmsError::CorruptImage {
            line: lineno,
            reason,
        };
        let mut parts = line.splitn(2, ' ');
        let keyword = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default();
        match keyword {
            "next" => {
                next_id = Some(
                    rest.parse::<u64>()
                        .map_err(|_| corrupt(format!("bad next id {rest:?}")))?,
                );
            }
            "unlink" => {
                let (rel, s, t) = parse_link_triple(db.schema(), rest, &corrupt)?;
                db.unlink(rel, s, t).map_err(|e| corrupt(e.to_string()))?;
            }
            "del" => {
                let raw: u64 = rest
                    .parse()
                    .map_err(|_| corrupt(format!("bad id {rest:?}")))?;
                db.delete(ObjectId::for_tests(raw))
                    .map_err(|e| corrupt(e.to_string()))?;
            }
            "object" => {
                let (raw, class_name) = split2(rest)
                    .ok_or_else(|| corrupt("expected `object <id> <class>`".to_owned()))?;
                let raw: u64 = raw
                    .parse()
                    .map_err(|_| corrupt(format!("bad id {raw:?}")))?;
                let class = db
                    .schema()
                    .class_by_name(class_name)
                    .ok_or_else(|| corrupt(format!("unknown class {class_name:?}")))?;
                db.raw_insert(raw, class);
            }
            "attr" => {
                let (raw, rest2) = split2(rest)
                    .ok_or_else(|| corrupt("expected `attr <id> <name> <value>`".to_owned()))?;
                let (name, encoded) = split2(rest2)
                    .ok_or_else(|| corrupt("expected `attr <id> <name> <value>`".to_owned()))?;
                let raw: u64 = raw
                    .parse()
                    .map_err(|_| corrupt(format!("bad id {raw:?}")))?;
                let value =
                    decode(encoded).ok_or_else(|| corrupt(format!("bad value {encoded:?}")))?;
                db.set(ObjectId::for_tests(raw), name, value)
                    .map_err(|e| corrupt(e.to_string()))?;
            }
            "link" => {
                let (rel, s, t) = parse_link_triple(db.schema(), rest, &corrupt)?;
                db.link(rel, s, t).map_err(|e| corrupt(e.to_string()))?;
            }
            other => return Err(corrupt(format!("unknown keyword {other:?}"))),
        }
    }
    match next_id {
        Some(n) => db.set_next_id_raw(n),
        None => {
            return Err(OmsError::CorruptImage {
                line: 3,
                reason: "missing next id".to_owned(),
            })
        }
    }
    Ok(())
}

/// Parses `<rel> <src> <dst>` against the schema, shared by the `link`
/// and `unlink` record arms.
fn parse_link_triple(
    schema: &Schema,
    rest: &str,
    corrupt: &impl Fn(String) -> OmsError,
) -> OmsResult<(RelId, ObjectId, ObjectId)> {
    let (rel_name, rest2) =
        split2(rest).ok_or_else(|| corrupt("expected `<rel> <src> <dst>`".to_owned()))?;
    let (s, t) = split2(rest2).ok_or_else(|| corrupt("expected `<rel> <src> <dst>`".to_owned()))?;
    let rel = schema
        .relationship_by_name(rel_name)
        .ok_or_else(|| corrupt(format!("unknown relationship {rel_name:?}")))?;
    let s: u64 = s.parse().map_err(|_| corrupt(format!("bad id {s:?}")))?;
    let t: u64 = t.parse().map_err(|_| corrupt(format!("bad id {t:?}")))?;
    Ok((rel, ObjectId::for_tests(s), ObjectId::for_tests(t)))
}

/// Writes the database image to `path` in the virtual file system,
/// atomically: the image is staged at a sibling `*.tmp` path and
/// renamed into place, so a reader at `path` observes either the old
/// image or the complete new one — never a partial write.
///
/// # Errors
///
/// Propagates file system errors as typed [`OmsError::Vfs`] values, so
/// callers can distinguish an injected fault or a full disk from a
/// corrupt image.
pub fn save(db: &Database, fs: &mut Vfs, path: &VfsPath) -> OmsResult<()> {
    let image = dump(db);
    atomic_write(fs, path, image.into_bytes())
}

/// Reads a database image from `path` in the virtual file system.
///
/// # Errors
///
/// Returns [`OmsError::CorruptImage`] if the file is missing, not
/// UTF-8, or does not parse against `schema`.
pub fn load(schema: Schema, fs: &mut Vfs, path: &VfsPath) -> OmsResult<Database> {
    let bytes = fs.read(path).map_err(|e| OmsError::CorruptImage {
        line: 0,
        reason: e.to_string(),
    })?;
    let text = std::str::from_utf8(&bytes).map_err(|_| OmsError::CorruptImage {
        line: 0,
        reason: "image is not utf-8".to_owned(),
    })?;
    parse(schema, text)
}

/// Writes a small text file (an epoch pointer, a metadata manifest)
/// atomically: staged in full at the sibling [`staging_path`], then
/// renamed into place. The rename is the single commit point, so a
/// reader at `path` observes either the previous content or the
/// complete new text — this is what makes a `CURRENT` pointer flip
/// whole epochs of a multi-file layout atomically.
///
/// # Errors
///
/// Propagates file system errors as typed [`OmsError::Vfs`] values.
pub fn save_text(fs: &mut Vfs, path: &VfsPath, text: &str) -> OmsResult<()> {
    atomic_write(fs, path, text.as_bytes().to_vec())
}

/// Reads a text file written by [`save_text`].
///
/// # Errors
///
/// Returns [`OmsError::CorruptImage`] if the file is missing or not
/// UTF-8.
pub fn load_text(fs: &Vfs, path: &VfsPath) -> OmsResult<String> {
    let bytes = fs.read(path).map_err(|e| OmsError::CorruptImage {
        line: 0,
        reason: e.to_string(),
    })?;
    // Validate on the borrowed payload: `Blob::to_vec` would count as
    // a materialization, and restore paths run under the zero-copy
    // staging invariant.
    let text = std::str::from_utf8(&bytes).map_err(|_| OmsError::CorruptImage {
        line: 0,
        reason: "text file is not utf-8".to_owned(),
    })?;
    Ok(text.to_owned())
}

/// Header line of a persisted operations journal.
pub const JOURNAL_MAGIC: &str = "oms-journal v1";

/// Renders an operations journal: one opaque single-line entry per
/// operation under an `oms-journal v1` header, every line
/// newline-terminated (which is how a torn tail is detected on load).
///
/// # Errors
///
/// Rejects entries containing newlines (they would break the line
/// framing).
pub fn render_journal(entries: &[String]) -> OmsResult<String> {
    let mut out = String::from(JOURNAL_MAGIC);
    out.push('\n');
    for (n, entry) in entries.iter().enumerate() {
        if entry.contains('\n') {
            return Err(OmsError::CorruptImage {
                line: n + 2,
                reason: "journal entry contains a newline".to_owned(),
            });
        }
        out.push_str(entry);
        out.push('\n');
    }
    Ok(out)
}

/// Writes an operations journal to `path`, atomically (staged at a
/// sibling `*.tmp` path, renamed into place). The entries themselves
/// are produced (and later interpreted) by the caller; the store only
/// guarantees a faithful line-per-entry round trip.
///
/// # Errors
///
/// Propagates file system errors as typed [`OmsError::Vfs`] values, and
/// rejects entries containing newlines (they would break the line
/// framing).
pub fn save_journal(fs: &mut Vfs, path: &VfsPath, entries: &[String]) -> OmsResult<()> {
    let out = render_journal(entries)?;
    atomic_write(fs, path, out.into_bytes())
}

/// Reads an operations journal written by [`save_journal`].
///
/// # Errors
///
/// Returns [`OmsError::CorruptImage`] if the file is missing, not
/// UTF-8, lacks the journal header, or ends in a line truncated
/// mid-entry (no trailing newline). Callers that want to *recover*
/// from a torn tail instead of rejecting it use
/// [`load_journal_lenient`].
pub fn load_journal(fs: &Vfs, path: &VfsPath) -> OmsResult<Vec<String>> {
    let (entries, torn) = load_journal_lenient(fs, path)?;
    if let Some(tail) = torn {
        return Err(OmsError::CorruptImage {
            line: entries.len() + 2,
            reason: format!(
                "journal tail truncated mid-entry ({} bytes at offset {})",
                tail.fragment.len(),
                tail.offset
            ),
        });
    }
    Ok(entries)
}

/// The unterminated suffix a crashed journal write left behind:
/// everything after the last newline, plus where in the file it
/// starts. Recovery reports carry both so an operator can locate the
/// tear (`<segment file>@<offset>`) instead of just knowing bytes were
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The dropped trailing bytes (the remains of one entry).
    pub fragment: String,
    /// Byte offset in the journal file where the fragment begins.
    pub offset: usize,
}

/// Reads an operations journal, tolerating a torn final line.
///
/// Every entry [`save_journal`] writes is newline-terminated, so any
/// trailing bytes after the last newline are the remains of an entry
/// that never finished flushing. This loader returns the complete
/// entries plus the torn tail (if any) — fragment *and* its byte
/// offset in the file — and lets the caller decide: [`load_journal`]
/// rejects the tail, recovery paths drop it and report where it was.
///
/// # Errors
///
/// Returns [`OmsError::CorruptImage`] if the file is missing, not
/// UTF-8, or its *complete* first line is not the journal header. (A
/// file whose only content is an unterminated prefix is reported as
/// zero entries plus a fragment — the header itself never finished.)
pub fn load_journal_lenient(
    fs: &Vfs,
    path: &VfsPath,
) -> OmsResult<(Vec<String>, Option<TornTail>)> {
    let bytes = fs.read(path).map_err(|e| OmsError::CorruptImage {
        line: 0,
        reason: e.to_string(),
    })?;
    let text = std::str::from_utf8(&bytes).map_err(|_| OmsError::CorruptImage {
        line: 0,
        reason: "journal is not utf-8".to_owned(),
    })?;
    let (complete, fragment, offset) = match text.rfind('\n') {
        Some(nl) => (&text[..nl], &text[nl + 1..], nl + 1),
        None => ("", text, 0),
    };
    let torn = (!fragment.is_empty()).then(|| TornTail {
        fragment: fragment.to_owned(),
        offset,
    });
    let mut lines = complete.lines();
    match lines.next() {
        Some(JOURNAL_MAGIC) => {}
        Some(other) => {
            return Err(OmsError::CorruptImage {
                line: 1,
                reason: format!("bad journal header {other:?}"),
            })
        }
        None if torn.is_some() => return Ok((Vec::new(), torn)),
        None => {
            return Err(OmsError::CorruptImage {
                line: 1,
                reason: "bad journal header None".to_owned(),
            })
        }
    }
    Ok((lines.map(str::to_owned).collect(), torn))
}

fn split2(s: &str) -> Option<(&str, &str)> {
    let mut it = s.splitn(2, ' ');
    Some((it.next()?, it.next()?))
}

fn encode(value: &Value) -> String {
    match value {
        Value::Int(i) => format!("int:{i}"),
        Value::Bool(b) => format!("bool:{b}"),
        Value::Text(s) => format!("text:{}", hex(s.as_bytes())),
        Value::Bytes(b) => format!("bytes:{}", hex(b)),
    }
}

fn decode(encoded: &str) -> Option<Value> {
    let (tag, body) = {
        let mut it = encoded.splitn(2, ':');
        (it.next()?, it.next()?)
    };
    match tag {
        "int" => body.parse::<i64>().ok().map(Value::Int),
        "bool" => body.parse::<bool>().ok().map(Value::Bool),
        "text" => String::from_utf8(unhex(body)?).ok().map(Value::Text),
        "bytes" => unhex(body).map(Value::from),
        _ => None,
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Returns the attribute type a stored tag string denotes, mainly for
/// diagnostics in callers that inspect images.
pub fn tag_type(tag: &str) -> Option<AttrType> {
    match tag {
        "int" => Some(AttrType::Int),
        "bool" => Some(AttrType::Bool),
        "text" => Some(AttrType::Text),
        "bytes" => Some(AttrType::Bytes),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Cardinality, SchemaBuilder};

    fn sample_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let cell = b
            .class(
                "Cell",
                &[
                    ("name", AttrType::Text),
                    ("size", AttrType::Int),
                    ("frozen", AttrType::Bool),
                    ("blob", AttrType::Bytes),
                ],
            )
            .unwrap();
        b.relationship("uses", cell, cell, Cardinality::ManyToMany)
            .unwrap();
        b.build()
    }

    fn populated() -> Database {
        let mut db = Database::new(sample_schema());
        let cell = db.schema().class_by_name("Cell").unwrap();
        let uses = db.schema().relationship_by_name("uses").unwrap();
        let a = db.create(cell).unwrap();
        let c = db.create(cell).unwrap();
        db.set(a, "name", Value::from("top\nwith newline")).unwrap();
        db.set(a, "size", Value::from(42i64)).unwrap();
        db.set(a, "frozen", Value::from(true)).unwrap();
        db.set(a, "blob", Value::from(vec![0u8, 255, 10, 32]))
            .unwrap();
        db.set(c, "name", Value::from("leaf")).unwrap();
        db.link(uses, a, c).unwrap();
        db
    }

    #[test]
    fn dump_parse_round_trip() {
        let db = populated();
        let image = dump(&db);
        let restored = parse(sample_schema(), &image).unwrap();
        assert_eq!(dump(&restored), image);
    }

    #[test]
    fn round_trip_preserves_values_and_links() {
        let db = populated();
        let restored = parse(sample_schema(), &dump(&db)).unwrap();
        let cell = restored.schema().class_by_name("Cell").unwrap();
        let uses = restored.schema().relationship_by_name("uses").unwrap();
        let a = restored
            .find_by_attr(cell, "name", &Value::from("top\nwith newline"))
            .expect("object restored");
        assert_eq!(restored.get(a, "size").unwrap().as_int(), Some(42));
        assert_eq!(restored.get(a, "frozen").unwrap().as_bool(), Some(true));
        assert_eq!(
            restored.get(a, "blob").unwrap().as_bytes(),
            Some(&[0u8, 255, 10, 32][..])
        );
        assert_eq!(restored.targets(uses, a).len(), 1);
    }

    #[test]
    fn save_load_through_vfs() {
        let db = populated();
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/oms/checkpoint.db").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        save(&db, &mut fs, &path).unwrap();
        let restored = load(sample_schema(), &mut fs, &path).unwrap();
        assert_eq!(dump(&restored), dump(&db));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            parse(sample_schema(), "nonsense\n"),
            Err(OmsError::CorruptImage { line: 1, .. })
        ));
    }

    #[test]
    fn unknown_class_rejected() {
        let image = "oms-image v1\nobject 1 Ghost\n";
        assert!(matches!(
            parse(sample_schema(), image),
            Err(OmsError::CorruptImage { line: 2, .. })
        ));
    }

    #[test]
    fn truncated_attr_rejected() {
        let image = "oms-image v1\nobject 1 Cell\nattr 1 name\n";
        assert!(parse(sample_schema(), image).is_err());
    }

    #[test]
    fn bad_hex_rejected() {
        let image = "oms-image v1\nobject 1 Cell\nattr 1 name text:zz\n";
        assert!(parse(sample_schema(), image).is_err());
    }

    #[test]
    fn missing_file_reports_corrupt_image() {
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/nope").unwrap();
        assert!(matches!(
            load(sample_schema(), &mut fs, &path),
            Err(OmsError::CorruptImage { .. })
        ));
    }

    #[test]
    fn tag_type_maps_all_tags() {
        assert_eq!(tag_type("int"), Some(AttrType::Int));
        assert_eq!(tag_type("text"), Some(AttrType::Text));
        assert_eq!(tag_type("bool"), Some(AttrType::Bool));
        assert_eq!(tag_type("bytes"), Some(AttrType::Bytes));
        assert_eq!(tag_type("float"), None);
    }

    #[test]
    fn checkpointer_matches_full_dump_and_tracks_dirt() {
        let mut db = populated();
        let mut ck = Checkpointer::new();
        // First dump: everything serialised, image identical to dump().
        assert_eq!(ck.dump(&db), dump(&db));
        assert_eq!(ck.last_serialized(), 2);
        assert_eq!(ck.last_reused(), 0);
        // Nothing changed: everything reused, image still identical.
        assert_eq!(ck.dump(&db), dump(&db));
        assert_eq!(ck.last_serialized(), 0);
        assert_eq!(ck.last_reused(), 2);
        // Touch one object: exactly one block re-serialised.
        let cell = db.schema().class_by_name("Cell").unwrap();
        let a = db.find_by_attr(cell, "name", &Value::from("leaf")).unwrap();
        db.set(a, "size", Value::from(7i64)).unwrap();
        assert_eq!(ck.dump(&db), dump(&db));
        assert_eq!(ck.last_serialized(), 1);
        assert_eq!(ck.last_reused(), 1);
    }

    #[test]
    fn checkpointer_drops_deleted_objects() {
        let mut db = populated();
        let mut ck = Checkpointer::new();
        ck.dump(&db);
        let cell = db.schema().class_by_name("Cell").unwrap();
        let uses = db.schema().relationship_by_name("uses").unwrap();
        let top = db
            .find_by_attr(cell, "name", &Value::from("top\nwith newline"))
            .unwrap();
        let leaf = db.find_by_attr(cell, "name", &Value::from("leaf")).unwrap();
        db.unlink(uses, top, leaf).unwrap();
        db.delete(leaf).unwrap();
        assert_eq!(ck.dump(&db), dump(&db));
    }

    #[test]
    fn checkpointer_save_round_trips() {
        let db = populated();
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/oms/checkpoint.db").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        let mut ck = Checkpointer::new();
        ck.save(&db, &mut fs, &path).unwrap();
        let restored = load(sample_schema(), &mut fs, &path).unwrap();
        assert_eq!(dump(&restored), dump(&db));
    }

    #[test]
    fn journal_round_trips_and_rejects_bad_entries() {
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/oms/journal.log").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        let entries = vec!["op|a=1".to_owned(), "op|b=68656c6c6f".to_owned()];
        save_journal(&mut fs, &path, &entries).unwrap();
        assert_eq!(load_journal(&fs, &path).unwrap(), entries);
        // Empty journal round-trips too.
        save_journal(&mut fs, &path, &[]).unwrap();
        assert!(load_journal(&fs, &path).unwrap().is_empty());
        // Newlines would break the framing and are rejected outright.
        assert!(save_journal(&mut fs, &path, &["a\nb".to_owned()]).is_err());
        // A missing header is corrupt.
        fs.write(&path, b"nonsense\n".to_vec()).unwrap();
        assert!(matches!(
            load_journal(&fs, &path),
            Err(OmsError::CorruptImage { line: 1, .. })
        ));
    }

    #[test]
    fn save_is_atomic_under_injected_faults() {
        use cad_vfs::FaultPlan;
        let db = populated();
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/oms/checkpoint.db").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        save(&db, &mut fs, &path).unwrap();
        let committed = fs.read(&path).unwrap();
        // Tear every subsequent save: the destination must keep the
        // previously committed image, byte for byte.
        for seed in 0..8 {
            fs.arm_faults(FaultPlan::new(seed).torn_write(1));
            assert!(save(&db, &mut fs, &path).is_err());
            fs.disarm_faults();
            assert_eq!(
                fs.read(&path).unwrap(),
                committed,
                "a torn save must never be observable at the destination"
            );
        }
        // A fresh destination with a torn first save: nothing appears.
        let fresh = VfsPath::parse("/oms/fresh.db").unwrap();
        fs.arm_faults(FaultPlan::new(1).torn_write(1));
        assert!(save(&db, &mut fs, &fresh).is_err());
        fs.disarm_faults();
        assert!(!fs.exists(&fresh), "no partial image at a fresh path");
        // After the fault clears, the save commits and loads clean.
        save(&db, &mut fs, &path).unwrap();
        let restored = load(sample_schema(), &mut fs, &path).unwrap();
        assert_eq!(dump(&restored), dump(&db));
    }

    #[test]
    fn checkpointer_save_is_atomic_under_injected_faults() {
        use cad_vfs::FaultPlan;
        let db = populated();
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/oms/checkpoint.db").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        let mut ck = Checkpointer::new();
        ck.save(&db, &mut fs, &path).unwrap();
        let committed = fs.read(&path).unwrap();
        fs.arm_faults(FaultPlan::new(3).torn_write(1));
        assert!(ck.save(&db, &mut fs, &path).is_err());
        fs.disarm_faults();
        assert_eq!(fs.read(&path).unwrap(), committed);
    }

    #[test]
    fn save_journal_is_atomic_under_injected_faults() {
        use cad_vfs::FaultPlan;
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/oms/journal.log").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        let first = vec!["op|a=1".to_owned()];
        save_journal(&mut fs, &path, &first).unwrap();
        fs.arm_faults(FaultPlan::new(11).torn_write(1));
        let longer = vec!["op|a=1".to_owned(), "op|b=2".to_owned()];
        assert!(save_journal(&mut fs, &path, &longer).is_err());
        fs.disarm_faults();
        assert_eq!(
            load_journal(&fs, &path).unwrap(),
            first,
            "the committed journal survives a torn re-save intact"
        );
    }

    #[test]
    fn torn_journal_tail_is_rejected_strictly_and_split_leniently() {
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/journal.log").unwrap();
        let entries = vec!["op|a=1".to_owned(), "op|b=2".to_owned()];
        save_journal(&mut fs, &path, &entries).unwrap();
        // Hand-truncate the final entry mid-line.
        let bytes = fs.read(&path).unwrap().to_vec();
        fs.write(&path, bytes[..bytes.len() - 3].to_vec()).unwrap();
        let err = load_journal(&fs, &path).unwrap_err();
        assert!(matches!(err, OmsError::CorruptImage { line: 3, .. }));
        let (complete, torn) = load_journal_lenient(&fs, &path).unwrap();
        assert_eq!(complete, vec!["op|a=1".to_owned()]);
        let tail = torn.unwrap();
        assert_eq!(tail.fragment, "op|b");
        // The fragment starts right after "oms-journal v1\nop|a=1\n".
        assert_eq!(tail.offset, JOURNAL_MAGIC.len() + 1 + "op|a=1\n".len());
        assert_eq!(
            &bytes[tail.offset..bytes.len() - 3],
            tail.fragment.as_bytes()
        );
        // A torn *header* yields zero entries plus the fragment at 0.
        fs.write(&path, b"oms-jour".to_vec()).unwrap();
        let (complete, torn) = load_journal_lenient(&fs, &path).unwrap();
        assert!(complete.is_empty());
        let tail = torn.unwrap();
        assert_eq!(tail.fragment, "oms-jour");
        assert_eq!(tail.offset, 0);
        assert!(load_journal(&fs, &path).is_err());
    }

    /// Mutates `db` through every delta-visible operation class.
    fn churn(db: &mut Database) {
        let cell = db.schema().class_by_name("Cell").unwrap();
        let uses = db.schema().relationship_by_name("uses").unwrap();
        let a = db
            .find_by_attr(cell, "name", &Value::from("top\nwith newline"))
            .unwrap();
        let c = db.find_by_attr(cell, "name", &Value::from("leaf")).unwrap();
        // Update, add, relink, delete.
        db.set(a, "size", Value::from(1995i64)).unwrap();
        let d = db.create(cell).unwrap();
        db.set(d, "name", Value::from("fresh")).unwrap();
        db.link(uses, a, d).unwrap();
        db.unlink(uses, a, c).unwrap();
        db.delete(c).unwrap();
    }

    #[test]
    fn delta_round_trip_reproduces_the_target_exactly() {
        let base = populated();
        let mut target = base.snapshot();
        churn(&mut target);
        let delta = dump_delta(&base, &target, "ck-7").unwrap();
        assert_eq!(delta_base_tag(&delta).unwrap(), "ck-7");
        let mut rebuilt = base.snapshot();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(dump(&rebuilt), dump(&target));
        // Allocation continues exactly where the live target would.
        let cell = rebuilt.schema().class_by_name("Cell").unwrap();
        let mut live = target;
        assert_eq!(
            rebuilt.create(cell).unwrap().raw(),
            live.create(cell).unwrap().raw()
        );
    }

    #[test]
    fn delta_of_identical_snapshots_is_header_only() {
        let base = populated();
        let twin = base.snapshot();
        let delta = dump_delta(&base, &twin, "ck-1").unwrap();
        assert_eq!(
            delta,
            format!("{DELTA_MAGIC}\nbase ck-1\nnext {}\n", 3),
            "untouched snapshots must produce an empty record set"
        );
        let mut rebuilt = base.snapshot();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(dump(&rebuilt), dump(&base));
    }

    #[test]
    fn delta_records_are_rejected_against_the_wrong_base() {
        let base = populated();
        let mut target = base.snapshot();
        churn(&mut target);
        let delta = dump_delta(&base, &target, "ck-7").unwrap();
        // Applying to the *target* (already past the delta) must fail:
        // the unlink record no longer matches.
        let mut wrong = target.snapshot();
        assert!(matches!(
            apply_delta(&mut wrong, &delta),
            Err(OmsError::CorruptImage { .. })
        ));
        // Headers are validated before any record applies.
        let mut db = base.snapshot();
        assert!(apply_delta(&mut db, "nonsense\n").is_err());
        assert!(apply_delta(&mut db, &format!("{DELTA_MAGIC}\nnope\n")).is_err());
        assert!(
            apply_delta(&mut db, &format!("{DELTA_MAGIC}\nbase x\n")).is_err(),
            "a delta without its next-id line is corrupt"
        );
        assert!(dump_delta(&base, &target, "two\nlines").is_err());
    }

    #[test]
    fn chained_deltas_replay_a_history() {
        // base -> t1 -> t2, delta per hop; applying both in order
        // reproduces t2 from base.
        let base = populated();
        let mut t1 = base.snapshot();
        churn(&mut t1);
        let mut t2 = t1.snapshot();
        let cell = t2.schema().class_by_name("Cell").unwrap();
        let fresh = t2
            .find_by_attr(cell, "name", &Value::from("fresh"))
            .unwrap();
        t2.set(fresh, "size", Value::from(2i64)).unwrap();
        let e = t2.create(cell).unwrap();
        t2.set(e, "name", Value::from("later")).unwrap();

        let d1 = dump_delta(&base, &t1, "ck").unwrap();
        let d2 = dump_delta(&t1, &t2, "ck+1").unwrap();
        let mut db = base.snapshot();
        apply_delta(&mut db, &d1).unwrap();
        apply_delta(&mut db, &d2).unwrap();
        assert_eq!(dump(&db), dump(&t2));
    }

    #[test]
    fn text_files_round_trip_atomically() {
        use cad_vfs::FaultPlan;
        let mut fs = Vfs::new();
        let path = VfsPath::parse("/backup/CURRENT").unwrap();
        fs.mkdir_all(&path.parent().unwrap()).unwrap();
        save_text(&mut fs, &path, "epoch 1").unwrap();
        assert_eq!(load_text(&fs, &path).unwrap(), "epoch 1");
        // A torn re-save never tears the committed pointer.
        fs.arm_faults(FaultPlan::new(9).torn_write(1));
        assert!(save_text(&mut fs, &path, "epoch 2").is_err());
        fs.disarm_faults();
        assert_eq!(load_text(&fs, &path).unwrap(), "epoch 1");
        save_text(&mut fs, &path, "epoch 2").unwrap();
        assert_eq!(load_text(&fs, &path).unwrap(), "epoch 2");
        // Missing files surface as typed corruption, not panics.
        assert!(load_text(&fs, &VfsPath::parse("/backup/nope").unwrap()).is_err());
    }

    #[test]
    fn staging_path_is_a_tmp_sibling() {
        let p = VfsPath::parse("/backup/oms.img").unwrap();
        assert_eq!(
            staging_path(&p).unwrap(),
            VfsPath::parse("/backup/oms.img.tmp").unwrap()
        );
        assert!(staging_path(&VfsPath::root()).is_none());
    }

    #[test]
    fn load_preserves_id_allocation() {
        // New objects created after a load must not collide with
        // restored ids.
        let db = populated();
        let restored = parse(sample_schema(), &dump(&db)).unwrap();
        let mut restored = restored;
        let cell = restored.schema().class_by_name("Cell").unwrap();
        let fresh = restored.create(cell).unwrap();
        assert!(restored.iter().filter(|&i| i == fresh).count() == 1);
        assert!(fresh.raw() > 2);
    }
}
