//! A persistent, structurally-shared ordered map over `u64`-like keys.
//!
//! [`PMap`] is the store's answer to the clone-the-world snapshot
//! problem: cloning one is a single [`Arc`] reference-count bump, and
//! every mutation *path-copies* only the handful of trie nodes between
//! the root and the touched key (via [`Arc::make_mut`]), leaving all
//! other nodes shared with previously taken clones. A snapshot of a
//! 50k-object database therefore costs O(1) to take and each write
//! after it costs O(depth) node copies, not O(database).
//!
//! The layout is a fixed-depth radix trie over the eight big-endian
//! bytes of the key: inner nodes hold a sorted, binary-searched vector
//! of `(byte, child)` entries, leaves sit at depth 8 and hold the
//! values. Because the byte order of an unsigned integer is its
//! numeric order, in-order traversal yields keys ascending — the same
//! order a `BTreeMap` would give — which is what keeps the persisted
//! image format byte-identical to the pre-persistent store.
//!
//! No balancing is ever needed (the depth is fixed), removals prune
//! empty nodes on the way back up, and the structure is hand-rolled on
//! `std` only — no external persistent-collection crates.

use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

/// A key that can be packed into a `u64` such that the numeric order
/// of the packed bits equals the key's own order.
///
/// Implemented by `u64` itself, by [`ObjectId`](crate::ObjectId) and by
/// the typed id wrappers of downstream crates; this is what lets one
/// trie implementation serve the object store and every coupling map.
pub trait PmapKey: Copy {
    /// Packs the key into its ordering-preserving bit representation.
    fn to_bits(self) -> u64;
    /// Rebuilds the key from bits produced by [`PmapKey::to_bits`].
    fn from_bits(bits: u64) -> Self;
}

impl PmapKey for u64 {
    fn to_bits(self) -> u64 {
        self
    }
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

/// Trie depth: one level per big-endian byte of the `u64` key.
const DEPTH: u32 = 8;

fn byte_at(bits: u64, depth: u32) -> u8 {
    (bits >> (8 * (DEPTH - 1 - depth))) as u8
}

#[derive(Clone)]
enum Slot<V> {
    /// An interior node (depths 0..7).
    Inner(Arc<Node<V>>),
    /// A value leaf (depth 7 only).
    Leaf(V),
}

#[derive(Clone)]
struct Node<V> {
    /// Sorted by byte; binary-searched on lookup.
    entries: Vec<(u8, Slot<V>)>,
}

impl<V> Node<V> {
    fn empty() -> Self {
        Node {
            entries: Vec::new(),
        }
    }

    fn position(&self, byte: u8) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&byte, |e| e.0)
    }
}

/// A persistent ordered map: O(1) clone, O(log n)-ish path-copying
/// writes, ordered iteration. See the [module docs](self) for the
/// design rationale.
pub struct PMap<K, V> {
    root: Arc<Node<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K, V> Clone for PMap<K, V> {
    /// Cloning is a reference-count bump on the root node — the two
    /// maps share every node until one of them writes.
    fn clone(&self) -> Self {
        PMap {
            root: Arc::clone(&self.root),
            len: self.len,
            _key: PhantomData,
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap::new()
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PMap {
            root: Arc::new(Node::empty()),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if this map and `other` share their root node —
    /// i.e. one is an untouched clone of the other. Diagnostic hook
    /// for structural-sharing tests.
    pub fn root_shared_with(&self, other: &PMap<K, V>) -> bool {
        Arc::ptr_eq(&self.root, &other.root)
    }
}

impl<K: PmapKey, V> PMap<K, V> {
    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let bits = key.to_bits();
        let mut node = &*self.root;
        for depth in 0..DEPTH {
            let idx = node.position(byte_at(bits, depth)).ok()?;
            match &node.entries[idx].1 {
                Slot::Inner(child) => node = child,
                Slot::Leaf(value) => return Some(value),
            }
        }
        None
    }

    /// Returns `true` if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: vec![(self.root.entries.iter(), 0)],
            _key: PhantomData,
        }
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: PmapKey, V: Clone> PMap<K, V> {
    /// Inserts a value, returning the previous one if present. Only
    /// the nodes on the root→key path are copied; every untouched
    /// subtree stays shared with older clones.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let old = insert_at(Arc::make_mut(&mut self.root), key.to_bits(), 0, value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a key, returning its value if present. Nodes left empty
    /// by the removal are pruned on the way back up.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let old = remove_at(Arc::make_mut(&mut self.root), key.to_bits(), 0);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Mutable access to a value. This path-copies the spine down to
    /// the key even if the caller ends up not writing, so it belongs on
    /// mutation paths only.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        get_mut_at(Arc::make_mut(&mut self.root), key.to_bits(), 0)
    }

    /// Mutable access to the value under `key`, inserting
    /// `default()` first when the key is absent — the persistent
    /// analogue of `BTreeMap::entry(k).or_insert_with(f)`.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        if !self.contains_key(&key) {
            self.insert(key, default());
        }
        self.get_mut(&key).expect("just inserted")
    }
}

fn insert_at<V: Clone>(node: &mut Node<V>, bits: u64, depth: u32, value: V) -> Option<V> {
    let byte = byte_at(bits, depth);
    match node.position(byte) {
        Ok(idx) => match &mut node.entries[idx].1 {
            Slot::Leaf(old) => Some(std::mem::replace(old, value)),
            Slot::Inner(child) => insert_at(Arc::make_mut(child), bits, depth + 1, value),
        },
        Err(idx) => {
            // Build the missing single-entry spine down to the leaf.
            let mut slot = Slot::Leaf(value);
            for d in (depth + 1..DEPTH).rev() {
                slot = Slot::Inner(Arc::new(Node {
                    entries: vec![(byte_at(bits, d), slot)],
                }));
            }
            node.entries.insert(idx, (byte, slot));
            None
        }
    }
}

fn remove_at<V: Clone>(node: &mut Node<V>, bits: u64, depth: u32) -> Option<V> {
    let idx = node.position(byte_at(bits, depth)).ok()?;
    match &mut node.entries[idx].1 {
        Slot::Leaf(_) => {
            if let (_, Slot::Leaf(value)) = node.entries.remove(idx) {
                Some(value)
            } else {
                None
            }
        }
        Slot::Inner(child) => {
            let child = Arc::make_mut(child);
            let removed = remove_at(child, bits, depth + 1)?;
            if child.entries.is_empty() {
                node.entries.remove(idx);
            }
            Some(removed)
        }
    }
}

fn get_mut_at<V: Clone>(node: &mut Node<V>, bits: u64, depth: u32) -> Option<&mut V> {
    let idx = node.position(byte_at(bits, depth)).ok()?;
    match &mut node.entries[idx].1 {
        Slot::Leaf(value) => Some(value),
        Slot::Inner(child) => get_mut_at(Arc::make_mut(child), bits, depth + 1),
    }
}

/// One record of a structural diff between two maps: the operation
/// that turns the base map's entry into the target map's entry. See
/// [`PMap::diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffEntry<K, V> {
    /// The key exists only in the target; value is the target's.
    Added(K, V),
    /// The key exists in both with unequal values; value is the
    /// target's.
    Updated(K, V),
    /// The key exists only in the base.
    Removed(K),
}

impl<K, V> DiffEntry<K, V> {
    /// The key this record is about.
    pub fn key(&self) -> &K {
        match self {
            DiffEntry::Added(k, _) | DiffEntry::Updated(k, _) | DiffEntry::Removed(k) => k,
        }
    }
}

impl<K: PmapKey, V: Clone + PartialEq> PMap<K, V> {
    /// Structural diff: the sorted sequence of [`DiffEntry`] records
    /// that turns `self` into `target`.
    ///
    /// The walk descends both tries in lockstep and **skips every
    /// subtree whose root [`Arc`] is shared between the two maps**
    /// (pointer equality), so when `target` is an evolved clone of
    /// `self` the cost is O(changes · depth), not O(map). Two
    /// untouched clones diff to an empty vector in O(1) — the root
    /// pointers are equal. Records come out in ascending key order,
    /// which is what lets the persisted delta format stay canonical.
    ///
    /// Value comparison is by `PartialEq`; an entry whose value was
    /// rewritten to an equal value is *not* reported.
    pub fn diff(&self, target: &PMap<K, V>) -> Vec<DiffEntry<K, V>> {
        if Arc::ptr_eq(&self.root, &target.root) {
            return Vec::new();
        }
        let mut out = Vec::new();
        diff_nodes(&self.root, &target.root, 0, &mut out);
        out
    }

    /// Applies a diff produced by [`PMap::diff`], returning the
    /// resulting map: `base.apply_diff(&base.diff(&target)) == target`.
    pub fn apply_diff(&self, diff: &[DiffEntry<K, V>]) -> PMap<K, V> {
        let mut next = self.clone();
        for entry in diff {
            match entry {
                DiffEntry::Added(k, v) | DiffEntry::Updated(k, v) => {
                    next.insert(*k, v.clone());
                }
                DiffEntry::Removed(k) => {
                    next.remove(k);
                }
            }
        }
        next
    }
}

/// Merge-walks two sibling nodes at the same depth. `prefix` holds the
/// key bits accumulated above this level; entry vectors are sorted, so
/// a classic two-pointer merge emits records in ascending key order.
fn diff_nodes<K: PmapKey, V: Clone + PartialEq>(
    base: &Node<V>,
    target: &Node<V>,
    prefix: u64,
    out: &mut Vec<DiffEntry<K, V>>,
) {
    let (mut i, mut j) = (0, 0);
    while i < base.entries.len() || j < target.entries.len() {
        match (base.entries.get(i), target.entries.get(j)) {
            (Some((ab, aslot)), Some((bb, bslot))) if ab == bb => {
                let bits = (prefix << 8) | u64::from(*ab);
                match (aslot, bslot) {
                    // The load-bearing case: an untouched subtree is
                    // the *same allocation* in both maps — skip it
                    // without descending.
                    (Slot::Inner(x), Slot::Inner(y)) => {
                        if !Arc::ptr_eq(x, y) {
                            diff_nodes(x, y, bits, out);
                        }
                    }
                    (Slot::Leaf(va), Slot::Leaf(vb)) => {
                        if va != vb {
                            out.push(DiffEntry::Updated(K::from_bits(bits), vb.clone()));
                        }
                    }
                    // Leaves sit at depth 7 and inner nodes above, so a
                    // mixed pair cannot arise from map operations; stay
                    // total anyway by treating it as replace-subtree.
                    (a, b) => {
                        emit_removed(a, bits, out);
                        emit_added(b, bits, out);
                    }
                }
                i += 1;
                j += 1;
            }
            (Some((ab, aslot)), Some((bb, _))) if ab < bb => {
                emit_removed(aslot, (prefix << 8) | u64::from(*ab), out);
                i += 1;
            }
            (Some((ab, aslot)), None) => {
                emit_removed(aslot, (prefix << 8) | u64::from(*ab), out);
                i += 1;
            }
            (_, Some((bb, bslot))) => {
                emit_added(bslot, (prefix << 8) | u64::from(*bb), out);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
}

/// Emits [`DiffEntry::Added`] for every leaf under `slot`.
fn emit_added<K: PmapKey, V: Clone>(slot: &Slot<V>, bits: u64, out: &mut Vec<DiffEntry<K, V>>) {
    match slot {
        Slot::Leaf(v) => out.push(DiffEntry::Added(K::from_bits(bits), v.clone())),
        Slot::Inner(child) => {
            for (byte, s) in &child.entries {
                emit_added(s, (bits << 8) | u64::from(*byte), out);
            }
        }
    }
}

/// Emits [`DiffEntry::Removed`] for every leaf under `slot`.
fn emit_removed<K: PmapKey, V>(slot: &Slot<V>, bits: u64, out: &mut Vec<DiffEntry<K, V>>) {
    match slot {
        Slot::Leaf(_) => out.push(DiffEntry::Removed(K::from_bits(bits))),
        Slot::Inner(child) => {
            for (byte, s) in &child.entries {
                emit_removed(s, (bits << 8) | u64::from(*byte), out);
            }
        }
    }
}

/// One level of the depth-first walk: the remaining entries plus the
/// key bits accumulated above that level.
type IterFrame<'a, V> = (std::slice::Iter<'a, (u8, Slot<V>)>, u64);

/// Ordered iterator over a [`PMap`], yielding `(key, &value)`.
pub struct Iter<'a, K, V> {
    stack: Vec<IterFrame<'a, V>>,
    _key: PhantomData<K>,
}

impl<'a, K: PmapKey, V> Iterator for Iter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<(K, &'a V)> {
        loop {
            let top = self.stack.last_mut()?;
            let prefix = top.1;
            match top.0.next() {
                None => {
                    self.stack.pop();
                }
                Some((byte, slot)) => {
                    let bits = (prefix << 8) | u64::from(*byte);
                    match slot {
                        Slot::Leaf(value) => return Some((K::from_bits(bits), value)),
                        Slot::Inner(child) => self.stack.push((child.entries.iter(), bits)),
                    }
                }
            }
        }
    }
}

impl<'a, K: PmapKey, V> IntoIterator for &'a PMap<K, V> {
    type Item = (K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

impl<K: PmapKey, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = PMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: PmapKey, V: Clone> Extend<(K, V)> for PMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: PmapKey + fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: PmapKey, V: PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .iter()
                .zip(other.iter())
                .all(|((ka, va), (kb, vb))| ka.to_bits() == kb.to_bits() && va == vb)
    }
}

impl<K: PmapKey, V: Eq> Eq for PMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: PMap<u64, String> = PMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "seven".into()), None);
        assert_eq!(m.insert(7, "VII".into()), Some("seven".into()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&7).map(String::as_str), Some("VII"));
        assert!(!m.contains_key(&8));
        assert_eq!(m.remove(&7), Some("VII".into()));
        assert_eq!(m.remove(&7), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_key_ordered_like_a_btreemap() {
        // SplitMix64-ish scramble for a deterministic pseudo-random set.
        let mut m: PMap<u64, u64> = PMap::new();
        let mut reference = BTreeMap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..500u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            let key = if i % 3 == 0 { i } else { x };
            m.insert(key, i);
            reference.insert(key, i);
        }
        let got: Vec<(u64, u64)> = m.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        assert_eq!(m.len(), reference.len());
    }

    #[test]
    fn random_ops_agree_with_reference_map() {
        let mut m: PMap<u64, u64> = PMap::new();
        let mut reference = BTreeMap::new();
        let mut x = 42u64;
        for _ in 0..4000 {
            x = x
                .wrapping_add(0x9e3779b97f4a7c15)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            let key = (x >> 32) % 257; // force collisions and deletes
            if x.is_multiple_of(5) {
                assert_eq!(m.remove(&key), reference.remove(&key));
            } else {
                assert_eq!(m.insert(key, x), reference.insert(key, x));
            }
            assert_eq!(m.len(), reference.len());
        }
        for (k, v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn clone_is_isolated_by_path_copying() {
        let mut a: PMap<u64, String> = PMap::new();
        for i in 0..100 {
            a.insert(i, format!("v{i}"));
        }
        let b = a.clone();
        assert!(a.root_shared_with(&b), "clone shares the root");
        a.insert(3, "mutated".into());
        a.remove(&50);
        assert!(!a.root_shared_with(&b), "writes unshare the spine");
        assert_eq!(b.get(&3).map(String::as_str), Some("v3"));
        assert_eq!(b.get(&50).map(String::as_str), Some("v50"));
        assert_eq!(a.get(&3).map(String::as_str), Some("mutated"));
        assert_eq!(a.get(&50), None);
    }

    #[test]
    fn untouched_values_stay_shared_after_a_write() {
        let mut a: PMap<u64, Arc<str>> = PMap::new();
        for i in 0..64 {
            a.insert(i, Arc::from(format!("v{i}").as_str()));
        }
        let sentinel: Arc<str> = a.get(&9).unwrap().clone();
        // base count: map + local handle.
        let base = Arc::strong_count(&sentinel);
        let b = a.clone();
        assert_eq!(
            Arc::strong_count(&sentinel),
            base,
            "cloning the map copies no values at all"
        );
        // Writing a sibling key path-copies the shared leaf node, which
        // bumps (but does not deep-copy) the sentinel's refcount once.
        a.insert(10, Arc::from("other"));
        assert!(Arc::ptr_eq(sentinel_ref(&a, 9), &sentinel));
        assert!(Arc::ptr_eq(sentinel_ref(&b, 9), &sentinel));
    }

    fn sentinel_ref(m: &PMap<u64, Arc<str>>, k: u64) -> &Arc<str> {
        m.get(&k).unwrap()
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m: PMap<u64, Vec<u64>> = PMap::new();
        m.get_or_insert_with(5, Vec::new).push(1);
        m.get_or_insert_with(5, || panic!("already present"))
            .push(2);
        assert_eq!(m.get(&5), Some(&vec![1, 2]));
    }

    #[test]
    fn extreme_keys_work() {
        let mut m: PMap<u64, u8> = PMap::new();
        m.insert(0, 1);
        m.insert(u64::MAX, 2);
        m.insert(u64::MAX - 1, 3);
        let keys: Vec<u64> = m.keys().collect();
        assert_eq!(keys, vec![0, u64::MAX - 1, u64::MAX]);
        assert_eq!(m.remove(&u64::MAX), Some(2));
        assert_eq!(m.get(&(u64::MAX - 1)), Some(&3));
    }

    #[test]
    fn equality_and_from_iter() {
        let a: PMap<u64, u64> = (0..10u64).map(|i| (i, i * i)).collect();
        let b: PMap<u64, u64> = (0..10u64).rev().map(|i| (i, i * i)).collect();
        assert_eq!(a, b);
        let mut c = a.clone();
        c.insert(3, 0);
        assert_ne!(a, c);
    }
}
