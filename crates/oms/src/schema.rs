//! Schema definitions: classes, attributes and relationships.
//!
//! OMS is a *typed* object store: every object belongs to a class, every
//! attribute is declared with a type, and links may only be created
//! along declared relationships whose endpoint classes and cardinality
//! are checked. JCF's Figure 1 information architecture is expressed as
//! one such schema (see the `jcf` crate).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{OmsError, OmsResult};

/// Identifier of a class inside a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Returns the class's positional index in its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a relationship inside a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub(crate) u32);

impl RelId {
    /// Returns the relationship's positional index in its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Type of a declared attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// UTF-8 text.
    Text,
    /// Signed 64-bit integer.
    Int,
    /// Boolean flag.
    Bool,
    /// Opaque byte payload (design data blobs).
    Bytes,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttrType::Text => "text",
            AttrType::Int => "int",
            AttrType::Bool => "bool",
            AttrType::Bytes => "bytes",
        })
    }
}

/// How many links each side of a relationship may participate in.
///
/// Reads as *source-to-target*: [`Cardinality::OneToMany`] means one
/// source fans out to many targets, but each target has at most one
/// source (a hierarchy edge, for example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Each source links at most one target and vice versa.
    OneToOne,
    /// A source may link many targets; a target has at most one source.
    OneToMany,
    /// A target may be linked by many sources; a source has at most one target.
    ManyToOne,
    /// No restriction on either side.
    ManyToMany,
}

/// Declaration of one attribute of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name, unique within the class. Interned as an
    /// `Arc<str>`: every object of the class shares this one allocation
    /// for its attribute-map keys, so copy-on-write object clones bump
    /// reference counts instead of copying name strings.
    pub name: Arc<str>,
    /// Declared value type.
    pub ty: AttrType,
}

/// Declaration of a class of objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name, unique within the schema.
    pub name: String,
    /// Declared attributes.
    pub attributes: Vec<AttrDef>,
}

impl ClassDef {
    /// Looks up an attribute declaration by name.
    pub fn attribute(&self, name: &str) -> Option<&AttrDef> {
        self.attributes.iter().find(|a| &*a.name == name)
    }
}

/// Declaration of a binary relationship between two classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelDef {
    /// Relationship name, unique within the schema.
    pub name: String,
    /// Class of the source endpoint.
    pub source: ClassId,
    /// Class of the target endpoint.
    pub target: ClassId,
    /// Cardinality constraint, read source-to-target.
    pub cardinality: Cardinality,
}

/// A complete, immutable database schema.
///
/// Built once with a [`SchemaBuilder`] and then shared by the
/// [`Database`](crate::Database); the framework administrator defines
/// it, users cannot change it at run time — exactly the paper's
/// distinction between framework-controlled metadata and project data.
///
/// # Examples
///
/// ```
/// # use oms::{SchemaBuilder, AttrType, Cardinality};
/// # fn main() -> Result<(), oms::OmsError> {
/// let mut b = SchemaBuilder::new();
/// let cell = b.class("Cell", &[("name", AttrType::Text)])?;
/// let version = b.class("CellVersion", &[("number", AttrType::Int)])?;
/// b.relationship("has_version", cell, version, Cardinality::OneToMany)?;
/// let schema = b.build();
/// assert_eq!(schema.class_by_name("Cell"), Some(cell));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Schema {
    classes: Vec<ClassDef>,
    relationships: Vec<RelDef>,
    class_names: HashMap<String, ClassId>,
    rel_names: HashMap<String, RelId>,
}

impl Schema {
    /// Returns the class declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different schema and is out of range.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// Returns the relationship declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different schema and is out of range.
    pub fn relationship(&self, id: RelId) -> &RelDef {
        &self.relationships[id.index()]
    }

    /// Resolves a class name to its id.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// Resolves a relationship name to its id.
    pub fn relationship_by_name(&self, name: &str) -> Option<RelId> {
        self.rel_names.get(name).copied()
    }

    /// Iterates over all class ids in declaration order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Iterates over all relationship ids in declaration order.
    pub fn relationships(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relationships.len() as u32).map(RelId)
    }
}

/// Incremental builder for a [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    classes: Vec<ClassDef>,
    relationships: Vec<RelDef>,
    class_names: HashMap<String, ClassId>,
    rel_names: HashMap<String, RelId>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class with the given attributes.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::DuplicateSchemaName`] if the class name or an
    /// attribute name is declared twice.
    pub fn class(&mut self, name: &str, attributes: &[(&str, AttrType)]) -> OmsResult<ClassId> {
        if self.class_names.contains_key(name) {
            return Err(OmsError::DuplicateSchemaName(name.to_owned()));
        }
        let mut attrs = Vec::with_capacity(attributes.len());
        for (attr_name, ty) in attributes {
            if attrs.iter().any(|a: &AttrDef| &*a.name == *attr_name) {
                return Err(OmsError::DuplicateSchemaName((*attr_name).to_owned()));
            }
            attrs.push(AttrDef {
                name: Arc::from(*attr_name),
                ty: *ty,
            });
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef {
            name: name.to_owned(),
            attributes: attrs,
        });
        self.class_names.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declares a relationship between two already-declared classes.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::DuplicateSchemaName`] if the name is taken.
    pub fn relationship(
        &mut self,
        name: &str,
        source: ClassId,
        target: ClassId,
        cardinality: Cardinality,
    ) -> OmsResult<RelId> {
        if self.rel_names.contains_key(name) {
            return Err(OmsError::DuplicateSchemaName(name.to_owned()));
        }
        let id = RelId(self.relationships.len() as u32);
        self.relationships.push(RelDef {
            name: name.to_owned(),
            source,
            target,
            cardinality,
        });
        self.rel_names.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Finalises the schema.
    pub fn build(self) -> Schema {
        Schema {
            classes: self.classes,
            relationships: self.relationships,
            class_names: self.class_names,
            rel_names: self.rel_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A", &[]).unwrap();
        let c = b.class("B", &[]).unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
    }

    #[test]
    fn duplicate_class_name_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("A", &[]).unwrap();
        assert!(matches!(
            b.class("A", &[]),
            Err(OmsError::DuplicateSchemaName(_))
        ));
    }

    #[test]
    fn duplicate_attribute_name_rejected() {
        let mut b = SchemaBuilder::new();
        let err = b.class("A", &[("x", AttrType::Int), ("x", AttrType::Text)]);
        assert!(matches!(err, Err(OmsError::DuplicateSchemaName(_))));
    }

    #[test]
    fn duplicate_relationship_name_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A", &[]).unwrap();
        b.relationship("r", a, a, Cardinality::ManyToMany).unwrap();
        assert!(matches!(
            b.relationship("r", a, a, Cardinality::OneToOne),
            Err(OmsError::DuplicateSchemaName(_))
        ));
    }

    #[test]
    fn lookup_by_name_round_trips() {
        let mut b = SchemaBuilder::new();
        let cell = b.class("Cell", &[("name", AttrType::Text)]).unwrap();
        let rel = b
            .relationship("self", cell, cell, Cardinality::ManyToMany)
            .unwrap();
        let s = b.build();
        assert_eq!(s.class_by_name("Cell"), Some(cell));
        assert_eq!(s.relationship_by_name("self"), Some(rel));
        assert_eq!(s.class(cell).name, "Cell");
        assert_eq!(s.relationship(rel).cardinality, Cardinality::ManyToMany);
        assert_eq!(s.class_by_name("Nope"), None);
    }

    #[test]
    fn attribute_lookup() {
        let mut b = SchemaBuilder::new();
        let c = b.class("C", &[("flag", AttrType::Bool)]).unwrap();
        let s = b.build();
        assert_eq!(s.class(c).attribute("flag").unwrap().ty, AttrType::Bool);
        assert!(s.class(c).attribute("other").is_none());
    }

    #[test]
    fn iterators_cover_all_declarations() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A", &[]).unwrap();
        let c = b.class("B", &[]).unwrap();
        b.relationship("r", a, c, Cardinality::OneToMany).unwrap();
        let s = b.build();
        assert_eq!(s.classes().count(), 2);
        assert_eq!(s.relationships().count(), 1);
    }
}
