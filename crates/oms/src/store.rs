//! The object store: objects, attributes, links and transactions.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::error::{OmsError, OmsResult};
use crate::pmap::{PMap, PmapKey};
use crate::schema::{Cardinality, ClassId, RelId, Schema};
use crate::value::Value;

/// Identifier of a live object in a [`Database`].
///
/// Ids are never reused, so a stale id reliably reports
/// [`OmsError::NoSuchObject`] instead of aliasing a new object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub(crate) u64);

impl ObjectId {
    /// Returns the raw id value (stable across the database lifetime).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value, e.g. when decoding a
    /// persisted image or an operations journal. The id is only
    /// meaningful against the database it was taken from.
    pub fn from_raw(raw: u64) -> Self {
        ObjectId(raw)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl PmapKey for ObjectId {
    fn to_bits(self) -> u64 {
        self.0
    }
    fn from_bits(bits: u64) -> Self {
        ObjectId(bits)
    }
}

/// Attribute keys are interned `Arc<str>` handles cloned from the
/// schema's [`AttrDef`](crate::AttrDef) declarations: every object of a
/// class shares the same name allocations, so copy-on-write clones of
/// an object copy pointers, not strings.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Object {
    pub(crate) class: ClassId,
    pub(crate) attrs: BTreeMap<Arc<str>, Value>,
}

/// One link-index cell: the set of partners of one object along one
/// relationship. Arc-wrapped so that path-copying a trie node clones
/// set *handles*, never set contents.
pub(crate) type LinkSet = Arc<BTreeSet<ObjectId>>;

/// One undo step recorded while a transaction is open.
#[derive(Debug)]
enum Undo {
    Created(ObjectId),
    Deleted(ObjectId, Arc<Object>, Vec<(RelId, ObjectId, ObjectId)>),
    AttrSet(ObjectId, Arc<str>, Value),
    Linked(RelId, ObjectId, ObjectId),
    Unlinked(RelId, ObjectId, ObjectId),
}

/// The OMS object-oriented database.
///
/// Models the *"common object-oriented database OMS"* \[Meck92\] in which
/// JCF 3.0 stores metadata and design data. It is a typed object store:
/// the immutable [`Schema`] defines classes, attributes and
/// relationships; the store enforces attribute types, link endpoint
/// classes and link cardinality on every mutation.
///
/// Mutations can be grouped into a transaction ([`Database::begin`],
/// [`Database::commit`], [`Database::abort`]); aborting rolls the store
/// back to the state at `begin`. JCF's desktop operations run inside
/// such transactions so that a failed encapsulation step never leaves
/// metadata half-updated.
///
/// Note the deliberate limitation the paper complains about (§2.1):
/// *"Direct access to the internal structure of the stored data by an
/// appropriate interface is not possible"* — external tools never get a
/// pointer into the store; design data enters and leaves only by value
/// (copied blobs), which the `hybrid` crate routes through the VFS.
///
/// # Examples
///
/// ```
/// # use oms::{Database, SchemaBuilder, AttrType, Value};
/// # fn main() -> Result<(), oms::OmsError> {
/// let mut b = SchemaBuilder::new();
/// let cell = b.class("Cell", &[("name", AttrType::Text)])?;
/// let mut db = Database::new(b.build());
/// let adder = db.create(cell)?;
/// db.set(adder, "name", Value::from("adder"))?;
/// assert_eq!(db.get(adder, "name")?.as_text(), Some("adder"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Database {
    schema: Arc<Schema>,
    /// Persistent trie of `Arc`-wrapped objects: cloning the map is a
    /// root refcount bump; mutating an object path-copies its spine and
    /// `make_mut`s the one object touched.
    objects: PMap<ObjectId, Arc<Object>>,
    /// Forward links per relationship: source -> set of targets.
    forward: Vec<PMap<ObjectId, LinkSet>>,
    /// Reverse links per relationship: target -> set of sources.
    reverse: Vec<PMap<ObjectId, LinkSet>>,
    next_id: u64,
    journal: Option<Vec<Undo>>,
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let rel_count = schema.relationships().count();
        Database {
            schema: Arc::new(schema),
            objects: PMap::new(),
            forward: vec![PMap::new(); rel_count],
            reverse: vec![PMap::new(); rel_count],
            next_id: 1,
            journal: None,
        }
    }

    /// Returns the schema this database enforces.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Takes an immutable point-in-time copy of the store for
    /// concurrent readers.
    ///
    /// This is an **O(1)** operation: the schema handle, the object
    /// trie and every link trie are persistent, structurally-shared
    /// structures whose clone is a reference-count bump. No object, no
    /// attribute map and no `Value::Bytes` payload is copied — later
    /// writes to `self` path-copy only the trie nodes they touch,
    /// leaving everything else shared with the snapshot. An open
    /// transaction on `self` is not carried over: the snapshot starts
    /// with no transaction in progress and reflects the store exactly
    /// as it stands now, including uncommitted mutations.
    pub fn snapshot(&self) -> Database {
        Database {
            schema: Arc::clone(&self.schema),
            objects: self.objects.clone(),
            forward: self.forward.clone(),
            reverse: self.reverse.clone(),
            next_id: self.next_id,
            journal: None,
        }
    }

    /// Returns the number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if the database holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    fn record(&mut self, undo: Undo) {
        if let Some(journal) = &mut self.journal {
            journal.push(undo);
        }
    }

    /// Creates a new object of `class` with default attribute values.
    ///
    /// # Errors
    ///
    /// Never fails for a `ClassId` obtained from this database's schema.
    pub fn create(&mut self, class: ClassId) -> OmsResult<ObjectId> {
        let schema = Arc::clone(&self.schema);
        let def = schema.class(class);
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        let attrs = def
            .attributes
            .iter()
            .map(|a| (Arc::clone(&a.name), Value::default_for(a.ty)))
            .collect();
        self.objects.insert(id, Arc::new(Object { class, attrs }));
        self.record(Undo::Created(id));
        Ok(id)
    }

    /// Deletes an object.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::ObjectStillLinked`] while any link still
    /// references the object — callers must unlink first, which keeps
    /// referential integrity without cascades.
    pub fn delete(&mut self, id: ObjectId) -> OmsResult<()> {
        if !self.objects.contains_key(&id) {
            return Err(OmsError::NoSuchObject(id));
        }
        let linked = self
            .forward
            .iter()
            .any(|m| m.get(&id).is_some_and(|s| !s.is_empty()))
            || self
                .reverse
                .iter()
                .any(|m| m.get(&id).is_some_and(|s| !s.is_empty()));
        if linked {
            return Err(OmsError::ObjectStillLinked(id));
        }
        let obj = self.objects.remove(&id).expect("checked above");
        self.record(Undo::Deleted(id, obj, Vec::new()));
        Ok(())
    }

    /// Returns the class of an object.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::NoSuchObject`] for dead or unknown ids.
    pub fn class_of(&self, id: ObjectId) -> OmsResult<ClassId> {
        self.objects
            .get(&id)
            .map(|o| o.class)
            .ok_or(OmsError::NoSuchObject(id))
    }

    /// Reads an attribute value.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::UnknownAttribute`] if the class does not
    /// declare `name`, or [`OmsError::NoSuchObject`].
    pub fn get(&self, id: ObjectId, name: &str) -> OmsResult<&Value> {
        let obj = self.objects.get(&id).ok_or(OmsError::NoSuchObject(id))?;
        obj.attrs
            .get(name)
            .ok_or_else(|| OmsError::UnknownAttribute {
                class: obj.class,
                attribute: name.to_owned(),
            })
    }

    /// Writes an attribute value, checking its declared type.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::TypeMismatch`] on a wrongly-typed value,
    /// [`OmsError::UnknownAttribute`] or [`OmsError::NoSuchObject`].
    pub fn set(&mut self, id: ObjectId, name: &str, value: Value) -> OmsResult<()> {
        let obj = self.objects.get(&id).ok_or(OmsError::NoSuchObject(id))?;
        let decl = self
            .schema
            .class(obj.class)
            .attribute(name)
            .ok_or_else(|| OmsError::UnknownAttribute {
                class: obj.class,
                attribute: name.to_owned(),
            })?;
        if decl.ty != value.attr_type() {
            return Err(OmsError::TypeMismatch {
                attribute: name.to_owned(),
                expected: type_name(decl.ty),
                found: type_name(value.attr_type()),
            });
        }
        let key = Arc::clone(&decl.name);
        let obj = Arc::make_mut(self.objects.get_mut(&id).expect("checked above"));
        let old = obj
            .attrs
            .insert(Arc::clone(&key), value)
            .expect("declared attributes are always present");
        self.record(Undo::AttrSet(id, key, old));
        Ok(())
    }

    /// Creates a link `source -> target` along `rel`.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::EndpointClassMismatch`] if the endpoint
    /// classes differ from the declaration,
    /// [`OmsError::CardinalityViolation`] if a `One` side already has a
    /// partner, or [`OmsError::NoSuchObject`].
    pub fn link(&mut self, rel: RelId, source: ObjectId, target: ObjectId) -> OmsResult<()> {
        let schema = Arc::clone(&self.schema);
        let def = schema.relationship(rel);
        let src_class = self.class_of(source)?;
        let dst_class = self.class_of(target)?;
        if src_class != def.source || dst_class != def.target {
            return Err(OmsError::EndpointClassMismatch { relationship: rel });
        }
        let source_limited = matches!(
            def.cardinality,
            Cardinality::OneToOne | Cardinality::ManyToOne
        );
        let target_limited = matches!(
            def.cardinality,
            Cardinality::OneToOne | Cardinality::OneToMany
        );
        if source_limited
            && self.forward[rel.index()]
                .get(&source)
                .is_some_and(|s| !s.is_empty())
        {
            return Err(OmsError::CardinalityViolation {
                relationship: rel,
                object: source,
            });
        }
        if target_limited
            && self.reverse[rel.index()]
                .get(&target)
                .is_some_and(|s| !s.is_empty())
        {
            return Err(OmsError::CardinalityViolation {
                relationship: rel,
                object: target,
            });
        }
        let inserted =
            Arc::make_mut(self.forward[rel.index()].get_or_insert_with(source, LinkSet::default))
                .insert(target);
        Arc::make_mut(self.reverse[rel.index()].get_or_insert_with(target, LinkSet::default))
            .insert(source);
        if inserted {
            self.record(Undo::Linked(rel, source, target));
        }
        Ok(())
    }

    /// Removes the link `source -> target` along `rel`.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::NoSuchLink`] if the link does not exist.
    pub fn unlink(&mut self, rel: RelId, source: ObjectId, target: ObjectId) -> OmsResult<()> {
        // Check first so a missing link never path-copies anything.
        let present = self.forward[rel.index()]
            .get(&source)
            .is_some_and(|s| s.contains(&target));
        if !present {
            return Err(OmsError::NoSuchLink {
                relationship: rel,
                source,
                target,
            });
        }
        Arc::make_mut(
            self.forward[rel.index()]
                .get_mut(&source)
                .expect("checked above"),
        )
        .remove(&target);
        Arc::make_mut(
            self.reverse[rel.index()]
                .get_mut(&target)
                .expect("reverse index mirrors forward index"),
        )
        .remove(&source);
        self.record(Undo::Unlinked(rel, source, target));
        Ok(())
    }

    /// Returns the targets linked from `source` along `rel`, sorted.
    pub fn targets(&self, rel: RelId, source: ObjectId) -> Vec<ObjectId> {
        self.forward[rel.index()]
            .get(&source)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns the sources linking to `target` along `rel`, sorted.
    pub fn sources(&self, rel: RelId, target: ObjectId) -> Vec<ObjectId> {
        self.reverse[rel.index()]
            .get(&target)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns `true` if the link `source -> target` exists along `rel`.
    pub fn linked(&self, rel: RelId, source: ObjectId, target: ObjectId) -> bool {
        self.forward[rel.index()]
            .get(&source)
            .is_some_and(|s| s.contains(&target))
    }

    /// Returns all live objects of `class`, in id order.
    pub fn objects_of(&self, class: ClassId) -> Vec<ObjectId> {
        self.objects
            .iter()
            .filter(|(_, o)| o.class == class)
            .map(|(id, _)| id)
            .collect()
    }

    /// Returns the first object of `class` whose attribute `name` holds
    /// exactly `value`, if any.
    pub fn find_by_attr(&self, class: ClassId, name: &str, value: &Value) -> Option<ObjectId> {
        self.objects
            .iter()
            .find(|(_, o)| o.class == class && o.attrs.get(name) == Some(value))
            .map(|(id, _)| id)
    }

    /// Iterates over all live object ids in id order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys()
    }

    // --- structural-sharing diagnostics -----------------------------------

    /// Number of live `Arc` handles on the object behind `id` (the
    /// store's own handle included). Diagnostic probe for
    /// structural-sharing tests; not part of the stable API.
    #[doc(hidden)]
    pub fn object_strong_count(&self, id: ObjectId) -> Option<usize> {
        self.objects.get(&id).map(Arc::strong_count)
    }

    /// Returns `true` if `self` and `other` hold the *same allocation*
    /// for the object behind `id` — proof that a snapshot shares the
    /// object rather than owning a copy. Diagnostic probe for
    /// structural-sharing tests; not part of the stable API.
    #[doc(hidden)]
    pub fn object_shared_with(&self, other: &Database, id: ObjectId) -> bool {
        match (self.objects.get(&id), other.objects.get(&id)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    // --- transactions -----------------------------------------------------

    /// Opens a transaction; subsequent mutations are journalled.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::TransactionState`] if one is already open
    /// (transactions do not nest).
    pub fn begin(&mut self) -> OmsResult<()> {
        if self.journal.is_some() {
            return Err(OmsError::TransactionState("transaction already open"));
        }
        self.journal = Some(Vec::new());
        Ok(())
    }

    /// Commits the open transaction, making its mutations permanent.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::TransactionState`] if no transaction is open.
    pub fn commit(&mut self) -> OmsResult<()> {
        if self.journal.take().is_none() {
            return Err(OmsError::TransactionState("no transaction open"));
        }
        Ok(())
    }

    /// Aborts the open transaction, rolling back all its mutations.
    ///
    /// # Errors
    ///
    /// Returns [`OmsError::TransactionState`] if no transaction is open.
    pub fn abort(&mut self) -> OmsResult<()> {
        let journal = self
            .journal
            .take()
            .ok_or(OmsError::TransactionState("no transaction open"))?;
        for undo in journal.into_iter().rev() {
            match undo {
                Undo::Created(id) => {
                    // Any links added to this object were journalled after
                    // creation and have already been rolled back.
                    self.objects.remove(&id);
                }
                Undo::Deleted(id, obj, links) => {
                    self.objects.insert(id, obj);
                    for (rel, s, t) in links {
                        self.relink(rel, s, t);
                    }
                }
                Undo::AttrSet(id, name, old) => {
                    if let Some(obj) = self.objects.get_mut(&id) {
                        Arc::make_mut(obj).attrs.insert(name, old);
                    }
                }
                Undo::Linked(rel, s, t) => {
                    if let Some(set) = self.forward[rel.index()].get_mut(&s) {
                        Arc::make_mut(set).remove(&t);
                    }
                    if let Some(set) = self.reverse[rel.index()].get_mut(&t) {
                        Arc::make_mut(set).remove(&s);
                    }
                }
                Undo::Unlinked(rel, s, t) => {
                    self.relink(rel, s, t);
                }
            }
        }
        Ok(())
    }

    /// Runs `f` inside a transaction, committing on `Ok` and rolling
    /// back on `Err`.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error after rollback, or a
    /// [`OmsError::TransactionState`] error from `begin`.
    pub fn transact<T>(&mut self, f: impl FnOnce(&mut Database) -> OmsResult<T>) -> OmsResult<T> {
        self.begin()?;
        match f(self) {
            Ok(v) => {
                self.commit().expect("transaction is open");
                Ok(v)
            }
            Err(e) => {
                self.abort().expect("transaction is open");
                Err(e)
            }
        }
    }

    /// Restores a link pair without journalling — abort-path helper.
    fn relink(&mut self, rel: RelId, s: ObjectId, t: ObjectId) {
        Arc::make_mut(self.forward[rel.index()].get_or_insert_with(s, LinkSet::default)).insert(t);
        Arc::make_mut(self.reverse[rel.index()].get_or_insert_with(t, LinkSet::default)).insert(s);
    }

    pub(crate) fn raw_parts(&self) -> RawParts<'_> {
        let mut links = Vec::new();
        for rel in self.schema.relationships() {
            for (s, ts) in &self.forward[rel.index()] {
                for t in ts.iter() {
                    links.push((rel, s, *t));
                }
            }
        }
        (&self.schema, &self.objects, links)
    }

    /// The persistent object trie, for the delta codec in
    /// [`persist`](crate::persist): diffing two databases walks the
    /// shared tries directly instead of materialising flat views.
    pub(crate) fn objects_map(&self) -> &PMap<ObjectId, Arc<Object>> {
        &self.objects
    }

    /// The forward link trie of one relationship (source → targets),
    /// for the delta codec.
    pub(crate) fn forward_map(&self, rel: RelId) -> &PMap<ObjectId, LinkSet> {
        &self.forward[rel.index()]
    }

    /// The id the next [`Database::create`] would allocate. Recorded in
    /// delta images so a rebuilt store allocates exactly like the live
    /// one (a full image only lower-bounds this via the max raw id).
    pub(crate) fn next_id_raw(&self) -> u64 {
        self.next_id
    }

    /// Restores the allocation counter; delta-apply only. Never lowers
    /// it below what the present objects already imply.
    pub(crate) fn set_next_id_raw(&mut self, next: u64) {
        self.next_id = self.next_id.max(next);
    }

    pub(crate) fn raw_insert(&mut self, raw_id: u64, class: ClassId) -> ObjectId {
        let id = ObjectId(raw_id);
        let attrs = self
            .schema
            .class(class)
            .attributes
            .iter()
            .map(|a| (Arc::clone(&a.name), Value::default_for(a.ty)))
            .collect();
        self.objects.insert(id, Arc::new(Object { class, attrs }));
        self.next_id = self.next_id.max(raw_id + 1);
        id
    }
}

/// Borrowed view of the store used by the persistence layer.
pub(crate) type RawParts<'a> = (
    &'a Schema,
    &'a PMap<ObjectId, Arc<Object>>,
    Vec<(RelId, ObjectId, ObjectId)>,
);

fn type_name(ty: crate::schema::AttrType) -> &'static str {
    match ty {
        crate::schema::AttrType::Text => "text",
        crate::schema::AttrType::Int => "int",
        crate::schema::AttrType::Bool => "bool",
        crate::schema::AttrType::Bytes => "bytes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, SchemaBuilder};

    fn two_class_db() -> (Database, ClassId, ClassId, RelId, RelId) {
        let mut b = SchemaBuilder::new();
        let cell = b
            .class("Cell", &[("name", AttrType::Text), ("size", AttrType::Int)])
            .unwrap();
        let ver = b.class("Version", &[("n", AttrType::Int)]).unwrap();
        let has = b
            .relationship("has", cell, ver, Cardinality::OneToMany)
            .unwrap();
        let twin = b
            .relationship("twin", cell, cell, Cardinality::OneToOne)
            .unwrap();
        (Database::new(b.build()), cell, ver, has, twin)
    }

    #[test]
    fn snapshot_is_isolated_and_shares_blob_payloads() {
        let mut b = SchemaBuilder::new();
        let cell = b
            .class(
                "Cell",
                &[("name", AttrType::Text), ("data", AttrType::Bytes)],
            )
            .unwrap();
        let mut db = Database::new(b.build());
        let id = db.create(cell).unwrap();
        let payload = cad_vfs::Blob::from(b"netlist adder\n".to_vec());
        db.set(id, "data", Value::Bytes(payload.clone())).unwrap();

        let before = cad_vfs::Blob::materializations();
        let snap = db.snapshot();
        assert_eq!(
            cad_vfs::Blob::materializations(),
            before,
            "snapshotting must not materialize any payload bytes"
        );
        let shared = snap.get(id, "data").unwrap().as_blob().unwrap().clone();
        assert!(
            cad_vfs::Blob::ptr_eq(&payload, &shared),
            "snapshot shares the original payload allocation"
        );

        // Mutating the original afterwards must not leak into the copy.
        db.set(id, "name", Value::from("renamed")).unwrap();
        db.delete(id).unwrap();
        assert_eq!(snap.get(id, "name").unwrap().as_text(), Some(""));
        assert!(matches!(db.get(id, "name"), Err(OmsError::NoSuchObject(_))));
    }

    #[test]
    fn snapshot_is_structurally_shared_until_written() {
        let (mut db, cell, ..) = two_class_db();
        let sentinel = db.create(cell).unwrap();
        db.set(sentinel, "name", Value::from("sentinel")).unwrap();
        let others: Vec<ObjectId> = (0..50).map(|_| db.create(cell).unwrap()).collect();

        let snap = db.snapshot();
        assert!(
            db.object_shared_with(&snap, sentinel),
            "snapshotting copies no objects"
        );
        // Writing *another* object path-copies trie nodes only; the
        // sentinel allocation stays shared between live db and snapshot.
        db.set(others[0], "name", Value::from("touched")).unwrap();
        assert!(db.object_shared_with(&snap, sentinel));
        assert!(!db.object_shared_with(&snap, others[0]));
        // Writing the sentinel unshares exactly the sentinel.
        db.set(sentinel, "name", Value::from("changed")).unwrap();
        assert!(!db.object_shared_with(&snap, sentinel));
        assert!(db.object_shared_with(&snap, others[10]));
        assert_eq!(
            snap.get(sentinel, "name").unwrap().as_text(),
            Some("sentinel"),
            "the snapshot keeps the pre-write value"
        );
    }

    #[test]
    fn snapshot_drops_the_open_transaction() {
        let (mut db, cell, ..) = two_class_db();
        let id = db.create(cell).unwrap();
        db.begin().unwrap();
        db.set(id, "name", Value::from("mid-txn")).unwrap();
        let snap = db.snapshot();
        // The snapshot sees the uncommitted value but has no journal:
        // a fresh transaction opens cleanly.
        assert_eq!(snap.get(id, "name").unwrap().as_text(), Some("mid-txn"));
        let mut snap = snap;
        snap.begin().unwrap();
        snap.abort().unwrap();
        db.abort().unwrap();
        assert_eq!(db.get(id, "name").unwrap().as_text(), Some(""));
    }

    #[test]
    fn create_initialises_defaults() {
        let (mut db, cell, ..) = two_class_db();
        let id = db.create(cell).unwrap();
        assert_eq!(db.get(id, "name").unwrap().as_text(), Some(""));
        assert_eq!(db.get(id, "size").unwrap().as_int(), Some(0));
    }

    #[test]
    fn set_rejects_wrong_type() {
        let (mut db, cell, ..) = two_class_db();
        let id = db.create(cell).unwrap();
        assert!(matches!(
            db.set(id, "size", Value::from("big")),
            Err(OmsError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn set_rejects_undeclared_attribute() {
        let (mut db, cell, ..) = two_class_db();
        let id = db.create(cell).unwrap();
        assert!(matches!(
            db.set(id, "ghost", Value::from(1i64)),
            Err(OmsError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn stale_ids_do_not_alias() {
        let (mut db, cell, ..) = two_class_db();
        let a = db.create(cell).unwrap();
        db.delete(a).unwrap();
        let b = db.create(cell).unwrap();
        assert_ne!(a, b, "ids must not be reused");
        assert!(matches!(db.get(a, "name"), Err(OmsError::NoSuchObject(_))));
    }

    #[test]
    fn link_enforces_endpoint_classes() {
        let (mut db, cell, ver, has, _) = two_class_db();
        let c = db.create(cell).unwrap();
        let v = db.create(ver).unwrap();
        db.link(has, c, v).unwrap();
        assert!(matches!(
            db.link(has, v, c),
            Err(OmsError::EndpointClassMismatch { .. })
        ));
    }

    #[test]
    fn one_to_many_limits_target_side() {
        let (mut db, cell, ver, has, _) = two_class_db();
        let c1 = db.create(cell).unwrap();
        let c2 = db.create(cell).unwrap();
        let v = db.create(ver).unwrap();
        db.link(has, c1, v).unwrap();
        // v already has an owner; a second owner violates OneToMany.
        assert!(matches!(
            db.link(has, c2, v),
            Err(OmsError::CardinalityViolation { .. })
        ));
        // ...but c1 may own many versions.
        let v2 = db.create(ver).unwrap();
        db.link(has, c1, v2).unwrap();
        assert_eq!(db.targets(has, c1).len(), 2);
    }

    #[test]
    fn one_to_one_limits_both_sides() {
        let (mut db, cell, _, _, twin) = two_class_db();
        let a = db.create(cell).unwrap();
        let b = db.create(cell).unwrap();
        let c = db.create(cell).unwrap();
        db.link(twin, a, b).unwrap();
        assert!(db.link(twin, a, c).is_err(), "source side limited");
        assert!(db.link(twin, c, b).is_err(), "target side limited");
    }

    #[test]
    fn unlink_then_relink_allowed() {
        let (mut db, cell, _, _, twin) = two_class_db();
        let a = db.create(cell).unwrap();
        let b = db.create(cell).unwrap();
        db.link(twin, a, b).unwrap();
        db.unlink(twin, a, b).unwrap();
        assert!(!db.linked(twin, a, b));
        db.link(twin, a, b).unwrap();
    }

    #[test]
    fn unlink_missing_reports_no_such_link() {
        let (mut db, cell, _, _, twin) = two_class_db();
        let a = db.create(cell).unwrap();
        let b = db.create(cell).unwrap();
        assert!(matches!(
            db.unlink(twin, a, b),
            Err(OmsError::NoSuchLink { .. })
        ));
    }

    #[test]
    fn delete_refuses_linked_object() {
        let (mut db, cell, ver, has, _) = two_class_db();
        let c = db.create(cell).unwrap();
        let v = db.create(ver).unwrap();
        db.link(has, c, v).unwrap();
        assert!(matches!(db.delete(v), Err(OmsError::ObjectStillLinked(_))));
        db.unlink(has, c, v).unwrap();
        db.delete(v).unwrap();
    }

    #[test]
    fn navigation_is_sorted_and_symmetric() {
        let (mut db, cell, ver, has, _) = two_class_db();
        let c = db.create(cell).unwrap();
        let v1 = db.create(ver).unwrap();
        let v2 = db.create(ver).unwrap();
        db.link(has, c, v2).unwrap();
        db.link(has, c, v1).unwrap();
        assert_eq!(db.targets(has, c), vec![v1, v2]);
        assert_eq!(db.sources(has, v1), vec![c]);
    }

    #[test]
    fn find_by_attr_matches_exact_value() {
        let (mut db, cell, ..) = two_class_db();
        let a = db.create(cell).unwrap();
        db.set(a, "name", Value::from("adder")).unwrap();
        assert_eq!(
            db.find_by_attr(cell, "name", &Value::from("adder")),
            Some(a)
        );
        assert_eq!(db.find_by_attr(cell, "name", &Value::from("none")), None);
    }

    #[test]
    fn abort_rolls_back_everything() {
        let (mut db, cell, ver, has, _) = two_class_db();
        let keep = db.create(cell).unwrap();
        db.set(keep, "name", Value::from("before")).unwrap();

        db.begin().unwrap();
        let temp = db.create(ver).unwrap();
        db.link(has, keep, temp).unwrap();
        db.set(keep, "name", Value::from("after")).unwrap();
        db.unlink(has, keep, temp).unwrap();
        db.abort().unwrap();

        assert_eq!(db.get(keep, "name").unwrap().as_text(), Some("before"));
        assert!(matches!(db.get(temp, "n"), Err(OmsError::NoSuchObject(_))));
        assert!(db.targets(has, keep).is_empty());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn commit_makes_mutations_permanent() {
        let (mut db, cell, ..) = two_class_db();
        db.begin().unwrap();
        let id = db.create(cell).unwrap();
        db.commit().unwrap();
        assert!(db.get(id, "name").is_ok());
    }

    #[test]
    fn transactions_do_not_nest() {
        let (mut db, ..) = two_class_db();
        db.begin().unwrap();
        assert!(matches!(db.begin(), Err(OmsError::TransactionState(_))));
        db.commit().unwrap();
        assert!(matches!(db.commit(), Err(OmsError::TransactionState(_))));
        assert!(matches!(db.abort(), Err(OmsError::TransactionState(_))));
    }

    #[test]
    fn transact_rolls_back_on_error() {
        let (mut db, cell, ..) = two_class_db();
        let before = db.len();
        let result: OmsResult<()> = db.transact(|db| {
            db.create(cell)?;
            Err(OmsError::TransactionState("forced failure"))
        });
        assert!(result.is_err());
        assert_eq!(db.len(), before);
    }

    #[test]
    fn transact_commits_on_success() {
        let (mut db, cell, ..) = two_class_db();
        let id = db.transact(|db| db.create(cell)).unwrap();
        assert!(db.get(id, "name").is_ok());
    }

    #[test]
    fn abort_of_unlink_restores_link() {
        let (mut db, cell, ver, has, _) = two_class_db();
        let c = db.create(cell).unwrap();
        let v = db.create(ver).unwrap();
        db.link(has, c, v).unwrap();
        db.begin().unwrap();
        db.unlink(has, c, v).unwrap();
        db.abort().unwrap();
        assert!(db.linked(has, c, v));
    }
}
