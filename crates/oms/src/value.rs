//! Runtime attribute values.

use std::fmt;

use cad_vfs::Blob;

use crate::schema::AttrType;

/// A runtime value stored in an object attribute.
///
/// Each variant corresponds to one [`AttrType`]; the store checks the
/// correspondence on every write.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// UTF-8 text.
    Text(String),
    /// Signed 64-bit integer.
    Int(i64),
    /// Boolean flag.
    Bool(bool),
    /// Opaque byte payload (design data blobs). Held as a [`Blob`],
    /// so storing and copying design data through the database never
    /// duplicates the bytes on the host.
    Bytes(Blob),
}

impl Value {
    /// Returns the [`AttrType`] this value inhabits.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Text(_) => AttrType::Text,
            Value::Int(_) => AttrType::Int,
            Value::Bool(_) => AttrType::Bool,
            Value::Bytes(_) => AttrType::Bytes,
        }
    }

    /// Returns the text content, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean content, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the byte content, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the shared blob, if this is a [`Value::Bytes`]. Clone
    /// the result to keep the payload without copying it.
    pub fn as_blob(&self) -> Option<&Blob> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The default value for an attribute type (empty/zero/false).
    pub fn default_for(ty: AttrType) -> Value {
        match ty {
            AttrType::Text => Value::Text(String::new()),
            AttrType::Int => Value::Int(0),
            AttrType::Bool => Value::Bool(false),
            AttrType::Bytes => Value::Bytes(Blob::new()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Blob::from(b))
    }
}

impl From<Blob> for Value {
    fn from(b: Blob) -> Self {
        Value::Bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_type_matches_variant() {
        assert_eq!(Value::from("x").attr_type(), AttrType::Text);
        assert_eq!(Value::from(3i64).attr_type(), AttrType::Int);
        assert_eq!(Value::from(true).attr_type(), AttrType::Bool);
        assert_eq!(Value::from(vec![1u8]).attr_type(), AttrType::Bytes);
    }

    #[test]
    fn accessors_return_none_on_wrong_variant() {
        assert_eq!(Value::from(1i64).as_text(), None);
        assert_eq!(Value::from("s").as_int(), None);
        assert_eq!(Value::from("s").as_bool(), None);
        assert_eq!(Value::from(1i64).as_bytes(), None);
    }

    #[test]
    fn defaults_inhabit_their_types() {
        for ty in [
            AttrType::Text,
            AttrType::Int,
            AttrType::Bool,
            AttrType::Bytes,
        ] {
            assert_eq!(Value::default_for(ty).attr_type(), ty);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::from(vec![0u8; 5]).to_string(), "<5 bytes>");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }
}
