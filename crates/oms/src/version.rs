//! Version graphs: derivation histories over stored objects.
//!
//! JCF records *"all derivation relationships between schematic and
//! layout versions"* (§2.4) and offers two versioning levels (cell
//! versions and variants, §3.2). This module provides the underlying
//! directed-acyclic derivation graph: nodes are [`ObjectId`]s, edges
//! point from a predecessor version to a version derived from it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::store::ObjectId;

/// A directed acyclic graph of derivation edges between objects.
///
/// An edge `a -> b` means *b was derived from a* (the paper's
/// `precedes` relation in Figure 1). A node may have several
/// predecessors (a merge) and several successors (variant branches).
/// Cycles are rejected, keeping histories well-founded.
///
/// # Examples
///
/// ```
/// # use oms::{VersionGraph, ObjectId};
/// let mut g = VersionGraph::new();
/// let v1 = ObjectId::for_tests(1);
/// let v2 = ObjectId::for_tests(2);
/// g.add_node(v1);
/// g.add_node(v2);
/// assert!(g.derive(v1, v2));
/// assert!(g.is_ancestor(v1, v2));
/// assert_eq!(g.heads(), vec![v2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionGraph {
    successors: BTreeMap<ObjectId, BTreeSet<ObjectId>>,
    predecessors: BTreeMap<ObjectId, BTreeSet<ObjectId>>,
}

impl VersionGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node without edges (a root version).
    ///
    /// Adding an existing node is a no-op.
    pub fn add_node(&mut self, id: ObjectId) {
        self.successors.entry(id).or_default();
        self.predecessors.entry(id).or_default();
    }

    /// Returns `true` if `id` is a registered node.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.successors.contains_key(&id)
    }

    /// Number of registered versions.
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// Returns `true` if no versions are registered.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Records that `derived` was derived from `base`.
    ///
    /// Both nodes are registered if necessary. Returns `false` (and
    /// changes nothing) if the edge would create a cycle or is a
    /// self-edge; returns `true` otherwise, including for duplicate
    /// edges, which are idempotent.
    pub fn derive(&mut self, base: ObjectId, derived: ObjectId) -> bool {
        if base == derived {
            return false;
        }
        self.add_node(base);
        self.add_node(derived);
        if self.is_ancestor(derived, base) {
            return false;
        }
        self.successors
            .get_mut(&base)
            .expect("just added")
            .insert(derived);
        self.predecessors
            .get_mut(&derived)
            .expect("just added")
            .insert(base);
        true
    }

    /// Returns the direct predecessors of `id`, sorted.
    pub fn predecessors(&self, id: ObjectId) -> Vec<ObjectId> {
        self.predecessors
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns the direct successors of `id`, sorted.
    pub fn successors(&self, id: ObjectId) -> Vec<ObjectId> {
        self.successors
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns `true` if `ancestor` precedes `descendant` transitively
    /// (or equals it).
    pub fn is_ancestor(&self, ancestor: ObjectId, descendant: ObjectId) -> bool {
        if ancestor == descendant {
            return self.contains(ancestor);
        }
        let mut queue = VecDeque::from([ancestor]);
        let mut seen = BTreeSet::new();
        while let Some(n) = queue.pop_front() {
            if n == descendant {
                return true;
            }
            if let Some(succ) = self.successors.get(&n) {
                for &s in succ {
                    if seen.insert(s) {
                        queue.push_back(s);
                    }
                }
            }
        }
        false
    }

    /// Returns all versions with no successors (the current heads), sorted.
    pub fn heads(&self) -> Vec<ObjectId> {
        self.successors
            .iter()
            .filter(|(_, succ)| succ.is_empty())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Returns all versions with no predecessors (the roots), sorted.
    pub fn roots(&self) -> Vec<ObjectId> {
        self.predecessors
            .iter()
            .filter(|(_, pred)| pred.is_empty())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Returns every transitive ancestor of `id` (excluding `id`), sorted.
    pub fn ancestors(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([id]);
        while let Some(n) = queue.pop_front() {
            if let Some(preds) = self.predecessors.get(&n) {
                for &p in preds {
                    if out.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Returns the full derivation chain from some root to `id`
    /// following first predecessors (the paper's linear history view).
    pub fn lineage(&self, id: ObjectId) -> Vec<ObjectId> {
        let mut chain = vec![id];
        let mut current = id;
        let mut guard = self.len() + 1;
        while let Some(&first) = self
            .predecessors
            .get(&current)
            .and_then(|p| p.iter().next())
        {
            chain.push(first);
            current = first;
            guard -= 1;
            if guard == 0 {
                break; // unreachable for acyclic graphs; guards corruption
            }
        }
        chain.reverse();
        chain
    }
}

impl ObjectId {
    /// Builds an `ObjectId` from a raw value, for tests and examples
    /// that exercise [`VersionGraph`] without a database.
    pub fn for_tests(raw: u64) -> Self {
        ObjectId::from_raw(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId::for_tests(n)
    }

    #[test]
    fn derive_builds_history() {
        let mut g = VersionGraph::new();
        assert!(g.derive(id(1), id(2)));
        assert!(g.derive(id(2), id(3)));
        assert_eq!(g.lineage(id(3)), vec![id(1), id(2), id(3)]);
        assert_eq!(g.heads(), vec![id(3)]);
        assert_eq!(g.roots(), vec![id(1)]);
    }

    #[test]
    fn self_edge_rejected() {
        let mut g = VersionGraph::new();
        assert!(!g.derive(id(1), id(1)));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = VersionGraph::new();
        assert!(g.derive(id(1), id(2)));
        assert!(g.derive(id(2), id(3)));
        assert!(!g.derive(id(3), id(1)), "closing a cycle must fail");
        assert!(g.is_ancestor(id(1), id(3)));
        assert!(!g.is_ancestor(id(3), id(1)));
    }

    #[test]
    fn branching_creates_multiple_heads() {
        let mut g = VersionGraph::new();
        g.derive(id(1), id(2));
        g.derive(id(1), id(3));
        assert_eq!(g.heads(), vec![id(2), id(3)]);
        assert_eq!(g.successors(id(1)), vec![id(2), id(3)]);
    }

    #[test]
    fn merge_records_multiple_predecessors() {
        let mut g = VersionGraph::new();
        g.derive(id(1), id(3));
        g.derive(id(2), id(3));
        assert_eq!(g.predecessors(id(3)), vec![id(1), id(2)]);
        assert_eq!(g.ancestors(id(3)), vec![id(1), id(2)]);
    }

    #[test]
    fn is_ancestor_includes_self_only_if_present() {
        let mut g = VersionGraph::new();
        g.add_node(id(7));
        assert!(g.is_ancestor(id(7), id(7)));
        assert!(!g.is_ancestor(id(8), id(8)));
    }

    #[test]
    fn duplicate_edges_idempotent() {
        let mut g = VersionGraph::new();
        assert!(g.derive(id(1), id(2)));
        assert!(g.derive(id(1), id(2)));
        assert_eq!(g.successors(id(1)), vec![id(2)]);
    }

    #[test]
    fn lineage_of_root_is_itself() {
        let mut g = VersionGraph::new();
        g.add_node(id(5));
        assert_eq!(g.lineage(id(5)), vec![id(5)]);
    }
}
