//! Deterministic randomized suite (SplitMix64-driven), covering the
//! same ground as the gated `prop_oms` proptest suite — transaction
//! rollback, image round trips and the incremental checkpointer —
//! without any external dependency.

use cad_vfs::SplitMix64;
use oms::{persist, AttrType, Cardinality, Database, Schema, SchemaBuilder, Value};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let node = b
        .class(
            "Node",
            &[("label", AttrType::Text), ("weight", AttrType::Int)],
        )
        .unwrap();
    b.relationship("edge", node, node, Cardinality::ManyToMany)
        .unwrap();
    b.build()
}

/// Applies `n` random mutations drawn from the generator.
fn mutate(db: &mut Database, rng: &mut SplitMix64, n: usize) {
    let node = db.schema().class_by_name("Node").unwrap();
    let edge = db.schema().relationship_by_name("edge").unwrap();
    for _ in 0..n {
        let ids = db.objects_of(node);
        let pick = |rng: &mut SplitMix64| {
            if ids.is_empty() {
                None
            } else {
                Some(ids[rng.below(ids.len())])
            }
        };
        match rng.below(6) {
            0 => {
                db.create(node).unwrap();
            }
            1 => {
                if let Some(id) = pick(rng) {
                    let len = rng.below(7);
                    let label = rng.ident(len.max(1));
                    db.set(id, "label", Value::from(label)).unwrap();
                }
            }
            2 => {
                if let Some(id) = pick(rng) {
                    let w = rng.next_u64() as i64;
                    db.set(id, "weight", Value::from(w)).unwrap();
                }
            }
            3 => {
                if let (Some(x), Some(y)) = (pick(rng), pick(rng)) {
                    let _ = db.link(edge, x, y);
                }
            }
            4 => {
                if let (Some(x), Some(y)) = (pick(rng), pick(rng)) {
                    let _ = db.unlink(edge, x, y);
                }
            }
            _ => {
                if let Some(id) = pick(rng) {
                    let _ = db.delete(id);
                }
            }
        }
    }
}

#[test]
fn abort_restores_exact_image() {
    let mut rng = SplitMix64::new(0x0175_1995);
    for _ in 0..25 {
        let mut db = Database::new(schema());
        mutate(&mut db, &mut rng, 20);
        let before = persist::dump(&db);
        db.begin().unwrap();
        mutate(&mut db, &mut rng, 30);
        db.abort().unwrap();
        assert_eq!(persist::dump(&db), before);
    }
}

#[test]
fn image_round_trip() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..25 {
        let mut db = Database::new(schema());
        mutate(&mut db, &mut rng, 40);
        let image = persist::dump(&db);
        let restored = persist::parse(schema(), &image).unwrap();
        assert_eq!(persist::dump(&restored), image);
    }
}

#[test]
fn checkpointer_always_matches_full_dump() {
    // The incremental checkpointer must produce byte-identical images
    // to the full dump at every step of a random mutation history.
    let mut rng = SplitMix64::new(8);
    let mut db = Database::new(schema());
    let mut ckpt = persist::Checkpointer::new();
    for step in 0..60 {
        mutate(&mut db, &mut rng, 3);
        assert_eq!(ckpt.dump(&db), persist::dump(&db), "step {step}");
    }
    // A dump with no intervening mutation serializes nothing afresh.
    let _ = ckpt.dump(&db);
    assert_eq!(ckpt.last_serialized(), 0);
}
