//! Deterministic property suite for [`PMap::diff`] (SplitMix64-driven,
//! mirroring the map against a `BTreeMap` reference), in the style of
//! `det_oms`. Covers the delta-checkpoint contract end to end:
//!
//! - the diff of two mirrored maps reproduces the *exact*
//!   add/update/remove set a `BTreeMap` comparison would produce;
//! - `apply_diff(base, diff) == target`, value for value;
//! - the diff of pointer-equal maps is empty and O(1) — zero value
//!   comparisons, zero value clones;
//! - the diff of an evolved clone performs work proportional to the
//!   number of touched keys, not the map size (structural sharing).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use cad_vfs::SplitMix64;
use oms::{DiffEntry, PMap};

/// A value whose comparisons and clones are globally counted, so the
/// suite can assert *how much work* a diff did, not just its output.
#[derive(Debug, Eq)]
struct Probe(u64);

static COMPARISONS: AtomicUsize = AtomicUsize::new(0);
static CLONES: AtomicUsize = AtomicUsize::new(0);

impl PartialEq for Probe {
    fn eq(&self, other: &Probe) -> bool {
        COMPARISONS.fetch_add(1, Ordering::Relaxed);
        self.0 == other.0
    }
}

impl Clone for Probe {
    fn clone(&self) -> Probe {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Probe(self.0)
    }
}

fn reset_counters() {
    COMPARISONS.store(0, Ordering::Relaxed);
    CLONES.store(0, Ordering::Relaxed);
}

/// The reference diff: what a pair of `BTreeMap`s says changed.
fn reference_diff(
    base: &BTreeMap<u64, u64>,
    target: &BTreeMap<u64, u64>,
) -> Vec<DiffEntry<u64, u64>> {
    let mut out = Vec::new();
    for (k, v) in base {
        match target.get(k) {
            None => out.push(DiffEntry::Removed(*k)),
            Some(t) if t != v => out.push(DiffEntry::Updated(*k, *t)),
            Some(_) => {}
        }
    }
    for (k, v) in target {
        if !base.contains_key(k) {
            out.push(DiffEntry::Added(*k, *v));
        }
    }
    out.sort_by_key(|e| *e.key());
    out
}

/// Builds a `(PMap, BTreeMap)` mirrored pair from `n` seeded inserts
/// over a small key universe (to force collisions and updates).
fn seeded_pair(
    rng: &mut SplitMix64,
    n: usize,
    universe: u64,
) -> (PMap<u64, u64>, BTreeMap<u64, u64>) {
    let mut m = PMap::new();
    let mut r = BTreeMap::new();
    for _ in 0..n {
        let k = rng.next_u64() % universe;
        let v = rng.next_u64();
        if v.is_multiple_of(7) {
            m.remove(&k);
            r.remove(&k);
        } else {
            m.insert(k, v);
            r.insert(k, v);
        }
    }
    (m, r)
}

#[test]
fn diff_of_mirrored_maps_matches_the_reference_exactly() {
    let mut rng = SplitMix64::new(0x00D1_FF01);
    for trial in 0..40 {
        // Independent maps: every overlap pattern shows up.
        let (base, base_ref) = seeded_pair(&mut rng, 60 + trial, 97);
        let (target, target_ref) = seeded_pair(&mut rng, 60 + trial, 97);
        let got = base.diff(&target);
        let want = reference_diff(&base_ref, &target_ref);
        assert_eq!(got, want, "trial {trial}");
        // Records must come out key-sorted: the persisted delta format
        // relies on it for canonical bytes.
        let keys: Vec<u64> = got.iter().map(|e| *e.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "trial {trial}: diff not key-ordered");
    }
}

#[test]
fn apply_diff_turns_base_into_target() {
    let mut rng = SplitMix64::new(0x00D1_FF02);
    for trial in 0..40 {
        let (base, _) = seeded_pair(&mut rng, 80, 211);
        // Evolve a clone so the diff sees both shared and fresh nodes.
        let mut target = base.clone();
        for _ in 0..rng.below(50) {
            let k = rng.next_u64() % 211;
            if rng.next_u64().is_multiple_of(3) {
                target.remove(&k);
            } else {
                target.insert(k, rng.next_u64());
            }
        }
        let diff = base.diff(&target);
        let rebuilt = base.apply_diff(&diff);
        assert_eq!(rebuilt, target, "trial {trial}");
        assert_eq!(rebuilt.len(), target.len(), "trial {trial}");
        // And the reverse direction works with the reverse diff.
        let back = target.apply_diff(&target.diff(&base));
        assert_eq!(back, base, "trial {trial} (reverse)");
    }
}

#[test]
fn diff_of_pointer_equal_maps_is_empty_and_o1() {
    let mut m: PMap<u64, Probe> = PMap::new();
    let mut rng = SplitMix64::new(0x00D1_FF03);
    for _ in 0..4096 {
        m.insert(rng.next_u64(), Probe(rng.next_u64()));
    }
    let clone = m.clone();
    assert!(m.root_shared_with(&clone));
    reset_counters();
    assert!(m.diff(&clone).is_empty());
    assert!(clone.diff(&m).is_empty());
    assert_eq!(
        COMPARISONS.load(Ordering::Relaxed),
        0,
        "pointer-equal maps must diff without comparing a single value"
    );
    assert_eq!(
        CLONES.load(Ordering::Relaxed),
        0,
        "pointer-equal maps must diff without cloning a single value"
    );
}

#[test]
fn diff_of_an_evolved_clone_is_proportional_to_the_delta() {
    let mut m: PMap<u64, Probe> = PMap::new();
    let mut rng = SplitMix64::new(0x00D1_FF04);
    for _ in 0..4096 {
        m.insert(rng.next_u64(), Probe(rng.next_u64()));
    }
    let base = m.clone();
    // Touch 8 keys out of ~4096.
    let touched: Vec<u64> = base.keys().step_by(512).take(8).collect();
    for (i, k) in touched.iter().enumerate() {
        m.insert(*k, Probe(i as u64));
    }
    reset_counters();
    let diff = base.diff(&m);
    assert_eq!(diff.len(), touched.len());
    // Path-copying unshares at most the spine of each touched key, so
    // the walk may compare the handful of leaves sharing those copied
    // nodes — but nowhere near the 4096 an O(n) scan would do.
    let compared = COMPARISONS.load(Ordering::Relaxed);
    assert!(
        compared <= touched.len() * 64,
        "diff compared {compared} values for an 8-key delta over 4096 entries"
    );
}

#[test]
fn diff_covers_empty_and_disjoint_extremes() {
    let empty: PMap<u64, u64> = PMap::new();
    let full: PMap<u64, u64> = (0..32u64).map(|i| (i * 17, i)).collect();
    assert_eq!(empty.diff(&empty), Vec::new());
    let adds = empty.diff(&full);
    assert_eq!(adds.len(), 32);
    assert!(adds.iter().all(|e| matches!(e, DiffEntry::Added(_, _))));
    let removes = full.diff(&empty);
    assert_eq!(removes.len(), 32);
    assert!(removes.iter().all(|e| matches!(e, DiffEntry::Removed(_))));
    assert_eq!(empty.apply_diff(&adds), full);
    assert_eq!(full.apply_diff(&removes), empty);
    // Extreme keys keep their big-endian path intact through the
    // prefix-accumulation in the walk.
    let mut hi: PMap<u64, u64> = PMap::new();
    hi.insert(0, 1);
    hi.insert(u64::MAX, 2);
    let lo: PMap<u64, u64> = PMap::new();
    let d = lo.diff(&hi);
    assert_eq!(
        d,
        vec![DiffEntry::Added(0, 1), DiffEntry::Added(u64::MAX, 2)]
    );
}
