// Gated off by default: this suite needs the crates.io `proptest`
// crate, which offline builds cannot fetch. Re-add the dev-dependency
// and build with `--features proptest-suites` to run it. The
// deterministic SplitMix64-driven suites cover the same ground by
// default.
#![cfg(feature = "proptest-suites")]

//! Property-based tests: transaction rollback and image round-trip.

use oms::{persist, AttrType, Cardinality, Database, OmsResult, Schema, SchemaBuilder, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let node = b
        .class(
            "Node",
            &[("label", AttrType::Text), ("weight", AttrType::Int)],
        )
        .unwrap();
    b.relationship("edge", node, node, Cardinality::ManyToMany)
        .unwrap();
    b.build()
}

/// A random mutation applied to the store.
#[derive(Debug, Clone)]
enum Op {
    Create,
    SetLabel(usize, String),
    SetWeight(usize, i64),
    Link(usize, usize),
    Unlink(usize, usize),
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Create),
        (any::<usize>(), "[a-z]{0,6}").prop_map(|(i, s)| Op::SetLabel(i, s)),
        (any::<usize>(), any::<i64>()).prop_map(|(i, w)| Op::SetWeight(i, w)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Link(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Unlink(a, b)),
        any::<usize>().prop_map(Op::Delete),
    ]
}

fn apply(db: &mut Database, ops: &[Op]) {
    let node = db.schema().class_by_name("Node").unwrap();
    let edge = db.schema().relationship_by_name("edge").unwrap();
    for op in ops {
        let ids = db.objects_of(node);
        let pick = |i: usize| ids.get(i % ids.len().max(1)).copied();
        match op {
            Op::Create => {
                db.create(node).unwrap();
            }
            Op::SetLabel(i, s) => {
                if let Some(id) = pick(*i) {
                    db.set(id, "label", Value::from(s.clone())).unwrap();
                }
            }
            Op::SetWeight(i, w) => {
                if let Some(id) = pick(*i) {
                    db.set(id, "weight", Value::from(*w)).unwrap();
                }
            }
            Op::Link(a, b) => {
                if let (Some(x), Some(y)) = (pick(*a), pick(*b)) {
                    let _ = db.link(edge, x, y);
                }
            }
            Op::Unlink(a, b) => {
                if let (Some(x), Some(y)) = (pick(*a), pick(*b)) {
                    let _ = db.unlink(edge, x, y);
                }
            }
            Op::Delete(i) => {
                if let Some(id) = pick(*i) {
                    let _ = db.delete(id);
                }
            }
        }
    }
}

proptest! {
    /// Any sequence of mutations inside an aborted transaction leaves
    /// the database image bit-identical to the pre-transaction image.
    #[test]
    fn abort_restores_exact_image(
        setup in prop::collection::vec(op_strategy(), 0..20),
        inside in prop::collection::vec(op_strategy(), 0..30),
    ) {
        let mut db = Database::new(schema());
        apply(&mut db, &setup);
        let before = persist::dump(&db);
        db.begin().unwrap();
        apply(&mut db, &inside);
        db.abort().unwrap();
        prop_assert_eq!(persist::dump(&db), before);
    }

    /// The persistence image is a lossless round trip for any reachable
    /// database state.
    #[test]
    fn image_round_trip(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let mut db = Database::new(schema());
        apply(&mut db, &ops);
        let image = persist::dump(&db);
        let restored = persist::parse(schema(), &image).unwrap();
        prop_assert_eq!(persist::dump(&restored), image);
    }

    /// Committed transactions behave exactly like unjournalled mutations.
    #[test]
    fn commit_equals_plain_apply(ops in prop::collection::vec(op_strategy(), 0..30)) {
        let mut plain = Database::new(schema());
        apply(&mut plain, &ops);

        let mut txn = Database::new(schema());
        let ops_ref = &ops;
        let result: OmsResult<()> = txn.transact(|db| {
            apply(db, ops_ref);
            Ok(())
        });
        prop_assert!(result.is_ok());
        prop_assert_eq!(persist::dump(&txn), persist::dump(&plain));
    }
}
