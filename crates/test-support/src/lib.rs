//! # test-support — shared helpers for the deterministic suites
//!
//! The crash matrix, the model oracle, the sink-ordering campaign and
//! the benchmark workloads all drive the engine from seeded random
//! streams and compare fingerprints across runs. Before this crate
//! each suite carried its own copy of the same three helpers; they
//! live here now so a new suite starts from the shared vocabulary
//! instead of a fourth copy.
//!
//! - [`SplitMix64`] (re-exported from `cad_vfs`): the seeded stream
//!   every deterministic campaign draws from.
//! - [`Rng`]: the xorshift64* generator of the benchmark workloads.
//! - [`pick`] / [`pick_index`]: uniform selection that consumes
//!   exactly one draw even when the pool is empty, so op streams stay
//!   aligned across runs whose world populations diverge.
//! - [`fnv64`] / [`combine_fingerprints`]: the FNV-1a accumulator used
//!   to fold several per-component fingerprints into one comparable
//!   line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::redundant_clone)]

pub use cad_vfs::SplitMix64;

/// A tiny deterministic RNG (xorshift64*) so experiments never depend
/// on crate-level RNG changes.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// The next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A value in `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// A biased coin: true with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// Picks a uniform random element, or `None` when empty — consuming
/// exactly one rng draw either way, so the stream stays aligned
/// regardless of world population.
pub fn pick<'a, T>(rng: &mut SplitMix64, items: &'a [T]) -> Option<&'a T> {
    pick_index(rng, items.len()).map(|i| &items[i])
}

/// Picks a uniform index in `0..len`, or `None` when `len` is zero —
/// consuming exactly one rng draw either way (stream alignment).
pub fn pick_index(rng: &mut SplitMix64, len: usize) -> Option<usize> {
    if len == 0 {
        rng.next_u64();
        None
    } else {
        Some(rng.below(len))
    }
}

/// FNV-1a 64 over a byte string, the fingerprint accumulator the
/// deterministic suites share.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds several per-component fingerprint strings into one comparable
/// hex line (order-sensitive: the caller fixes the component order).
pub fn combine_fingerprints<I, S>(parts: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.as_ref().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab","c"] and ["a","bc"] differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_zero_seed_is_remapped() {
        assert_eq!(
            Rng::new(0).next_u64(),
            Rng::new(0x9E3779B97F4A7C15).next_u64()
        );
    }

    #[test]
    fn pick_consumes_one_draw_even_when_empty() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let empty: [u32; 0] = [];
        assert!(pick(&mut a, &empty).is_none());
        b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pick_index_matches_pick() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let items = [10, 20, 30];
        let via_pick = *pick(&mut a, &items).unwrap();
        let via_index = items[pick_index(&mut b, items.len()).unwrap()];
        assert_eq!(via_pick, via_index);
    }

    #[test]
    fn combined_fingerprints_are_order_and_boundary_sensitive() {
        assert_ne!(
            combine_fingerprints(["a", "b"]),
            combine_fingerprints(["b", "a"])
        );
        assert_ne!(
            combine_fingerprints(["ab", "c"]),
            combine_fingerprints(["a", "bc"])
        );
        assert_eq!(
            combine_fingerprints(["x", "y"]),
            combine_fingerprints(["x", "y"])
        );
    }

    #[test]
    fn fnv64_matches_reference_vector() {
        // FNV-1a 64 of the empty string is the offset basis.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
