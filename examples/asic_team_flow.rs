//! A design team builds a hierarchical 4-bit ripple-carry adder in the
//! hybrid framework: concurrent workspaces, declared hierarchy,
//! variants for parallel experiments and a release configuration.
//!
//! This is the workload the paper's introduction motivates: *"teams
//! working with a large number of different dedicated tools"*.
//!
//! Run with `cargo run --example asic_team_flow`.

use std::collections::BTreeMap;
use std::error::Error;

use cad_tools::Simulator;
use design_data::{format, generate, Logic};
use hybrid::{Engine, ToolOutput};

fn main() -> Result<(), Box<dyn Error>> {
    let mut hy = Engine::builder().build();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false)?;
    let bob = hy.add_user("bob", false)?;
    let team = hy.add_team(admin, "adder-team")?;
    hy.add_team_member(admin, team, alice)?;
    hy.add_team_member(admin, team, bob)?;
    let flow = hy.standard_flow("adder-flow")?;

    let project = hy.create_project("alu16")?;
    let top_cell = hy.create_cell(project, "adder4")?;
    let fa_cell = hy.create_cell(project, "full_adder")?;
    let design = generate::ripple_adder(4);

    // --- bob owns the leaf cell ----------------------------------------
    let (fa_cv, fa_variant) = hy.create_cell_version(fa_cell, flow.flow, team)?;
    hy.reserve(bob, fa_cv)?;
    println!("bob reserved {}", hy.fmcad_cell_of(fa_cv)?);

    // Alice cannot touch bob's cell version (workspace isolation, §3.1)...
    assert!(hy.reserve(alice, fa_cv).is_err());
    println!("alice is locked out of bob's workspace (as §3.1 requires)");

    let fa_data = format::write_netlist(&design.netlists["full_adder"]).into_bytes();
    hy.run_activity(bob, fa_variant, flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: fa_data.into(),
        }])
    })?;
    hy.publish(bob, fa_cv)?;
    println!("bob published the full adder schematic");

    // --- alice owns the top cell; hierarchy is declared FIRST (§3.3) ----
    let (top_cv, top_variant) = hy.create_cell_version(top_cell, flow.flow, team)?;
    hy.reserve(alice, top_cv)?;
    hy.declare_comp_of(alice, top_cv, fa_cell)?;
    println!("alice declared adder4 CompOf full_adder via the JCF desktop");

    let top_bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
    // The generated netlist references "full_adder": accepted because declared.
    let top_data = top_bytes.clone();
    hy.run_activity(alice, top_variant, flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: top_data.into(),
        }])
    })?;

    // --- alice simulates the whole hierarchy ----------------------------
    let netlists = design.netlists;
    hy.run_activity(alice, top_variant, flow.simulate, false, move |session| {
        let text = String::from_utf8_lossy(&session.inputs["schematic"]).into_owned();
        let top = format::parse_netlist(&text).expect("staged data parses");
        let mut all: BTreeMap<String, design_data::Netlist> = netlists;
        all.insert(top.name().to_owned(), top);
        let mut sim = Simulator::elaborate("adder4", &all).expect("hierarchy elaborates");
        // 9 + 3 = 12.
        for (pin, v) in [
            ("a0", Logic::One),
            ("a1", Logic::Zero),
            ("a2", Logic::Zero),
            ("a3", Logic::One),
            ("b0", Logic::One),
            ("b1", Logic::One),
            ("b2", Logic::Zero),
            ("b3", Logic::Zero),
            ("cin", Logic::Zero),
        ] {
            sim.set_input(pin, v).expect("pin exists");
        }
        sim.settle().expect("combinational logic settles");
        let mut sum = 0u32;
        for i in 0..4 {
            if sim.value(&format!("s{i}")).expect("pin exists") == Logic::One {
                sum |= 1 << i;
            }
        }
        println!("simulated 9 + 3 = {sum} across {} gates", sim.gate_count());
        assert_eq!(sum, 12);
        Ok(vec![ToolOutput {
            viewtype: "waveform".into(),
            data: format::write_waveforms(sim.waves()).into_bytes().into(),
        }])
    })?;

    // --- a variant for a risky layout experiment (two-level versioning) -
    let experiment = hy.derive_variant(alice, top_cv, "compact-layout", Some(top_variant))?;
    println!("alice branched variant 'compact-layout' (JCF's second versioning level)");
    let top_for_exp = top_bytes;
    hy.run_activity(alice, experiment, flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: top_for_exp.into(),
        }])
    })?;

    // --- a release configuration ----------------------------------------
    let config = hy.create_configuration(alice, top_cv, "tapeout")?;
    let schematic_vt = hy.viewtype("schematic")?;
    let selection: Vec<jcf::DovId> = hy
        .jcf()
        .design_object_by_viewtype(top_variant, schematic_vt)
        .and_then(|d| hy.jcf().latest_version(d))
        .into_iter()
        .collect();
    let cfg_v = hy.create_config_version(alice, config, &selection)?;
    println!(
        "configuration 'tapeout' v1 selects {} version(s)",
        hy.jcf().config_contents(cfg_v).len()
    );

    hy.publish(alice, top_cv)?;
    let findings = hy.verify_project(project)?;
    println!("final consistency audit: {} finding(s)", findings.len());
    assert!(findings.is_empty());

    println!(
        "team session complete: {} desktop ops, {} tool windows, {} blocked FMCAD checkouts",
        hy.jcf().desktop_ops(),
        hy.fmcad_ui_ops(),
        hy.fmcad().blocked_checkouts(),
    );
    Ok(())
}
