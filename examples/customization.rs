//! The FMCAD extension language at work: the §2.4 wrappers that
//! trigger functions and lock menu points to prevent data
//! inconsistency, written as real scripts.
//!
//! Run with `cargo run --example customization`.

use std::error::Error;

use fmcad::Fmcad;
use fml::Value;

fn main() -> Result<(), Box<dyn Error>> {
    let mut fm = Fmcad::new();
    fm.create_library("alu")?;
    fm.create_cell("alu", "adder")?;
    fm.create_cellview("alu", "adder", "schematic", "schematic")?;
    fm.checkin(
        "alice",
        "alu",
        "adder",
        "schematic",
        b"netlist adder\n".to_vec(),
    )?;

    // A customisation script, as a CAD team's methodology group would
    // ship it: counts checkins, guards the tapeout menu and logs.
    fm.run_script(
        r#"
        (define checkins 0)
        (define quality-gate 2) ; versions required before tapeout

        (define (on-checkin cellview)
          (set! checkins (+ checkins 1))
          (host-call "log" (string-append "checkin #" (to-string checkins) " of " cellview))
          (if (< checkins quality-gate)
              (host-call "lock-menu" "Tapeout")
              (host-call "unlock-menu" "Tapeout"))
          checkins)

        (host-call "register-trigger" "checkin" "on-checkin")
        (host-call "lock-menu" "Tapeout") ; locked until the gate is met
        "#,
    )?;

    println!(
        "menu 'Tapeout' locked initially: {}",
        fm.menu_invoke("Tapeout").is_err()
    );

    // First checkin: still below the quality gate.
    fm.checkout("alice", "alu", "adder", "schematic")?;
    fm.checkin(
        "alice",
        "alu",
        "adder",
        "schematic",
        b"netlist adder rev2\n".to_vec(),
    )?;
    fm.fire_trigger("checkin", &[Value::Str("adder/schematic".into())])?;
    println!(
        "after 1 checkin, 'Tapeout' locked: {}",
        fm.menu_invoke("Tapeout").is_err()
    );

    // Second checkin satisfies the gate; the trigger unlocks the menu.
    fm.checkout("alice", "alu", "adder", "schematic")?;
    fm.checkin(
        "alice",
        "alu",
        "adder",
        "schematic",
        b"netlist adder rev3\n".to_vec(),
    )?;
    fm.fire_trigger("checkin", &[Value::Str("adder/schematic".into())])?;
    println!(
        "after 2 checkins, 'Tapeout' locked: {}",
        fm.menu_invoke("Tapeout").is_err()
    );

    println!("\nscript log:");
    for line in fm.customization().log() {
        println!("  {line}");
    }

    // A second script computes over framework state: pure FML.
    let result = fm.run_script(
        r#"
        (define (sum-to n)
          (define acc 0)
          (define i 1)
          (while (<= i n)
            (set! acc (+ acc i))
            (set! i (+ i 1)))
          acc)
        (sum-to 100)
        "#,
    )?;
    println!("\nFML computed (sum-to 100) = {result}");
    assert_eq!(result.to_string(), "5050");
    Ok(())
}
