//! A scriptable JCF-FMCAD desktop: the kind of command console the
//! paper's designers would have used on top of the hybrid framework.
//!
//! Reads a command script (one command per line) from the file given as
//! the first argument, or runs a built-in demo session.
//!
//! ```text
//! adduser <name> [manager]      register a user
//! addteam <team> <member>...    create a team with members
//! project <name>                create a coupled project
//! cell <project> <cell>         create a cell
//! version <user> <cell>         new cell version, reserved by <user>
//! declare <user> <cell>@N <child-cell>
//! schematic <user> <cell>@N gates=<n> seed=<k>
//! fulladder <user> <cell>@N
//! simulate <user> <cell>@N     run the event-driven simulator
//! layout <user> <cell>@N       derive an abstract layout
//! publish <user> <cell>@N
//! browse <user> <cell>@N       read-only access (pays the copy, §3.6)
//! audit <project>
//! journal [n]                  last n engine ops (default 10)
//! status                       desktop statistics
//! ```
//!
//! Run with `cargo run --example desktop_shell [script.txt]`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use cad_tools::Simulator;
use design_data::{format, generate, Logic};
use hybrid::{Engine, StandardFlow, ToolOutput};
use jcf::{CellId, CellVersionId, TeamId, UserId, VariantId};

const DEMO_SCRIPT: &str = "\
# A two-designer session on a shared project.
adduser alice
adduser bob
addteam asic alice bob
project demo
cell demo counter
cell demo glue
version alice counter
version bob glue
schematic alice counter@1 gates=40 seed=7
flowstatus counter@1
simulate alice counter@1
layout alice counter@1
lvs alice counter@1
timing alice counter@1
fulladder bob glue@1
simulate bob glue@1
flowstatus glue@1
publish alice counter@1
publish bob glue@1
tree demo
audit demo
journal 8
status
";

/// Interpreter state: name registries over one hybrid installation.
struct Shell {
    hy: Engine,
    flow: StandardFlow,
    users: BTreeMap<String, UserId>,
    teams: BTreeMap<String, TeamId>,
    projects: BTreeMap<String, jcf::ProjectId>,
    cells: BTreeMap<String, CellId>,
    versions: BTreeMap<String, (CellVersionId, VariantId)>,
    default_team: Option<TeamId>,
}

#[derive(Debug)]
struct ShellError(String);

impl fmt::Display for ShellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ShellError {}

fn err(msg: impl Into<String>) -> Box<dyn Error> {
    Box::new(ShellError(msg.into()))
}

impl Shell {
    fn new() -> Result<Self, Box<dyn Error>> {
        let mut hy = Engine::builder().build();
        let flow = hy.standard_flow("shell-flow")?;
        Ok(Shell {
            hy,
            flow,
            users: BTreeMap::new(),
            teams: BTreeMap::new(),
            projects: BTreeMap::new(),
            cells: BTreeMap::new(),
            versions: BTreeMap::new(),
            default_team: None,
        })
    }

    fn user(&self, name: &str) -> Result<UserId, Box<dyn Error>> {
        self.users
            .get(name)
            .copied()
            .ok_or_else(|| err(format!("unknown user {name}")))
    }

    fn version(&self, key: &str) -> Result<(CellVersionId, VariantId), Box<dyn Error>> {
        self.versions
            .get(key)
            .copied()
            .ok_or_else(|| err(format!("unknown cell version {key}")))
    }

    fn kv(args: &[&str], key: &str, default: u64) -> u64 {
        args.iter()
            .find_map(|a| a.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn exec(&mut self, line: &str) -> Result<(), Box<dyn Error>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["adduser", name, rest @ ..] => {
                let manager = rest.contains(&"manager");
                let id = self.hy.add_user(name, manager)?;
                self.users.insert((*name).to_owned(), id);
                println!("+ user {name}{}", if manager { " (manager)" } else { "" });
            }
            ["addteam", team, members @ ..] => {
                let admin = self.hy.admin();
                let id = self.hy.add_team(admin, team)?;
                for m in members {
                    let user = self.user(m)?;
                    self.hy.add_team_member(admin, id, user)?;
                }
                self.teams.insert((*team).to_owned(), id);
                self.default_team = Some(id);
                println!("+ team {team} with {} member(s)", members.len());
            }
            ["project", name] => {
                let id = self.hy.create_project(name)?;
                self.projects.insert((*name).to_owned(), id);
                println!("+ project {name} (library {name} coupled)");
            }
            ["cell", project, cell] => {
                let project_id = *self
                    .projects
                    .get(*project)
                    .ok_or_else(|| err(format!("unknown project {project}")))?;
                let id = self.hy.create_cell(project_id, cell)?;
                self.cells.insert((*cell).to_owned(), id);
                println!("+ cell {project}/{cell}");
            }
            ["version", user, cell] => {
                let user_id = self.user(user)?;
                let cell_id = *self
                    .cells
                    .get(*cell)
                    .ok_or_else(|| err(format!("unknown cell {cell}")))?;
                let team = self
                    .default_team
                    .ok_or_else(|| err("no team defined yet"))?;
                let (cv, variant) = self.hy.create_cell_version(cell_id, self.flow.flow, team)?;
                self.hy.reserve(user_id, cv)?;
                let n = self.hy.jcf().versions_of(cell_id).len();
                let key = format!("{cell}@{n}");
                self.versions.insert(key.clone(), (cv, variant));
                println!(
                    "+ {key} reserved by {user} (FMCAD cell {})",
                    self.hy.fmcad_cell_of(cv)?
                );
            }
            ["declare", user, key, child] => {
                let user_id = self.user(user)?;
                let (cv, _) = self.version(key)?;
                let child_id = *self
                    .cells
                    .get(*child)
                    .ok_or_else(|| err(format!("unknown cell {child}")))?;
                self.hy.declare_comp_of(user_id, cv, child_id)?;
                println!("+ {key} CompOf {child}");
            }
            ["schematic", user, key, rest @ ..] => {
                let user_id = self.user(user)?;
                let (_, variant) = self.version(key)?;
                let gates = Self::kv(rest, "gates", 20) as usize;
                let seed = Self::kv(rest, "seed", 1);
                let design = generate::random_logic(gates, seed);
                let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
                let n = bytes.len();
                self.hy.run_activity(
                    user_id,
                    variant,
                    self.flow.enter_schematic,
                    false,
                    move |_| {
                        Ok(vec![ToolOutput {
                            viewtype: "schematic".into(),
                            data: bytes.into(),
                        }])
                    },
                )?;
                println!("~ schematic entry on {key}: {gates} gates, {n} bytes");
            }
            ["fulladder", user, key] => {
                let user_id = self.user(user)?;
                let (_, variant) = self.version(key)?;
                let bytes = format::write_netlist(&generate::full_adder()).into_bytes();
                self.hy.run_activity(
                    user_id,
                    variant,
                    self.flow.enter_schematic,
                    false,
                    move |_| {
                        Ok(vec![ToolOutput {
                            viewtype: "schematic".into(),
                            data: bytes.into(),
                        }])
                    },
                )?;
                println!("~ schematic entry on {key}: full adder");
            }
            ["simulate", user, key] => {
                let user_id = self.user(user)?;
                let (_, variant) = self.version(key)?;
                let label = (*key).to_owned();
                self.hy.run_activity(
                    user_id,
                    variant,
                    self.flow.simulate,
                    false,
                    move |session| {
                        let text = String::from_utf8_lossy(
                            session.input("schematic").expect("flow provides it"),
                        )
                        .into_owned();
                        let netlist = format::parse_netlist(&text)
                            .map_err(|e| hybrid::HybridError::Tool(e.into()))?;
                        let mut all = BTreeMap::new();
                        let top = netlist.name().to_owned();
                        all.insert(top.clone(), netlist);
                        let mut sim =
                            Simulator::elaborate(&top, &all).map_err(hybrid::HybridError::Tool)?;
                        // Drive all inputs with an alternating pattern.
                        let names: Vec<String> =
                            sim.signal_names().iter().map(|s| (*s).to_owned()).collect();
                        let mut driven = 0;
                        for (i, name) in names
                            .iter()
                            .filter(|n| {
                                n.starts_with("in") || ["a", "b", "cin"].contains(&n.as_str())
                            })
                            .enumerate()
                        {
                            let v = if i % 2 == 0 { Logic::One } else { Logic::Zero };
                            sim.set_input(name, v).map_err(hybrid::HybridError::Tool)?;
                            driven += 1;
                        }
                        sim.settle().map_err(hybrid::HybridError::Tool)?;
                        println!(
                            "~ simulate {label}: {} gates, {} inputs driven, {} events, t={}",
                            sim.gate_count(),
                            driven,
                            sim.events_processed(),
                            sim.now()
                        );
                        Ok(vec![ToolOutput {
                            viewtype: "waveform".into(),
                            data: format::write_waveforms(sim.waves()).into_bytes().into(),
                        }])
                    },
                )?;
            }
            ["layout", user, key] => {
                let user_id = self.user(user)?;
                let (_, variant) = self.version(key)?;
                self.hy.run_activity(
                    user_id,
                    variant,
                    self.flow.enter_layout,
                    false,
                    |session| {
                        let text = String::from_utf8_lossy(
                            session.input("schematic").expect("flow provides it"),
                        )
                        .into_owned();
                        let netlist = format::parse_netlist(&text)
                            .map_err(|e| hybrid::HybridError::Tool(e.into()))?;
                        let layout = generate::layout_for(&netlist);
                        Ok(vec![ToolOutput {
                            viewtype: "layout".into(),
                            data: format::write_layout(&layout).into_bytes().into(),
                        }])
                    },
                )?;
                println!("~ layout entry on {key}");
            }
            ["publish", user, key] => {
                let user_id = self.user(user)?;
                let (cv, _) = self.version(key)?;
                self.hy.publish(user_id, cv)?;
                println!("~ published {key}");
            }
            ["browse", user, key] => {
                let user_id = self.user(user)?;
                let (_, variant) = self.version(key)?;
                let schematic = self.hy.viewtype("schematic")?;
                let dov = self
                    .hy
                    .jcf()
                    .design_object_by_viewtype(variant, schematic)
                    .and_then(|d| self.hy.jcf().latest_version(d))
                    .ok_or_else(|| err(format!("{key} has no schematic yet")))?;
                let before = self.hy.io_meter();
                let data = self.hy.browse(user_id, dov)?;
                let cost = self.hy.io_meter().since(&before);
                println!(
                    "~ browsed {key}: {} bytes, {} I/O ticks (read-only copy)",
                    data.len(),
                    cost.ticks
                );
            }
            ["timing", user, key] => {
                let user_id = self.user(user)?;
                let (_, variant) = self.version(key)?;
                let schematic = self.hy.viewtype("schematic")?;
                let dov = self
                    .hy
                    .jcf()
                    .design_object_by_viewtype(variant, schematic)
                    .and_then(|d| self.hy.jcf().latest_version(d))
                    .ok_or_else(|| err(format!("{key} has no schematic yet")))?;
                let bytes = self.hy.read_design_data(user_id, dov)?;
                let netlist = format::parse_netlist(&String::from_utf8_lossy(&bytes))?;
                let report = cad_tools::static_timing(&netlist)?;
                println!(
                    "~ timing {key}: critical delay {} via {}",
                    report.critical_delay,
                    report.critical_path.join(" -> ")
                );
            }
            ["lvs", user, key] => {
                let user_id = self.user(user)?;
                let (_, variant) = self.version(key)?;
                let report = self.hy.run_lvs(user_id, variant)?;
                println!("~ lvs {key}: {report}");
            }
            ["flowstatus", key] => {
                let (_, variant) = self.version(key)?;
                println!("~ flow status of {key}:");
                for (activity, state) in self.hy.jcf().flow_status(variant)? {
                    println!(
                        "    {:<18} {state}",
                        self.hy.jcf().display_name(activity.object_id())
                    );
                }
            }
            ["audit", project] => {
                let project_id = *self
                    .projects
                    .get(*project)
                    .ok_or_else(|| err(format!("unknown project {project}")))?;
                let findings = self.hy.verify_project(project_id)?;
                println!("~ audit {project}: {} finding(s)", findings.len());
                for finding in findings {
                    println!("    ! {finding}");
                }
            }
            ["tree", project] => {
                let project_id = *self
                    .projects
                    .get(*project)
                    .ok_or_else(|| err(format!("unknown project {project}")))?;
                print!("{}", self.hy.jcf().project_tree(project_id));
            }
            ["journal", rest @ ..] => {
                let n = rest
                    .first()
                    .and_then(|w| w.parse::<usize>().ok())
                    .unwrap_or(10);
                let entries: Vec<_> = self.hy.trace().entries().cloned().collect();
                let shown = entries.len().min(n);
                println!(
                    "~ journal: {} op(s) applied, showing last {shown}",
                    self.hy.seq()
                );
                for entry in &entries[entries.len() - shown..] {
                    println!(
                        "    #{:<4} {:<22} {:<4} {} -> {}",
                        entry.seq,
                        entry.kind,
                        if entry.ok { "ok" } else { "FAIL" },
                        entry.summary,
                        entry.outcome
                    );
                }
            }
            ["status"] => {
                println!(
                    "~ status: {} desktop ops, {} tool windows, {} blocked checkouts, {} I/O ticks",
                    self.hy.jcf().desktop_ops(),
                    self.hy.fmcad_ui_ops(),
                    self.hy.fmcad().blocked_checkouts(),
                    self.hy.io_meter().ticks
                );
            }
            _ => return Err(err(format!("unknown command: {line}"))),
        }
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let script = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO_SCRIPT.to_owned(),
    };
    let mut shell = Shell::new()?;
    for (i, line) in script.lines().enumerate() {
        shell
            .exec(line)
            .map_err(|e| err(format!("line {}: {e}", i + 1)))?;
    }
    Ok(())
}
