//! An FPGA design flow in the hybrid framework — the scenario of the
//! paper's companion work [Seep94b], "Modelling a FPGA Design Flow in
//! the JESSI-COMMON-FRAMEWORK".
//!
//! Defines a custom four-activity flow (enter → map → verify → place),
//! with a real technology-mapping step (NAND2+NOT target library) whose
//! result is proven equivalent in the verify activity by comparing
//! simulation waveforms against the original.
//!
//! Run with `cargo run --example fpga_flow`.

use std::collections::BTreeMap;
use std::error::Error;

use cad_tools::{compare_waveforms, map_to_nand, Simulator, ToolKind};
use design_data::{format, generate, Logic, Stimulus};
use hybrid::{Engine, HybridError, ToolOutput};

fn simulate(netlist: &design_data::Netlist, stim: &Stimulus) -> design_data::Waveforms {
    let mut all = BTreeMap::new();
    all.insert(netlist.name().to_owned(), netlist.clone());
    let mut sim = Simulator::elaborate(netlist.name(), &all).expect("netlist elaborates");
    sim.run_testbench(stim).expect("testbench settles")
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut hy = Engine::builder().build();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false)?;
    let team = hy.add_team(admin, "fpga-team")?;
    hy.add_team_member(admin, team, alice)?;

    // --- a custom FPGA flow with its own viewtypes ---------------------
    // "mapped" netlists and "placement" data are new viewtypes; the
    // framework administrator registers them on both sides of the
    // coupling in one step.
    let schematic = hy.viewtype("schematic")?;
    let waveform = hy.viewtype("waveform")?;
    let mapped_vt = hy.register_viewtype("mapped", ToolKind::SchematicEntry)?;
    let placement_vt = hy.register_viewtype("placement", ToolKind::LayoutEditor)?;

    let enter_tool = hy.register_tool("fpga-entry", ToolKind::SchematicEntry)?;
    let map_tool = hy.register_tool("fpga-map", ToolKind::SchematicEntry)?;
    let verify_tool = hy.register_tool("fpga-verify", ToolKind::Simulator)?;
    let place_tool = hy.register_tool("fpga-place", ToolKind::LayoutEditor)?;
    let flow = hy.define_flow(admin, "fpga")?;
    let a_enter = hy.add_activity(admin, flow, "enter", enter_tool, &[], &[schematic], &[])?;
    let a_map = hy.add_activity(
        admin,
        flow,
        "map",
        map_tool,
        &[schematic],
        &[mapped_vt],
        &[a_enter],
    )?;
    let a_verify = hy.add_activity(
        admin,
        flow,
        "verify",
        verify_tool,
        &[schematic, mapped_vt],
        &[waveform],
        &[a_map],
    )?;
    let a_place = hy.add_activity(
        admin,
        flow,
        "place",
        place_tool,
        &[mapped_vt],
        &[placement_vt],
        &[a_verify],
    )?;
    hy.freeze_flow(admin, flow)?;
    println!("defined frozen FPGA flow: enter -> map -> verify -> place");

    let project = hy.create_project("fpga-demo")?;
    let cell = hy.create_cell(project, "full_adder")?;
    let (cv, variant) = hy.create_cell_version(cell, flow, team)?;
    hy.reserve(alice, cv)?;

    // Activity 1: design entry.
    let original_for_entry = generate::full_adder();
    hy.run_activity(alice, variant, a_enter, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: format::write_netlist(&original_for_entry)
                .into_bytes()
                .into(),
        }])
    })?;

    // Out-of-order attempt: place before map is refused by the flow.
    assert!(matches!(
        hy.run_activity(alice, variant, a_place, false, |_| Ok(vec![])),
        Err(HybridError::Jcf(_))
    ));
    println!("flow engine refused place-before-map, as required");

    // Activity 2: technology mapping (a real netlist transformation).
    hy.run_activity(alice, variant, a_map, false, |session| {
        let text = String::from_utf8_lossy(session.input("schematic").expect("flow provides it"))
            .into_owned();
        let netlist = format::parse_netlist(&text).map_err(|e| HybridError::Tool(e.into()))?;
        let (mapped, stats) = map_to_nand(&netlist).map_err(HybridError::Tool)?;
        let before = cad_tools::static_timing(&netlist).map_err(HybridError::Tool)?;
        let after = cad_tools::static_timing(&mapped).map_err(HybridError::Tool)?;
        println!(
            "mapped {} gates onto {} NAND/NOT gates; critical path {} -> {} time units",
            stats.gates_in, stats.gates_out, before.critical_delay, after.critical_delay
        );
        Ok(vec![ToolOutput {
            viewtype: "mapped".into(),
            data: format::write_netlist(&mapped).into_bytes().into(),
        }])
    })?;

    // Activity 3: equivalence verification by waveform comparison.
    let stim = {
        let mut s = Stimulus::new();
        // Walk all 8 input combinations, 20 time units apart.
        for bits in 0..8u64 {
            let t = bits * 20;
            s.drive(
                t,
                "a",
                if bits & 1 != 0 {
                    Logic::One
                } else {
                    Logic::Zero
                },
            );
            s.drive(
                t,
                "b",
                if bits & 2 != 0 {
                    Logic::One
                } else {
                    Logic::Zero
                },
            );
            s.drive(
                t,
                "cin",
                if bits & 4 != 0 {
                    Logic::One
                } else {
                    Logic::Zero
                },
            );
        }
        s.probe("sum");
        s.probe("cout");
        s
    };
    let stim_for_verify = stim;
    hy.run_activity(alice, variant, a_verify, false, move |session| {
        let golden_netlist = format::parse_netlist(&String::from_utf8_lossy(
            session.input("schematic").expect("flow provides it"),
        ))
        .map_err(|e| HybridError::Tool(e.into()))?;
        let mapped_netlist = format::parse_netlist(&String::from_utf8_lossy(
            session.input("mapped").expect("flow provides it"),
        ))
        .map_err(|e| HybridError::Tool(e.into()))?;
        let golden = simulate(&golden_netlist, &stim_for_verify);
        let mapped = simulate(&mapped_netlist, &stim_for_verify);
        // Compare steady-state values between drive times (mapping
        // changes gate depth, so edges shift by a few units).
        let mut diverged = 0;
        for bits in 0..8u64 {
            let t = bits * 20 + 19; // just before the next drive
            for signal in ["sum", "cout"] {
                if golden.value_at(signal, t) != mapped.value_at(signal, t) {
                    diverged += 1;
                }
            }
        }
        assert_eq!(diverged, 0, "mapping must preserve the truth table");
        println!("verified: 8/8 input combinations equivalent after mapping");
        let _ = compare_waveforms; // full-trace comparison is for same-delay runs
        Ok(vec![ToolOutput {
            viewtype: "waveform".into(),
            data: format::write_waveforms(&mapped).into_bytes().into(),
        }])
    })?;

    // Activity 4: placement of the mapped netlist.
    hy.run_activity(alice, variant, a_place, false, |session| {
        let mapped = format::parse_netlist(&String::from_utf8_lossy(
            session.input("mapped").expect("flow provides it"),
        ))
        .map_err(|e| HybridError::Tool(e.into()))?;
        let placed = generate::layout_for(&mapped);
        println!(
            "placed {} tiles, bbox {:?}",
            placed.rects().len(),
            placed.bbox().unwrap_or((0, 0, 0, 0))
        );
        Ok(vec![ToolOutput {
            viewtype: "placement".into(),
            data: format::write_layout(&placed).into_bytes().into(),
        }])
    })?;

    // The derivation chain now spans the whole FPGA flow.
    println!("\nwhat-belongs-to-what:");
    for entry in hy.jcf().what_belongs_to_what(variant) {
        println!(
            "  {:<10} <- {} input version(s), by {:?}",
            entry.design_object,
            entry.derived_from.len(),
            entry.created_by_activity.as_deref().unwrap_or("-")
        );
    }
    hy.publish(alice, cv)?;
    let findings = hy.verify_project(project)?;
    assert!(findings.is_empty());
    println!("\nFPGA flow complete; audit clean");
    Ok(())
}
