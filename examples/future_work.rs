//! The paper's §4 future work, switched on: the JCF procedural
//! interface (no staging copies, tools pass hierarchy to JCF),
//! non-isomorphic hierarchy support and cross-project data sharing.
//!
//! Run with `cargo run --example future_work`.

use std::collections::BTreeMap;
use std::error::Error;

use design_data::{format, generate, Layout, Logic, MasterRef, Netlist};
use hybrid::{Engine, FutureFeatures, ToolOutput};

fn main() -> Result<(), Box<dyn Error>> {
    let mut hy = Engine::builder()
        .future_features(FutureFeatures::all())
        .build();
    println!("features: {:?}", hy.future_features());

    let admin = hy.admin();
    let alice = hy.add_user("alice", false)?;
    let team = hy.add_team(admin, "soc-team")?;
    hy.add_team_member(admin, team, alice)?;
    let flow = hy.standard_flow("soc-flow")?;

    // --- a shared IP library in another project (§3.1 future work) -----
    let ip_project = hy.create_project("ip-library")?;
    let pll = hy.create_cell(ip_project, "pll")?;
    hy.share_cell(admin, pll)?;
    println!("shared cell 'pll' from project 'ip-library'");

    // --- the SoC project uses the foreign IP without manual desktop work
    let soc = hy.create_project("soc")?;
    let top = hy.create_cell(soc, "soc_top")?;
    let core = hy.create_cell(soc, "core")?;
    let (cv, variant) = hy.create_cell_version(top, flow.flow, team)?;
    hy.reserve(alice, cv)?;

    let io_before = hy.io_meter();
    hy.run_activity(alice, variant, flow.enter_schematic, false, |session| {
        // The procedural interface hands us database bytes directly.
        assert!(session.inputs.is_empty());
        let mut n = Netlist::new("soc_top");
        n.add_net("clk_root")?;
        n.add_instance(
            "u_core",
            MasterRef::Cell("core".into()),
            &[("clk", "clk_root")],
        )?;
        n.add_instance(
            "u_pll",
            MasterRef::Cell("pll".into()),
            &[("clk", "clk_root")],
        )?;
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: format::write_netlist(&n).into_bytes().into(),
        }])
    })?;
    let io_after = hy.io_meter().since(&io_before);
    println!(
        "hierarchy auto-declared by the tools: core={}, pll={}",
        hy.jcf().is_declared_child(cv, core),
        hy.jcf().is_declared_child(cv, pll),
    );
    println!(
        "staging I/O eliminated by the procedural interface: only {} bytes moved (mirror only)",
        io_after.bytes_written
    );

    // --- non-isomorphic hierarchies are now representable (§3.3) --------
    let mut floorplan = Layout::new("soc_top");
    floorplan.add_placement("i_core", "core", 0, 0)?;
    // The layout flattens the PLL into the core region: different
    // children than the schematic — the future JCF accepts it.
    hy.run_activity(alice, variant, flow.enter_layout, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "layout".into(),
            data: format::write_layout(&floorplan).into_bytes().into(),
        }])
    })?;
    println!("non-isomorphic schematic/layout pair accepted");

    // --- and the simulator still runs through the session helpers -------
    let fa_project_cell = hy.create_cell(soc, "fa")?;
    let (fa_cv, fa_variant) = hy.create_cell_version(fa_project_cell, flow.flow, team)?;
    hy.reserve(alice, fa_cv)?;
    let fa = generate::full_adder();
    let fa_bytes = format::write_netlist(&fa).into_bytes();
    hy.run_activity(alice, fa_variant, flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: fa_bytes.into(),
        }])
    })?;
    hy.run_activity(alice, fa_variant, flow.simulate, false, |session| {
        let mut sim = session.elaborate_simulator(&BTreeMap::new())?;
        sim.set_input("a", Logic::One)
            .map_err(hybrid::HybridError::Tool)?;
        sim.set_input("b", Logic::One)
            .map_err(hybrid::HybridError::Tool)?;
        sim.set_input("cin", Logic::One)
            .map_err(hybrid::HybridError::Tool)?;
        sim.settle().map_err(hybrid::HybridError::Tool)?;
        let sum = sim.value("sum").map_err(hybrid::HybridError::Tool)?;
        let cout = sim.value("cout").map_err(hybrid::HybridError::Tool)?;
        println!("simulated 1+1+1: sum={sum} cout={cout}");
        Ok(vec![ToolOutput {
            viewtype: "waveform".into(),
            data: format::write_waveforms(sim.waves()).into_bytes().into(),
        }])
    })?;

    let findings = hy.verify_project(soc)?;
    println!(
        "consistency audit with all future features on: {} finding(s)",
        findings.len()
    );
    assert!(findings.is_empty());
    Ok(())
}
