//! §3.3 side by side: FMCAD's flexible-but-unsafe dynamic hierarchy
//! binding versus the hybrid framework's declared, checked hierarchy.
//!
//! Shows (1) FMCAD silently rebinding a hierarchy after a new checkin,
//! (2) FMCAD happily accepting non-isomorphic schematic/layout
//! hierarchies, and (3) the hybrid framework rejecting both hazards.
//!
//! Run with `cargo run --example hierarchy_consistency`.

use std::error::Error;

use design_data::{format, generate, Layout, MasterRef, Netlist};
use fmcad::Fmcad;
use hybrid::{Engine, HybridError, ToolOutput};

fn hierarchical_netlist(top: &str, child: &str) -> Netlist {
    let mut n = Netlist::new(top);
    n.add_net("w").expect("fresh netlist");
    n.add_instance("u1", MasterRef::Cell(child.to_owned()), &[("a", "w")])
        .expect("valid instance");
    n
}

fn main() -> Result<(), Box<dyn Error>> {
    // ======================= standalone FMCAD =========================
    println!("--- standalone FMCAD ---");
    let mut fm = Fmcad::new();
    fm.create_library("lib")?;
    for cell in ["top", "fa"] {
        fm.create_cell("lib", cell)?;
        fm.create_cellview("lib", cell, "schematic", "schematic")?;
    }
    fm.checkin(
        "alice",
        "lib",
        "top",
        "schematic",
        format::write_netlist(&hierarchical_netlist("top", "fa")).into_bytes(),
    )?;
    fm.checkin(
        "alice",
        "lib",
        "fa",
        "schematic",
        format::write_netlist(&generate::full_adder()).into_bytes(),
    )?;

    let before = fm.bind_hierarchy("lib", "top", "schematic")?;
    println!("bound top with fa at version {}", before.bound["fa"].0);

    // Eve checks in a new full adder; nothing warns the top's owner.
    fm.checkout("eve", "lib", "fa", "schematic")?;
    fm.checkin(
        "eve",
        "lib",
        "fa",
        "schematic",
        format::write_netlist(&generate::full_adder()).into_bytes(),
    )?;
    let after = fm.bind_hierarchy("lib", "top", "schematic")?;
    println!(
        "rebound top: fa silently moved to version {} (history of the development is not stored)",
        after.bound["fa"].0
    );

    // Non-isomorphic hierarchies: layout places a different child.
    fm.create_cellview("lib", "top", "layout", "layout")?;
    let mut flat = Layout::new("top");
    flat.add_placement("i1", "pad_ring", 0, 0)?;
    fm.checkin(
        "alice",
        "lib",
        "top",
        "layout",
        format::write_layout(&flat).into_bytes(),
    )?;
    let hs = fm.view_hierarchy("lib", "top", "schematic")?;
    let hl = fm.view_hierarchy("lib", "top", "layout")?;
    println!(
        "schematic children: {:?}, layout children: {:?}, isomorphic: {} — FMCAD accepts anyway",
        hs.children("top"),
        hl.children("top"),
        hs.is_isomorphic_to(&hl),
    );

    // ======================= hybrid JCF-FMCAD ==========================
    println!("\n--- hybrid JCF-FMCAD ---");
    let mut hy = Engine::builder().build();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false)?;
    let team = hy.add_team(admin, "t")?;
    hy.add_team_member(admin, team, alice)?;
    let flow = hy.standard_flow("f")?;
    let project = hy.create_project("checked")?;
    let top = hy.create_cell(project, "top")?;
    let fa = hy.create_cell(project, "fa")?;
    let (cv, variant) = hy.create_cell_version(top, flow.flow, team)?;
    hy.reserve(alice, cv)?;

    // 1. Hierarchy must be declared via the desktop before designing.
    let undeclared = hy.run_activity(alice, variant, flow.enter_schematic, false, |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: format::write_netlist(&hierarchical_netlist("top", "fa"))
                .into_bytes()
                .into(),
        }])
    });
    match undeclared {
        Err(HybridError::UndeclaredChild { parent, child }) => {
            println!("rejected: {parent} uses undeclared child {child}");
        }
        other => panic!("expected an undeclared-child rejection, got {other:?}"),
    }

    hy.declare_comp_of(alice, cv, fa)?;
    println!("declared CompOf(top, fa) via the JCF desktop; retrying...");
    hy.run_activity(alice, variant, flow.enter_schematic, false, |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: format::write_netlist(&hierarchical_netlist("top", "fa"))
                .into_bytes()
                .into(),
        }])
    })?;
    println!("accepted with declared hierarchy");

    // 2. Non-isomorphic hierarchies are rejected (JCF 3.0 limitation).
    //    Even with pad_ring properly declared, a layout whose children
    //    differ from the schematic's is refused.
    let pad_ring = hy.create_cell(project, "pad_ring")?;
    hy.declare_comp_of(alice, cv, pad_ring)?;
    let mut alien = Layout::new("top");
    alien.add_placement("i1", "pad_ring", 0, 0)?;
    let rejected = hy.run_activity(alice, variant, flow.enter_layout, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "layout".into(),
            data: format::write_layout(&alien).into_bytes().into(),
        }])
    });
    match rejected {
        Err(HybridError::NonIsomorphicHierarchy { differences }) => {
            println!("rejected non-isomorphic layout: {differences:?}");
        }
        other => panic!("expected a non-isomorphic rejection, got {other:?}"),
    }

    let mut matching = Layout::new("top");
    matching.add_placement("i1", "fa", 0, 0)?;
    hy.run_activity(alice, variant, flow.enter_layout, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "layout".into(),
            data: format::write_layout(&matching).into_bytes().into(),
        }])
    })?;
    println!(
        "accepted isomorphic layout; consistency holds: {:?}",
        hy.verify_project(project)?
    );
    Ok(())
}
