//! Table 1 in action: importing a legacy FMCAD library into the
//! hybrid framework, mapping every FMCAD object onto its JCF
//! counterpart.
//!
//! Run with `cargo run --example legacy_import`.

use std::error::Error;

use design_data::{format, generate};
use hybrid::{mapping, Engine};

fn main() -> Result<(), Box<dyn Error>> {
    println!("{}", mapping::render_table_1());

    // A pre-existing FMCAD library with a hierarchical design in it.
    let mut hy = Engine::builder().build();
    let design = generate::ripple_adder(8);
    hy.fmcad_create_library("legacy_alu")?;
    for (cell, netlist) in &design.netlists {
        hy.fmcad_create_cell("legacy_alu", cell)?;
        hy.fmcad_create_cellview("legacy_alu", cell, "schematic", "schematic")?;
        hy.fmcad_checkin(
            "old-team",
            "legacy_alu",
            cell,
            "schematic",
            format::write_netlist(netlist).into_bytes(),
        )?;
        hy.fmcad_create_cellview("legacy_alu", cell, "layout", "layout")?;
        hy.fmcad_checkin(
            "old-team",
            "legacy_alu",
            cell,
            "layout",
            format::write_layout(&design.layouts[cell]).into_bytes(),
        )?;
    }

    // Couple it: the library becomes a JCF project per Table 1.
    let admin = hy.admin();
    let keeper = hy.add_user("keeper", false)?;
    let team = hy.add_team(admin, "maintenance")?;
    hy.add_team_member(admin, team, keeper)?;
    let flow = hy.standard_flow("maintenance-flow")?;
    let (project, report) = hy.import_library(keeper, "legacy_alu", flow.flow, team)?;

    println!("imported library 'legacy_alu' as project {project}:");
    println!("  {} FMCAD cells      -> JCF cell versions", report.cells);
    println!(
        "  {} cellviews        -> design objects",
        report.design_objects
    );
    println!(
        "  {} cellview versions -> design object versions",
        report.versions
    );
    println!(
        "  {} bytes copied into the OMS database",
        report.bytes_copied
    );

    // The hierarchy was extracted and declared during import.
    for cell in hy.jcf().cells_of(project) {
        for cv in hy.jcf().versions_of(cell) {
            let children = hy.jcf().comp_of(cv);
            if !children.is_empty() {
                println!(
                    "  {} CompOf {:?}",
                    hy.fmcad_cell_of(cv)?,
                    children
                        .iter()
                        .map(|c| hy.jcf().display_name(c.object_id()))
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    // The reverse direction would lose everything in this list (§3.2).
    println!("\nJCF concepts with no FMCAD counterpart (why JCF must be the master):");
    for item in mapping::UNMAPPABLE_TO_FMCAD {
        println!("  - {item}");
    }

    let findings = hy.verify_project(project)?;
    println!(
        "\npost-import consistency audit: {} finding(s)",
        findings.len()
    );
    assert!(findings.is_empty());
    Ok(())
}
