//! Quickstart: one designer takes a full adder through the paper's
//! three-tool flow (schematic entry, simulation, layout entry) inside
//! the hybrid JCF-FMCAD framework.
//!
//! Run with `cargo run --example quickstart`.

use std::collections::BTreeMap;
use std::error::Error;

use cad_tools::Simulator;
use design_data::{format, generate, Logic};
use hybrid::{Engine, ToolOutput};

fn main() -> Result<(), Box<dyn Error>> {
    // --- framework administration (once per installation) -------------
    let mut hy = Engine::builder().build();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false)?;
    let team = hy.add_team(admin, "asic")?;
    hy.add_team_member(admin, team, alice)?;
    let flow = hy.standard_flow("asic-flow")?;

    // --- project structure (the JCF desktop) ---------------------------
    let project = hy.create_project("quickstart")?;
    let cell = hy.create_cell(project, "full_adder")?;
    let (cv, variant) = hy.create_cell_version(cell, flow.flow, team)?;
    hy.reserve(alice, cv)?;
    println!("reserved {} into alice's workspace", hy.fmcad_cell_of(cv)?);

    // --- activity 1: schematic entry -----------------------------------
    let sch = hy.run_activity(alice, variant, flow.enter_schematic, false, |session| {
        println!("[{}] window opened", session.tool);
        let netlist = generate::full_adder();
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: format::write_netlist(&netlist).into_bytes().into(),
        }])
    })?;
    println!("schematic stored as design object version {}", sch[0]);

    // --- activity 2: simulation (exhaustive truth table) ---------------
    hy.run_activity(alice, variant, flow.simulate, false, |session| {
        let text = String::from_utf8_lossy(&session.inputs["schematic"]).into_owned();
        let netlist = format::parse_netlist(&text).expect("staged data is well-formed");
        let mut netlists = BTreeMap::new();
        netlists.insert(netlist.name().to_owned(), netlist);
        let mut waves = design_data::Waveforms::new();
        for a in [Logic::Zero, Logic::One] {
            for b in [Logic::Zero, Logic::One] {
                for cin in [Logic::Zero, Logic::One] {
                    let mut sim =
                        Simulator::elaborate("full_adder", &netlists).expect("netlist elaborates");
                    sim.set_input("a", a).expect("pin exists");
                    sim.set_input("b", b).expect("pin exists");
                    sim.set_input("cin", cin).expect("pin exists");
                    sim.settle().expect("combinational logic settles");
                    let sum = sim.value("sum").expect("pin exists");
                    let cout = sim.value("cout").expect("pin exists");
                    println!("  a={a} b={b} cin={cin}  ->  sum={sum} cout={cout}");
                    waves.record("sum", waves.horizon() + 10, sum);
                    waves.record("cout", waves.horizon() + 1, cout);
                }
            }
        }
        Ok(vec![ToolOutput {
            viewtype: "waveform".into(),
            data: format::write_waveforms(&waves).into_bytes().into(),
        }])
    })?;

    // --- activity 3: layout entry ---------------------------------------
    hy.run_activity(alice, variant, flow.enter_layout, false, |session| {
        let text = String::from_utf8_lossy(&session.inputs["schematic"]).into_owned();
        let netlist = format::parse_netlist(&text).expect("staged data is well-formed");
        let layout = generate::layout_for(&netlist);
        assert!(layout.check().is_empty(), "generated layout is DRC-clean");
        Ok(vec![ToolOutput {
            viewtype: "layout".into(),
            data: format::write_layout(&layout).into_bytes().into(),
        }])
    })?;

    // --- what JCF now knows that FMCAD alone never would ----------------
    println!("\nwhat-belongs-to-what (derivation report):");
    for entry in hy.jcf().what_belongs_to_what(variant) {
        println!(
            "  {} v{} derived from {} version(s), created by {:?}",
            entry.design_object,
            entry.version,
            entry.derived_from.len(),
            entry.created_by_activity.as_deref().unwrap_or("-")
        );
    }

    hy.publish(alice, cv)?;
    println!(
        "\npublished; consistency audit: {:?}",
        hy.verify_project(project)?
    );
    println!(
        "desktop ops: {}, extra FMCAD windows: {}",
        hy.jcf().desktop_ops(),
        hy.fmcad_ui_ops()
    );
    Ok(())
}
