#!/usr/bin/env python3
"""CI gate over the machine-readable benchmark outputs.

Fails (exit 1) when BENCH_E9.json or BENCH_E10.json is missing or
unparsable, or when the E9 tick table was produced with the golden
seed (42) but drifted from the recorded golden values. The modeled
tick economy is the experiments' measurement instrument: a deliberate
cost-model change must update the golden table here *and* in
crates/bench/src/e9_performance.rs in the same commit.
"""

import json
import sys

GOLDEN_SEED = 42

# (gates, bytes, metadata, hybrid_read, fmcad_read, activity,
#  procedural, procedural_activity) — must match the golden test in
# crates/bench/src/e9_performance.rs.
E9_GOLDEN = [
    (10, 649, 0, 2947, 1149, 6243, 0, 3296),
    (50, 3216, 0, 10648, 3716, 19078, 0, 8430),
    (200, 12875, 0, 39625, 13375, 67373, 0, 27748),
    (800, 50705, 0, 153115, 51205, 256523, 0, 103408),
    (3200, 207885, 0, 624655, 208385, 1042423, 0, 417768),
]

E9_FIELDS = (
    "gates",
    "bytes",
    "metadata_ticks",
    "hybrid_read_ticks",
    "fmcad_read_ticks",
    "activity_ticks",
    "procedural_ticks",
    "procedural_activity_ticks",
)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"FAIL: {path} is missing (run `report --json` first)")
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL: {path} is not valid JSON: {e}")


def main():
    e9 = load("BENCH_E9.json")
    e10 = load("BENCH_E10.json")

    for name, doc in (("BENCH_E9.json", e9), ("BENCH_E10.json", e10)):
        if "seed" not in doc or not doc.get("rows"):
            sys.exit(f"FAIL: {name} lacks a seed or has no rows")

    if e9["seed"] == GOLDEN_SEED:
        rows = [tuple(row[f] for f in E9_FIELDS) for row in e9["rows"]]
        if rows != E9_GOLDEN:
            for got, want in zip(rows, E9_GOLDEN):
                if got != want:
                    print(f"  drift at gates={got[0]}:", file=sys.stderr)
                    print(f"    got  {got}", file=sys.stderr)
                    print(f"    want {want}", file=sys.stderr)
            sys.exit("FAIL: E9 tick table drifted from the golden seed-42 values")
        print(f"OK: E9 golden tick table intact ({len(rows)} rows, seed {GOLDEN_SEED})")
    else:
        print(f"OK: E9 parsed ({len(e9['rows'])} rows, non-golden seed {e9['seed']})")

    engine = e10.get("engine", {})
    for field in ("applied", "ops", "failures"):
        if field not in engine:
            sys.exit(
                f"FAIL: BENCH_E10.json engine block lacks {field!r} "
                "(the observability counters regressed)"
            )
    print(
        "OK: E10 parsed ({} rows, seed {}, {} engine ops journaled, "
        "{} failure kind(s) counted)".format(
            len(e10["rows"]), e10["seed"], engine["applied"], len(engine["failures"])
        )
    )

    faults = engine.get("fault_injection")
    if faults is None:
        sys.exit("FAIL: BENCH_E10.json engine block lacks the E11 fault counters")
    for field in ("points_armed", "faults_fired", "recoveries_verified"):
        if field not in faults:
            sys.exit(f"FAIL: fault_injection block lacks {field!r}")
    if faults["recoveries_verified"] != faults["points_armed"]:
        sys.exit(
            "FAIL: E11 verified only {}/{} crash recoveries".format(
                faults["recoveries_verified"], faults["points_armed"]
            )
        )
    print(
        "OK: E11 fault injection ({} points armed, {} fired, {} recoveries verified)".format(
            faults["points_armed"], faults["faults_fired"], faults["recoveries_verified"]
        )
    )


if __name__ == "__main__":
    main()
