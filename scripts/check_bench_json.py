#!/usr/bin/env python3
"""CI gate over the machine-readable benchmark outputs.

Fails (exit 1) when BENCH_E9.json, BENCH_E10.json or BENCH_E12.json is
missing or unparsable, when the E9 tick table was produced with the
golden seed (42) but drifted from the recorded golden values, or when
the E12 session run loses a gated property (read speedup, zero-copy
readers, determinism) or regresses more than 30% below the committed
ops/sec baseline in scripts/e12_baseline.json. The modeled tick
economy is the experiments' measurement instrument: a deliberate
cost-model change must update the golden table here *and* in
crates/bench/src/e9_performance.rs in the same commit.
"""

import json
import os
import sys

GOLDEN_SEED = 42

# (gates, bytes, metadata, hybrid_read, fmcad_read, activity,
#  procedural, procedural_activity) — must match the golden test in
# crates/bench/src/e9_performance.rs.
E9_GOLDEN = [
    (10, 649, 0, 2947, 1149, 6243, 0, 3296),
    (50, 3216, 0, 10648, 3716, 19078, 0, 8430),
    (200, 12875, 0, 39625, 13375, 67373, 0, 27748),
    (800, 50705, 0, 153115, 51205, 256523, 0, 103408),
    (3200, 207885, 0, 624655, 208385, 1042423, 0, 417768),
]

E9_FIELDS = (
    "gates",
    "bytes",
    "metadata_ticks",
    "hybrid_read_ticks",
    "fmcad_read_ticks",
    "activity_ticks",
    "procedural_ticks",
    "procedural_activity_ticks",
)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"FAIL: {path} is missing (run `report --json` first)")
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL: {path} is not valid JSON: {e}")


def main():
    e9 = load("BENCH_E9.json")
    e10 = load("BENCH_E10.json")

    for name, doc in (("BENCH_E9.json", e9), ("BENCH_E10.json", e10)):
        if "seed" not in doc or not doc.get("rows"):
            sys.exit(f"FAIL: {name} lacks a seed or has no rows")

    if e9["seed"] == GOLDEN_SEED:
        rows = [tuple(row[f] for f in E9_FIELDS) for row in e9["rows"]]
        if rows != E9_GOLDEN:
            for got, want in zip(rows, E9_GOLDEN):
                if got != want:
                    print(f"  drift at gates={got[0]}:", file=sys.stderr)
                    print(f"    got  {got}", file=sys.stderr)
                    print(f"    want {want}", file=sys.stderr)
            sys.exit("FAIL: E9 tick table drifted from the golden seed-42 values")
        print(f"OK: E9 golden tick table intact ({len(rows)} rows, seed {GOLDEN_SEED})")
    else:
        print(f"OK: E9 parsed ({len(e9['rows'])} rows, non-golden seed {e9['seed']})")

    engine = e10.get("engine", {})
    for field in ("applied", "ops", "failures"):
        if field not in engine:
            sys.exit(
                f"FAIL: BENCH_E10.json engine block lacks {field!r} "
                "(the observability counters regressed)"
            )
    print(
        "OK: E10 parsed ({} rows, seed {}, {} engine ops journaled, "
        "{} failure kind(s) counted)".format(
            len(e10["rows"]), e10["seed"], engine["applied"], len(engine["failures"])
        )
    )

    faults = engine.get("fault_injection")
    if faults is None:
        sys.exit("FAIL: BENCH_E10.json engine block lacks the E11 fault counters")
    for field in ("points_armed", "faults_fired", "recoveries_verified"):
        if field not in faults:
            sys.exit(f"FAIL: fault_injection block lacks {field!r}")
    if faults["recoveries_verified"] != faults["points_armed"]:
        sys.exit(
            "FAIL: E11 verified only {}/{} crash recoveries".format(
                faults["recoveries_verified"], faults["points_armed"]
            )
        )
    print(
        "OK: E11 fault injection ({} points armed, {} fired, {} recoveries verified)".format(
            faults["points_armed"], faults["faults_fired"], faults["recoveries_verified"]
        )
    )

    check_e12()


E12_COUNTERS = (
    "writers",
    "readers",
    "total_reads",
    "single_session_read_ns",
    "concurrent_read_ns",
    "read_speedup",
    "read_ops_per_sec",
    "write_ops",
    "write_ns",
    "write_ops_per_sec",
    "batches",
    "max_batch",
    "mean_batch",
    "writer_waits",
    "reader_waits",
    "reader_materializations",
    "deterministic_zero_copy",
    "deterministic_deep_copy",
)

# A fresh run must reach at least this fraction of the committed
# baseline's ops/sec — i.e. a >30% regression fails.
E12_REGRESSION_FLOOR = 0.7


def check_e12():
    e12 = load("BENCH_E12.json")
    sessions = e12.get("sessions")
    if "seed" not in e12 or not isinstance(sessions, dict):
        sys.exit("FAIL: BENCH_E12.json lacks a seed or a sessions block")
    for field in E12_COUNTERS:
        if field not in sessions:
            sys.exit(
                f"FAIL: BENCH_E12.json sessions block lacks {field!r} "
                "(the service counters regressed)"
            )

    if not sessions["deterministic_zero_copy"] or not sessions["deterministic_deep_copy"]:
        sys.exit("FAIL: E12 service run diverged from the serial engine fingerprint")
    if sessions["reader_materializations"] != 0:
        sys.exit(
            "FAIL: E12 reader sessions materialized {} bytes "
            "(snapshot reads must be zero-copy)".format(sessions["reader_materializations"])
        )
    if sessions["read_speedup"] <= 1.5:
        sys.exit(
            "FAIL: E12 concurrent read speedup {}x <= 1.5x over the "
            "single-session engine baseline".format(sessions["read_speedup"])
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e12_baseline.json")
    baseline = load(baseline_path)
    if e12["seed"] == baseline.get("seed"):
        for metric in ("read_ops_per_sec", "write_ops_per_sec"):
            floor = baseline[metric] * E12_REGRESSION_FLOOR
            if sessions[metric] < floor:
                sys.exit(
                    "FAIL: E12 {} regressed >30%: {:.0f} < floor {:.0f} "
                    "(baseline {:.0f}, see scripts/e12_baseline.json)".format(
                        metric, sessions[metric], floor, baseline[metric]
                    )
                )
        print(
            "OK: E12 sessions ({}w x {}r, {:.1f}x read speedup, {:.0f} read/s, "
            "{:.0f} write/s, {} batches, deterministic both modes)".format(
                sessions["writers"],
                sessions["readers"],
                sessions["read_speedup"],
                sessions["read_ops_per_sec"],
                sessions["write_ops_per_sec"],
                sessions["batches"],
            )
        )
    else:
        print(
            "OK: E12 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e12["seed"]
            )
        )


if __name__ == "__main__":
    main()
