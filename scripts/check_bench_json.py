#!/usr/bin/env python3
"""CI gate over the machine-readable benchmark outputs.

Fails (exit 1) when BENCH_E9.json, BENCH_E10.json, BENCH_E12.json or
BENCH_E13.json is missing or unparsable, when the E9 tick table was
produced with the golden seed (42) but drifted from the recorded
golden values, when the E12 session run loses a gated property (read
speedup, zero-copy readers, determinism) or regresses more than 30%
below the committed ops/sec baseline in scripts/e12_baseline.json, or
when the E13 publish sweep loses snapshot-capture caching or its
median publish latency stops being sublinear in database size
(baseline in scripts/e13_baseline.json). The modeled tick economy is
the experiments' measurement instrument: a deliberate cost-model
change must update the golden table here *and* in
crates/bench/src/e9_performance.rs in the same commit.
"""

import json
import os
import sys

GOLDEN_SEED = 42

# (gates, bytes, metadata, hybrid_read, fmcad_read, activity,
#  procedural, procedural_activity) — must match the golden test in
# crates/bench/src/e9_performance.rs.
E9_GOLDEN = [
    (10, 649, 0, 2947, 1149, 6243, 0, 3296),
    (50, 3216, 0, 10648, 3716, 19078, 0, 8430),
    (200, 12875, 0, 39625, 13375, 67373, 0, 27748),
    (800, 50705, 0, 153115, 51205, 256523, 0, 103408),
    (3200, 207885, 0, 624655, 208385, 1042423, 0, 417768),
]

E9_FIELDS = (
    "gates",
    "bytes",
    "metadata_ticks",
    "hybrid_read_ticks",
    "fmcad_read_ticks",
    "activity_ticks",
    "procedural_ticks",
    "procedural_activity_ticks",
)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"FAIL: {path} is missing (run `report --json` first)")
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL: {path} is not valid JSON: {e}")


def main():
    e9 = load("BENCH_E9.json")
    e10 = load("BENCH_E10.json")

    for name, doc in (("BENCH_E9.json", e9), ("BENCH_E10.json", e10)):
        if "seed" not in doc or not doc.get("rows"):
            sys.exit(f"FAIL: {name} lacks a seed or has no rows")

    if e9["seed"] == GOLDEN_SEED:
        rows = [tuple(row[f] for f in E9_FIELDS) for row in e9["rows"]]
        if rows != E9_GOLDEN:
            for got, want in zip(rows, E9_GOLDEN):
                if got != want:
                    print(f"  drift at gates={got[0]}:", file=sys.stderr)
                    print(f"    got  {got}", file=sys.stderr)
                    print(f"    want {want}", file=sys.stderr)
            sys.exit("FAIL: E9 tick table drifted from the golden seed-42 values")
        print(f"OK: E9 golden tick table intact ({len(rows)} rows, seed {GOLDEN_SEED})")
    else:
        print(f"OK: E9 parsed ({len(e9['rows'])} rows, non-golden seed {e9['seed']})")

    engine = e10.get("engine", {})
    for field in ("applied", "ops", "failures"):
        if field not in engine:
            sys.exit(
                f"FAIL: BENCH_E10.json engine block lacks {field!r} "
                "(the observability counters regressed)"
            )
    print(
        "OK: E10 parsed ({} rows, seed {}, {} engine ops journaled, "
        "{} failure kind(s) counted)".format(
            len(e10["rows"]), e10["seed"], engine["applied"], len(engine["failures"])
        )
    )

    faults = engine.get("fault_injection")
    if faults is None:
        sys.exit("FAIL: BENCH_E10.json engine block lacks the E11 fault counters")
    for field in ("points_armed", "faults_fired", "recoveries_verified"):
        if field not in faults:
            sys.exit(f"FAIL: fault_injection block lacks {field!r}")
    if faults["recoveries_verified"] != faults["points_armed"]:
        sys.exit(
            "FAIL: E11 verified only {}/{} crash recoveries".format(
                faults["recoveries_verified"], faults["points_armed"]
            )
        )
    print(
        "OK: E11 fault injection ({} points armed, {} fired, {} recoveries verified)".format(
            faults["points_armed"], faults["faults_fired"], faults["recoveries_verified"]
        )
    )

    check_e12()
    check_e13()


E12_COUNTERS = (
    "writers",
    "readers",
    "total_reads",
    "single_session_read_ns",
    "concurrent_read_ns",
    "read_speedup",
    "read_ops_per_sec",
    "write_ops",
    "write_ns",
    "write_ops_per_sec",
    "batches",
    "max_batch",
    "mean_batch",
    "writer_waits",
    "reader_waits",
    "reader_materializations",
    "deterministic_zero_copy",
    "deterministic_deep_copy",
)

# A fresh run must reach at least this fraction of the committed
# baseline's ops/sec — i.e. a >30% regression fails.
E12_REGRESSION_FLOOR = 0.7


def check_e12():
    e12 = load("BENCH_E12.json")
    sessions = e12.get("sessions")
    if "seed" not in e12 or not isinstance(sessions, dict):
        sys.exit("FAIL: BENCH_E12.json lacks a seed or a sessions block")
    for field in E12_COUNTERS:
        if field not in sessions:
            sys.exit(
                f"FAIL: BENCH_E12.json sessions block lacks {field!r} "
                "(the service counters regressed)"
            )

    if not sessions["deterministic_zero_copy"] or not sessions["deterministic_deep_copy"]:
        sys.exit("FAIL: E12 service run diverged from the serial engine fingerprint")
    if sessions["reader_materializations"] != 0:
        sys.exit(
            "FAIL: E12 reader sessions materialized {} bytes "
            "(snapshot reads must be zero-copy)".format(sessions["reader_materializations"])
        )
    if sessions["read_speedup"] <= 1.5:
        sys.exit(
            "FAIL: E12 concurrent read speedup {}x <= 1.5x over the "
            "single-session engine baseline".format(sessions["read_speedup"])
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e12_baseline.json")
    baseline = load(baseline_path)
    if e12["seed"] == baseline.get("seed"):
        for metric in ("read_ops_per_sec", "write_ops_per_sec"):
            floor = baseline[metric] * E12_REGRESSION_FLOOR
            if sessions[metric] < floor:
                sys.exit(
                    "FAIL: E12 {} regressed >30%: {:.0f} < floor {:.0f} "
                    "(baseline {:.0f}, see scripts/e12_baseline.json)".format(
                        metric, sessions[metric], floor, baseline[metric]
                    )
                )
        print(
            "OK: E12 sessions ({}w x {}r, {:.1f}x read speedup, {:.0f} read/s, "
            "{:.0f} write/s, {} batches, deterministic both modes)".format(
                sessions["writers"],
                sessions["readers"],
                sessions["read_speedup"],
                sessions["read_ops_per_sec"],
                sessions["write_ops_per_sec"],
                sessions["batches"],
            )
        )
    else:
        print(
            "OK: E12 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e12["seed"]
            )
        )


E13_ROW_FIELDS = (
    "objects",
    "publish_p50_ns",
    "publish_p99_ns",
    "write_ops_per_sec",
    "capture_is_cached",
)

# The largest size has ~50x the objects of the smallest; an O(size)
# publish would grow its p50 by about that factor. The persistent
# store must keep the growth to a small multiple (noise allowance
# included — the capture itself is O(1)).
E13_MAX_P50_GROWTH = 8.0

# A fresh run's writer throughput must reach at least this fraction of
# the committed baseline in scripts/e13_baseline.json.
E13_REGRESSION_FLOOR = 0.5


def check_e13():
    e13 = load("BENCH_E13.json")
    rows = e13.get("rows")
    if "seed" not in e13 or not rows:
        sys.exit("FAIL: BENCH_E13.json lacks a seed or has no rows")
    for row in rows:
        for field in E13_ROW_FIELDS:
            if field not in row:
                sys.exit(
                    f"FAIL: BENCH_E13.json row lacks {field!r} "
                    "(the publish counters regressed)"
                )
        if not row["capture_is_cached"]:
            sys.exit(
                "FAIL: E13 repeat snapshot() at {} objects was not pointer-equal "
                "(the engine snapshot cache regressed)".format(row["objects"])
            )

    first, last = rows[0], rows[-1]
    size_growth = last["objects"] / max(first["objects"], 1)
    p50_growth = last["publish_p50_ns"] / max(first["publish_p50_ns"], 1)
    if p50_growth > E13_MAX_P50_GROWTH:
        sys.exit(
            "FAIL: E13 publish p50 grew {:.1f}x over a {:.0f}x object growth "
            "(> {:.0f}x cap — snapshot publication is no longer O(Δ))".format(
                p50_growth, size_growth, E13_MAX_P50_GROWTH
            )
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e13_baseline.json")
    baseline = load(baseline_path)
    if e13["seed"] == baseline.get("seed"):
        floor = baseline["write_ops_per_sec"] * E13_REGRESSION_FLOOR
        worst = min(row["write_ops_per_sec"] for row in rows)
        if worst < floor:
            sys.exit(
                "FAIL: E13 writer throughput regressed >50%: {:.0f} < floor {:.0f} "
                "(baseline {:.0f}, see scripts/e13_baseline.json)".format(
                    worst, floor, baseline["write_ops_per_sec"]
                )
            )
        print(
            "OK: E13 publish sweep ({} sizes, p50 grew {:.1f}x over {:.0f}x objects, "
            "captures cached, worst writer {:.0f} ops/s)".format(
                len(rows), p50_growth, size_growth, worst
            )
        )
    else:
        print(
            "OK: E13 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e13["seed"]
            )
        )


if __name__ == "__main__":
    main()
