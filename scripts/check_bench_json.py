#!/usr/bin/env python3
"""CI gate over the machine-readable benchmark outputs.

Fails (exit 1) when BENCH_E9.json, BENCH_E10.json, BENCH_E12.json,
BENCH_E13.json or BENCH_E14.json is missing or unparsable, when the E9
tick table was produced with the golden seed (42) but drifted from the
recorded golden values, when the E12 session run loses a gated
property (read speedup, zero-copy readers, determinism) or regresses
more than 30% below the committed ops/sec baseline in
scripts/e12_baseline.json, when the E13 publish sweep loses
snapshot-capture caching or its median publish latency stops being
sublinear in database size (baseline in scripts/e13_baseline.json), or
when the E14 sharded write path loses its >= 2.5x four-shard
critical-path scaling, any of its determinism invariants, or regresses
below the committed baseline in scripts/e14_baseline.json, or when the
E15 durability sweep loses a gated property (delta checkpoints
cheaper than full rebases and at most a quarter of one at the largest
size, warm restarts growing at most 3x over the object sweep,
recovered fingerprints matching the live engine) or its warm-restart
latency regresses past the ceiling in scripts/e15_baseline.json. The
modeled tick economy is the experiments' measurement instrument: a
deliberate cost-model change must update the golden table here *and*
in crates/bench/src/e9_performance.rs in the same commit.

BENCH_E16.json (the wire-protocol flood) is gated too: every op of
every client must get a typed committed reply, the server must count
zero panics, protocol errors and timeouts, and ops/sec must stay
above the floor derived from scripts/e16_baseline.json.

BENCH_E17.json (the time-travel history layer) is gated on its §15
contract: history reads off retained snapshots must stay zero-copy,
the retention ring must stay bounded by its policy, impact queries
against a pinned historical seq must not track installation size, and
merge-forward throughput must stay above the floor derived from
scripts/e17_baseline.json.

BENCH_E18.json (the compiled fml fast path) is gated on the §16
contract: every script workload must produce the identical value under
the bytecode VM and the tree-walking oracle, the shared cost table
must keep the fuel the two modes charge within a 3x band, the VM must
beat the tree-walker by at least 3x on the loop workloads (arith-loop
and closure — the committed floor), the end-to-end trigger batch must
verify firing and run faster under the VM, and VM-mode trigger
throughput must stay above the floor derived from
scripts/e18_baseline.json.
"""

import json
import os
import sys

GOLDEN_SEED = 42

# (gates, bytes, metadata, hybrid_read, fmcad_read, activity,
#  procedural, procedural_activity) — must match the golden test in
# crates/bench/src/e9_performance.rs.
E9_GOLDEN = [
    (10, 649, 0, 2947, 1149, 6243, 0, 3296),
    (50, 3216, 0, 10648, 3716, 19078, 0, 8430),
    (200, 12875, 0, 39625, 13375, 67373, 0, 27748),
    (800, 50705, 0, 153115, 51205, 256523, 0, 103408),
    (3200, 207885, 0, 624655, 208385, 1042423, 0, 417768),
]

E9_FIELDS = (
    "gates",
    "bytes",
    "metadata_ticks",
    "hybrid_read_ticks",
    "fmcad_read_ticks",
    "activity_ticks",
    "procedural_ticks",
    "procedural_activity_ticks",
)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(f"FAIL: {path} is missing (run `report --json` first)")
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL: {path} is not valid JSON: {e}")


def baseline_metric(baseline, path, key):
    """A required numeric key of a committed baseline file.

    Baselines are hand-committed, so a missing key is a baseline-file
    bug, not a benchmark regression — fail with the file name and key
    instead of a bare KeyError traceback.
    """
    if key not in baseline:
        sys.exit(
            f"FAIL: baseline {path} lacks the key {key!r} "
            "(regenerate it from a golden-seed `report --json` run)"
        )
    value = baseline[key]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        sys.exit(f"FAIL: baseline {path} key {key!r} is not a number: {value!r}")
    return value


def main():
    e9 = load("BENCH_E9.json")
    e10 = load("BENCH_E10.json")

    for name, doc in (("BENCH_E9.json", e9), ("BENCH_E10.json", e10)):
        if "seed" not in doc or not doc.get("rows"):
            sys.exit(f"FAIL: {name} lacks a seed or has no rows")

    if e9["seed"] == GOLDEN_SEED:
        rows = [tuple(row[f] for f in E9_FIELDS) for row in e9["rows"]]
        if rows != E9_GOLDEN:
            for got, want in zip(rows, E9_GOLDEN):
                if got != want:
                    print(f"  drift at gates={got[0]}:", file=sys.stderr)
                    print(f"    got  {got}", file=sys.stderr)
                    print(f"    want {want}", file=sys.stderr)
            sys.exit("FAIL: E9 tick table drifted from the golden seed-42 values")
        print(f"OK: E9 golden tick table intact ({len(rows)} rows, seed {GOLDEN_SEED})")
    else:
        print(f"OK: E9 parsed ({len(e9['rows'])} rows, non-golden seed {e9['seed']})")

    engine = e10.get("engine", {})
    for field in ("applied", "ops", "failures"):
        if field not in engine:
            sys.exit(
                f"FAIL: BENCH_E10.json engine block lacks {field!r} "
                "(the observability counters regressed)"
            )
    print(
        "OK: E10 parsed ({} rows, seed {}, {} engine ops journaled, "
        "{} failure kind(s) counted)".format(
            len(e10["rows"]), e10["seed"], engine["applied"], len(engine["failures"])
        )
    )

    faults = engine.get("fault_injection")
    if faults is None:
        sys.exit("FAIL: BENCH_E10.json engine block lacks the E11 fault counters")
    for field in ("points_armed", "faults_fired", "recoveries_verified"):
        if field not in faults:
            sys.exit(f"FAIL: fault_injection block lacks {field!r}")
    if faults["recoveries_verified"] != faults["points_armed"]:
        sys.exit(
            "FAIL: E11 verified only {}/{} crash recoveries".format(
                faults["recoveries_verified"], faults["points_armed"]
            )
        )
    print(
        "OK: E11 fault injection ({} points armed, {} fired, {} recoveries verified)".format(
            faults["points_armed"], faults["faults_fired"], faults["recoveries_verified"]
        )
    )

    check_e12()
    check_e13()
    check_e14()
    check_e15()
    check_e16()
    check_e17()
    check_e18()


E12_COUNTERS = (
    "writers",
    "readers",
    "total_reads",
    "single_session_read_ns",
    "concurrent_read_ns",
    "read_speedup",
    "read_ops_per_sec",
    "write_ops",
    "write_ns",
    "write_ops_per_sec",
    "batches",
    "max_batch",
    "mean_batch",
    "writer_waits",
    "reader_waits",
    "max_queue_depth",
    "reader_materializations",
    "deterministic_zero_copy",
    "deterministic_deep_copy",
)

# A fresh run must reach at least this fraction of the committed
# baseline's ops/sec — i.e. a >30% regression fails.
E12_REGRESSION_FLOOR = 0.7


def check_e12():
    e12 = load("BENCH_E12.json")
    sessions = e12.get("sessions")
    if "seed" not in e12 or not isinstance(sessions, dict):
        sys.exit("FAIL: BENCH_E12.json lacks a seed or a sessions block")
    for field in E12_COUNTERS:
        if field not in sessions:
            sys.exit(
                f"FAIL: BENCH_E12.json sessions block lacks {field!r} "
                "(the service counters regressed)"
            )

    if not sessions["deterministic_zero_copy"] or not sessions["deterministic_deep_copy"]:
        sys.exit("FAIL: E12 service run diverged from the serial engine fingerprint")
    if sessions["reader_materializations"] != 0:
        sys.exit(
            "FAIL: E12 reader sessions materialized {} bytes "
            "(snapshot reads must be zero-copy)".format(sessions["reader_materializations"])
        )
    if sessions["read_speedup"] <= 1.5:
        sys.exit(
            "FAIL: E12 concurrent read speedup {}x <= 1.5x over the "
            "single-session engine baseline".format(sessions["read_speedup"])
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e12_baseline.json")
    baseline = load(baseline_path)
    if e12["seed"] == baseline.get("seed"):
        for metric in ("read_ops_per_sec", "write_ops_per_sec"):
            recorded = baseline_metric(baseline, baseline_path, metric)
            floor = recorded * E12_REGRESSION_FLOOR
            if sessions[metric] < floor:
                sys.exit(
                    "FAIL: E12 {} regressed >30%: {:.0f} < floor {:.0f} "
                    "(baseline {:.0f}, see scripts/e12_baseline.json)".format(
                        metric, sessions[metric], floor, recorded
                    )
                )
        print(
            "OK: E12 sessions ({}w x {}r, {:.1f}x read speedup, {:.0f} read/s, "
            "{:.0f} write/s, {} batches, deterministic both modes)".format(
                sessions["writers"],
                sessions["readers"],
                sessions["read_speedup"],
                sessions["read_ops_per_sec"],
                sessions["write_ops_per_sec"],
                sessions["batches"],
            )
        )
    else:
        print(
            "OK: E12 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e12["seed"]
            )
        )


E13_ROW_FIELDS = (
    "objects",
    "publish_p50_ns",
    "publish_p99_ns",
    "write_ops_per_sec",
    "capture_is_cached",
)

# The largest size has ~50x the objects of the smallest; an O(size)
# publish would grow its p50 by about that factor. The persistent
# store must keep the growth to a small multiple (noise allowance
# included — the capture itself is O(1)).
E13_MAX_P50_GROWTH = 8.0

# A fresh run's writer throughput must reach at least this fraction of
# the committed baseline in scripts/e13_baseline.json.
E13_REGRESSION_FLOOR = 0.5


def check_e13():
    e13 = load("BENCH_E13.json")
    rows = e13.get("rows")
    if "seed" not in e13 or not rows:
        sys.exit("FAIL: BENCH_E13.json lacks a seed or has no rows")
    for row in rows:
        for field in E13_ROW_FIELDS:
            if field not in row:
                sys.exit(
                    f"FAIL: BENCH_E13.json row lacks {field!r} "
                    "(the publish counters regressed)"
                )
        if not row["capture_is_cached"]:
            sys.exit(
                "FAIL: E13 repeat snapshot() at {} objects was not pointer-equal "
                "(the engine snapshot cache regressed)".format(row["objects"])
            )

    first, last = rows[0], rows[-1]
    size_growth = last["objects"] / max(first["objects"], 1)
    p50_growth = last["publish_p50_ns"] / max(first["publish_p50_ns"], 1)
    if p50_growth > E13_MAX_P50_GROWTH:
        sys.exit(
            "FAIL: E13 publish p50 grew {:.1f}x over a {:.0f}x object growth "
            "(> {:.0f}x cap — snapshot publication is no longer O(Δ))".format(
                p50_growth, size_growth, E13_MAX_P50_GROWTH
            )
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e13_baseline.json")
    baseline = load(baseline_path)
    if e13["seed"] == baseline.get("seed"):
        recorded = baseline_metric(baseline, baseline_path, "write_ops_per_sec")
        floor = recorded * E13_REGRESSION_FLOOR
        worst = min(row["write_ops_per_sec"] for row in rows)
        if worst < floor:
            sys.exit(
                "FAIL: E13 writer throughput regressed >50%: {:.0f} < floor {:.0f} "
                "(baseline {:.0f}, see scripts/e13_baseline.json)".format(
                    worst, floor, recorded
                )
            )
        print(
            "OK: E13 publish sweep ({} sizes, p50 grew {:.1f}x over {:.0f}x objects, "
            "captures cached, worst writer {:.0f} ops/s)".format(
                len(rows), p50_growth, size_growth, worst
            )
        )
    else:
        print(
            "OK: E13 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e13["seed"]
            )
        )


E14_ROW_FIELDS = (
    "shards",
    "write_ops",
    "wall_ns",
    "max_lane_busy_ns",
    "router_ns",
    "critical_path_ns",
    "critical_ops_per_sec",
    "wall_ops_per_sec",
    "per_shard_ops",
    "batches",
    "writer_waits",
)

E14_SHARD_COUNTS = (1, 2, 4, 8)

# Four shards must carry at least this multiple of the one-shard
# critical-path throughput (matches E14Report::holds in
# crates/bench/src/e14_shards.rs).
E14_MIN_WRITE_SCALING = 2.5

# Composed four-shard view reads may cost at most 2x the single-shard
# view (ratio floor 0.5).
E14_MIN_READ_RATIO = 0.5

# A fresh run's four-shard critical-path throughput must reach at
# least this fraction of the committed baseline in
# scripts/e14_baseline.json.
E14_REGRESSION_FLOOR = 0.5


def check_e14():
    e14 = load("BENCH_E14.json")
    rows = e14.get("rows")
    if "seed" not in e14 or not rows:
        sys.exit("FAIL: BENCH_E14.json lacks a seed or has no rows")

    by_shards = {}
    for row in rows:
        for field in E14_ROW_FIELDS:
            if field not in row:
                sys.exit(
                    f"FAIL: BENCH_E14.json row lacks {field!r} "
                    "(the per-shard lane counters regressed)"
                )
        if len(row["per_shard_ops"]) != row["shards"]:
            sys.exit(
                "FAIL: E14 row at {} shards reports {} per-shard counters".format(
                    row["shards"], len(row["per_shard_ops"])
                )
            )
        if sum(row["per_shard_ops"]) != row["write_ops"]:
            sys.exit(
                "FAIL: E14 row at {} shards lost ops: lanes sum to {} of {}".format(
                    row["shards"], sum(row["per_shard_ops"]), row["write_ops"]
                )
            )
        by_shards[row["shards"]] = row
    for shards in E14_SHARD_COUNTS:
        if shards not in by_shards:
            sys.exit(f"FAIL: BENCH_E14.json has no row for {shards} shard(s)")

    for invariant in ("tick_table_invariant", "event_stream_invariant", "recovery_roundtrip"):
        if e14.get(invariant) is not True:
            sys.exit(
                f"FAIL: E14 {invariant} is not true — the sharded write "
                "path is no longer deterministic across shard counts"
            )
    if e14.get("reader_materializations") != 0:
        sys.exit(
            "FAIL: E14 composed-view readers materialized {} bytes "
            "(sharded snapshot reads must stay zero-copy)".format(
                e14.get("reader_materializations")
            )
        )

    scaling = by_shards[4]["critical_ops_per_sec"] / max(
        by_shards[1]["critical_ops_per_sec"], 1
    )
    if scaling < E14_MIN_WRITE_SCALING:
        sys.exit(
            "FAIL: E14 four-shard critical-path scaling {:.2f}x < {:.1f}x "
            "(the partitioned write path stopped scaling)".format(
                scaling, E14_MIN_WRITE_SCALING
            )
        )
    read_ratio = e14.get("read_ratio", 0)
    if read_ratio < E14_MIN_READ_RATIO:
        sys.exit(
            "FAIL: E14 four-shard view reads cost {:.2f}x the single-shard "
            "view (ratio floor {:.1f})".format(read_ratio, E14_MIN_READ_RATIO)
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e14_baseline.json")
    baseline = load(baseline_path)
    if e14["seed"] == baseline.get("seed"):
        recorded = baseline_metric(baseline, baseline_path, "critical_ops_per_sec_4_shards")
        floor = recorded * E14_REGRESSION_FLOOR
        measured = by_shards[4]["critical_ops_per_sec"]
        if measured < floor:
            sys.exit(
                "FAIL: E14 four-shard throughput regressed >50%: {:.0f} < floor {:.0f} "
                "(baseline {:.0f}, see scripts/e14_baseline.json)".format(
                    measured, floor, recorded
                )
            )
        print(
            "OK: E14 shards ({} counts, {:.2f}x four-shard scaling, "
            "{:.0f} critical ops/s at 4 shards, read ratio {:.2f}, "
            "all invariants hold)".format(
                len(rows), scaling, measured, read_ratio
            )
        )
    else:
        print(
            "OK: E14 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e14["seed"]
            )
        )


E15_ROW_FIELDS = (
    "objects",
    "full_p50_ns",
    "delta_p50_ns",
    "delta_ratio",
    "restart_p50_ns",
    "restart_replayed",
    "recovered_matches",
)

# The largest size replays the same fixed 200-op delta as the
# smallest, so an O(Δ) warm restart stays near-flat; 3x absorbs
# timing noise (matches E15Report::holds in
# crates/bench/src/e15_durability.rs).
E15_MAX_RESTART_GROWTH = 3.0

# At the largest size a delta checkpoint may cost at most a quarter
# of a full-image rebase.
E15_MAX_DELTA_RATIO = 0.25

# At every size (including the smallest, where fixed per-commit
# overhead dominates both paths) a delta checkpoint may never
# meaningfully exceed a full rebase.
E15_MAX_ROW_DELTA_RATIO = 1.5

# A fresh run's warm-restart p50 at the largest size may be at most
# this multiple of the committed baseline in scripts/e15_baseline.json
# (latency metric: larger is worse, so the gate is a ceiling).
E15_REGRESSION_CEILING = 2.0


def check_e15():
    e15 = load("BENCH_E15.json")
    rows = e15.get("rows")
    if "seed" not in e15 or not rows:
        sys.exit("FAIL: BENCH_E15.json lacks a seed or has no rows")
    for row in rows:
        for field in E15_ROW_FIELDS:
            if field not in row:
                sys.exit(
                    f"FAIL: BENCH_E15.json row lacks {field!r} "
                    "(the durability counters regressed)"
                )
        if not row["recovered_matches"]:
            sys.exit(
                "FAIL: E15 warm restart at {} objects diverged from the live "
                "engine fingerprint".format(row["objects"])
            )
        if row["delta_ratio"] > E15_MAX_ROW_DELTA_RATIO:
            sys.exit(
                "FAIL: E15 delta checkpoint at {} objects cost {} ns, "
                "{:.0f}% of the full rebase's {} ns (> {:.0f}% sanity cap)".format(
                    row["objects"],
                    row["delta_p50_ns"],
                    row["delta_ratio"] * 100,
                    row["full_p50_ns"],
                    E15_MAX_ROW_DELTA_RATIO * 100,
                )
            )

    first, last = rows[0], rows[-1]
    size_growth = last["objects"] / max(first["objects"], 1)
    restart_growth = last["restart_p50_ns"] / max(first["restart_p50_ns"], 1)
    if restart_growth > E15_MAX_RESTART_GROWTH:
        sys.exit(
            "FAIL: E15 warm restart p50 grew {:.2f}x over a {:.0f}x object "
            "growth (> {:.1f}x cap — restart is no longer O(Δ))".format(
                restart_growth, size_growth, E15_MAX_RESTART_GROWTH
            )
        )
    if last["delta_ratio"] > E15_MAX_DELTA_RATIO:
        sys.exit(
            "FAIL: E15 delta checkpoint at {} objects costs {:.1f}% of a full "
            "rebase (> {:.0f}% cap — checkpointing is no longer O(Δ))".format(
                last["objects"],
                last["delta_ratio"] * 100,
                E15_MAX_DELTA_RATIO * 100,
            )
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e15_baseline.json")
    baseline = load(baseline_path)
    if e15["seed"] == baseline.get("seed"):
        recorded = baseline_metric(baseline, baseline_path, "restart_p50_ns_largest")
        ceiling = recorded * E15_REGRESSION_CEILING
        measured = last["restart_p50_ns"]
        if measured > ceiling:
            sys.exit(
                "FAIL: E15 warm-restart latency regressed >2x: {:.0f} ns > "
                "ceiling {:.0f} ns (baseline {:.0f}, see "
                "scripts/e15_baseline.json)".format(measured, ceiling, recorded)
            )
        print(
            "OK: E15 durability ({} sizes, restart grew {:.2f}x over {:.0f}x "
            "objects, final delta/full {:.1f}%, restart p50 {:.0f} ns at the "
            "largest size, fingerprints match)".format(
                len(rows),
                restart_growth,
                size_growth,
                last["delta_ratio"] * 100,
                measured,
            )
        )
    else:
        print(
            "OK: E15 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e15["seed"]
            )
        )


E16_COUNTERS = (
    "clients",
    "ops_per_client",
    "total_ops",
    "committed",
    "failed",
    "busy",
    "wall_ns",
    "ops_per_sec",
    "p50_ns",
    "p99_ns",
    "max_ns",
    "handshakes",
    "frames_in",
    "frames_out",
    "timeouts",
    "protocol_errors",
    "panics",
    "max_queue_depth",
    "max_batch",
)

# The golden run must keep the paper-scale department on the wire.
E16_MIN_CLIENTS = 1000

# A fresh run must reach at least this fraction of the committed
# baseline's ops/sec — the flood is heavily scheduler-bound, so the
# floor is generous (a >70% regression fails).
E16_REGRESSION_FLOOR = 0.3


def check_e16():
    e16 = load("BENCH_E16.json")
    net = e16.get("net")
    if "seed" not in e16 or not isinstance(net, dict):
        sys.exit("FAIL: BENCH_E16.json lacks a seed or a net block")
    for field in E16_COUNTERS:
        if field not in net:
            sys.exit(
                f"FAIL: BENCH_E16.json net block lacks {field!r} "
                "(the wire-server counters regressed)"
            )

    if net["clients"] < E16_MIN_CLIENTS:
        sys.exit(
            "FAIL: E16 ran only {} concurrent clients (< {})".format(
                net["clients"], E16_MIN_CLIENTS
            )
        )
    if net["committed"] != net["total_ops"]:
        sys.exit(
            "FAIL: E16 committed {}/{} ops ({} failed, {} busy) — the "
            "conflict-free flood must commit everything".format(
                net["committed"], net["total_ops"], net["failed"], net["busy"]
            )
        )
    for counter in ("panics", "protocol_errors", "timeouts"):
        if net[counter] != 0:
            sys.exit(
                "FAIL: E16 server counted {} {} under a well-formed flood".format(
                    net[counter], counter
                )
            )
    if net["handshakes"] < net["clients"]:
        sys.exit(
            "FAIL: E16 completed only {}/{} handshakes".format(
                net["handshakes"], net["clients"]
            )
        )
    if net["p50_ns"] > net["p99_ns"]:
        sys.exit("FAIL: E16 latency percentiles are inconsistent (p50 > p99)")
    if net["max_queue_depth"] < 1:
        sys.exit(
            "FAIL: E16 write-queue high-water mark is 0 — the queue-depth "
            "gauge regressed"
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e16_baseline.json")
    baseline = load(baseline_path)
    if e16["seed"] == baseline.get("seed"):
        recorded = baseline_metric(baseline, baseline_path, "ops_per_sec")
        floor = recorded * E16_REGRESSION_FLOOR
        if net["ops_per_sec"] < floor:
            sys.exit(
                "FAIL: E16 throughput regressed >70%: {:.0f} < floor {:.0f} "
                "(baseline {:.0f}, see scripts/e16_baseline.json)".format(
                    net["ops_per_sec"], floor, recorded
                )
            )
        print(
            "OK: E16 wire flood ({} clients x {} ops, {:.0f} ops/s, "
            "p99 {:.1f}ms, queue peaked at {}, 0 panics)".format(
                net["clients"],
                net["ops_per_client"],
                net["ops_per_sec"],
                net["p99_ns"] / 1e6,
                net["max_queue_depth"],
            )
        )
    else:
        print(
            "OK: E16 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e16["seed"]
            )
        )


E17_ROW_FIELDS = (
    "objects",
    "impact_p50_ns",
    "impact_p99_ns",
    "merge_ops_per_sec",
    "merges",
    "zero_copy",
    "retained",
    "retention_bounded",
)

# The largest size has ~10x the objects of the smallest; an impact
# query that walked the installation would grow its p50 by about that
# factor. The query walks one cellview's impact graph, so the growth
# must stay a small multiple (matches E17Report::holds in
# crates/bench/src/e17_history.rs: growth < size_growth / 2).
E17_MAX_IMPACT_GROWTH = 5.0

# A fresh run's merge-forward throughput must reach at least this
# fraction of the committed baseline in scripts/e17_baseline.json.
E17_REGRESSION_FLOOR = 0.5


def check_e17():
    e17 = load("BENCH_E17.json")
    rows = e17.get("rows")
    if "seed" not in e17 or not rows:
        sys.exit("FAIL: BENCH_E17.json lacks a seed or has no rows")
    for row in rows:
        for field in E17_ROW_FIELDS:
            if field not in row:
                sys.exit(
                    f"FAIL: BENCH_E17.json row lacks {field!r} "
                    "(the history-layer counters regressed)"
                )
        if not row["zero_copy"]:
            sys.exit(
                "FAIL: E17 history reads at {} objects copied payload bytes "
                "(retained-snapshot reads must be zero-copy)".format(row["objects"])
            )
        if not row["retention_bounded"]:
            sys.exit(
                "FAIL: E17 retention ring at {} objects held {} seqs "
                "(the LastN policy stopped bounding the ring)".format(
                    row["objects"], row["retained"]
                )
            )
        if row["merges"] < 1:
            sys.exit("FAIL: E17 measured no clean merge-forward cycles")

    first, last = rows[0], rows[-1]
    size_growth = last["objects"] / max(first["objects"], 1)
    impact_growth = last["impact_p50_ns"] / max(first["impact_p50_ns"], 1)
    if impact_growth > E17_MAX_IMPACT_GROWTH:
        sys.exit(
            "FAIL: E17 impact p50 grew {:.1f}x over a {:.0f}x object growth "
            "(> {:.0f}x cap — impact queries track the installation again)".format(
                impact_growth, size_growth, E17_MAX_IMPACT_GROWTH
            )
        )

    baseline_path = os.path.join(os.path.dirname(__file__), "e17_baseline.json")
    baseline = load(baseline_path)
    if e17["seed"] == baseline.get("seed"):
        recorded = baseline_metric(baseline, baseline_path, "merge_ops_per_sec")
        floor = recorded * E17_REGRESSION_FLOOR
        worst = min(row["merge_ops_per_sec"] for row in rows)
        if worst < floor:
            sys.exit(
                "FAIL: E17 merge-forward throughput regressed >50%: {:.0f} < "
                "floor {:.0f} (baseline {:.0f}, see scripts/e17_baseline.json)".format(
                    worst, floor, recorded
                )
            )
        print(
            "OK: E17 history ({} sizes, impact p50 grew {:.1f}x over {:.0f}x objects, "
            "worst merge rate {:.0f}/s, reads zero-copy, ring bounded)".format(
                len(rows), impact_growth, size_growth, worst
            )
        )
    else:
        print(
            "OK: E17 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e17["seed"]
            )
        )


E18_ROW_FIELDS = (
    "workload",
    "reps",
    "vm_ns",
    "tw_ns",
    "speedup",
    "vm_fuel",
    "tw_fuel",
    "fuel_ratio",
    "agree",
)

E18_TRIGGER_FIELDS = (
    "ops",
    "vm_ns",
    "tw_ns",
    "vm_ops_per_sec",
    "tw_ops_per_sec",
    "speedup",
    "verified",
)

E18_WORKLOADS = ("arith-loop", "closure", "string")

# The committed floor of the §16 redesign: on the loop workloads the
# VM must deliver at least 3x the tree-walker's throughput. The
# speedup is a same-machine ratio, so the floor applies at any seed.
E18_LOOP_WORKLOADS = ("arith-loop", "closure")
E18_MIN_LOOP_SPEEDUP = 3.0

# The end-to-end trigger batch carries Service-layer overhead that is
# identical in both modes, so its floor is lower.
E18_MIN_TRIGGER_SPEEDUP = 1.2

# Both modes charge fuel through the shared cost table; the per-call
# totals may differ only by dispatch shape, never by a model change.
E18_MAX_FUEL_RATIO = 3.0

# A fresh run's VM-mode trigger throughput must reach at least this
# fraction of the committed baseline (the batch runs through the full
# Service write path, so the floor is generous).
E18_REGRESSION_FLOOR = 0.3


def check_e18():
    e18 = load("BENCH_E18.json")
    rows = e18.get("rows")
    trigger = e18.get("trigger")
    if "seed" not in e18 or not rows or not isinstance(trigger, dict):
        sys.exit("FAIL: BENCH_E18.json lacks a seed, rows or a trigger block")

    by_name = {}
    for row in rows:
        for field in E18_ROW_FIELDS:
            if field not in row:
                sys.exit(
                    f"FAIL: BENCH_E18.json row lacks {field!r} "
                    "(the VM benchmark counters regressed)"
                )
        if not row["agree"]:
            sys.exit(
                "FAIL: E18 workload {!r} produced different values under "
                "the VM and the tree-walker".format(row["workload"])
            )
        ratio = row["fuel_ratio"]
        if ratio > E18_MAX_FUEL_RATIO or ratio < 1.0 / E18_MAX_FUEL_RATIO:
            sys.exit(
                "FAIL: E18 workload {!r} fuel ratio {:.2f} left the "
                "[1/{:.0f}, {:.0f}] band — the shared cost table diverged "
                "between modes".format(
                    row["workload"], ratio, E18_MAX_FUEL_RATIO, E18_MAX_FUEL_RATIO
                )
            )
        by_name[row["workload"]] = row
    for name in E18_WORKLOADS:
        if name not in by_name:
            sys.exit(f"FAIL: BENCH_E18.json has no row for workload {name!r}")

    for name in E18_LOOP_WORKLOADS:
        speedup = by_name[name]["speedup"]
        if speedup < E18_MIN_LOOP_SPEEDUP:
            sys.exit(
                "FAIL: E18 VM speedup on {!r} is {:.2f}x < the committed "
                "{:.1f}x floor (the compiled fast path regressed)".format(
                    name, speedup, E18_MIN_LOOP_SPEEDUP
                )
            )

    for field in E18_TRIGGER_FIELDS:
        if field not in trigger:
            sys.exit(
                f"FAIL: BENCH_E18.json trigger block lacks {field!r} "
                "(the trigger-batch counters regressed)"
            )
    if not trigger["verified"]:
        sys.exit(
            "FAIL: E18 trigger batch did not verify that the registered "
            "trigger fires"
        )
    if trigger["speedup"] < E18_MIN_TRIGGER_SPEEDUP:
        sys.exit(
            "FAIL: E18 trigger-batch speedup {:.2f}x < {:.1f}x — compiled "
            "triggers stopped being the fast path".format(
                trigger["speedup"], E18_MIN_TRIGGER_SPEEDUP
            )
        )
    if e18.get("holds") is not True:
        sys.exit("FAIL: E18 reports its own gated properties as lost")

    baseline_path = os.path.join(os.path.dirname(__file__), "e18_baseline.json")
    baseline = load(baseline_path)
    if e18["seed"] == baseline.get("seed"):
        recorded = baseline_metric(baseline, baseline_path, "trigger_vm_ops_per_sec")
        floor = recorded * E18_REGRESSION_FLOOR
        if trigger["vm_ops_per_sec"] < floor:
            sys.exit(
                "FAIL: E18 VM trigger throughput regressed >70%: {:.0f} < "
                "floor {:.0f} (baseline {:.0f}, see scripts/e18_baseline.json)".format(
                    trigger["vm_ops_per_sec"], floor, recorded
                )
            )
        print(
            "OK: E18 fml fast path ({} workloads agree, loop speedups "
            "{:.1f}x/{:.1f}x >= {:.1f}x floor, trigger batch {:.1f}x at "
            "{:.0f} ops/s, fuel in band)".format(
                len(rows),
                by_name["arith-loop"]["speedup"],
                by_name["closure"]["speedup"],
                E18_MIN_LOOP_SPEEDUP,
                trigger["speedup"],
                trigger["vm_ops_per_sec"],
            )
        )
    else:
        print(
            "OK: E18 parsed (non-golden seed {}, baseline comparison skipped)".format(
                e18["seed"]
            )
        )


if __name__ == "__main__":
    main()
