//! Standalone wire-protocol server for the hybrid framework.
//!
//! Serves a fresh engine over TCP using the `cad-net` protocol.
//! Usage:
//!
//! ```text
//! net-server [--addr HOST:PORT] [--shards N] [--max-conns N]
//!            [--window N] [--busy-threshold N]
//! ```
//!
//! With `--shards 0` (the default) a single-engine
//! [`hybrid::Service`] backs the server; with `--shards N` (N >= 1) a
//! partitioned [`hybrid::ShardedService`] does. Connect with
//! [`cad_net::Client`] as user `framework-admin` to administer the
//! desktop (add users, projects, flows), then as any registered user
//! to act as them.

use std::process::ExitCode;

use cad_net::{Server, ServerConfig};
use jcf_fmcad::hybrid::{Engine, Service, ShardedServiceBuilder};

struct Args {
    addr: String,
    shards: usize,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7815".into(),
        shards: 0,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards needs a number".to_owned())?;
            }
            "--max-conns" => {
                args.config.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|_| "--max-conns needs a number".to_owned())?;
            }
            "--window" => {
                args.config.inflight_window = value("--window")?
                    .parse()
                    .map_err(|_| "--window needs a number".to_owned())?;
            }
            "--busy-threshold" => {
                args.config.busy_threshold = value("--busy-threshold")?
                    .parse()
                    .map_err(|_| "--busy-threshold needs a number".to_owned())?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: net-server [--addr HOST:PORT] [--shards N] [--max-conns N] \
                     [--window N] [--busy-threshold N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("net-server: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let bound = if args.shards == 0 {
        Server::bind(
            &args.addr,
            args.config.clone(),
            Service::new(Engine::builder().build()),
        )
    } else {
        Server::bind(
            &args.addr,
            args.config.clone(),
            ShardedServiceBuilder::new().shards(args.shards).build(),
        )
    };
    let server = match bound {
        Ok(server) => server,
        Err(e) => {
            eprintln!("net-server: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let backend = if args.shards == 0 {
        "service".to_owned()
    } else {
        format!("sharded x{}", args.shards)
    };
    println!(
        "net-server: listening on {} ({backend}, max-conns {}, window {}, busy at {})",
        server.local_addr(),
        args.config.max_conns,
        args.config.inflight_window,
        args.config.busy_threshold,
    );
    // Serve until killed; the acceptor thread owns the listener and
    // the `Server` drop (never reached) would stop it.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
