//! # jcf-fmcad — umbrella crate for the hybrid framework reproduction
//!
//! Re-exports every crate of the workspace so examples, integration
//! tests and downstream users can depend on one name.
//!
//! The workspace reproduces *"Enhanced Functionality by Coupling the
//! JESSI-COMMON-Framework with an ECAD Framework"* (Kunzmann & Seepold,
//! DATE 1995). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the evaluation reproduction.
//!
//! # Examples
//!
//! ```
//! use jcf_fmcad::hybrid::Engine;
//!
//! let hy = Engine::builder().build();
//! assert!(hy.jcf().database().len() > 0, "bootstrap registers resources");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cad_net;
pub use cad_tools;
pub use cad_vfs;
pub use design_data;
pub use fmcad;
pub use fml;
pub use hybrid;
pub use jcf;
pub use oms;
