//! §3.1 semantics across the two frameworks: what blocks where.
//!
//! The integration-level contrast behind experiment E4: FMCAD's
//! cellview checkout and single `.meta` serialise designers, while the
//! hybrid framework isolates them by cell version and lets variants
//! carry parallel work.

use design_data::{format, generate};
use fmcad::{Fmcad, FmcadError};
use hybrid::{Engine, ToolOutput};

#[test]
fn fmcad_serialises_designers_on_one_cellview() {
    let mut fm = Fmcad::new();
    fm.create_library("l").unwrap();
    fm.create_cell("l", "c").unwrap();
    fm.create_cellview("l", "c", "schematic", "schematic")
        .unwrap();
    fm.checkin("alice", "l", "c", "schematic", b"v1".to_vec())
        .unwrap();

    fm.checkout("alice", "l", "c", "schematic").unwrap();
    // Bob is fully blocked: no second checkout, no parallel version.
    assert!(matches!(
        fm.checkout("bob", "l", "c", "schematic"),
        Err(FmcadError::CheckedOutBy { .. })
    ));
    assert!(matches!(
        fm.checkin("bob", "l", "c", "schematic", b"x".to_vec()),
        Err(FmcadError::CheckedOutBy { .. })
    ));
    assert_eq!(fm.blocked_checkouts(), 2);
}

#[test]
fn hybrid_isolates_by_cell_version_and_allows_parallel_variants() {
    let mut hy = Engine::new();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false).unwrap();
    let bob = hy.add_user("bob", false).unwrap();
    let team = hy.add_team(admin, "t").unwrap();
    hy.add_team_member(admin, team, alice).unwrap();
    hy.add_team_member(admin, team, bob).unwrap();
    let flow = hy.standard_flow("f").unwrap();
    let project = hy.create_project("p").unwrap();

    // Two cells: alice and bob work concurrently without contention.
    let c1 = hy.create_cell(project, "alu").unwrap();
    let c2 = hy.create_cell(project, "regfile").unwrap();
    let (cv1, v1) = hy.create_cell_version(c1, flow.flow, team).unwrap();
    let (cv2, v2) = hy.create_cell_version(c2, flow.flow, team).unwrap();
    hy.reserve(alice, cv1).unwrap();
    hy.reserve(bob, cv2).unwrap();

    let bytes = format::write_netlist(&generate::full_adder()).into_bytes();
    let p1 = bytes.clone();
    hy.run_activity(alice, v1, flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: p1.into(),
        }])
    })
    .unwrap();
    let p2 = bytes.clone();
    hy.run_activity(bob, v2, flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: p2.into(),
        }])
    })
    .unwrap();

    // Same design object, two versions in parallel via variants — the
    // §3.1 capability FMCAD lacks.
    let exp = hy.derive_variant(alice, cv1, "exp", Some(v1)).unwrap();
    let p3 = bytes;
    hy.run_activity(alice, exp, flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: p3.into(),
        }])
    })
    .unwrap();

    assert_eq!(
        hy.fmcad().blocked_checkouts(),
        0,
        "no designer ever blocked"
    );
    assert!(hy.verify_project(project).unwrap().is_empty());
}

#[test]
fn hybrid_turns_published_work_over_cleanly() {
    let mut hy = Engine::new();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false).unwrap();
    let bob = hy.add_user("bob", false).unwrap();
    let team = hy.add_team(admin, "t").unwrap();
    hy.add_team_member(admin, team, alice).unwrap();
    hy.add_team_member(admin, team, bob).unwrap();
    let flow = hy.standard_flow("f").unwrap();
    let project = hy.create_project("p").unwrap();
    let cell = hy.create_cell(project, "alu").unwrap();
    let (cv, variant) = hy.create_cell_version(cell, flow.flow, team).unwrap();

    hy.reserve(alice, cv).unwrap();
    let bytes = format::write_netlist(&generate::full_adder()).into_bytes();
    let dovs = hy
        .run_activity(alice, variant, flow.enter_schematic, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: bytes.into(),
            }])
        })
        .unwrap();

    // While unpublished, bob cannot read the data through the hybrid
    // desktop (only published parts are visible to others).
    assert!(hy.browse(bob, dovs[0]).is_err());
    hy.publish(alice, cv).unwrap();
    assert!(hy.browse(bob, dovs[0]).is_ok());
    // And bob can now take the workspace.
    hy.reserve(bob, cv).unwrap();
}

#[test]
fn fmcad_meta_lock_contention_counts() {
    let mut fm = Fmcad::new();
    fm.create_library("l").unwrap();
    fm.create_cell("l", "c").unwrap();
    fm.create_cellview("l", "c", "schematic", "schematic")
        .unwrap();
    fm.checkin("u0", "l", "c", "schematic", b"v1".to_vec())
        .unwrap();

    fm.acquire_meta_lock("u0").unwrap();
    let mut blocked = 0;
    for user in ["u1", "u2", "u3", "u4"] {
        if fm.checkout(user, "l", "c", "schematic").is_err() {
            blocked += 1;
        }
    }
    assert_eq!(
        blocked, 4,
        "the single .meta file serialises the whole team"
    );
    fm.release_meta_lock("u0");
    fm.checkout("u1", "l", "c", "schematic").unwrap();
}
