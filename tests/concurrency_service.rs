//! Concurrency suite for the [`Service`] session front-end.
//!
//! Exercises the sharded read/write discipline end to end: parallel
//! writer sessions group-committing through the batched apply queue,
//! parallel reader sessions on the published snapshot, event fan-out
//! ordering, read-your-writes, and equivalence with a serial engine.
//!
//! The suite must pass both under the default test harness and with
//! `--test-threads=1` (CI runs both): nothing here depends on real
//! thread parallelism, only on mutual exclusion.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jcf_fmcad::cad_vfs::Blob;
use jcf_fmcad::hybrid::{Engine, Service, ToolOutput};
use jcf_fmcad::jcf::DovId;

/// Boots a service with one published design object version readable
/// by the admin, returning the dov.
fn service_with_published_dov() -> (Service, DovId) {
    let service = Service::new(Engine::builder().build());
    let admin = service.open_session(service.admin());
    let alice = admin.add_user("alice", false).unwrap();
    let team = admin.add_team("asic").unwrap();
    admin.add_team_member(team, alice).unwrap();
    let flow = admin.standard_flow("std").unwrap();
    let project = admin.create_project("alu").unwrap();
    let cell = admin.create_cell(project, "adder").unwrap();
    let (cv, variant) = admin.create_cell_version(cell, flow.flow, team).unwrap();
    let session = service.open_session(alice);
    session.reserve(cv).unwrap();
    let dovs = session
        .run_activity(
            variant,
            flow.enter_schematic,
            false,
            vec![ToolOutput {
                viewtype: "schematic".into(),
                data: b"netlist adder\nport a input\n".to_vec().into(),
            }],
            None,
        )
        .unwrap();
    session.publish(cv).unwrap();
    (service, dovs[0])
}

#[test]
fn every_writer_session_reads_its_own_writes() {
    let service = Service::new(Engine::builder().build());
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                let session = service.open_session(service.admin());
                for j in 0..8 {
                    let project = session.create_project(&format!("p-{i}-{j}")).unwrap();
                    // The commit already happened; the very next
                    // snapshot this session takes must contain it,
                    // leader or follower.
                    let snap = session.snapshot();
                    snap.library_of(project)
                        .expect("own committed write visible");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(service.snapshot().seq(), 64);
}

#[test]
fn readers_run_against_a_consistent_view_while_writers_commit() {
    let (service, dov) = service_with_published_dov();
    let reference = service
        .open_session(service.admin())
        .read_design_data(dov)
        .unwrap();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let service = service.clone();
            let reference = reference.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let session = service.open_session(service.admin());
                let mut last_seq = 0;
                let mut reads = 0u64;
                while !done.load(Ordering::Relaxed) || reads == 0 {
                    let snap = session.snapshot();
                    assert!(snap.seq() >= last_seq, "published view went backwards");
                    last_seq = snap.seq();
                    let data = session.read_design_data(dov).unwrap();
                    assert!(
                        Blob::ptr_eq(&data, &reference),
                        "reader saw a copied or torn payload"
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let writers: Vec<_> = (0..3)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                let session = service.open_session(service.admin());
                for j in 0..32 {
                    session.create_project(&format!("w-{i}-{j}")).unwrap();
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(total_reads >= 3, "every reader completed at least one read");

    let stats = service.stats();
    assert_eq!(stats.ops, 10 + 96, "bootstrap plus the writer phase");
    assert!(stats.batches <= stats.ops);
    assert!(stats.max_batch >= 1);
}

#[test]
fn events_fan_out_in_commit_order_with_engine_seqs() {
    let service = Service::new(Engine::builder().build());
    let observer = service.open_session(service.admin());
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                let session = service.open_session(service.admin());
                for j in 0..16 {
                    session.create_project(&format!("e-{i}-{j}")).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let events = observer.events();
    assert_eq!(events.len(), 64, "one event per successful op");
    let seqs: Vec<u64> = events.iter().map(|(seq, _)| *seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seqs, sorted, "delivery order is commit order, no dupes");
    assert!(events
        .iter()
        .all(|(_, e)| e.kind_name() == "project-created"));
}

#[test]
fn failed_ops_surface_stable_error_kinds_without_fanout() {
    let service = Service::new(Engine::builder().build());
    let session = service.open_session(service.admin());
    session.create_project("taken").unwrap();
    let clash = session.create_project("taken").unwrap_err();
    assert_eq!(clash.kind(), "jcf");
    let missing = session.read_design_data(DovId::from_raw(9999)).unwrap_err();
    assert_eq!(missing.kind(), "jcf");
    // Only the successful op reached the event queues.
    assert_eq!(session.events().len(), 1);
    // But both write attempts are engine history (failures journal too).
    assert_eq!(service.snapshot().seq(), 2);
}

#[test]
fn concurrent_service_matches_a_serial_engine() {
    // The same 64 projects, committed concurrently through sessions
    // and serially on a bare engine, must produce identical state —
    // group commit may batch differently but never change outcomes.
    let service = Service::new(Engine::builder().build());
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                let session = service.open_session(service.admin());
                (0..16)
                    .map(|j| {
                        let name = format!("s-{i}-{j}");
                        (name.clone(), session.create_project(&name).unwrap())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut created = Vec::new();
    for t in threads {
        created.extend(t.join().unwrap());
    }

    let mut serial = Engine::builder().build();
    let mut serial_libs = Vec::new();
    for i in 0..4 {
        for j in 0..16 {
            let name = format!("s-{i}-{j}");
            let project = serial.create_project(&name).unwrap();
            serial_libs.push((name, serial.library_of(project).unwrap().to_owned()));
        }
    }

    // Interleaving may differ, so compare the *set* of outcomes: the
    // op counts agree, and every project carries the same coupled
    // library name in both worlds.
    let snap = service.snapshot();
    assert_eq!(snap.seq(), serial.seq());
    let mut service_libs: Vec<(String, String)> = created
        .into_iter()
        .map(|(name, project)| (name, snap.library_of(project).unwrap().to_owned()))
        .collect();
    service_libs.sort();
    serial_libs.sort();
    assert_eq!(service_libs, serial_libs);
}

#[test]
fn sessions_over_many_threads_never_copy_design_data() {
    let (service, dov) = service_with_published_dov();
    let threads: Vec<_> = (0..6)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || {
                let session = service.open_session(service.admin());
                let before = Blob::materialized_bytes();
                for _ in 0..64 {
                    session.read_design_data(dov).unwrap();
                    session.browse(dov).unwrap();
                }
                Blob::materialized_bytes() - before
            })
        })
        .collect();
    let copied: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(copied, 0, "snapshot reads must be zero-copy");
}
