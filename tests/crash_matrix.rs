//! Crash-point matrix: kill persistence at *every* injectable fault
//! point of a long seeded workload, restore from whatever survived,
//! and require the result to be a valid commit boundary — never a torn
//! in-between state.
//!
//! The workload interleaves ≥200 random ops with checkpoints and
//! journal syncs. Every content write those persistence calls issue
//! against the backup file system is an injectable point (the base
//! checkpoint stages four files, a delta checkpoint stages the sealed
//! tail segment plus the delta record plus the manifest, a journal
//! sync stages the open segment and the manifest plus one file per
//! `SEG_CAP` entries sealed; the `rename` commits are metadata-only
//! and cannot tear). A preliminary
//! pass with an empty — purely counting — [`FaultPlan`] discovers the
//! points and records the expected fingerprint at every commit
//! boundary; the matrix then reruns the identical stream once per
//! point `k` with a torn write scheduled at `k`, stops at the first
//! persistence error as a crash would, and restores.
//!
//! Determinism note: persistence calls never consume the driver rng,
//! so the op stream before the crash is byte-identical to the clean
//! run's — any fingerprint mismatch indicts the commit protocol.

use cad_vfs::{FaultPlan, SplitMix64, Vfs, VfsError, VfsPath};
use design_data::{format, generate};
use hybrid::{Engine, HybridError, ToolOutput};
use jcf::{CellId, CellVersionId, DovId, ProjectId, TeamId, UserId, VariantId};
use test_support::pick;

/// The mutable bookkeeping the driver needs to aim ops at real ids.
struct World {
    alice: UserId,
    team: TeamId,
    project: ProjectId,
    cells: Vec<CellId>,
    slots: Vec<(CellVersionId, VariantId)>,
    dovs: Vec<DovId>,
    next_cell: u32,
    next_variant: u32,
    next_user: u32,
}

/// Bootstraps one engine plus the world the op stream runs in.
fn bootstrap() -> (Engine, hybrid::StandardFlow, World) {
    let mut en = Engine::new();
    let admin = en.admin();
    let alice = en.add_user("alice", false).unwrap();
    let team = en.add_team(admin, "t").unwrap();
    en.add_team_member(admin, team, alice).unwrap();
    let flow = en.standard_flow("f").unwrap();
    let project = en.create_project("p").unwrap();
    let world = World {
        alice,
        team,
        project,
        cells: Vec::new(),
        slots: Vec::new(),
        dovs: Vec::new(),
        next_cell: 0,
        next_variant: 0,
        next_user: 0,
    };
    (en, flow, world)
}

/// Applies exactly one random op to the engine (ops may fail; the
/// failure is journaled). Same dispatch as `det_ops_replay`.
fn step(en: &mut Engine, rng: &mut SplitMix64, flow: &hybrid::StandardFlow, w: &mut World) {
    match rng.below(12) {
        0 => {
            w.next_cell += 1;
            let cell = en
                .create_cell(w.project, &format!("cell{}", w.next_cell))
                .unwrap();
            w.cells.push(cell);
        }
        1 => {
            if let Some(&cell) = pick(rng, &w.cells) {
                let (cv, variant) = en.create_cell_version(cell, flow.flow, w.team).unwrap();
                w.slots.push((cv, variant));
            } else {
                let _ = en.create_project("p");
            }
        }
        2 => {
            if let Some(&(cv, _)) = pick(rng, &w.slots) {
                let _ = en.reserve(w.alice, cv);
            } else {
                let _ = en.create_project("p");
            }
        }
        3 | 4 => {
            if let Some(&(_, variant)) = pick(rng, &w.slots) {
                let gates = 1 + rng.below(24);
                let seed = rng.next_u64();
                let design = generate::random_logic(gates, seed);
                let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
                if let Ok(dovs) =
                    en.run_activity(w.alice, variant, flow.enter_schematic, false, move |_| {
                        Ok(vec![ToolOutput {
                            viewtype: "schematic".into(),
                            data: bytes.into(),
                        }])
                    })
                {
                    w.dovs.extend(dovs);
                }
            } else {
                let _ = en.create_project("p");
            }
        }
        5 => {
            if let Some(&(_, variant)) = pick(rng, &w.slots) {
                let _ = en.run_activity(w.alice, variant, flow.simulate, false, |_| {
                    Ok(vec![ToolOutput {
                        viewtype: "waveform".into(),
                        data: b"waves\n".to_vec().into(),
                    }])
                });
            } else {
                let _ = en.create_project("p");
            }
        }
        6 => {
            if let Some(&(cv, _)) = pick(rng, &w.slots) {
                let _ = en.publish(w.alice, cv);
            } else {
                let _ = en.create_project("p");
            }
        }
        7 => {
            if let Some(&(cv, base)) = pick(rng, &w.slots) {
                w.next_variant += 1;
                let name = format!("var{}", w.next_variant);
                if let Ok(v) = en.derive_variant(w.alice, cv, &name, Some(base)) {
                    w.slots.push((cv, v));
                }
            } else {
                let _ = en.create_project("p");
            }
        }
        8 => {
            if let Some(&dov) = pick(rng, &w.dovs) {
                let _ = en.browse(w.alice, dov);
            } else {
                let _ = en.create_project("p");
            }
        }
        9 => {
            if let Some(&dov) = pick(rng, &w.dovs) {
                let _ = en.read_design_data(w.alice, dov);
            } else {
                let _ = en.create_project("p");
            }
        }
        10 => {
            w.next_user += 1;
            en.add_user(&format!("user{}", w.next_user), false).unwrap();
        }
        _ => {
            en.create_project("p").expect_err("duplicate project");
        }
    }
}

/// One persistence call in the schedule, between batches of ops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Commit {
    /// [`Engine::checkpoint`] — a full base image the first time, an
    /// O(Δ) delta checkpoint afterwards.
    Checkpoint,
    /// [`Engine::sync_journal`] — rewrites the open segment and the
    /// manifest, sealing one immutable segment per `SEG_CAP = 64`
    /// entries outgrown.
    Sync,
}

/// Ops between persistence calls, the call itself, and the injectable
/// content writes it stages: 220 ops, 5 commits, 4+2+3+3+2 = 14
/// points. The base checkpoint stages the three images plus the
/// manifest; the first sync holds 40 entries in the open segment (2
/// writes); the second has outgrown the 64-entry cap and seals one
/// segment (3); the delta checkpoint seals the 56-entry tail and adds
/// the delta record plus the manifest (3); the last sync is 2 again.
const SCHEDULE: &[(usize, Commit, u64)] = &[
    (70, Commit::Checkpoint, 4),
    (40, Commit::Sync, 2),
    (40, Commit::Sync, 3),
    (40, Commit::Checkpoint, 3),
    (30, Commit::Sync, 2),
];

const STREAM_SEED: u64 = 0x0C4A_540F_1995_0042;
const DIR: &str = "/backup/crash";

/// Runs the schedule against `backup`, invoking `on_commit` after each
/// persistence call that succeeds. Returns the live engine plus the
/// first persistence error (the simulated crash), if any.
fn run_schedule(
    backup: &mut Vfs,
    mut on_commit: impl FnMut(usize, &Vfs),
) -> (Engine, Option<HybridError>) {
    let dir = VfsPath::parse(DIR).unwrap();
    let mut rng = SplitMix64::new(STREAM_SEED);
    let (mut en, flow, mut world) = bootstrap();
    for (idx, &(ops, commit, _)) in SCHEDULE.iter().enumerate() {
        for _ in 0..ops {
            step(&mut en, &mut rng, &flow, &mut world);
        }
        let result = match commit {
            Commit::Checkpoint => en.checkpoint(backup, &dir),
            Commit::Sync => en.sync_journal(backup, &dir),
        };
        match result {
            Ok(()) => on_commit(idx, backup),
            Err(e) => return (en, Some(e)),
        }
    }
    (en, None)
}

/// The index of the last commit that completes *before* the commit
/// containing injectable write `k` (1-based), or `None` if `k` lands
/// in the very first commit.
fn boundary_before(k: u64) -> Option<usize> {
    let mut seen = 0;
    for (idx, &(_, _, writes)) in SCHEDULE.iter().enumerate() {
        seen += writes;
        if k <= seen {
            return idx.checked_sub(1);
        }
    }
    panic!("write {k} beyond the schedule");
}

/// The headline matrix. One clean pass discovers the fault points and
/// the per-boundary fingerprints; then every point k is torn in its
/// own rerun and the restored state must land exactly on the boundary
/// preceding the crash.
#[test]
fn every_crash_point_restores_to_a_commit_boundary() {
    let dir = VfsPath::parse(DIR).unwrap();
    let expected_points: u64 = SCHEDULE.iter().map(|&(_, _, writes)| writes).sum();

    // Clean pass: count injectable points, snapshot every boundary.
    let mut boundaries: Vec<Vfs> = Vec::new();
    let mut backup = Vfs::new();
    backup.arm_faults(FaultPlan::new(0)); // empty plan: counts, never fires
    let (live, crash) = run_schedule(&mut backup, |_, fs| boundaries.push(fs.clone()));
    assert!(crash.is_none(), "clean run must not crash: {crash:?}");
    assert!(live.seq() >= 200, "workload too short: {} ops", live.seq());
    let stats = backup.disarm_faults().unwrap().stats();
    assert_eq!(
        stats.writes_seen,
        expected_points,
        "schedule write arithmetic out of date: {} commits saw {} content writes",
        SCHEDULE.len(),
        stats.writes_seen
    );
    assert_eq!(stats.faults_fired, 0);
    assert_eq!(boundaries.len(), SCHEDULE.len());
    let boundary_prints: Vec<String> = boundaries
        .into_iter()
        .map(|mut snap| {
            Engine::restore_from(&mut snap, &dir)
                .expect("boundary snapshot restores")
                .state_fingerprint()
                .unwrap()
        })
        .collect();

    // The matrix: tear write k, crash, restore, compare.
    for k in 1..=expected_points {
        let mut backup = Vfs::new();
        backup.arm_faults(FaultPlan::new(0x000F_A017 ^ k).torn_write(k));
        let (_live, crash) = run_schedule(&mut backup, |_, _| {});
        let crash = crash.unwrap_or_else(|| panic!("point {k}: fault did not surface"));
        // Checkpoint staging surfaces the Vfs fault directly; journal
        // staging is routed through oms::persist and keeps its error
        // domain, but the injected fault stays identifiable.
        let injected = matches!(&crash, HybridError::Vfs(VfsError::InjectedWriteFault(_)))
            || crash.to_string().contains("injected write fault");
        assert!(injected, "point {k}: unexpected crash error {crash:?}");
        let stats = backup.disarm_faults().unwrap().stats();
        assert_eq!(stats.faults_fired, 1, "point {k}");
        assert_eq!(stats.writes_seen, k, "point {k}: crash stops the schedule");

        match boundary_before(k) {
            None => {
                // Nothing ever committed: restore reports a typed
                // error instead of fabricating an empty state.
                let err = Engine::restore_from(&mut backup, &dir).unwrap_err();
                assert!(
                    matches!(err, HybridError::Vfs(VfsError::NotFound(_))),
                    "point {k}: expected missing checkpoint, got {err:?}"
                );
            }
            Some(boundary) => {
                let restored = Engine::restore_from(&mut backup, &dir)
                    .unwrap_or_else(|e| panic!("point {k}: restore failed: {e:?}"));
                assert_eq!(
                    restored.state_fingerprint().unwrap(),
                    boundary_prints[boundary],
                    "point {k}: restored state must equal commit boundary {boundary}"
                );
            }
        }
    }
}

/// ENOSPC mid-checkpoint: the quota tears the staging write, the
/// commit aborts, and — after space is freed — the retried checkpoint
/// commits and restores to the live state. The failed attempt must
/// not have cleared the in-memory journal.
#[test]
fn quota_exhaustion_aborts_the_checkpoint_and_a_retry_recovers() {
    let dir = VfsPath::parse(DIR).unwrap();
    let mut rng = SplitMix64::new(7);
    let (mut en, flow, mut world) = bootstrap();
    for _ in 0..60 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    let mut backup = Vfs::new();
    backup.arm_faults(FaultPlan::new(1).quota(64));
    let err = en.checkpoint(&mut backup, &dir).unwrap_err();
    assert!(
        matches!(err, HybridError::Vfs(VfsError::QuotaExceeded(_))),
        "expected quota error, got {err:?}"
    );
    backup.disarm_faults();
    // The journal tail survived the failed checkpoint, so the retry
    // plus restore reproduces the live engine exactly.
    en.checkpoint(&mut backup, &dir).unwrap();
    let restored = Engine::restore_from(&mut backup, &dir).unwrap();
    assert_eq!(restored.seq(), en.seq());
    assert_eq!(
        restored.state_fingerprint().unwrap(),
        en.state_fingerprint().unwrap()
    );
}

/// Transient read faults during restore surface as typed errors and a
/// plain retry succeeds — no state is lost by a flaky read.
#[test]
fn transient_read_faults_fail_the_restore_then_a_retry_succeeds() {
    let dir = VfsPath::parse(DIR).unwrap();
    let mut rng = SplitMix64::new(9);
    let (mut en, flow, mut world) = bootstrap();
    for _ in 0..50 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    let mut backup = Vfs::new();
    en.checkpoint(&mut backup, &dir).unwrap();
    for _ in 0..30 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    en.sync_journal(&mut backup, &dir).unwrap();

    // Restore reads the manifest, the three images, and the open
    // segment — fail each of the first four.
    for n in 1..=4 {
        backup.arm_faults(FaultPlan::new(n).fail_read(n));
        let err = Engine::restore_from(&mut backup, &dir).unwrap_err();
        // Direct reads surface the Vfs error; reads routed through
        // oms::persist / jcf keep their own error domains but carry
        // the injected-fault message.
        let transient = matches!(&err, HybridError::Vfs(VfsError::InjectedReadFault(_)))
            || err.to_string().contains("injected read fault");
        assert!(transient, "read {n}: unexpected error {err:?}");
        let stats = backup.disarm_faults().unwrap().stats();
        assert_eq!(stats.faults_fired, 1, "read {n}");
    }
    let restored = Engine::restore_from(&mut backup, &dir).unwrap();
    assert_eq!(
        restored.state_fingerprint().unwrap(),
        en.state_fingerprint().unwrap()
    );
}

/// Satellite regression: a journal segment whose final line was
/// hand-truncated mid-entry is rejected by `restore_from` with the
/// typed `TornJournal` error, and `recover_from` restarts by dropping
/// only the torn suffix — every complete entry still replays, and the
/// report names the torn segment and the byte offset of the fragment.
#[test]
fn hand_truncated_journal_is_rejected_typed_and_recovered_minus_the_tail() {
    let dir = VfsPath::parse(DIR).unwrap();
    let open_seg = dir.join("seg-1.log").unwrap();
    let mut rng = SplitMix64::new(11);
    let (mut en, flow, mut world) = bootstrap();
    for _ in 0..40 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    let mut backup = Vfs::new();
    en.checkpoint(&mut backup, &dir).unwrap();
    let seq_at_checkpoint = en.seq();
    for _ in 0..25 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    en.sync_journal(&mut backup, &dir).unwrap();
    let tail_entries = en.seq() - seq_at_checkpoint;
    assert!(tail_entries >= 2, "need a real tail to truncate");

    // Tear the last entry by hand: drop its newline and final bytes.
    let bytes = backup.read(&open_seg).unwrap().to_vec();
    let truncated = bytes[..bytes.len() - 4].to_vec();
    let expect_offset = truncated
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap();
    backup.write(&open_seg, truncated).unwrap();

    let err = Engine::restore_from(&mut backup, &dir).unwrap_err();
    match &err {
        HybridError::TornJournal { complete, fragment } => {
            assert_eq!(*complete as u64, tail_entries - 1);
            assert!(!fragment.is_empty());
        }
        other => panic!("expected TornJournal, got {other:?}"),
    }
    assert_eq!(err.kind(), "torn-journal");

    let (recovered, report) = Engine::recover_from(&mut backup, &dir).unwrap();
    assert_eq!(report.replayed as u64, tail_entries - 1);
    assert!(report.dropped_fragment.is_some());
    assert_eq!(
        report.torn_segment.as_deref(),
        Some("seg-1.log"),
        "the report names the torn segment"
    );
    assert_eq!(
        report.torn_offset,
        Some(expect_offset),
        "the report gives the byte offset of the torn fragment"
    );
    assert_eq!(
        recovered.seq(),
        en.seq() - 1,
        "recovery drops exactly the torn final entry"
    );

    // An intact journal recovers with nothing dropped.
    en.sync_journal(&mut backup, &dir).unwrap();
    let (full, report) = Engine::recover_from(&mut backup, &dir).unwrap();
    assert_eq!(report.dropped_fragment, None);
    assert_eq!((report.torn_segment, report.torn_offset), (None, None));
    assert_eq!(report.replayed as u64, en.seq() - seq_at_checkpoint);
    assert_eq!(
        full.state_fingerprint().unwrap(),
        en.state_fingerprint().unwrap()
    );
}

/// A torn write while staging the delta-checkpoint record aborts the
/// whole group commit: the chain on disk stays exactly at the last
/// synced boundary, recovery lands there, and a retried checkpoint
/// then commits the delta cleanly.
#[test]
fn torn_delta_checkpoint_write_recovers_to_the_synced_boundary() {
    let dir = VfsPath::parse(DIR).unwrap();
    let mut rng = SplitMix64::new(13);
    let (mut en, flow, mut world) = bootstrap();
    for _ in 0..40 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    let mut backup = Vfs::new();
    en.checkpoint(&mut backup, &dir).unwrap();
    for _ in 0..30 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    en.sync_journal(&mut backup, &dir).unwrap();
    let synced_boundary = {
        let mut snap = backup.clone();
        Engine::restore_from(&mut snap, &dir)
            .unwrap()
            .state_fingerprint()
            .unwrap()
    };
    let seq_at_sync = en.seq();

    // Ten more (unsynced) ops, then a delta checkpoint whose delta
    // record write is torn mid-staging.
    for _ in 0..10 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    backup.arm_faults(
        FaultPlan::new(0x0DE1_7A01)
            .torn_write(1)
            .only_paths_containing("delta-"),
    );
    let err = en.checkpoint(&mut backup, &dir).unwrap_err();
    assert!(
        err.to_string().contains("injected write fault"),
        "expected the injected fault, got {err:?}"
    );
    let stats = backup.disarm_faults().unwrap().stats();
    assert_eq!(stats.faults_fired, 1);

    // Nothing of the aborted group was renamed into place: recovery
    // lands exactly on the synced boundary.
    let (recovered, report) = Engine::recover_from(&mut backup, &dir).unwrap();
    assert_eq!(recovered.seq(), seq_at_sync);
    assert_eq!(report.chain_break, None);
    assert_eq!(recovered.state_fingerprint().unwrap(), synced_boundary);

    // The live engine kept its journal tail; the retry commits the
    // delta and restores to the live state.
    en.checkpoint(&mut backup, &dir).unwrap();
    let restored = Engine::restore_from(&mut backup, &dir).unwrap();
    assert_eq!(
        restored.state_fingerprint().unwrap(),
        en.state_fingerprint().unwrap()
    );
}

/// Retired segment files that vanish before the manifest stops listing
/// them — the window a crashed compaction leaves behind — must not
/// affect recovery: retired segments are never replayed, and a fresh
/// `compact` finishes the cleanup.
#[test]
fn crash_mid_compaction_leaves_a_recoverable_chain() {
    let dir = VfsPath::parse(DIR).unwrap();
    let mut rng = SplitMix64::new(17);
    let (mut en, flow, mut world) = bootstrap();
    for _ in 0..30 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    let mut backup = Vfs::new();
    en.checkpoint(&mut backup, &dir).unwrap();
    for _ in 0..40 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    en.sync_journal(&mut backup, &dir).unwrap();
    // The delta checkpoint seals the tail into a retired segment.
    en.checkpoint(&mut backup, &dir).unwrap();
    // Fingerprinting walks the live file system and advances its cost
    // meter, so capture the reference once.
    let live_fp = en.state_fingerprint().unwrap();

    let retired = dir.join("seg-1.log").unwrap();
    assert!(backup.exists(&retired), "the sealed tail segment exists");
    backup.remove_all(&retired).unwrap();

    // The manifest still lists the retired segment, but recovery never
    // reads it: the delta checkpoint covers those entries.
    let restored = Engine::restore_from(&mut backup, &dir).unwrap();
    assert_eq!(restored.state_fingerprint().unwrap(), live_fp);

    // A recovered engine can finish the compaction.
    let (mut recovered, _) = Engine::recover_from(&mut backup, &dir).unwrap();
    recovered.compact(&mut backup, &dir).unwrap();
    let after = Engine::restore_from(&mut backup, &dir).unwrap();
    assert_eq!(after.state_fingerprint().unwrap(), live_fp);
}

/// A manifest whose live (unretired) sealed segment is missing on disk
/// is real chain damage: the strict restore reports it typed, and
/// lenient recovery stops at the last boundary the intact prefix
/// reaches instead of skipping entries.
#[test]
fn manifest_pointing_at_a_missing_live_segment_recovers_to_the_last_boundary() {
    let dir = VfsPath::parse(DIR).unwrap();
    let mut rng = SplitMix64::new(19);
    let (mut en, flow, mut world) = bootstrap();
    for _ in 0..20 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    let mut backup = Vfs::new();
    en.checkpoint(&mut backup, &dir).unwrap();
    let base_boundary = {
        let mut snap = backup.clone();
        Engine::restore_from(&mut snap, &dir)
            .unwrap()
            .state_fingerprint()
            .unwrap()
    };
    let seq_at_base = en.seq();
    // 70 ops outgrow the 64-entry cap: the sync seals seg-1 (live) and
    // keeps the remainder in open seg-2.
    for _ in 0..70 {
        step(&mut en, &mut rng, &flow, &mut world);
    }
    en.sync_journal(&mut backup, &dir).unwrap();
    let sealed = dir.join("seg-1.log").unwrap();
    assert!(backup.exists(&sealed), "the sync sealed a live segment");
    backup.remove_all(&sealed).unwrap();

    let err = Engine::restore_from(&mut backup, &dir).unwrap_err();
    assert!(
        matches!(err, HybridError::DeltaChain(_)),
        "expected typed chain damage, got {err:?}"
    );
    assert_eq!(err.kind(), "delta-chain");

    let (recovered, report) = Engine::recover_from(&mut backup, &dir).unwrap();
    let break_msg = report.chain_break.expect("the break is reported");
    assert!(
        break_msg.contains("seg-1.log"),
        "the break names the missing segment: {break_msg}"
    );
    assert_eq!(report.replayed, 0, "entries past the hole must not replay");
    assert_eq!(recovered.seq(), seq_at_base);
    assert_eq!(recovered.state_fingerprint().unwrap(), base_boundary);
}

// ---------------------------------------------------------------------------
// Cross-shard 2PC crash points (sharded service)
// ---------------------------------------------------------------------------

use hybrid::{shard_of_name, Op, ShardedService, ShardedSession, StandardFlow};

const SHARDS: usize = 4;
const SHARD_DIR: &str = "/backup/shards";

/// Bootstraps a 4-shard service with one designer and the standard
/// flow (all broadcast), plus a cross-partition pair: a reserved cell
/// version in one project and a child cell in a project placed on a
/// *different* shard.
struct CrossWorld {
    service: ShardedService,
    alice: ShardedSession,
    cv_a: CellVersionId,
    project_b: ProjectId,
    cell_b: CellId,
}

fn cross_world() -> CrossWorld {
    let service = ShardedService::new(SHARDS);
    let admin = service.open_session(service.admin());
    let team = admin.add_team("t").unwrap();
    let user = admin.add_user("alice", false).unwrap();
    admin.add_team_member(team, user).unwrap();
    let flow: StandardFlow = admin.standard_flow("f").unwrap();
    let alice = service.open_session(user);

    let (name_a, name_b) = cross_pair();
    let project_a = alice.create_project(name_a).unwrap();
    let cell_a = alice.create_cell(project_a, "top").unwrap();
    let (cv_a, _) = alice.create_cell_version(cell_a, flow.flow, team).unwrap();
    alice.reserve(cv_a).unwrap();
    let project_b = alice.create_project(name_b).unwrap();
    let cell_b = alice.create_cell(project_b, "leaf").unwrap();

    let (sa, _) = service.resolve_shard(project_a.raw()).unwrap();
    let (sb, _) = service.resolve_shard(project_b.raw()).unwrap();
    assert!(sa < sb, "cross_pair must place a strictly below b");

    CrossWorld {
        service,
        alice,
        cv_a,
        project_b,
        cell_b,
    }
}

/// Two project names whose FNV placement lands on strictly ascending,
/// distinct shards at [`SHARDS`] partitions.
fn cross_pair() -> (&'static str, &'static str) {
    const NAMES: &[&str] = &["alu16", "dsp", "rom", "fpu", "mmu", "uart"];
    for a in NAMES {
        for b in NAMES {
            if shard_of_name(a, SHARDS) < shard_of_name(b, SHARDS) {
                return (a, b);
            }
        }
    }
    unreachable!("six names cannot all hash to a single shard")
}

/// A cross-partition `comp-of` whose commit record reached only one
/// participant's journal — the crash window between the two per-shard
/// appends — must be rolled back at recovery, reported, and leave the
/// sequence burned so post-recovery ids stay monotone.
#[test]
fn cross_shard_prepare_without_both_commits_is_rolled_back() {
    let root = VfsPath::parse(SHARD_DIR).unwrap();
    let w = cross_world();

    let mut backup = Vfs::new();
    w.service.checkpoint(&mut backup, &root).unwrap();
    let cross_seq = w.alice.declare_comp_of(w.cv_a, w.cell_b).unwrap();
    w.service.sync(&mut backup, &root).unwrap();

    // Drop the commit record from participant b's journal by hand.
    let (sb, _) = w.service.resolve_shard(w.project_b.raw()).unwrap();
    let log = root
        .join("ck-1")
        .unwrap()
        .join(&format!("shard-{sb}.log"))
        .unwrap();
    let text = String::from_utf8(backup.read(&log).unwrap().to_vec()).unwrap();
    let kept: Vec<&str> = text.lines().filter(|l| !l.starts_with("cmit|")).collect();
    assert!(
        kept.len() < text.lines().count(),
        "participant b's journal must contain a commit record before the edit"
    );
    backup
        .write(&log, format!("{}\n", kept.join("\n")).into_bytes())
        .unwrap();

    let (recovered, report) = ShardedService::recover(&mut backup, &root).unwrap();
    assert_eq!(report.rolled_back_prepares, vec![cross_seq]);
    assert!(
        recovered.view().router().cross_comp_edges().is_empty(),
        "the rolled-back comp-of must not resurface as an edge"
    );

    // The burned sequence keeps post-recovery commits monotone, and
    // the op can simply be resubmitted.
    let session = recovered.open_session(w.alice.user());
    let (next_seq, _) = session
        .apply(Op::DeclareCompOf {
            user: w.alice.user(),
            cv: w.cv_a,
            child: w.cell_b,
        })
        .unwrap();
    assert!(
        next_seq > cross_seq,
        "rolled-back seq {cross_seq} must stay burned"
    );
    assert_eq!(recovered.view().router().cross_comp_edges().len(), 1);
}

/// A torn journal sync that dies while staging participant b's log
/// leaves the prepare visible in participant a's journal only; the
/// recovery must treat it as uncommitted and report the rollback.
#[test]
fn torn_sync_of_one_participant_rolls_back_the_cross_commit() {
    let root = VfsPath::parse(SHARD_DIR).unwrap();
    let w = cross_world();

    let mut backup = Vfs::new();
    w.service.checkpoint(&mut backup, &root).unwrap();
    let cross_seq = w.alice.declare_comp_of(w.cv_a, w.cell_b).unwrap();

    // Sync stages the per-shard logs in ascending shard order, one
    // content write each; tear participant b's.
    let (sb, _) = w.service.resolve_shard(w.project_b.raw()).unwrap();
    backup.arm_faults(
        FaultPlan::new(0x2BC0_0001)
            .torn_write(sb as u64 + 1)
            .scope(&root),
    );
    let err = w.service.sync(&mut backup, &root).unwrap_err();
    assert!(
        err.to_string().contains("injected write fault"),
        "expected the injected fault, got {err:?}"
    );
    let stats = backup.disarm_faults().unwrap().stats();
    assert_eq!(stats.faults_fired, 1);

    let (recovered, report) = ShardedService::recover(&mut backup, &root).unwrap();
    assert_eq!(report.rolled_back_prepares, vec![cross_seq]);
    assert!(recovered.view().router().cross_comp_edges().is_empty());

    // A clean re-sync from the live service and a fresh recovery see
    // the commit in both journals and replay it.
    w.service.sync(&mut backup, &root).unwrap();
    let (healed, report) = ShardedService::recover(&mut backup, &root).unwrap();
    assert_eq!(report.rolled_back_prepares, Vec::<u64>::new());
    assert_eq!(healed.view().router().cross_comp_edges().len(), 1);
    assert_eq!(
        healed.state_fingerprint().unwrap(),
        w.service.state_fingerprint().unwrap()
    );
}

/// A crash in the middle of a *later* epoch checkpoint (after some
/// shards already staged their images) must leave the previous epoch
/// live: `CURRENT` never flips, and recovery replays the synced
/// journals — including the cross-partition commit — on top of the
/// old epoch.
#[test]
fn crash_inside_a_later_checkpoint_leaves_the_previous_epoch_live() {
    let root = VfsPath::parse(SHARD_DIR).unwrap();
    let w = cross_world();

    let mut backup = Vfs::new();
    w.service.checkpoint(&mut backup, &root).unwrap();
    w.alice.declare_comp_of(w.cv_a, w.cell_b).unwrap();
    w.alice.create_cell(w.project_b, "leaf2").unwrap();
    w.service.sync(&mut backup, &root).unwrap();
    let live = w.service.state_fingerprint().unwrap();

    // Each shard's engine checkpoint stages 4 files; tear write 6 —
    // inside the second shard's staging, after the first completed.
    backup.arm_faults(FaultPlan::new(0x2BC0_0002).torn_write(6).scope(&root));
    let err = w.service.checkpoint(&mut backup, &root).unwrap_err();
    assert!(
        err.to_string().contains("injected write fault"),
        "expected the injected fault, got {err:?}"
    );
    let stats = backup.disarm_faults().unwrap().stats();
    assert_eq!(stats.faults_fired, 1);

    let current = String::from_utf8(
        backup
            .read(&root.join("CURRENT").unwrap())
            .unwrap()
            .to_vec(),
    )
    .unwrap();
    assert_eq!(current.trim(), "ck-1", "the pointer must not flip early");

    let (recovered, report) = ShardedService::recover(&mut backup, &root).unwrap();
    assert_eq!(report.rolled_back_prepares, Vec::<u64>::new());
    assert_eq!(
        report.replayed, 2,
        "the cross comp-of and the tail cell replay"
    );
    assert_eq!(recovered.state_fingerprint().unwrap(), live);
}
