//! A custom four-activity FPGA-style flow driven end-to-end through
//! the hybrid framework, with a real technology-mapping transformation
//! and analysis passes — the [Seep94b] scenario as a regression test.

use cad_tools::{map_to_nand, static_timing, switching_activity, Simulator, ToolKind};
use design_data::{format, generate, Logic, Stimulus};
use hybrid::{Engine, ToolOutput};
use std::collections::BTreeMap;

#[test]
fn custom_fpga_flow_runs_end_to_end() {
    let mut hy = Engine::new();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false).unwrap();
    let team = hy.add_team(admin, "t").unwrap();
    hy.add_team_member(admin, team, alice).unwrap();

    let schematic = hy.viewtype("schematic").unwrap();
    let mapped_vt = hy
        .register_viewtype("mapped", ToolKind::SchematicEntry)
        .unwrap();
    let entry = hy.register_tool("entry", ToolKind::SchematicEntry).unwrap();
    let mapper = hy
        .register_tool("mapper", ToolKind::SchematicEntry)
        .unwrap();
    let flow = hy.define_flow(admin, "fpga").unwrap();
    let a_enter = hy
        .add_activity(admin, flow, "enter", entry, &[], &[schematic], &[])
        .unwrap();
    let a_map = hy
        .add_activity(
            admin,
            flow,
            "map",
            mapper,
            &[schematic],
            &[mapped_vt],
            &[a_enter],
        )
        .unwrap();
    hy.freeze_flow(admin, flow).unwrap();

    let project = hy.create_project("fpga").unwrap();
    let cell = hy.create_cell(project, "cloud").unwrap();
    let (cv, variant) = hy.create_cell_version(cell, flow, team).unwrap();
    hy.reserve(alice, cv).unwrap();

    let design = generate::random_logic(40, 11);
    let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
    hy.run_activity(alice, variant, a_enter, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: bytes.into(),
        }])
    })
    .unwrap();

    let dovs = hy
        .run_activity(alice, variant, a_map, false, |session| {
            let netlist = format::parse_netlist(&String::from_utf8_lossy(
                session.input("schematic").expect("flow provides it"),
            ))
            .map_err(|e| hybrid::HybridError::Tool(e.into()))?;
            let (mapped, stats) = map_to_nand(&netlist).map_err(hybrid::HybridError::Tool)?;
            assert!(stats.gates_out >= stats.gates_in);
            // Mapping must not break timing analysability.
            let t = static_timing(&mapped).map_err(hybrid::HybridError::Tool)?;
            assert!(t.critical_delay > 0);
            Ok(vec![ToolOutput {
                viewtype: "mapped".into(),
                data: format::write_netlist(&mapped).into_bytes().into(),
            }])
        })
        .unwrap();

    // The mapped view is a first-class design object: mirrored, derived
    // from the schematic, auditable.
    let mirror = hy.mirror_of(dovs[0]).unwrap().clone();
    assert_eq!(mirror.view, "mapped");
    assert_eq!(hy.jcf().derived_from(dovs[0]).len(), 1);
    assert!(hy.verify_project(project).unwrap().is_empty());
}

#[test]
fn mapped_design_consumes_more_activity_per_operation() {
    // Cross-tool sanity: the NAND-mapped design toggles more internal
    // nets for the same stimulus (more gates, same function).
    let fa = generate::full_adder();
    let (mapped, _) = map_to_nand(&fa).unwrap();
    let mut stim = Stimulus::new();
    for bits in 0..8u64 {
        let t = bits * 20;
        stim.drive(
            t,
            "a",
            if bits & 1 != 0 {
                Logic::One
            } else {
                Logic::Zero
            },
        );
        stim.drive(
            t,
            "b",
            if bits & 2 != 0 {
                Logic::One
            } else {
                Logic::Zero
            },
        );
        stim.drive(
            t,
            "cin",
            if bits & 4 != 0 {
                Logic::One
            } else {
                Logic::Zero
            },
        );
    }
    let mut activity = Vec::new();
    for netlist in [&fa, &mapped] {
        let mut all = BTreeMap::new();
        all.insert(netlist.name().to_owned(), netlist.clone());
        let mut sim = Simulator::elaborate(netlist.name(), &all).unwrap();
        let waves = sim.run_testbench(&stim).unwrap();
        activity.push(switching_activity(&waves).relative_power);
    }
    assert!(
        activity[1] > activity[0],
        "mapped: {} > original: {}",
        activity[1],
        activity[0]
    );
}
