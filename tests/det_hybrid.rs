//! Deterministic randomized suite (SplitMix64-driven), covering the
//! same ground as the gated `prop_hybrid` proptest suite: random valid
//! desktop sessions never break the cross-framework invariants.

use cad_vfs::SplitMix64;
use design_data::{format, generate};
use hybrid::{Engine, ToolOutput};

/// A random but *valid* designer action.
#[derive(Debug, Clone)]
enum Action {
    NewCell,
    NewVersion(usize),
    NewVariant(usize, u8),
    EnterSchematic(usize, u8),
    Simulate(usize),
    Publish(usize),
}

fn random_actions(rng: &mut SplitMix64) -> Vec<Action> {
    let n = 1 + rng.below(24);
    (0..n)
        .map(|_| {
            let kind = rng.below(6);
            let i = rng.below(64);
            let b = rng.below(256) as u8;
            match kind {
                0 => Action::NewCell,
                1 => Action::NewVersion(i),
                2 => Action::NewVariant(i, b),
                3 => Action::EnterSchematic(i, b),
                4 => Action::Simulate(i),
                _ => Action::Publish(i),
            }
        })
        .collect()
}

/// After any sequence of valid desktop actions, every coupled project
/// verifies clean, mirrored bytes match the library, and derivation
/// edges point backwards in creation time.
#[test]
fn random_sessions_stay_consistent() {
    let mut rng = SplitMix64::new(0x4B1D_1995);
    for case in 0..12 {
        let actions = random_actions(&mut rng);
        let mut hy = Engine::new();
        let admin = hy.admin();
        let alice = hy.add_user("alice", false).unwrap();
        let team = hy.add_team(admin, "t").unwrap();
        hy.add_team_member(admin, team, alice).unwrap();
        let flow = hy.standard_flow("f").unwrap();
        let project = hy.create_project("p").unwrap();

        // Track live (cell, reserved cv, variant) triples.
        let mut cells = Vec::new();
        let mut slots: Vec<(jcf::CellVersionId, jcf::VariantId, bool)> = Vec::new();
        let mut cell_count = 0u32;

        for action in actions {
            match action {
                Action::NewCell => {
                    cell_count += 1;
                    let cell = hy
                        .create_cell(project, &format!("cell{cell_count}"))
                        .unwrap();
                    cells.push(cell);
                }
                Action::NewVersion(i) => {
                    if cells.is_empty() {
                        continue;
                    }
                    let cell = cells[i % cells.len()];
                    let (cv, variant) = hy.create_cell_version(cell, flow.flow, team).unwrap();
                    hy.reserve(alice, cv).unwrap();
                    slots.push((cv, variant, true));
                }
                Action::NewVariant(i, n) => {
                    if slots.is_empty() {
                        continue;
                    }
                    let (cv, base, reserved) = slots[i % slots.len()];
                    if !reserved {
                        continue;
                    }
                    let name = format!("var{n}-{i}");
                    if let Ok(v) = hy.derive_variant(alice, cv, &name, Some(base)) {
                        slots.push((cv, v, true));
                    }
                }
                Action::EnterSchematic(i, gates) => {
                    if slots.is_empty() {
                        continue;
                    }
                    let (_, variant, reserved) = slots[i % slots.len()];
                    if !reserved {
                        continue;
                    }
                    let design = generate::random_logic(1 + gates as usize % 40, u64::from(gates));
                    let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
                    hy.run_activity(alice, variant, flow.enter_schematic, false, move |_| {
                        Ok(vec![ToolOutput {
                            viewtype: "schematic".into(),
                            data: bytes.into(),
                        }])
                    })
                    .unwrap();
                }
                Action::Simulate(i) => {
                    if slots.is_empty() {
                        continue;
                    }
                    let (_, variant, reserved) = slots[i % slots.len()];
                    if !reserved {
                        continue;
                    }
                    // Only legal when a schematic exists; otherwise the
                    // flow engine rejects, which is fine.
                    let _ = hy.run_activity(alice, variant, flow.simulate, false, |_| {
                        Ok(vec![ToolOutput {
                            viewtype: "waveform".into(),
                            data: b"waves\n".to_vec().into(),
                        }])
                    });
                }
                Action::Publish(i) => {
                    if slots.is_empty() {
                        continue;
                    }
                    let idx = i % slots.len();
                    let (cv, _, reserved) = slots[idx];
                    if reserved {
                        hy.publish(alice, cv).unwrap();
                        for slot in slots.iter_mut().filter(|s| s.0 == cv) {
                            slot.2 = false;
                        }
                    }
                }
            }
        }

        // Invariant 1: the coupled project always verifies clean.
        assert!(
            hy.verify_project(project).unwrap().is_empty(),
            "case {case}"
        );

        // Invariant 2: every mirrored DOV's bytes match the library.
        for (_, variant, _) in &slots {
            for design_object in hy.jcf().design_objects_of(*variant) {
                for dov in hy.jcf().versions_of_design_object(design_object) {
                    if let Some(mirror) = hy.mirror_of(dov).cloned() {
                        let db = hy
                            .jcf()
                            .database()
                            .get(dov.object_id(), "data")
                            .unwrap()
                            .as_bytes()
                            .unwrap()
                            .to_vec();
                        let lib = hy
                            .fmcad()
                            .read_version(
                                &mirror.library,
                                &mirror.cell,
                                &mirror.view,
                                mirror.version,
                            )
                            .unwrap();
                        assert_eq!(db, lib, "case {case}");
                    }
                }
            }
        }

        // Invariant 3: derivation edges are acyclic (derived-from ids
        // were always created earlier).
        for (_, variant, _) in &slots {
            for design_object in hy.jcf().design_objects_of(*variant) {
                for dov in hy.jcf().versions_of_design_object(design_object) {
                    for parent in hy.jcf().derived_from(dov) {
                        assert!(parent.object_id() < dov.object_id(), "case {case}");
                    }
                }
            }
        }
    }
}
