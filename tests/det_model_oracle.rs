//! Model-based differential oracle for the hybrid engine.
//!
//! A flat [`Model`] interprets the same operation stream as the real
//! [`Engine`], but independently of OMS, JCF and FMCAD: it is nothing
//! but plain vectors and maps encoding the workspace rules of §2.1
//! (exclusive reservations, publish-to-expose, per-variant name
//! spaces). After *every* applied op the driver diffs the model's
//! predicted outcome against the engine's actual result, the model's
//! sequence number against [`Engine::seq`], and the model's counter
//! tables against the built-in [`CounterSink`]; periodically it also
//! deep-checks reservation holders and publication flags through the
//! JCF read API. Any divergence — a wrong success, a wrong error kind,
//! a drifted counter, a stale reservation — fails immediately with the
//! seed and step that exposed it.

use std::collections::BTreeMap;

use cad_vfs::{Blob, SplitMix64, Vfs, VfsPath};
use hybrid::{
    Engine, Event, HybridError, Op, RetentionPolicy, Service, ShardedService, ShardedSession,
    StagingMode, StandardFlow,
};
use jcf::{CellId, CellVersionId, DesignObjectId, DovId, UserId, VariantId, ViewTypeId};
use test_support::pick_index as pick;

// --- the reference model ------------------------------------------------

/// What the model expects an op application to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    /// Failure with this [`HybridError::kind`].
    Err(&'static str),
}

/// A cell version: who holds the reservation, which variant names are
/// taken below it.
struct MCv {
    holder: Option<usize>,
    variant_names: Vec<String>,
}

/// A variant: its owning cell version and the design object names
/// already used inside it.
struct MVariant {
    cv: usize,
    names: Vec<String>,
}

/// A design object: its owning variant and its version list.
struct MDesign {
    variant: usize,
    versions: Vec<usize>,
}

/// A design object version: publication flag and payload.
struct MDov {
    design: usize,
    published: bool,
    data: Vec<u8>,
}

/// The flat reference state. Indices are creation order and align
/// one-to-one with the id vectors in [`World`].
struct Model {
    seq: u64,
    ops: BTreeMap<String, u64>,
    failures: BTreeMap<String, u64>,
    cells: usize,
    cvs: Vec<MCv>,
    variants: Vec<MVariant>,
    designs: Vec<MDesign>,
    dovs: Vec<MDov>,
}

impl Model {
    /// Seeds the model from the engine's post-bootstrap observables.
    fn from_bootstrap(en: &Engine) -> Model {
        Model {
            seq: en.seq(),
            ops: en.counters().ops().clone(),
            failures: en.counters().failures().clone(),
            cells: 0,
            cvs: Vec::new(),
            variants: Vec::new(),
            designs: Vec::new(),
            dovs: Vec::new(),
        }
    }

    /// Records that one op of `kind` was applied with `outcome`.
    fn record(&mut self, kind: &str, outcome: Outcome) {
        self.seq += 1;
        match outcome {
            Outcome::Ok => *self.ops.entry(kind.to_owned()).or_insert(0) += 1,
            Outcome::Err(error_kind) => {
                *self.failures.entry(error_kind.to_owned()).or_insert(0) += 1;
            }
        }
    }

    /// The §2.1 visibility rule: published, or reserved by the reader.
    fn visible(&self, user: usize, dov: usize) -> bool {
        let dov = &self.dovs[dov];
        if dov.published {
            return true;
        }
        let cv = self.variants[self.designs[dov.design].variant].cv;
        self.cvs[cv].holder == Some(user)
    }
}

// --- real-id mirror -----------------------------------------------------

/// The engine-side ids, index-aligned with the model's vectors.
struct World {
    cells: Vec<CellId>,
    cvs: Vec<CellVersionId>,
    variants: Vec<VariantId>,
    designs: Vec<DesignObjectId>,
    dovs: Vec<DovId>,
}

struct Rig {
    en: Engine,
    users: [UserId; 2],
    flow: StandardFlow,
    team: jcf::TeamId,
    schematic: ViewTypeId,
    project: jcf::ProjectId,
}

/// Admin, two team members, the standard flow and one project — the
/// same §2.1 multi-user floor the workspace rules quantify over.
fn bootstrap() -> Rig {
    bootstrap_with(StagingMode::default())
}

/// [`bootstrap`], but with an explicit staging mode — the snapshot
/// equivalence suite runs the oracle under both.
fn bootstrap_with(mode: StagingMode) -> Rig {
    let mut en = Engine::builder().staging_mode(mode).build();
    let admin = en.admin();
    let alice = en.add_user("alice", false).expect("alice");
    let bob = en.add_user("bob", false).expect("bob");
    let team = en.add_team(admin, "asic").expect("team");
    en.add_team_member(admin, team, alice).expect("alice joins");
    en.add_team_member(admin, team, bob).expect("bob joins");
    let flow = en.standard_flow("asic").expect("flow");
    let project = en.create_project("alu16").expect("project");
    let schematic = en.viewtype("schematic").expect("schematic viewtype");
    Rig {
        en,
        users: [alice, bob],
        flow,
        team,
        schematic,
        project,
    }
}

// --- driver -------------------------------------------------------------

/// Applies one op to both the model and the engine and returns
/// `(op kind, predicted outcome, actual result)`.
///
/// Every arm draws from the rng in a state-independent order, predicts
/// the outcome from the model *before* touching the engine, applies
/// the real op, and mutates the model only on predicted success —
/// exactly mirroring the engine's own all-or-nothing op semantics.
fn step(
    rig: &mut Rig,
    rng: &mut SplitMix64,
    m: &mut Model,
    w: &mut World,
) -> (&'static str, Outcome, Result<(), HybridError>) {
    // An op every engine rejects wholesale: re-creating the bootstrap
    // project. Used directly (arm 9) and as the aligned fallback when a
    // pick finds an empty world list.
    macro_rules! dup_project {
        () => {{
            let actual = rig.en.create_project("alu16").map(|_| ());
            return ("create-project", Outcome::Err("jcf"), actual);
        }};
    }

    match rng.below(10) {
        // Fresh cell names never clash: always succeeds.
        0 => {
            let name = format!("cell{}", m.cells);
            let actual = rig.en.create_cell(rig.project, &name).map(|id| {
                w.cells.push(id);
            });
            m.cells += 1;
            ("create-cell", Outcome::Ok, actual)
        }
        // A new cell version brings its `base` variant (and the mapped
        // FMCAD cell): always succeeds.
        1 => {
            let Some(cell) = pick(rng, w.cells.len()) else {
                dup_project!()
            };
            let actual = rig
                .en
                .create_cell_version(w.cells[cell], rig.flow.flow, rig.team)
                .map(|(cv, variant)| {
                    w.cvs.push(cv);
                    w.variants.push(variant);
                });
            m.cvs.push(MCv {
                holder: None,
                variant_names: vec!["base".to_owned()],
            });
            let cv = m.cvs.len() - 1;
            m.variants.push(MVariant {
                cv,
                names: Vec::new(),
            });
            ("create-cell-version", Outcome::Ok, actual)
        }
        // Reserve: free or self-held succeeds, held by the other fails.
        2 => {
            let user = rng.below(2);
            let Some(cv) = pick(rng, w.cvs.len()) else {
                dup_project!()
            };
            let predicted = match m.cvs[cv].holder {
                Some(holder) if holder != user => Outcome::Err("jcf"),
                _ => Outcome::Ok,
            };
            let actual = rig.en.reserve(rig.users[user], w.cvs[cv]);
            if predicted == Outcome::Ok {
                m.cvs[cv].holder = Some(user);
            }
            ("reserve", predicted, actual)
        }
        // Publish: only the holder may; exposes every dov below the
        // cell version and releases the reservation.
        3 => {
            let user = rng.below(2);
            let Some(cv) = pick(rng, w.cvs.len()) else {
                dup_project!()
            };
            let predicted = if m.cvs[cv].holder == Some(user) {
                Outcome::Ok
            } else {
                Outcome::Err("jcf")
            };
            let actual = rig.en.publish(rig.users[user], w.cvs[cv]);
            if predicted == Outcome::Ok {
                m.cvs[cv].holder = None;
                for d in 0..m.dovs.len() {
                    if m.variants[m.designs[m.dovs[d].design].variant].cv == cv {
                        m.dovs[d].published = true;
                    }
                }
            }
            ("publish", predicted, actual)
        }
        // Derive a variant: needs the reservation, then a fresh name
        // within the cell version (the pool forces collisions).
        4 => {
            let user = rng.below(2);
            let name = format!("v{}", rng.below(5));
            let Some(cv) = pick(rng, w.cvs.len()) else {
                dup_project!()
            };
            // Reservation is checked before the name clash, but both
            // reject under the same "jcf" error kind.
            let rejected =
                m.cvs[cv].holder != Some(user) || m.cvs[cv].variant_names.contains(&name);
            let predicted = if rejected {
                Outcome::Err("jcf")
            } else {
                Outcome::Ok
            };
            let actual = rig
                .en
                .derive_variant(rig.users[user], w.cvs[cv], &name, None)
                .map(|variant| {
                    w.variants.push(variant);
                });
            if predicted == Outcome::Ok {
                m.cvs[cv].variant_names.push(name);
                m.variants.push(MVariant {
                    cv,
                    names: Vec::new(),
                });
            }
            ("derive-variant", predicted, actual)
        }
        // Create a design object: reservation plus per-variant name
        // uniqueness (pool of four forces collisions).
        5 => {
            let user = rng.below(2);
            let name = format!("d{}", rng.below(4));
            let Some(variant) = pick(rng, w.variants.len()) else {
                dup_project!()
            };
            let cv = m.variants[variant].cv;
            let rejected =
                m.cvs[cv].holder != Some(user) || m.variants[variant].names.contains(&name);
            let predicted = if rejected {
                Outcome::Err("jcf")
            } else {
                Outcome::Ok
            };
            let actual = rig
                .en
                .create_design_object(rig.users[user], w.variants[variant], &name, rig.schematic)
                .map(|id| {
                    w.designs.push(id);
                });
            if predicted == Outcome::Ok {
                m.variants[variant].names.push(name);
                m.designs.push(MDesign {
                    variant,
                    versions: Vec::new(),
                });
            }
            ("create-design-object", predicted, actual)
        }
        // Add a design object version: reservation only. New versions
        // start unpublished even after an earlier publish.
        6 => {
            let user = rng.below(2);
            let data = format!("netlist {}", rng.next_u64()).into_bytes();
            let Some(design) = pick(rng, w.designs.len()) else {
                dup_project!()
            };
            let cv = m.variants[m.designs[design].variant].cv;
            let predicted = if m.cvs[cv].holder == Some(user) {
                Outcome::Ok
            } else {
                Outcome::Err("jcf")
            };
            let actual = rig
                .en
                .add_design_object_version(rig.users[user], w.designs[design], data.clone())
                .map(|dov| {
                    w.dovs.push(dov);
                });
            if predicted == Outcome::Ok {
                m.dovs.push(MDov {
                    design,
                    published: false,
                    data,
                });
                let dov = m.dovs.len() - 1;
                m.designs[design].versions.push(dov);
            }
            ("add-design-object-version", predicted, actual)
        }
        // Desktop read: visible iff published or reserved by the
        // reader; on success the bytes must match the model's copy.
        7 => {
            let user = rng.below(2);
            let Some(dov) = pick(rng, w.dovs.len()) else {
                dup_project!()
            };
            let predicted = if m.visible(user, dov) {
                Outcome::Ok
            } else {
                Outcome::Err("jcf")
            };
            let actual = rig
                .en
                .read_design_data(rig.users[user], w.dovs[dov])
                .map(|blob| {
                    assert_eq!(
                        blob.as_slice(),
                        m.dovs[dov].data.as_slice(),
                        "read-design-data returned the wrong payload for dov {dov}"
                    );
                });
            ("read-design-data", predicted, actual)
        }
        // Hybrid browse: same visibility rule, but §3.6's copy path —
        // database → staging file → reader — must still round-trip the
        // exact bytes.
        8 => {
            let user = rng.below(2);
            let Some(dov) = pick(rng, w.dovs.len()) else {
                dup_project!()
            };
            let predicted = if m.visible(user, dov) {
                Outcome::Ok
            } else {
                Outcome::Err("jcf")
            };
            let actual = rig.en.browse(rig.users[user], w.dovs[dov]).map(|blob| {
                assert_eq!(
                    blob.as_slice(),
                    m.dovs[dov].data.as_slice(),
                    "browse returned the wrong payload for dov {dov}"
                );
            });
            ("browse", predicted, actual)
        }
        // Name-clash against the bootstrap project: always fails.
        _ => dup_project!(),
    }
}

/// Compares everything observable after one applied op.
fn diff_step(
    rig: &Rig,
    m: &Model,
    seed: u64,
    n: usize,
    kind: &str,
    predicted: Outcome,
    actual: &Result<(), HybridError>,
) {
    let at = format!("seed {seed:#x} step {n} ({kind})");
    match (predicted, actual) {
        (Outcome::Ok, Ok(())) => {}
        (Outcome::Err(expected), Err(e)) => assert_eq!(
            e.kind(),
            expected,
            "{at}: engine failed with the wrong kind: {e}"
        ),
        (Outcome::Ok, Err(e)) => panic!("{at}: model predicted success, engine said: {e}"),
        (Outcome::Err(expected), Ok(())) => {
            panic!("{at}: model predicted {expected} failure, engine succeeded")
        }
    }
    assert_eq!(m.seq, rig.en.seq(), "{at}: sequence number diverged");
    let last = rig
        .en
        .trace()
        .entries()
        .last()
        .unwrap_or_else(|| panic!("{at}: empty trace"));
    assert_eq!(last.seq, m.seq, "{at}: trace seq");
    assert_eq!(last.kind, kind, "{at}: trace kind");
    assert_eq!(last.ok, predicted == Outcome::Ok, "{at}: trace ok flag");
}

/// Deep-checks the invisible state through the JCF read API:
/// reservation holders and publication flags.
fn diff_deep(rig: &Rig, m: &Model, w: &World, at: &str) {
    for (i, cv) in m.cvs.iter().enumerate() {
        let holder = rig.en.jcf().reserver(w.cvs[i]);
        let expected = cv.holder.map(|u| rig.users[u]);
        assert_eq!(holder, expected, "{at}: reservation holder of cv {i}");
    }
    for (i, dov) in m.dovs.iter().enumerate() {
        let published = rig.en.jcf().is_published(w.dovs[i]).expect("live dov id");
        assert_eq!(published, dov.published, "{at}: published flag of dov {i}");
    }
    for (i, design) in m.designs.iter().enumerate() {
        let versions = rig.en.jcf().versions_of_design_object(w.designs[i]);
        assert_eq!(
            versions.len(),
            design.versions.len(),
            "{at}: version count of design object {i}"
        );
    }
    assert_eq!(
        m.ops,
        *rig.en.counters().ops(),
        "{at}: success counters diverged"
    );
    assert_eq!(
        m.failures,
        *rig.en.counters().failures(),
        "{at}: failure counters diverged"
    );
}

/// Diffs a *fresh snapshot* against the model and the live engine: the
/// frozen view must answer `read_design_data`/`browse`/`library_of`
/// exactly like the engine it was captured from, and a repeat capture
/// at the unchanged sequence number must be the same shared
/// `Arc<Snapshot>`.
fn diff_snapshot(rig: &Rig, m: &Model, w: &World, at: &str) {
    let snap = rig.en.snapshot();
    assert_eq!(snap.seq(), rig.en.seq(), "{at}: snapshot seq");
    let again = rig.en.snapshot();
    assert!(
        std::sync::Arc::ptr_eq(&snap, &again),
        "{at}: repeat capture at an unchanged seq must share the cached snapshot"
    );
    assert_eq!(
        snap.library_of(rig.project).expect("bootstrap project"),
        rig.en.library_of(rig.project).expect("bootstrap project"),
        "{at}: library_of diverged between snapshot and engine"
    );
    for (i, mdov) in m.dovs.iter().enumerate() {
        for (u, user) in rig.users.into_iter().enumerate() {
            let visible = m.visible(u, i);
            let read = snap.read_design_data(user, w.dovs[i]);
            let browsed = snap.browse(user, w.dovs[i]);
            // The live reference is the unjournaled desktop peek — the
            // same visibility rule without mutating the engine mid-diff.
            let live = rig.en.jcf().peek_design_data(user, w.dovs[i]);
            if visible {
                let blob = read.unwrap_or_else(|e| panic!("{at}: snapshot hid dov {i}: {e}"));
                assert_eq!(blob.as_slice(), mdov.data.as_slice(), "{at}: dov {i} bytes");
                let browsed =
                    browsed.unwrap_or_else(|e| panic!("{at}: snapshot browse hid dov {i}: {e}"));
                assert_eq!(browsed, blob, "{at}: browse vs read of dov {i}");
                let live = live.unwrap_or_else(|e| panic!("{at}: engine hid dov {i}: {e}"));
                assert_eq!(live, blob, "{at}: snapshot vs live peek of dov {i}");
            } else {
                assert!(read.is_err(), "{at}: snapshot exposed invisible dov {i}");
                assert!(browsed.is_err(), "{at}: browse exposed invisible dov {i}");
                assert!(live.is_err(), "{at}: engine exposed invisible dov {i}");
            }
        }
    }
}

/// Runs the oracle with a snapshot-equivalence diff after *every* op:
/// each applied op captures a fresh snapshot and proves it answers
/// reads identically to the engine state it froze.
fn snapshot_campaign(seed: u64, mode: StagingMode, ops: usize) {
    let mut rig = bootstrap_with(mode);
    let mut rng = SplitMix64::new(seed);
    let mut m = Model::from_bootstrap(&rig.en);
    let mut w = World {
        cells: Vec::new(),
        cvs: Vec::new(),
        variants: Vec::new(),
        designs: Vec::new(),
        dovs: Vec::new(),
    };
    for n in 0..ops {
        let (kind, predicted, actual) = step(&mut rig, &mut rng, &mut m, &mut w);
        m.record(kind, predicted);
        diff_step(&rig, &m, seed, n, kind, predicted, &actual);
        diff_snapshot(&rig, &m, &w, &format!("seed {seed:#x} step {n} ({mode:?})"));
    }
    diff_deep(&rig, &m, &w, &format!("seed {seed:#x} final ({mode:?})"));
}

/// Runs one full differential campaign: `ops` ops under `seed`, a diff
/// after every op, a deep diff every 25, and a final deep diff.
fn campaign(seed: u64, ops: usize) {
    let mut rig = bootstrap();
    let mut rng = SplitMix64::new(seed);
    let mut m = Model::from_bootstrap(&rig.en);
    let mut w = World {
        cells: Vec::new(),
        cvs: Vec::new(),
        variants: Vec::new(),
        designs: Vec::new(),
        dovs: Vec::new(),
    };
    let base_seq = rig.en.seq();
    for n in 0..ops {
        let (kind, predicted, actual) = step(&mut rig, &mut rng, &mut m, &mut w);
        m.record(kind, predicted);
        diff_step(&rig, &m, seed, n, kind, predicted, &actual);
        if n % 25 == 24 {
            diff_deep(&rig, &m, &w, &format!("seed {seed:#x} step {n}"));
        }
    }
    assert_eq!(rig.en.seq(), base_seq + ops as u64);
    assert_eq!(rig.en.journal_ops().len(), base_seq as usize + ops);
    diff_deep(&rig, &m, &w, &format!("seed {seed:#x} final"));
}

// --- suites -------------------------------------------------------------

/// The acceptance matrix: ≥5 SplitMix64 seeds × ≥200 ops each, zero
/// divergence between the flat model and the full engine stack.
#[test]
fn model_and_engine_agree_across_seeds() {
    for seed in [
        0x1995_0306_0000_0001,
        0x1995_0306_0000_0002,
        0x1995_0306_0000_0003,
        0x1995_0306_0000_0004,
        0x1995_0306_0000_0005,
        0xDA7E_0042_C0FF_EE00,
    ] {
        campaign(seed, 220);
    }
}

/// A longer single-seed soak: more collisions, more publish cycles,
/// more visibility flips — the regime where a drifting model would
/// show up as a late divergence.
#[test]
fn long_campaign_stays_in_lockstep() {
    campaign(0x0D15_EA5E_1995_0306, 600);
}

/// Snapshot equivalence: after every op, a fresh snapshot of the
/// persistent store answers reads exactly like the engine it froze —
/// under both staging modes and multiple seeds, with the repeat
/// capture shared out of the engine's cache.
#[test]
fn snapshots_answer_like_the_engine_after_every_op() {
    for seed in [0x1995_0306_0000_0011, 0x5EED_CAFE_0000_0002] {
        for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
            snapshot_campaign(seed, mode, 160);
        }
    }
}

/// The model also survives a checkpoint/restore cycle in the middle of
/// a campaign: the restored engine must agree with the same model the
/// original diverged from nowhere.
#[test]
fn restored_engine_agrees_with_the_model() {
    let seed = 0x0BAC_0015_1995_0042;
    let mut rig = bootstrap();
    let mut rng = SplitMix64::new(seed);
    let mut m = Model::from_bootstrap(&rig.en);
    let mut w = World {
        cells: Vec::new(),
        cvs: Vec::new(),
        variants: Vec::new(),
        designs: Vec::new(),
        dovs: Vec::new(),
    };
    for n in 0..120 {
        let (kind, predicted, actual) = step(&mut rig, &mut rng, &mut m, &mut w);
        m.record(kind, predicted);
        diff_step(&rig, &m, seed, n, kind, predicted, &actual);
    }
    let mut backup = cad_vfs::Vfs::new();
    let dir = cad_vfs::VfsPath::parse("/backup/oracle").expect("path");
    rig.en.checkpoint(&mut backup, &dir).expect("checkpoint");
    let restored = Engine::restore_from(&mut backup, &dir).expect("restore");
    rig.en = restored;
    assert_eq!(rig.en.seq(), m.seq, "restored seq");
    diff_deep(&rig, &m, &w, "after restore");
    // Keep driving the *restored* engine against the same model.
    for n in 120..240 {
        let (kind, predicted, actual) = step(&mut rig, &mut rng, &mut m, &mut w);
        m.record(kind, predicted);
        diff_step(&rig, &m, seed, n, kind, predicted, &actual);
    }
    diff_deep(&rig, &m, &w, "restored final");
}

// --- shard-count invariance ---------------------------------------------
//
// The partitioned service of §12 must be an implementation detail:
// the same seeded op stream, submitted in the same order, must yield
// a byte-identical `(seq, Event)` transcript — including every error
// kind — at every shard count, even though cross-partition ops run as
// degenerate same-shard commits at one shard and as real two-phase
// commits at two or four. A checkpoint/sync/recover round trip must
// also land each count back on its own live fingerprint.

/// One sharded campaign driver: two designer sessions over a
/// [`ShardedService`] plus the virtual-id pools the random ops pick
/// from. The service hands out shard-count-independent virtual ids,
/// so the pools — and with them the rng draw sequence — evolve
/// identically at every count.
struct ShardRig {
    service: ShardedService,
    sessions: Vec<ShardedSession>,
    team: jcf::TeamId,
    flow: StandardFlow,
    projects: Vec<jcf::ProjectId>,
    cells: Vec<CellId>,
    cvs: Vec<CellVersionId>,
    variants: Vec<VariantId>,
    dovs: Vec<DovId>,
    fresh_names: usize,
}

/// Boots a sharded service with the same cast as [`bootstrap`]:
/// a team, two designers with open sessions, and one standard flow.
fn bootstrap_sharded(shards: usize, mode: StagingMode) -> ShardRig {
    // A wide retention window so the time-travel oracle below can
    // interrogate every commit of a campaign; the transcript tests
    // are unaffected (retention only keeps read views alive).
    let service = ShardedService::builder()
        .shards(shards)
        .staging_mode(mode)
        .retention(RetentionPolicy::LastN(512))
        .build();
    let admin = service.open_session(service.admin());
    let team = admin.add_team("asic").expect("fresh team");
    let mut sessions = Vec::with_capacity(2);
    for name in ["alice", "bob"] {
        let user = admin.add_user(name, false).expect("unique name");
        admin.add_team_member(team, user).expect("manager adds");
        sessions.push(service.open_session(user));
    }
    let flow = admin.standard_flow("asic").expect("fresh flow");
    ShardRig {
        service,
        sessions,
        team,
        flow,
        projects: Vec::new(),
        cells: Vec::new(),
        cvs: Vec::new(),
        variants: Vec::new(),
        dovs: Vec::new(),
        fresh_names: 0,
    }
}

/// Applies one random op through a designer session and renders the
/// outcome — `seq|event` on success, `err|kind` on failure — so whole
/// transcripts compare bytewise across shard counts. Project names
/// come from a fresh counter, so successive projects hash onto
/// different partitions and the comp-of/equivalence arms regularly
/// cross them.
fn shard_step(rig: &mut ShardRig, rng: &mut SplitMix64) -> String {
    let who = rng.below(2);
    let user = rig.sessions[who].user();
    let op = match rng.below(12) {
        0 => {
            rig.fresh_names += 1;
            Op::CreateProject {
                name: format!("p{}", rig.fresh_names),
            }
        }
        // Deliberate collision: a duplicate once "p1" exists.
        1 => Op::CreateProject { name: "p1".into() },
        2 => match pick(rng, rig.projects.len()) {
            Some(p) => {
                rig.fresh_names += 1;
                Op::CreateCell {
                    project: rig.projects[p],
                    name: format!("c{}", rig.fresh_names),
                }
            }
            None => fresh_project(rig),
        },
        3 => match pick(rng, rig.cells.len()) {
            Some(c) => Op::CreateCellVersion {
                cell: rig.cells[c],
                flow: rig.flow.flow,
                team: rig.team,
            },
            None => fresh_project(rig),
        },
        4 => match pick(rng, rig.cvs.len()) {
            Some(c) => Op::Reserve {
                user,
                cv: rig.cvs[c],
            },
            None => fresh_project(rig),
        },
        5 => match pick(rng, rig.cvs.len()) {
            Some(c) => Op::Publish {
                user,
                cv: rig.cvs[c],
            },
            None => fresh_project(rig),
        },
        6 => match pick(rng, rig.cvs.len()) {
            Some(c) => Op::DeriveVariant {
                user,
                cv: rig.cvs[c],
                name: format!("v{}", rng.below(4)),
                base: None,
            },
            None => fresh_project(rig),
        },
        7 => {
            let data = Blob::from(format!("netlist {}", rng.next_u64()));
            match pick(rng, rig.variants.len()) {
                Some(v) => Op::RunActivity {
                    user,
                    variant: rig.variants[v],
                    activity: rig.flow.enter_schematic,
                    override_pending: false,
                    outputs: vec![("schematic".into(), data)],
                    session_error: None,
                },
                None => fresh_project(rig),
            }
        }
        8 => match pick(rng, rig.dovs.len()) {
            Some(d) => Op::Browse {
                user,
                dov: rig.dovs[d],
            },
            None => fresh_project(rig),
        },
        9 => match pick(rng, rig.dovs.len()) {
            Some(d) => Op::ReadDesignData {
                user,
                dov: rig.dovs[d],
            },
            None => fresh_project(rig),
        },
        // The two routing-class-crossing arms: parent and child (or
        // the two versions) usually live on different partitions.
        10 => match (pick(rng, rig.cvs.len()), pick(rng, rig.cells.len())) {
            (Some(c), Some(k)) => Op::DeclareCompOf {
                user,
                cv: rig.cvs[c],
                child: rig.cells[k],
            },
            _ => fresh_project(rig),
        },
        _ => match (pick(rng, rig.dovs.len()), pick(rng, rig.dovs.len())) {
            (Some(a), Some(b)) => Op::MarkEquivalent {
                a: rig.dovs[a],
                b: rig.dovs[b],
            },
            _ => fresh_project(rig),
        },
    };
    match rig.sessions[who].apply(op) {
        Ok((seq, event)) => {
            match &event {
                Event::ProjectCreated(id) => rig.projects.push(*id),
                Event::CellCreated(id) => rig.cells.push(*id),
                Event::CellVersionCreated(cv, variant) => {
                    rig.cvs.push(*cv);
                    rig.variants.push(*variant);
                }
                Event::VariantDerived(id) => rig.variants.push(*id),
                Event::ActivityRun { dovs } => rig.dovs.extend(dovs.iter().copied()),
                _ => {}
            }
            format!("{seq}|{event:?}")
        }
        Err(e) => format!("err|{}", e.kind()),
    }
}

/// Fallback op for arms whose pool is still empty: mint another
/// project, which both feeds later arms and spreads placement.
fn fresh_project(rig: &mut ShardRig) -> Op {
    rig.fresh_names += 1;
    Op::CreateProject {
        name: format!("p{}", rig.fresh_names),
    }
}

/// Runs one seeded campaign and returns its rendered transcript.
fn sharded_transcript(shards: usize, mode: StagingMode, seed: u64, ops: usize) -> Vec<String> {
    let mut rig = bootstrap_sharded(shards, mode);
    let mut rng = SplitMix64::new(seed);
    (0..ops).map(|_| shard_step(&mut rig, &mut rng)).collect()
}

/// The flagship invariance check: at two seeds and both staging
/// modes, the 2- and 4-shard transcripts equal the 1-shard reference
/// step for step — sequence numbers, event payloads and error kinds.
#[test]
fn sharded_transcripts_are_invariant_across_shard_counts() {
    for seed in [0x51AD_0001_1995_0306, 0xD1CE_0002_0000_0042] {
        for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
            let reference = sharded_transcript(1, mode, seed, 220);
            for shards in [2usize, 4] {
                let got = sharded_transcript(shards, mode, seed, 220);
                assert_eq!(got.len(), reference.len(), "transcript length");
                for (n, (want, have)) in reference.iter().zip(&got).enumerate() {
                    assert_eq!(
                        have, want,
                        "seed {seed:#x} {mode:?}: {shards}-shard transcript \
                         diverged at step {n}"
                    );
                }
            }
        }
    }
}

/// Checkpoint mid-campaign, keep driving, sync the tail, recover: at
/// every shard count the recovered service reports a clean shutdown
/// (no rolled-back prepares), reproduces the live fingerprint and
/// sequence number, and the transcript around the checkpoint still
/// matches the 1-shard reference.
#[test]
fn sharded_recovery_lands_on_the_live_fingerprint_at_every_count() {
    let seed = 0x0BAC_0015_1995_0107;
    let mut reference: Option<Vec<String>> = None;
    for shards in [1usize, 2, 4] {
        let mut rig = bootstrap_sharded(shards, StagingMode::default());
        let mut rng = SplitMix64::new(seed);
        let mut transcript: Vec<String> =
            (0..140).map(|_| shard_step(&mut rig, &mut rng)).collect();
        let mut backup = Vfs::new();
        let root = VfsPath::parse("/backup/oracle-shards").expect("valid path");
        rig.service
            .checkpoint(&mut backup, &root)
            .expect("checkpoint");
        transcript.extend((0..60).map(|_| shard_step(&mut rig, &mut rng)));
        rig.service.sync(&mut backup, &root).expect("sync");
        let (restored, report) = ShardedService::recover(&mut backup, &root).expect("recover");
        assert!(
            report.rolled_back_prepares.is_empty(),
            "{shards}-shard clean shutdown rolls back nothing"
        );
        assert_eq!(
            restored.state_fingerprint().expect("restored fingerprint"),
            rig.service.state_fingerprint().expect("live fingerprint"),
            "{shards}-shard recovery fingerprint"
        );
        assert_eq!(
            restored.stats().seq,
            rig.service.stats().seq,
            "{shards}-shard recovered sequence number"
        );
        match &reference {
            None => reference = Some(transcript),
            Some(want) => assert_eq!(
                &transcript, want,
                "{shards}-shard transcript around the checkpoint"
            ),
        }
    }
}

// --- time-travel vs point-in-time recovery ------------------------------
//
// §15's flagship equivalence: `Session::at(seq)` — a zero-copy read
// view served out of the retention ring — must answer every read
// *identically* to a fresh engine recovered to the same seq with
// `Engine::recover_at`. The ring is an optimization over replay, so
// any divergence between the two is a correctness bug in one of them.

/// Renders one read result as a comparable line: payload bytes on
/// success, the typed error kind on failure.
fn render_read(result: Result<Blob, HybridError>) -> String {
    match result {
        Ok(blob) => format!("ok|{:x?}", blob.as_slice()),
        Err(e) => format!("err|{}", e.kind()),
    }
}

/// Pools of live ids plus per-commit marks of how large each pool was,
/// so a retained seq can be interrogated with exactly the ids that
/// existed then.
#[derive(Default)]
struct HistoryPools {
    projects: Vec<jcf::ProjectId>,
    cvs: Vec<CellVersionId>,
    cells: Vec<CellId>,
    variants: Vec<VariantId>,
    dovs: Vec<DovId>,
    fresh: usize,
    /// `(seq, dovs.len(), cvs.len())` after each successful op.
    marks: Vec<(u64, usize, usize)>,
}

impl HistoryPools {
    /// The pool sizes as of commit `seq`.
    fn sizes_at(&self, seq: u64) -> (usize, usize) {
        self.marks
            .iter()
            .rev()
            .find(|(s, ..)| *s <= seq)
            .map(|&(_, d, c)| (d, c))
            .unwrap_or((0, 0))
    }

    /// Draws the next op — the same §2.1 mix as the sharded
    /// transcript driver, expressed over this rig's ids.
    fn draw(
        &mut self,
        rng: &mut SplitMix64,
        user: UserId,
        team: jcf::TeamId,
        flow: &StandardFlow,
    ) -> Op {
        let fresh = |p: &mut HistoryPools| {
            p.fresh += 1;
            Op::CreateProject {
                name: format!("hp{}", p.fresh),
            }
        };
        match rng.below(10) {
            0 => fresh(self),
            1 => Op::CreateProject { name: "hp1".into() },
            2 => match pick(rng, self.projects.len()) {
                Some(p) => {
                    self.fresh += 1;
                    Op::CreateCell {
                        project: self.projects[p],
                        name: format!("hc{}", self.fresh),
                    }
                }
                None => fresh(self),
            },
            3 => match pick(rng, self.cells.len()) {
                Some(c) => Op::CreateCellVersion {
                    cell: self.cells[c],
                    flow: flow.flow,
                    team,
                },
                None => fresh(self),
            },
            4 => match pick(rng, self.cvs.len()) {
                Some(c) => Op::Reserve {
                    user,
                    cv: self.cvs[c],
                },
                None => fresh(self),
            },
            5 => match pick(rng, self.cvs.len()) {
                Some(c) => Op::Publish {
                    user,
                    cv: self.cvs[c],
                },
                None => fresh(self),
            },
            6 | 7 => match pick(rng, self.variants.len()) {
                Some(v) => Op::RunActivity {
                    user,
                    variant: self.variants[v],
                    activity: flow.enter_schematic,
                    override_pending: false,
                    outputs: vec![(
                        "schematic".into(),
                        Blob::from(format!("netlist {}", rng.next_u64())),
                    )],
                    session_error: None,
                },
                None => fresh(self),
            },
            _ => match (pick(rng, self.dovs.len()), pick(rng, self.dovs.len())) {
                (Some(a), Some(b)) => Op::MarkEquivalent {
                    a: self.dovs[a],
                    b: self.dovs[b],
                },
                _ => fresh(self),
            },
        }
    }

    /// Absorbs a committed `(seq, event)` into the pools.
    fn absorb(&mut self, seq: u64, event: &Event) {
        match event {
            Event::ProjectCreated(id) => self.projects.push(*id),
            Event::CellCreated(id) => self.cells.push(*id),
            Event::CellVersionCreated(cv, variant) => {
                self.cvs.push(*cv);
                self.variants.push(*variant);
            }
            Event::VariantDerived(id) => self.variants.push(*id),
            Event::ActivityRun { dovs } => self.dovs.extend(dovs.iter().copied()),
            _ => {}
        }
        self.marks.push((seq, self.dovs.len(), self.cvs.len()));
    }
}

/// Drives a retained [`Service`] with a durable journal, then proves
/// every retained seq answers every read — desktop read, browse,
/// library name, impact queries — exactly like `Engine::recover_at`
/// replaying the persisted chain to the same seq.
fn history_matches_recovery_campaign(mode: StagingMode, seed: u64, ops: usize) {
    let dir = VfsPath::parse("/backup/history-oracle").expect("valid path");
    let service = Service::with_retention(
        Engine::builder().staging_mode(mode).build(),
        RetentionPolicy::LastN(512),
    );
    let mut backup = Vfs::new();
    // Base checkpoint at seq 0: every later commit is reachable by
    // point-in-time recovery, so no retained seq needs skipping.
    service
        .with_engine(|en| en.checkpoint(&mut backup, &dir))
        .expect("base checkpoint");
    let admin = service.open_session(service.admin());
    let alice = admin.add_user("alice", false).expect("alice");
    let bob = admin.add_user("bob", false).expect("bob");
    let team = admin.add_team("asic").expect("team");
    admin.add_team_member(team, alice).expect("alice joins");
    admin.add_team_member(team, bob).expect("bob joins");
    let flow = admin.standard_flow("asic").expect("flow");
    let sessions = [service.open_session(alice), service.open_session(bob)];
    let users = [alice, bob];
    let mut rng = SplitMix64::new(seed);
    let mut pools = HistoryPools::default();
    pools.marks.push((service.snapshot().seq(), 0, 0));
    for n in 0..ops {
        let who = rng.below(2);
        let op = pools.draw(&mut rng, users[who], team, &flow);
        if let Ok((seq, event)) = sessions[who].apply_seq(op) {
            pools.absorb(seq, &event);
        }
        if n % 25 == 24 {
            service
                .with_engine(|en| en.sync_journal(&mut backup, &dir))
                .expect("periodic sync");
        }
    }
    service
        .with_engine(|en| en.sync_journal(&mut backup, &dir))
        .expect("final sync");

    let retained = service.retained_seqs();
    assert!(
        retained.len() > ops / 2,
        "the 512-window ring must retain the whole campaign, got {}",
        retained.len()
    );
    let project = pools.projects.first().copied();
    for &seq in &retained {
        let mut disk = backup.clone();
        let (recovered, _) = Engine::recover_at(&mut disk, &dir, seq)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: recover_at({seq}) failed: {e}"));
        assert_eq!(recovered.seq(), seq, "recovery landed on the wrong seq");
        let rsnap = recovered.snapshot();
        let (ndovs, ncvs) = pools.sizes_at(seq);
        for (who, user) in users.into_iter().enumerate() {
            let at = format!("seed {seed:#x} {mode:?} seq {seq} user {who}");
            let hv = sessions[who]
                .at(seq)
                .unwrap_or_else(|e| panic!("{at}: retained seq rejected: {e}"));
            assert_eq!(hv.seq(), seq, "{at}: view seq");
            for &dov in &pools.dovs[..ndovs] {
                assert_eq!(
                    render_read(hv.read_design_data(dov)),
                    render_read(rsnap.read_design_data(user, dov)),
                    "{at}: read_design_data({dov}) diverged from recovery"
                );
                assert_eq!(
                    render_read(hv.browse(dov)),
                    render_read(rsnap.browse(user, dov)),
                    "{at}: browse({dov}) diverged from recovery"
                );
            }
            for &cv in &pools.cvs[..ncvs] {
                assert_eq!(
                    hv.stale_dovs(cv),
                    rsnap.stale_dovs(cv),
                    "{at}: stale_dovs({cv}) diverged from recovery"
                );
                assert_eq!(
                    format!("{:?}", hv.impacted_cellviews(cv)),
                    format!("{:?}", rsnap.impacted_cellviews(cv)),
                    "{at}: impacted_cellviews({cv}) diverged from recovery"
                );
            }
            if let Some(project) = project {
                assert_eq!(
                    hv.library_of(project).ok().map(str::to_owned),
                    rsnap.library_of(project).ok().map(str::to_owned),
                    "{at}: library_of diverged from recovery"
                );
            }
        }
    }
}

/// The single-engine flagship: both staging modes, two seeds, every
/// retained seq cross-checked against point-in-time recovery.
#[test]
fn history_views_answer_like_point_in_time_recovery() {
    for seed in [0x1995_0306_0000_0021, 0x5EED_CAFE_0000_0007] {
        for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
            history_matches_recovery_campaign(mode, seed, 100);
        }
    }
}

/// The sharded twin: a seeded campaign per shard count with a durable
/// chain, then sampled retained seqs interrogated through
/// `ShardedSession::at` and cross-checked against
/// `ShardedService::recover_at` — and the per-seq answers compared
/// across 1/2/4 shards, since the virtual-id surface promises
/// shard-count invariance for reads too.
fn sharded_history_digest(shards: usize, mode: StagingMode, seed: u64) -> Vec<String> {
    let root = VfsPath::parse("/backup/history-oracle-shards").expect("valid path");
    let mut rig = bootstrap_sharded(shards, mode);
    let mut backup = Vfs::new();
    rig.service
        .checkpoint(&mut backup, &root)
        .expect("base checkpoint");
    let base = rig.service.stats().seq;
    let mut rng = SplitMix64::new(seed);
    for n in 0..120 {
        shard_step(&mut rig, &mut rng);
        if n % 30 == 29 {
            rig.service.sync(&mut backup, &root).expect("periodic sync");
        }
    }
    rig.service.sync(&mut backup, &root).expect("final sync");

    let session = rig.service.open_session(rig.sessions[0].user());
    let user = session.user();
    let retained: Vec<u64> = rig
        .service
        .retained_seqs()
        .into_iter()
        .filter(|&s| s >= base)
        .collect();
    assert!(
        retained.len() > 60,
        "{shards}-shard ring kept {} reachable seqs",
        retained.len()
    );
    // Every 7th retained seq plus the newest: enough boundaries to
    // cross sealed/open segments without recovering 120 services.
    let sampled: Vec<u64> = retained
        .iter()
        .copied()
        .step_by(7)
        .chain(retained.last().copied())
        .collect();
    let mut digest = Vec::new();
    for &seq in &sampled {
        let mut disk = backup.clone();
        let (recovered, _) = ShardedService::recover_at(&mut disk, &root, seq)
            .unwrap_or_else(|e| panic!("{shards}-shard recover_at({seq}) failed: {e}"));
        assert_eq!(recovered.stats().seq, seq + 1, "recovery landed off target");
        let rview = recovered.view();
        let hv = session
            .at(seq)
            .unwrap_or_else(|e| panic!("{shards}-shard at({seq}) rejected: {e}"));
        let mut lines = Vec::new();
        for &dov in &rig.dovs {
            let line = render_read(hv.read_design_data(dov));
            assert_eq!(
                line,
                render_read(rview.read_design_data(user, dov)),
                "{shards}-shard seq {seq}: read_design_data({dov}) diverged from recovery"
            );
            lines.push(format!("{seq}|{dov}|{line}"));
        }
        for &cv in &rig.cvs {
            let stale = hv.view().stale_dovs(cv);
            let recovered_stale = rview.stale_dovs(cv);
            let line = match (&stale, &recovered_stale) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{shards}-shard seq {seq}: stale_dovs({cv}) diverged");
                    format!("ok|{a:?}")
                }
                (Err(a), Err(b)) => {
                    assert_eq!(
                        a.kind(),
                        b.kind(),
                        "{shards}-shard seq {seq}: stale_dovs({cv}) error kind diverged"
                    );
                    format!("err|{}", a.kind())
                }
                (a, b) => panic!(
                    "{shards}-shard seq {seq}: stale_dovs({cv}) split: live {a:?} vs recovered {b:?}"
                ),
            };
            lines.push(format!("{seq}|{cv}|{line}"));
        }
        digest.extend(lines);
    }
    digest
}

/// Sharded flagship: the per-seq digest (reads + impact sets, each
/// already proven equal to its own recovery) must also be identical
/// across shard counts, both staging modes.
#[test]
fn sharded_history_views_answer_like_recovery_at_every_count() {
    for mode in [StagingMode::ZeroCopy, StagingMode::DeepCopy] {
        let seed = 0x51AD_0015_1995_0306;
        let reference = sharded_history_digest(1, mode, seed);
        assert!(!reference.is_empty());
        for shards in [2usize, 4] {
            assert_eq!(
                sharded_history_digest(shards, mode, seed),
                reference,
                "{shards}-shard history digest diverged ({mode:?})"
            );
        }
    }
}
