//! Deterministic randomized replay suite (SplitMix64-driven): long
//! random streams of *ops* — including deliberate failures — applied
//! through the engine, checkpointed mid-stream, and restored, must
//! yield a restart state indistinguishable from the live one.
//!
//! This is the journal-level counterpart of `det_hybrid`: that suite
//! checks cross-framework invariants after random sessions; this one
//! checks that snapshot ⊕ replay reproduces the session itself —
//! database, file system, tick charges, trace and counters.
//!
//! Tool sessions in the stream always *return* `Ok` (a session-raised
//! error is journaled as its rendered text and replays under the
//! coarser `journal` error kind, which would make the counter tables
//! legitimately differ); pipeline-level failures — duplicate names,
//! flow violations, visibility rejections — happen before or after the
//! session and replay byte-for-byte, so the stream provokes those
//! freely.

use cad_vfs::{SplitMix64, Vfs, VfsPath};
use design_data::{format, generate};
use hybrid::{Engine, JournalEntry, ToolOutput};
use jcf::{CellId, CellVersionId, DovId, ProjectId, TeamId, UserId, VariantId};
use test_support::pick;

/// The mutable bookkeeping the driver needs to aim ops at real ids.
struct World {
    alice: UserId,
    team: TeamId,
    project: ProjectId,
    cells: Vec<CellId>,
    slots: Vec<(CellVersionId, VariantId)>,
    dovs: Vec<DovId>,
    next_cell: u32,
    next_variant: u32,
    next_user: u32,
}

/// Bootstraps one engine plus the world the op stream runs in.
fn bootstrap() -> (Engine, hybrid::StandardFlow, World) {
    let mut en = Engine::new();
    let admin = en.admin();
    let alice = en.add_user("alice", false).unwrap();
    let team = en.add_team(admin, "t").unwrap();
    en.add_team_member(admin, team, alice).unwrap();
    let flow = en.standard_flow("f").unwrap();
    let project = en.create_project("p").unwrap();
    let world = World {
        alice,
        team,
        project,
        cells: Vec::new(),
        slots: Vec::new(),
        dovs: Vec::new(),
        next_cell: 0,
        next_variant: 0,
        next_user: 0,
    };
    (en, flow, world)
}

/// Applies exactly one random op to the engine. Ops may fail (the
/// failure is journaled and must replay identically); sessions that do
/// run always return `Ok`.
fn step(en: &mut Engine, rng: &mut SplitMix64, flow: &hybrid::StandardFlow, w: &mut World) {
    match rng.below(12) {
        0 => {
            w.next_cell += 1;
            let cell = en
                .create_cell(w.project, &format!("cell{}", w.next_cell))
                .unwrap();
            w.cells.push(cell);
        }
        1 => {
            if let Some(&cell) = pick(rng, &w.cells) {
                let (cv, variant) = en.create_cell_version(cell, flow.flow, w.team).unwrap();
                w.slots.push((cv, variant));
            } else {
                // Fallback keeps every step exactly one op.
                let _ = en.create_project("p");
            }
        }
        2 => {
            // May fail: already reserved, or published.
            if let Some(&(cv, _)) = pick(rng, &w.slots) {
                let _ = en.reserve(w.alice, cv);
            } else {
                let _ = en.create_project("p");
            }
        }
        3 | 4 => {
            // Schematic entry at a random slot. Unreserved slots fail
            // before the session runs; reserved ones run it.
            if let Some(&(_, variant)) = pick(rng, &w.slots) {
                let gates = 1 + rng.below(24);
                let seed = rng.next_u64();
                let design = generate::random_logic(gates, seed);
                let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
                if let Ok(dovs) =
                    en.run_activity(w.alice, variant, flow.enter_schematic, false, move |_| {
                        Ok(vec![ToolOutput {
                            viewtype: "schematic".into(),
                            data: bytes.into(),
                        }])
                    })
                {
                    w.dovs.extend(dovs);
                }
            } else {
                let _ = en.create_project("p");
            }
        }
        5 => {
            // Simulation needs a prior schematic; the flow engine
            // rejects otherwise, before the session runs.
            if let Some(&(_, variant)) = pick(rng, &w.slots) {
                let _ = en.run_activity(w.alice, variant, flow.simulate, false, |_| {
                    Ok(vec![ToolOutput {
                        viewtype: "waveform".into(),
                        data: b"waves\n".to_vec().into(),
                    }])
                });
            } else {
                let _ = en.create_project("p");
            }
        }
        6 => {
            if let Some(&(cv, _)) = pick(rng, &w.slots) {
                let _ = en.publish(w.alice, cv);
            } else {
                let _ = en.create_project("p");
            }
        }
        7 => {
            if let Some(&(cv, base)) = pick(rng, &w.slots) {
                w.next_variant += 1;
                let name = format!("var{}", w.next_variant);
                if let Ok(v) = en.derive_variant(w.alice, cv, &name, Some(base)) {
                    w.slots.push((cv, v));
                }
            } else {
                let _ = en.create_project("p");
            }
        }
        8 => {
            if let Some(&dov) = pick(rng, &w.dovs) {
                let _ = en.browse(w.alice, dov);
            } else {
                let _ = en.create_project("p");
            }
        }
        9 => {
            if let Some(&dov) = pick(rng, &w.dovs) {
                let _ = en.read_design_data(w.alice, dov);
            } else {
                let _ = en.create_project("p");
            }
        }
        10 => {
            w.next_user += 1;
            en.add_user(&format!("user{}", w.next_user), false).unwrap();
        }
        _ => {
            // A guaranteed journaled failure: the bootstrap project
            // name is taken.
            en.create_project("p").expect_err("duplicate project");
        }
    }
}

/// Drains a `TraceSink` into a comparable vector.
fn trace_of(en: &Engine) -> Vec<JournalEntry> {
    en.trace().entries().cloned().collect()
}

/// The headline property: ≥200 random ops, a checkpoint two thirds of
/// the way in, a journal tail, then restore — live and restored
/// engines must agree on every observable: sequence number, tick
/// charges, trace, counter tables, and the full state fingerprint.
#[test]
fn random_op_streams_replay_to_the_live_state() {
    let mut rng = SplitMix64::new(0x0D15_EA5E_1995_0042);
    for case in 0..3u32 {
        let (mut en, flow, mut world) = bootstrap();

        for _ in 0..140 {
            step(&mut en, &mut rng, &flow, &mut world);
        }

        let mut backup = Vfs::new();
        let dir = VfsPath::parse("/backup/replay").unwrap();
        en.checkpoint(&mut backup, &dir).unwrap();

        for _ in 0..100 {
            step(&mut en, &mut rng, &flow, &mut world);
        }
        en.sync_journal(&mut backup, &dir).unwrap();
        assert!(en.seq() >= 200, "case {case}: stream too short");

        let restored = Engine::restore_from(&mut backup, &dir).unwrap();

        assert_eq!(restored.seq(), en.seq(), "case {case}");
        assert_eq!(restored.io_meter(), en.io_meter(), "case {case}");
        assert_eq!(trace_of(&restored), trace_of(&en), "case {case}");
        assert_eq!(
            restored.counters().ops(),
            en.counters().ops(),
            "case {case}"
        );
        assert_eq!(
            restored.counters().failures(),
            en.counters().failures(),
            "case {case}"
        );
        assert_eq!(
            restored.state_fingerprint().unwrap(),
            en.state_fingerprint().unwrap(),
            "case {case}: snapshot ⊕ replay must equal the live state"
        );
    }
}

/// Determinism of the driver itself: the same seed grows the same
/// history (same trace, same fingerprint), so any future divergence in
/// this suite points at the engine, not the test.
#[test]
fn identical_seeds_grow_identical_histories() {
    let run = |seed: u64| {
        let mut rng = SplitMix64::new(seed);
        let (mut en, flow, mut world) = bootstrap();
        for _ in 0..80 {
            step(&mut en, &mut rng, &flow, &mut world);
        }
        en
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.seq(), b.seq());
    assert_eq!(trace_of(&a), trace_of(&b));
    assert_eq!(
        a.state_fingerprint().unwrap(),
        b.state_fingerprint().unwrap()
    );
}
