//! EventSink ordering under injected faults.
//!
//! The engine promises that its three observers never drift apart: the
//! ops journal (replay), the [`TraceSink`] ring (the desktop `journal`
//! command) and the [`CounterSink`] tables (the benchmark report) all
//! describe the same op stream in the same order — including the ops
//! that *fail*, and including failures manufactured by the [`FaultPlan`]
//! layer in the live staging file system. This suite drives a seeded
//! 200-op stream, periodically arms a one-shot write fault on the
//! engine's own VFS so an otherwise-fine browse comes back as a `vfs`
//! failure, and then checks entry-by-entry agreement between what the
//! driver observed, the trace ring, the counters and the journal.

use std::collections::BTreeMap;

use cad_vfs::{FaultPlan, SplitMix64, Vfs, VfsPath};
use hybrid::{Engine, HybridError, StandardFlow};
use jcf::{CellId, CellVersionId, DovId, TeamId, UserId, VariantId};
use test_support::pick_index as pick;

/// One observed application: the op kind the driver issued and, if the
/// engine rejected it, the stable error kind plus the rendered message.
struct Observed {
    kind: &'static str,
    error: Option<(&'static str, String)>,
}

struct Rig {
    en: Engine,
    alice: UserId,
    bob: UserId,
    flow: StandardFlow,
    team: TeamId,
    project: jcf::ProjectId,
    cells: Vec<CellId>,
    slots: Vec<(CellVersionId, VariantId)>,
    /// A dov published during bootstrap — always browsable, so a browse
    /// against it fails only when a fault is armed.
    shared_dov: DovId,
}

fn bootstrap() -> Rig {
    let mut en = Engine::new();
    let admin = en.admin();
    let alice = en.add_user("alice", false).unwrap();
    let bob = en.add_user("bob", false).unwrap();
    let team = en.add_team(admin, "t").unwrap();
    en.add_team_member(admin, team, alice).unwrap();
    en.add_team_member(admin, team, bob).unwrap();
    let flow = en.standard_flow("f").unwrap();
    let project = en.create_project("p").unwrap();
    let schematic = en.viewtype("schematic").unwrap();
    let cell = en.create_cell(project, "shared").unwrap();
    let (cv, variant) = en.create_cell_version(cell, flow.flow, team).unwrap();
    en.reserve(alice, cv).unwrap();
    let design = en
        .create_design_object(alice, variant, "sch", schematic)
        .unwrap();
    let shared_dov = en
        .add_design_object_version(alice, design, b"netlist shared\n".to_vec())
        .unwrap();
    en.publish(alice, cv).unwrap();
    Rig {
        en,
        alice,
        bob,
        flow,
        team,
        project,
        cells: Vec::new(),
        slots: Vec::new(),
        shared_dov,
    }
}

/// Applies one random op (failures welcome) and reports what happened.
fn step(rig: &mut Rig, rng: &mut SplitMix64) -> Observed {
    let user = if rng.below(2) == 0 {
        rig.alice
    } else {
        rig.bob
    };
    let (kind, result): (&'static str, Result<(), HybridError>) = match rng.below(8) {
        0 => {
            let name = format!("cell{}", rig.cells.len());
            (
                "create-cell",
                rig.en.create_cell(rig.project, &name).map(|id| {
                    rig.cells.push(id);
                }),
            )
        }
        1 => match pick(rng, rig.cells.len()) {
            Some(cell) => (
                "create-cell-version",
                rig.en
                    .create_cell_version(rig.cells[cell], rig.flow.flow, rig.team)
                    .map(|slot| rig.slots.push(slot)),
            ),
            None => ("create-project", rig.en.create_project("p").map(|_| ())),
        },
        2 => match pick(rng, rig.slots.len()) {
            Some(i) => ("reserve", rig.en.reserve(user, rig.slots[i].0)),
            None => ("create-project", rig.en.create_project("p").map(|_| ())),
        },
        3 => match pick(rng, rig.slots.len()) {
            Some(i) => ("publish", rig.en.publish(user, rig.slots[i].0)),
            None => ("create-project", rig.en.create_project("p").map(|_| ())),
        },
        4 => {
            let name = format!("v{}", rng.below(4));
            match pick(rng, rig.slots.len()) {
                Some(i) => (
                    "derive-variant",
                    rig.en
                        .derive_variant(user, rig.slots[i].0, &name, None)
                        .map(|_| ()),
                ),
                None => ("create-project", rig.en.create_project("p").map(|_| ())),
            }
        }
        5 => ("browse", rig.en.browse(user, rig.shared_dov).map(|_| ())),
        6 => (
            "read-design-data",
            rig.en.read_design_data(user, rig.shared_dov).map(|_| ()),
        ),
        // Guaranteed rejection, to keep failures flowing through the
        // sinks alongside the injected ones.
        _ => ("create-project", rig.en.create_project("p").map(|_| ())),
    };
    Observed {
        kind,
        error: result.err().map(|e| (e.kind(), e.to_string())),
    }
}

/// The satellite acceptance test: a seeded 200-op stream with one-shot
/// write faults armed every 20 ops; trace ring, counter tables and ops
/// journal must agree entry-for-entry with what the driver observed.
#[test]
fn sinks_agree_with_the_journal_under_injected_faults() {
    let mut rig = bootstrap();
    let mut rng = SplitMix64::new(0x51DE_C0DE_0042);
    let base_seq = rig.en.seq();
    let mut observed: Vec<Observed> = Vec::new();
    let mut injected = 0u64;

    for n in 0..200 {
        if n % 20 == 19 {
            // Arm a one-shot fault on the engine's *live* file system:
            // the next staging write — the browse below — must fail.
            rig.en
                .fmcad()
                .fs_ref()
                .arm_faults(FaultPlan::new(0xFA17 + n as u64).fail_write(1));
            let err = rig
                .en
                .browse(rig.bob, rig.shared_dov)
                .expect_err("armed browse must fail");
            assert!(
                matches!(err, HybridError::Vfs(_)),
                "injected staging fault surfaces as a vfs error, got: {err}"
            );
            let plan = rig
                .en
                .fmcad()
                .fs_ref()
                .disarm_faults()
                .expect("plan still armed");
            assert_eq!(plan.stats().faults_fired, 1, "exactly one fault fired");
            injected += 1;
            observed.push(Observed {
                kind: "browse",
                error: Some((err.kind(), err.to_string())),
            });
        } else {
            observed.push(step(&mut rig, &mut rng));
        }
    }

    assert_eq!(rig.en.seq(), base_seq + 200, "every op was journaled");
    assert!(injected >= 10, "the stream actually exercised faults");

    // The counter tables must equal the tables recomputed from what the
    // driver saw — successes by op kind, failures by error kind.
    let mut expected_ops: BTreeMap<String, u64> = BTreeMap::new();
    let mut expected_failures: BTreeMap<String, u64> = BTreeMap::new();
    {
        // Fold in the bootstrap prefix (all successes) by replaying the
        // ops journal for the first `base_seq` entries.
        for op in &rig.en.journal_ops()[..base_seq as usize] {
            *expected_ops.entry(op.kind_name().to_owned()).or_insert(0) += 1;
        }
    }
    for obs in &observed {
        match &obs.error {
            None => *expected_ops.entry(obs.kind.to_owned()).or_insert(0) += 1,
            Some((kind, _rendered)) => {
                // The stable `kind()` string is exactly the failure
                // counter key — no prefix sniffing needed.
                *expected_failures.entry((*kind).to_owned()).or_insert(0) += 1;
            }
        }
    }
    assert_eq!(*rig.en.counters().ops(), expected_ops, "success counters");
    assert_eq!(
        *rig.en.counters().failures(),
        expected_failures,
        "failure counters"
    );
    assert_eq!(rig.en.counters().total(), rig.en.seq(), "total == seq");
    assert_eq!(
        expected_failures.get("vfs").copied().unwrap_or(0),
        injected,
        "every vfs failure in the stream was an injected one"
    );

    // The trace ring holds the newest 256 entries; each must agree with
    // both the driver's observation and the ops journal at its seq.
    let journal = rig.en.journal_ops();
    assert_eq!(journal.len() as u64, rig.en.seq(), "no checkpoint ran");
    let entries: Vec<_> = rig.en.trace().entries().collect();
    assert!(!entries.is_empty());
    for (i, entry) in entries.iter().enumerate() {
        if i > 0 {
            assert_eq!(
                entry.seq,
                entries[i - 1].seq + 1,
                "trace seqs are gapless and ordered"
            );
        }
        let op = &journal[(entry.seq - 1) as usize];
        assert_eq!(entry.kind, op.kind_name(), "trace kind matches journal");
        assert_eq!(entry.summary, op.summary(), "trace summary matches journal");
        if entry.seq > base_seq {
            let obs = &observed[(entry.seq - base_seq - 1) as usize];
            assert_eq!(entry.kind, obs.kind, "trace kind matches the driver");
            match &obs.error {
                None => {
                    assert!(entry.ok, "seq {}: driver saw success", entry.seq);
                    assert!(!entry.outcome.starts_with("error:"));
                }
                Some((kind, rendered)) => {
                    assert!(!entry.ok, "seq {}: driver saw a failure", entry.seq);
                    assert_eq!(
                        entry.outcome,
                        format!("error[{kind}]: {rendered}"),
                        "trace records the stable kind and the rendered error"
                    );
                }
            }
        }
    }
    assert_eq!(
        entries.last().expect("nonempty").seq,
        rig.en.seq(),
        "the ring ends at the newest op"
    );
}

/// A failed journal sync is invisible to the sinks: `sync_journal` is
/// not an op, so an injected fault in it must change neither the seq,
/// nor the counters, nor the trace — and a retry must succeed.
#[test]
fn a_failed_journal_sync_leaves_the_sinks_untouched() {
    let mut rig = bootstrap();
    let mut backup = Vfs::new();
    let dir = VfsPath::parse("/backup/sinks").unwrap();
    rig.en.checkpoint(&mut backup, &dir).unwrap();
    let mut rng = SplitMix64::new(0x000E_DE12);
    for _ in 0..40 {
        step(&mut rig, &mut rng);
    }

    let seq = rig.en.seq();
    let ops_before = rig.en.counters().ops().clone();
    let failures_before = rig.en.counters().failures().clone();
    let last_before = rig.en.trace().entries().last().cloned().unwrap();

    backup.arm_faults(FaultPlan::new(7).fail_write(1));
    let err = rig
        .en
        .sync_journal(&mut backup, &dir)
        .expect_err("armed sync must fail");
    assert!(err.to_string().contains("injected write fault"), "{err}");
    backup.disarm_faults();

    assert_eq!(rig.en.seq(), seq, "a failed sync is not an op");
    assert_eq!(*rig.en.counters().ops(), ops_before);
    assert_eq!(*rig.en.counters().failures(), failures_before);
    assert_eq!(
        rig.en.trace().entries().last().cloned().unwrap(),
        last_before,
        "the trace ring did not move"
    );

    // The retry persists a journal the restored engine replays in full.
    rig.en.sync_journal(&mut backup, &dir).unwrap();
    let restored = Engine::restore_from(&mut backup, &dir).unwrap();
    assert_eq!(restored.seq(), rig.en.seq());
    assert_eq!(restored.counters().ops(), rig.en.counters().ops());
    assert_eq!(restored.counters().failures(), rig.en.counters().failures());
}
