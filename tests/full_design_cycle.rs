//! End-to-end integration: a hierarchical design travels the complete
//! hybrid pipeline — legacy import, team workspaces, real tool runs
//! (including gate-level simulation), variants, configurations and a
//! final consistency audit.

use std::collections::BTreeMap;

use cad_tools::Simulator;
use design_data::{format, generate, Logic};
use hybrid::{Engine, ToolOutput};
use jcf::DovId;

struct Team {
    hy: Engine,
    alice: jcf::UserId,
    bob: jcf::UserId,
    team: jcf::TeamId,
    flow: hybrid::StandardFlow,
}

fn team() -> Team {
    let mut hy = Engine::new();
    let admin = hy.admin();
    let alice = hy.add_user("alice", false).unwrap();
    let bob = hy.add_user("bob", false).unwrap();
    let team_id = hy.add_team(admin, "asic").unwrap();
    hy.add_team_member(admin, team_id, alice).unwrap();
    hy.add_team_member(admin, team_id, bob).unwrap();
    let flow = hy.standard_flow("asic").unwrap();
    Team {
        hy,
        alice,
        bob,
        team: team_id,
        flow,
    }
}

#[test]
fn complete_design_cycle_stays_consistent() {
    let mut t = team();
    let design = generate::ripple_adder(4);
    let project = t.hy.create_project("alu").unwrap();

    // Leaf cell by bob.
    let fa = t.hy.create_cell(project, "full_adder").unwrap();
    let (fa_cv, fa_var) = t.hy.create_cell_version(fa, t.flow.flow, t.team).unwrap();
    t.hy.reserve(t.bob, fa_cv).unwrap();
    let payload = format::write_netlist(&design.netlists["full_adder"]).into_bytes();
    t.hy.run_activity(t.bob, fa_var, t.flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: payload.into(),
        }])
    })
    .unwrap();
    t.hy.publish(t.bob, fa_cv).unwrap();

    // Top cell by alice with declared hierarchy.
    let top = t.hy.create_cell(project, &design.top).unwrap();
    let (top_cv, top_var) = t.hy.create_cell_version(top, t.flow.flow, t.team).unwrap();
    t.hy.reserve(t.alice, top_cv).unwrap();
    t.hy.declare_comp_of(t.alice, top_cv, fa).unwrap();
    let top_bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
    let payload = top_bytes.clone();
    let sch_dovs =
        t.hy.run_activity(t.alice, top_var, t.flow.enter_schematic, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: payload.into(),
            }])
        })
        .unwrap();

    // Simulation activity runs the real event-driven simulator on the
    // staged schematic plus the published leaf cell.
    let netlists = design.netlists.clone();
    let wave_dovs =
        t.hy.run_activity(t.alice, top_var, t.flow.simulate, false, move |session| {
            let text = String::from_utf8_lossy(&session.inputs["schematic"]).into_owned();
            let top = format::parse_netlist(&text).expect("staged netlist parses");
            let mut all: BTreeMap<String, design_data::Netlist> = netlists;
            all.insert(top.name().to_owned(), top);
            let mut sim = Simulator::elaborate("adder4", &all).expect("elaborates");
            for i in 0..4 {
                sim.set_input(&format!("a{i}"), Logic::One).expect("pin");
                sim.set_input(&format!("b{i}"), Logic::Zero).expect("pin");
            }
            sim.set_input("cin", Logic::One).expect("pin");
            sim.settle().expect("settles");
            // 15 + 0 + 1 = 16 -> cout set, sum 0.
            assert_eq!(sim.value("cout").expect("pin"), Logic::One);
            for i in 0..4 {
                assert_eq!(sim.value(&format!("s{i}")).expect("pin"), Logic::Zero);
            }
            Ok(vec![ToolOutput {
                viewtype: "waveform".into(),
                data: format::write_waveforms(sim.waves()).into_bytes().into(),
            }])
        })
        .unwrap();

    // Derivation chain: waveform <- schematic.
    assert_eq!(t.hy.jcf().derived_from(wave_dovs[0]), vec![sch_dovs[0]]);

    // Configuration selecting the released views.
    let config = t.hy.create_configuration(t.alice, top_cv, "rel1").unwrap();
    let selection: Vec<DovId> = vec![sch_dovs[0], wave_dovs[0]];
    let cfg =
        t.hy.create_config_version(t.alice, config, &selection)
            .unwrap();
    assert_eq!(t.hy.jcf().config_contents(cfg).len(), 2);

    t.hy.publish(t.alice, top_cv).unwrap();
    assert!(t.hy.verify_project(project).unwrap().is_empty());

    // Everything is mirrored: FMCAD sees the same bytes in its library.
    let mirror = t.hy.mirror_of(sch_dovs[0]).unwrap().clone();
    let lib_bytes =
        t.hy.fmcad()
            .read_version(&mirror.library, &mirror.cell, &mirror.view, mirror.version)
            .unwrap();
    assert_eq!(lib_bytes, top_bytes);
}

#[test]
fn import_then_continue_designing() {
    let mut t = team();
    // Legacy world.
    let design = generate::counter(4);
    t.hy.fmcad_create_library("legacy").unwrap();
    for (cell, netlist) in &design.netlists {
        t.hy.fmcad_create_cell("legacy", cell).unwrap();
        t.hy.fmcad_create_cellview("legacy", cell, "schematic", "schematic")
            .unwrap();
        t.hy.fmcad_checkin(
            "old",
            "legacy",
            cell,
            "schematic",
            format::write_netlist(netlist).into_bytes(),
        )
        .unwrap();
    }
    let (project, report) =
        t.hy.import_library(t.alice, "legacy", t.flow.flow, t.team)
            .unwrap();
    assert_eq!(report.cells, 1);
    assert!(t.hy.verify_project(project).unwrap().is_empty());

    // Work continues under full management: new version of the cell.
    let cell = t.hy.jcf().cells_of(project)[0];
    let (cv2, var2) = t.hy.create_cell_version(cell, t.flow.flow, t.team).unwrap();
    t.hy.reserve(t.bob, cv2).unwrap();
    let bytes = format::write_netlist(&design.netlists[&design.top]).into_bytes();
    t.hy.run_activity(t.bob, var2, t.flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: bytes.into(),
        }])
    })
    .unwrap();
    // The mapped FMCAD cell for version 2 exists alongside the import.
    assert!(t.hy.fmcad().cells("legacy").unwrap().len() >= 2);
    assert!(t.hy.verify_project(project).unwrap().is_empty());
}

#[test]
fn two_level_versioning_supports_parallel_exploration() {
    let mut t = team();
    let project = t.hy.create_project("p").unwrap();
    let cell = t.hy.create_cell(project, "fa").unwrap();
    let (cv, base) = t.hy.create_cell_version(cell, t.flow.flow, t.team).unwrap();
    t.hy.reserve(t.alice, cv).unwrap();

    let bytes = format::write_netlist(&generate::full_adder()).into_bytes();
    let payload = bytes.clone();
    t.hy.run_activity(t.alice, base, t.flow.enter_schematic, false, move |_| {
        Ok(vec![ToolOutput {
            viewtype: "schematic".into(),
            data: payload.into(),
        }])
    })
    .unwrap();

    // Derive three experimental variants, each with its own work.
    for name in ["fast", "small", "low-power"] {
        let variant = t.hy.derive_variant(t.alice, cv, name, Some(base)).unwrap();
        let payload = bytes.clone();
        t.hy.run_activity(t.alice, variant, t.flow.enter_schematic, false, move |_| {
            Ok(vec![ToolOutput {
                viewtype: "schematic".into(),
                data: payload.into(),
            }])
        })
        .unwrap();
    }
    assert_eq!(t.hy.jcf().variants_of(cv).len(), 4);
    // Standalone FMCAD cannot represent this at all: one cellview, one
    // checkout, no variants (§3.1).
}
